(* The paper's §IV-B case study: 2-anonymisation of the six-record health
   table, the Table I value-risk fractions, and the Fig. 4 risk-transitions
   added to the generated LTS, including the design-time gate that rejects
   the pseudonymisation when violations exceed 50%.

     dune exec examples/pseudonymisation_risk.exe *)

open Mdp_scenario
module Core = Mdp_core
module A = Mdp_anon
module Frac = Mdp_prelude.Frac

let section title = Format.printf "@.== %s ==@." title

let () =
  section "Raw study records";
  Format.printf "%a@." A.Dataset.pp Healthcare.table1_raw;

  section "2-anonymised release (identifiers dropped, Age/Height generalised)";
  Format.printf "%a@." A.Dataset.pp Healthcare.table1_released;
  assert (A.Kanon.is_k_anonymous ~k:2 Healthcare.table1_released);

  section "Table I: value risks per fields-read set";
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "Age"; "Height"; "Weight"; "Height risk"; "Age risk"; "Age Height risk" ]
  in
  let reports =
    List.map
      (fun fr ->
        A.Value_risk.assess Healthcare.table1_released ~fields_read:fr
          Healthcare.value_policy)
      [ [ "Height" ]; [ "Age" ]; [ "Age"; "Height" ] ]
  in
  List.iteri
    (fun i row ->
      let cells = List.map A.Value.to_string row in
      let risks =
        List.map
          (fun (r : A.Value_risk.report) ->
            Frac.to_string (List.nth r.scores i).risk)
          reports
      in
      Mdp_prelude.Texttable.add_row table (cells @ risks))
    (A.Dataset.rows Healthcare.table1_released);
  Mdp_prelude.Texttable.add_row table
    ([ "Violations:"; ""; "" ]
    @ List.map
        (fun (r : A.Value_risk.report) -> string_of_int r.violations)
        reports);
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;

  section "Fig. 4: risk-transitions on the study LTS";
  let options =
    { Core.Generate.default_options with granular_reads = true }
  in
  let analysis =
    Core.Analysis.run ~options
      ~bindings:[ Healthcare.study_binding ]
      Healthcare.study_diagram Healthcare.study_policy
  in
  Format.printf "%s@."
    (Core.Lts_render.summary analysis.universe analysis.lts);
  List.iter
    (fun rt -> Format.printf "  %a@." Core.Pseudonym_risk.pp_risk_transition rt)
    analysis.pseudonym;

  section "Design-time gate (violations must stay below 50%)";
  (match Core.Pseudonym_risk.check ~max_violation_ratio:0.5 analysis.pseudonym with
  | Ok () -> Format.printf "accepted@."
  | Error msg -> Format.printf "REJECTED: %s@." msg);

  section "What saves it: l-diversity of the release";
  Format.printf "distinct l-diversity of Weight: %d (l >= 2 would remove the risk)@."
    (A.Ldiv.distinct Healthcare.table1_released ~sensitive:"Weight")
