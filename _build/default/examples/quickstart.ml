(* Quickstart: model a tiny photo-sharing service with the builder API,
   generate its privacy LTS, and run disclosure-risk analysis for one user.

     dune exec examples/quickstart.exe *)

open Mdp_dataflow
module Core = Mdp_core
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission

let () =
  (* 1. Describe the system: actors, datastores with schemas, and
        purpose-annotated data flows (paper §II-A). *)
  let b = Builder.create () in
  Builder.actor b "Moderator";
  Builder.actor b "AdsTeam";
  Builder.plain_store b "Photos"
    ~schemas:[ ("PhotoRecord", [ "Username"; "Photo"; "Location" ]) ];
  Builder.flow b ~service:"Sharing" ~src:"User" ~dst:"Moderator"
    [ "Username"; "Photo"; "Location" ];
  Builder.flow b ~service:"Sharing" ~src:"Moderator" ~dst:"Photos"
    [ "Username"; "Photo"; "Location" ];
  let diagram = Builder.build_exn b in

  (* 2. Attach the access-control policy. The AdsTeam read of Photos is
        nowhere in the Sharing service: a latent risk. *)
  let policy =
    Mdp_policy.Policy.make
      [
        Acl.allow (Acl.Actor_subject "Moderator") ~store:"Photos"
          [ Permission.Read; Permission.Write ];
        Acl.allow (Acl.Actor_subject "AdsTeam") ~store:"Photos"
          [ Permission.Read ];
      ]
  in

  (* 3. Profile the user: agreed to Sharing; Location is highly
        sensitive (paper §III-A). *)
  let profile =
    Core.User_profile.make
      ~sensitivities:[ (Field.make "Location", Core.User_profile.of_category `High) ]
      ~agreed_services:[ "Sharing" ] ()
  in

  (* 4. Generate the LTS and analyse. *)
  let analysis = Core.Analysis.run ~profile diagram policy in
  Format.printf "%a@.@." Core.Analysis.pp_summary analysis;

  (* 5. Inspect the worst finding and its witness path. *)
  match analysis.disclosure with
  | Some { findings = worst :: _; _ } ->
    Format.printf "Worst finding: %a@." Core.Disclosure_risk.pp_finding worst;
    Format.printf "Witness path from the initial state:@.";
    List.iter
      (fun action -> Format.printf "  %a@." Core.Action.pp action)
      worst.witness
  | Some { findings = []; _ } | None ->
    Format.printf "No disclosure risks found.@."
