(* Compliance audit: declarative privacy requirements checked against the
   generated LTS (the behaviour-vs-policy analysis of the paper's §V),
   plus a population-level sweep with questionnaire-derived profiles and
   a t-closeness check of the pseudonymised release.

     dune exec examples/compliance_audit.exe *)

open Mdp_scenario
module Core = Mdp_core
module A = Mdp_anon
module Field = Mdp_dataflow.Field

let section title = Format.printf "@.== %s ==@." title

let () =
  let u = Core.Universe.make Healthcare.diagram Healthcare.policy in
  let lts = Core.Generate.run u in
  ignore (Core.Disclosure_risk.analyse u lts Healthcare.profile_case_a);

  section "Requirements audit on the healthcare model";
  let requirements =
    [
      Core.Requirement.Never_identifies
        { actor = "Receptionist"; field = Healthcare.diagnosis };
      Core.Requirement.Never_identifies
        { actor = "Administrator"; field = Healthcare.diagnosis };
      Core.Requirement.Never_could_identify
        { actor = "Researcher"; field = Healthcare.diagnosis };
      Core.Requirement.Only_for_purposes
        {
          field = Healthcare.appointment;
          purposes = [ "schedule appointment"; "prepare consultation" ];
        };
      Core.Requirement.No_action_by
        { actor = "Researcher"; kind = Core.Action.Create };
      Core.Requirement.Max_disclosure_risk Core.Level.Low;
    ]
  in
  List.iter
    (fun req ->
      if Core.Requirement.holds u lts req then
        Format.printf "ok       %a@." Core.Requirement.pp req
      else Format.printf "VIOLATED %a@." Core.Requirement.pp req)
    requirements;
  (match
     Core.Requirement.check u lts
       [
         Core.Requirement.Never_identifies
           { actor = "Administrator"; field = Healthcare.diagnosis };
       ]
   with
  | [ v ] -> Format.printf "@.%a@." Core.Requirement.pp_violation v
  | _ -> ());

  section "Population sweep (questionnaire-derived profiles)";
  let spec =
    {
      Core.Population.seed = 2026;
      size = 200;
      westin_mix = Core.Population.default_mix;
      agree_probability = 0.6;
    }
  in
  let profiles = Core.Population.simulate spec Healthcare.diagram in
  let aggregate = Core.Population.analyse u lts profiles in
  Format.printf "%a@." Core.Population.pp_aggregate aggregate;

  section "Same population after the policy fix";
  let u' = Core.Universe.with_policy u Healthcare.fixed_policy in
  let lts' = Core.Generate.run u' in
  ignore lts;
  Format.printf "%a@." Core.Population.pp_aggregate
    (Core.Population.analyse u' lts' profiles);
  Format.printf
    "note: questionnaire baselines rate every field sensitive, so revoking@.\
     the single Diagnosis read barely moves the population aggregate --@.\
     unlike the single-user case study, where it was the only High field.@.";

  section "Pseudonymised release: diversity and closeness";
  let release = Healthcare.table1_released in
  Format.printf "distinct l-diversity of Weight: %d@."
    (A.Ldiv.distinct release ~sensitive:"Weight");
  (match A.Tcloseness.numeric_emd release ~sensitive:"Weight" with
  | Some emd ->
    Format.printf "worst-class EMD (t-closeness): %.3f -> %s@." emd
      (if A.Tcloseness.is_t_close ~t:0.25 release ~sensitive:"Weight" then
         "0.25-close"
       else "NOT 0.25-close: classes are skewed, value risk persists")
  | None -> ());
  Format.printf
    "conclusion: 2-anonymity alone leaves Table-I value risk; require \
     l >= 2 AND t-closeness before release.@."
