examples/live_reassessment.ml: Float Format Healthcare List Mdp_anon Mdp_core Mdp_dataflow Mdp_prelude Mdp_runtime Mdp_scenario Printf
