examples/quickstart.ml: Builder Field Format List Mdp_core Mdp_dataflow Mdp_policy
