examples/pseudonymisation_risk.mli:
