examples/compliance_audit.ml: Format Healthcare List Mdp_anon Mdp_core Mdp_dataflow Mdp_scenario
