examples/smart_home_monitoring.ml: Format List Mdp_core Mdp_runtime Mdp_scenario Option Smart_home
