examples/policy_iteration.ml: Format Healthcare Int List Mdp_core Mdp_dataflow Mdp_policy Mdp_prelude Mdp_scenario Option
