examples/live_reassessment.mli:
