examples/distributed_deployment.mli:
