examples/distributed_deployment.ml: Format Healthcare List Mdp_core Mdp_runtime Mdp_scenario String
