examples/policy_iteration.mli:
