examples/healthcare_disclosure.ml: Format Healthcare List Mdp_core Mdp_dataflow Mdp_policy Mdp_scenario Option String
