examples/smart_home_monitoring.mli:
