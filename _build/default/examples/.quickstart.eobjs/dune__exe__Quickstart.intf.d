examples/quickstart.mli:
