examples/compliance_audit.mli:
