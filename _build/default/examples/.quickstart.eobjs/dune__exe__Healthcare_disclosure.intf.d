examples/healthcare_disclosure.mli:
