examples/pseudonymisation_risk.ml: Format Healthcare List Mdp_anon Mdp_core Mdp_prelude Mdp_scenario
