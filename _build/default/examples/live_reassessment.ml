(* Live risk re-assessment (paper §III-B "Using Risk Scores"): the model
   applied to a *running* system. We populate the study datastore with
   synthetic patient records, let the Administrator pseudonymise them into
   the anonymised store, extract the release actually sitting there and
   recompute value risk from it — then iterate the paper's remedy
   ("consider increasing their k value") until the release gate accepts.

     dune exec examples/live_reassessment.exe *)

open Mdp_scenario
module Core = Mdp_core
module R = Mdp_runtime
module A = Mdp_anon
module Field = Mdp_dataflow.Field
module Prng = Mdp_prelude.Prng

let section title = Format.printf "@.== %s ==@." title

let patients = 120

let populate sim =
  let rng = Prng.create ~seed:99 in
  for i = 1 to patients do
    let height = Prng.range rng 150 199 in
    (* Taller people weigh more: quasi fields genuinely predict weight,
       so the release carries real value risk. *)
    let weight =
      Float.round
        (Prng.gaussian rng ~mean:(0.9 *. float_of_int height -. 80.0) ~stddev:6.0)
    in
    let record =
      [
        (Healthcare.name, A.Value.Str (Printf.sprintf "patient-%03d" i));
        (Healthcare.age, A.Value.Int (Prng.range rng 18 90));
        (Healthcare.height, A.Value.Int height);
        (Healthcare.weight, A.Value.Float weight);
      ]
    in
    match
      R.Store_sim.write sim ~actor:"Clinician" ~store:"StudyRecords"
        ~subject:(Printf.sprintf "subject-%03d" i)
        record
    with
    | Ok () -> ()
    | Error e -> failwith e
  done

let release_of sim ~age_width ~height_width =
  let h widths = A.Hierarchy.numeric ~widths () in
  let generalise =
    [
      (Healthcare.age, A.Hierarchy.generalise (h [ age_width ]) ~level:1);
      (Healthcare.height, A.Hierarchy.generalise (h [ height_width ]) ~level:1);
    ]
  in
  (match
     R.Store_sim.pseudonymise sim ~actor:"Administrator"
       ~from_store:"StudyRecords" ~to_store:"AnonStudy" ~generalise
   with
  | Ok n -> assert (n = patients)
  | Error e -> failwith e);
  match
    R.Store_sim.dataset sim ~store:"AnonStudy"
      ~kinds:
        [
          (Field.anon_of Healthcare.age, A.Attribute.Quasi);
          (Field.anon_of Healthcare.height, A.Attribute.Quasi);
          (Field.anon_of Healthcare.weight, A.Attribute.Sensitive);
        ]
  with
  | Ok ds -> ds
  | Error e -> failwith e

let gate raw =
  {
    (A.Release_gate.default ~k:5) with
    l = Some 2;
    max_violation_ratio = Some 0.2;
    value_policy = Some Healthcare.value_policy;
    max_mean_drift = Some 1.0;
  }
  |> fun criteria release -> A.Release_gate.evaluate ~original:raw ~release criteria

let () =
  let u = Core.Universe.make Healthcare.study_diagram Healthcare.study_policy in
  let sim = R.Store_sim.create ~seed:5 u in
  populate sim;
  Format.printf "%d live records in StudyRecords@."
    (List.length (R.Store_sim.subjects sim ~store:"StudyRecords"));

  (* The raw data for utility comparison. *)
  let raw =
    match
      R.Store_sim.dataset sim ~store:"StudyRecords"
        ~kinds:
          [
            (Healthcare.name, A.Attribute.Identifier);
            (Healthcare.age, A.Attribute.Quasi);
            (Healthcare.height, A.Attribute.Quasi);
            (Healthcare.weight, A.Attribute.Sensitive);
          ]
    with
    | Ok ds -> A.Dataset.drop_identifiers ds
    | Error e -> failwith e
  in
  let check = gate raw in

  (* Iterate the paper's remedy: coarsen the generalisation until the
     gate accepts. *)
  let attempts =
    [ (5.0, 5.0); (10.0, 10.0); (20.0, 20.0); (40.0, 50.0) ]
  in
  let rec iterate = function
    | [] -> Format.printf "@.no acceptable pseudonymisation found@."
    | (age_width, height_width) :: rest ->
      section
        (Printf.sprintf "Age bands of %.0f years, height bands of %.0f cm"
           age_width height_width);
      let release = release_of sim ~age_width ~height_width in
      Format.printf "live release: %d records, min class %d, distinct-l %d@."
        (A.Dataset.nrows release)
        (A.Kanon.min_class_size release)
        (A.Ldiv.distinct release ~sensitive:"Weight");
      let worst =
        List.fold_left
          (fun acc (r : A.Value_risk.report) -> max acc r.violations)
          0
          (A.Value_risk.sweep release Healthcare.value_policy)
      in
      Format.printf "worst-case value-risk violations: %d/%d@." worst patients;
      let verdict = check release in
      Format.printf "%a@." A.Release_gate.pp_verdict verdict;
      if not verdict.A.Release_gate.accepted then iterate rest
      else
        Format.printf
          "@.accepted: publish this release; re-run on every refresh of the \
           live data.@."
  in
  iterate attempts
