(* The paper's §IV-A case study end to end: the doctors'-surgery model
   (Fig. 1), a user who agreed to the Medical Service but not the Medical
   Research Service and is highly sensitive about Diagnosis, the Medium
   risk finding against the Administrator, and the policy change that
   reduces it to Low.

     dune exec examples/healthcare_disclosure.exe *)

open Mdp_scenario
module Core = Mdp_core

let section title = Format.printf "@.== %s ==@." title

let () =
  section "Fig. 1: the data-flow model";
  Format.printf "%a@." Mdp_dataflow.Diagram.pp Healthcare.diagram;

  section "Generated LTS (paper Fig. 3 covers the Medical Service alone)";
  let u = Core.Universe.make Healthcare.diagram Healthcare.policy in
  let fig3 =
    Core.Generate.run
      ~options:
        {
          Core.Generate.flow_only with
          services = Some [ Healthcare.medical_service ];
        }
      u
  in
  Format.printf "Medical Service only, flows only: %s@."
    (Core.Lts_render.summary u fig3);

  section "Risk analysis for the case-study user";
  Format.printf "profile: %a@." Core.User_profile.pp Healthcare.profile_case_a;
  let analysis =
    Core.Analysis.run ~profile:Healthcare.profile_case_a Healthcare.diagram
      Healthcare.policy
  in
  let report = Option.get analysis.disclosure in
  Format.printf "non-allowed actors: %s@."
    (String.concat ", " report.non_allowed);
  let level =
    Core.Disclosure_risk.level_for report ~actor:"Administrator" ~store:"EHR"
      ~field:Healthcare.diagnosis
  in
  Format.printf
    "Administrator read of EHR Diagnosis after Medical Service use: %a@."
    Core.Level.pp level;
  (match Core.Disclosure_risk.findings_for report ~actor:"Administrator" with
  | f :: _ ->
    Format.printf "witness:@.";
    List.iter (fun a -> Format.printf "  %a@." Core.Action.pp a) f.witness;
    Format.printf "  %a   <- the risky event@." Core.Action.pp f.action
  | [] -> ());

  section "Apply the policy fix and re-analyse";
  let removed, added =
    Mdp_policy.Policy.diff ~before:Healthcare.policy
      ~after:Healthcare.fixed_policy Healthcare.diagram
  in
  List.iter
    (fun (g : Mdp_policy.Policy.grant_tuple) ->
      Format.printf "revoked: %s %a %s.%s@." g.actor Mdp_policy.Permission.pp
        g.perm g.store
        (Mdp_dataflow.Field.name g.field))
    removed;
  assert (added = []);
  let analysis' =
    Core.Analysis.rerun_with_policy analysis Healthcare.fixed_policy
  in
  let report' = Option.get analysis'.disclosure in
  Format.printf "max risk level after fix: %a@."
    Core.Level.pp
    (Core.Disclosure_risk.max_level report');
  (match analysis'.consistency with
  | [] -> ()
  | gaps ->
    Format.printf
      "note: the fix leaves %d flow(s) the policy no longer permits in full:@."
      (List.length gaps);
    List.iter (fun g -> Format.printf "  %a@." Core.Consistency.pp_gap g) gaps)
