(* Design-loop automation: starting from the healthcare model, enumerate
   candidate single-revocation policy edits, re-run the analysis for each,
   and report the cheapest edit set that brings every finding to Low or
   better — the engineering workflow §IV-A sketches ("the access policies
   were changed accordingly"), made mechanical.

     dune exec examples/policy_iteration.exe *)

open Mdp_scenario
module Core = Mdp_core
module Policy = Mdp_policy.Policy
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission

(* Candidate edits: revoke one (actor, store, field) read at a time,
   drawn from the current findings. *)
let candidate_edits (report : Core.Disclosure_risk.report) =
  Mdp_prelude.Listx.dedup
    (List.concat_map
       (fun (f : Core.Disclosure_risk.finding) ->
         match f.action.Core.Action.store with
         | Some store ->
           List.map
             (fun field -> (f.action.Core.Action.actor, store, field))
             f.action.Core.Action.fields
         | None -> [])
       report.findings)

let apply_edit policy (actor, store, field) =
  Policy.revoke policy ~subject:(Acl.Actor_subject actor) ~store
    ~fields:[ field ] [ Permission.Read ]

let acceptable (report : Core.Disclosure_risk.report) =
  Core.Level.compare (Core.Disclosure_risk.max_level report) Core.Level.Low <= 0

let () =
  let analysis =
    Core.Analysis.run ~profile:Healthcare.profile_case_a Healthcare.diagram
      Healthcare.policy
  in
  let report = Option.get analysis.disclosure in
  Format.printf "initial max level: %a (%d findings)@."
    Core.Level.pp
    (Core.Disclosure_risk.max_level report)
    (List.length report.findings);

  (* Greedy loop: pick the single edit that lowers the worst level the
     most (fewest remaining findings as tie-break); repeat. *)
  let rec improve analysis applied =
    let report = Option.get analysis.Core.Analysis.disclosure in
    if acceptable report then (analysis, List.rev applied)
    else
      let candidates = candidate_edits report in
      let scored =
        List.map
          (fun edit ->
            let policy' =
              apply_edit (Core.Universe.policy analysis.universe) edit
            in
            let analysis' = Core.Analysis.rerun_with_policy analysis policy' in
            let report' = Option.get analysis'.Core.Analysis.disclosure in
            ( edit,
              analysis',
              ( Core.Disclosure_risk.max_level report',
                List.length report'.findings ) ))
          candidates
      in
      match
        List.sort
          (fun (_, _, (l1, n1)) (_, _, (l2, n2)) ->
            match Core.Level.compare l1 l2 with
            | 0 -> Int.compare n1 n2
            | c -> c)
          scored
      with
      | [] -> (analysis, List.rev applied)
      | (edit, analysis', _) :: _ -> improve analysis' (edit :: applied)
  in
  let final, edits = improve analysis [] in
  Format.printf "@.edits applied:@.";
  List.iter
    (fun (actor, store, field) ->
      Format.printf "  revoke %s read of %s.%s@." actor store
        (Mdp_dataflow.Field.name field))
    edits;
  let final_report = Option.get final.Core.Analysis.disclosure in
  Format.printf "@.final max level: %a (%d findings)@."
    Core.Level.pp
    (Core.Disclosure_risk.max_level final_report)
    (List.length final_report.findings);
  match final.consistency with
  | [] -> Format.printf "policy still permits every modelled flow@."
  | gaps ->
    Format.printf "flows needing redesign after the edits:@.";
    List.iter (fun g -> Format.printf "  %a@." Core.Consistency.pp_gap g) gaps
