(** Recursive-descent parser for the model-description language.

    {v
    # comments run to end of line
    actor Doctor roles [clinician]
    store EHR { schema HealthRecord { Name Diagnosis } }
    anonstore AnonEHR { schema AnonRecord { Diagnosis~anon } }
    service MedicalService {
      1: User -> Doctor [Name] "booking"
      2: Doctor -> EHR [Name Diagnosis] "record"
    }
    hierarchy operations > field-ops        # senior > junior
    allow actor:Doctor read write on EHR
    allow role:clinician read on EHR [Name]
    deny actor:Administrator read on EHR [Diagnosis]
    node surgery region UK                  # optional deployment
    place actor:Doctor on surgery
    place store:EHR on surgery
    v}

    Flow endpoints resolve like {!Mdp_dataflow.Builder}: the literal
    [User], a declared store id, or otherwise an actor id. A flow without
    a purpose string defaults to its service id. *)

type node_decl = { node : string; region : string }

type placement = {
  nodes : node_decl list;
  actor_nodes : (string * string) list;  (** actor id -> node id *)
  store_nodes : (string * string) list;
}

type model = {
  diagram : Mdp_dataflow.Diagram.t;
  policy : Mdp_policy.Policy.t;
  placement : placement option;
      (** Present when the file declares [node]/[place] stanzas. *)
}

val parse : string -> (model, string) result
(** Lexes, parses and validates. The error message carries a line
    number for syntax errors, or the diagram/policy validation
    messages. *)
