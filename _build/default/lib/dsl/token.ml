type t =
  | Ident of string
  | String of string
  | Int of int
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Arrow
  | Gt
  | Eof

type located = { token : t; line : int }

let pp ppf = function
  | Ident s -> Format.fprintf ppf "identifier %s" s
  | String s -> Format.fprintf ppf "string %S" s
  | Int i -> Format.fprintf ppf "integer %d" i
  | Lbrace -> Format.pp_print_string ppf "'{'"
  | Rbrace -> Format.pp_print_string ppf "'}'"
  | Lbracket -> Format.pp_print_string ppf "'['"
  | Rbracket -> Format.pp_print_string ppf "']'"
  | Colon -> Format.pp_print_string ppf "':'"
  | Arrow -> Format.pp_print_string ppf "'->'"
  | Gt -> Format.pp_print_string ppf "'>'"
  | Eof -> Format.pp_print_string ppf "end of input"

let equal = ( = )
