(** Tokens of the model-description language. *)

type t =
  | Ident of string  (** Bare word: keywords, names, field names. *)
  | String of string  (** Double-quoted. *)
  | Int of int
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Arrow  (** [->] *)
  | Gt  (** [>] (role hierarchy). *)
  | Eof

type located = { token : t; line : int }

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
