open Mdp_dataflow
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission

let fields_str fields = String.concat " " (List.map Field.name fields)

let node_str = function
  | Flow.User -> "User"
  | Flow.Actor a -> a
  | Flow.Store s -> s

let to_string { Parser.diagram; policy; placement } =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (a : Actor.t) ->
      match a.roles with
      | [] -> addf "actor %s\n" a.id
      | roles -> addf "actor %s roles [%s]\n" a.id (String.concat " " roles))
    diagram.Diagram.actors;
  addf "\n";
  List.iter
    (fun (d : Datastore.t) ->
      addf "%s %s {\n"
        (match d.kind with
        | Datastore.Plain -> "store"
        | Datastore.Anonymised -> "anonstore")
        d.id;
      List.iter
        (fun (s : Schema.t) ->
          addf "  schema %s { %s }\n" s.id (fields_str s.fields))
        d.schemas;
      addf "}\n")
    diagram.Diagram.datastores;
  addf "\n";
  List.iter
    (fun (s : Service.t) ->
      addf "service %s {\n" s.id;
      List.iter
        (fun (f : Flow.t) ->
          addf "  %d: %s -> %s [%s] %S\n" f.order (node_str f.src)
            (node_str f.dst) (fields_str f.fields) f.purpose)
        s.flows;
      addf "}\n")
    diagram.Diagram.services;
  addf "\n";
  List.iter
    (fun (senior, junior) -> addf "hierarchy %s > %s\n" senior junior)
    (Mdp_policy.Rbac.hierarchy policy.Mdp_policy.Policy.rbac);
  List.iter
    (fun (e : Acl.entry) ->
      let effect_ = match e.effect_ with Acl.Allow -> "allow" | Acl.Deny -> "deny" in
      let subject =
        match e.subject with
        | Acl.Actor_subject a -> "actor:" ^ a
        | Acl.Role_subject r -> "role:" ^ r
      in
      let perms =
        String.concat " " (List.map Permission.to_string e.perms)
      in
      let fields =
        match e.selector with
        | Acl.All_fields -> ""
        | Acl.Fields fs -> Printf.sprintf " [%s]" (fields_str fs)
      in
      addf "%s %s %s on %s%s\n" effect_ subject perms e.store fields)
    policy.Mdp_policy.Policy.entries;
  (match placement with
  | None -> ()
  | Some (p : Parser.placement) ->
    addf "\n";
    List.iter
      (fun (n : Parser.node_decl) -> addf "node %s region %s\n" n.node n.region)
      p.nodes;
    List.iter
      (fun (a, node) -> addf "place actor:%s on %s\n" a node)
      p.actor_nodes;
    List.iter
      (fun (st, node) -> addf "place store:%s on %s\n" st node)
      p.store_nodes);
  Buffer.contents buf

let pp ppf m = Format.pp_print_string ppf (to_string m)
