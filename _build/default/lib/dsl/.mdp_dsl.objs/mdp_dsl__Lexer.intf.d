lib/dsl/lexer.mli: Token
