lib/dsl/lexer.ml: Buffer List Printf String Token
