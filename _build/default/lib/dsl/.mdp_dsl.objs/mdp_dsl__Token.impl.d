lib/dsl/token.ml: Format
