lib/dsl/token.mli: Format
