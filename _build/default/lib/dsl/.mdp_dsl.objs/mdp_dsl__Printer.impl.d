lib/dsl/printer.ml: Actor Buffer Datastore Diagram Field Flow Format List Mdp_dataflow Mdp_policy Parser Printf Schema Service String
