lib/dsl/parser.mli: Mdp_dataflow Mdp_policy
