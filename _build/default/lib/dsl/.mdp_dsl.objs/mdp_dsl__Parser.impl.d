lib/dsl/parser.ml: Array Builder Diagram Field Format Lexer List Mdp_dataflow Mdp_policy Printf String Token
