lib/dsl/printer.mli: Format Parser
