(** Hand-written lexer. [#] starts a comment to end of line. Identifiers
    may contain letters, digits, [_], [-], [~] and [.] (so field names
    like [Weight~anon] are single tokens). *)

val tokenize : string -> (Token.located list, string) result
(** The result always ends with an [Eof] token. Errors carry a line
    number. *)
