(** Render a diagram + policy back into the model-description language.
    [Parser.parse (Printer.to_string m)] reproduces the model (the
    round-trip property the test suite checks). *)

val to_string : Parser.model -> string
val pp : Format.formatter -> Parser.model -> unit
