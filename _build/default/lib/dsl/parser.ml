open Mdp_dataflow
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission

type node_decl = { node : string; region : string }

type placement = {
  nodes : node_decl list;
  actor_nodes : (string * string) list;
  store_nodes : (string * string) list;
}

type model = {
  diagram : Mdp_dataflow.Diagram.t;
  policy : Mdp_policy.Policy.t;
  placement : placement option;
}

exception Syntax of string

type state = {
  tokens : Token.located array;
  mutable pos : int;
  builder : Builder.t;
  mutable rev_hierarchy : (string * string) list;
  mutable rev_entries : Acl.entry list;
  mutable rev_nodes : node_decl list;
  mutable rev_actor_nodes : (string * string) list;
  mutable rev_store_nodes : (string * string) list;
}

let peek st = st.tokens.(st.pos).Token.token
let line st = st.tokens.(st.pos).Token.line
let advance st = st.pos <- st.pos + 1

let fail st fmt =
  Printf.ksprintf (fun msg -> raise (Syntax (Printf.sprintf "line %d: %s" (line st) msg))) fmt

let expect st token =
  if Token.equal (peek st) token then advance st
  else
    fail st "expected %s but found %s"
      (Format.asprintf "%a" Token.pp token)
      (Format.asprintf "%a" Token.pp (peek st))

let ident st =
  match peek st with
  | Token.Ident s ->
    advance st;
    s
  | t -> fail st "expected an identifier, found %s" (Format.asprintf "%a" Token.pp t)

let keyword st kw =
  match peek st with
  | Token.Ident s when s = kw -> advance st
  | t -> fail st "expected %s, found %s" kw (Format.asprintf "%a" Token.pp t)

let bracketed_idents st =
  expect st Token.Lbracket;
  let rec go acc =
    match peek st with
    | Token.Rbracket ->
      advance st;
      List.rev acc
    | Token.Ident s ->
      advance st;
      go (s :: acc)
    | t -> fail st "expected a name or ']', found %s" (Format.asprintf "%a" Token.pp t)
  in
  go []

let parse_actor st =
  keyword st "actor";
  let id = ident st in
  let roles =
    match peek st with
    | Token.Ident "roles" ->
      advance st;
      bracketed_idents st
    | _ -> []
  in
  Builder.actor st.builder ~roles id

let parse_schemas st =
  expect st Token.Lbrace;
  let rec schemas acc =
    match peek st with
    | Token.Rbrace ->
      advance st;
      List.rev acc
    | Token.Ident "schema" ->
      advance st;
      let id = ident st in
      expect st Token.Lbrace;
      let rec fields acc =
        match peek st with
        | Token.Rbrace ->
          advance st;
          List.rev acc
        | Token.Ident f ->
          advance st;
          fields (f :: acc)
        | t -> fail st "expected a field or '}', found %s" (Format.asprintf "%a" Token.pp t)
      in
      schemas ((id, fields []) :: acc)
    | t -> fail st "expected 'schema' or '}', found %s" (Format.asprintf "%a" Token.pp t)
  in
  schemas []

let parse_store st ~anonymised =
  keyword st (if anonymised then "anonstore" else "store");
  let id = ident st in
  let schemas = parse_schemas st in
  if anonymised then Builder.anon_store st.builder id ~schemas
  else Builder.plain_store st.builder id ~schemas

let parse_service st =
  keyword st "service";
  let service = ident st in
  expect st Token.Lbrace;
  let rec flows () =
    match peek st with
    | Token.Rbrace -> advance st
    | Token.Int order ->
      advance st;
      expect st Token.Colon;
      let src = ident st in
      expect st Token.Arrow;
      let dst = ident st in
      let fields = bracketed_idents st in
      let purpose =
        match peek st with
        | Token.String s ->
          advance st;
          Some s
        | _ -> None
      in
      Builder.flow st.builder ~service ~order ?purpose ~src ~dst fields;
      flows ()
    | t ->
      fail st "expected a flow (order: src -> dst [fields]) or '}', found %s"
        (Format.asprintf "%a" Token.pp t)
  in
  flows ()

let parse_node st =
  keyword st "node";
  let node = ident st in
  keyword st "region";
  let region = ident st in
  if List.exists (fun n -> n.node = node) st.rev_nodes then
    fail st "duplicate node %s" node;
  st.rev_nodes <- { node; region } :: st.rev_nodes

let parse_place st =
  keyword st "place";
  let kind = ident st in
  expect st Token.Colon;
  let id = ident st in
  keyword st "on";
  let node = ident st in
  if not (List.exists (fun n -> n.node = node) st.rev_nodes) then
    fail st "placement on undeclared node %s" node;
  match kind with
  | "actor" -> st.rev_actor_nodes <- (id, node) :: st.rev_actor_nodes
  | "store" -> st.rev_store_nodes <- (id, node) :: st.rev_store_nodes
  | k -> fail st "expected place actor:<id> or store:<id>, found %s" k

let parse_hierarchy st =
  keyword st "hierarchy";
  let senior = ident st in
  expect st Token.Gt;
  let junior = ident st in
  st.rev_hierarchy <- (senior, junior) :: st.rev_hierarchy

let parse_acl st ~allow =
  keyword st (if allow then "allow" else "deny");
  let subject =
    match ident st with
    | "actor" ->
      expect st Token.Colon;
      Acl.Actor_subject (ident st)
    | "role" ->
      expect st Token.Colon;
      Acl.Role_subject (ident st)
    | s -> fail st "expected subject actor:<id> or role:<id>, found %s" s
  in
  let rec perms acc =
    match peek st with
    | Token.Ident "on" ->
      advance st;
      List.rev acc
    | Token.Ident p -> (
      match Permission.of_string p with
      | Some perm ->
        advance st;
        perms (perm :: acc)
      | None -> fail st "unknown permission %s" p)
    | t -> fail st "expected a permission or 'on', found %s" (Format.asprintf "%a" Token.pp t)
  in
  let perms = perms [] in
  if perms = [] then fail st "access rule grants no permissions";
  let store = ident st in
  let fields =
    match peek st with
    | Token.Lbracket -> Some (List.map Field.of_name (bracketed_idents st))
    | _ -> None
  in
  let make = if allow then Acl.allow else Acl.deny in
  st.rev_entries <- make subject ~store ?fields perms :: st.rev_entries

let parse_items st =
  let rec go () =
    match peek st with
    | Token.Eof -> ()
    | Token.Ident "actor" ->
      parse_actor st;
      go ()
    | Token.Ident "store" ->
      parse_store st ~anonymised:false;
      go ()
    | Token.Ident "anonstore" ->
      parse_store st ~anonymised:true;
      go ()
    | Token.Ident "service" ->
      parse_service st;
      go ()
    | Token.Ident "hierarchy" ->
      parse_hierarchy st;
      go ()
    | Token.Ident "node" ->
      parse_node st;
      go ()
    | Token.Ident "place" ->
      parse_place st;
      go ()
    | Token.Ident "allow" ->
      parse_acl st ~allow:true;
      go ()
    | Token.Ident "deny" ->
      parse_acl st ~allow:false;
      go ()
    | t ->
      fail st
        "expected actor/store/anonstore/service/hierarchy/allow/deny/node/place, found %s"
        (Format.asprintf "%a" Token.pp t)
  in
  go ()

let parse input =
  match Lexer.tokenize input with
  | Error e -> Error e
  | Ok tokens -> (
    let st =
      {
        tokens = Array.of_list tokens;
        pos = 0;
        builder = Builder.create ();
        rev_hierarchy = [];
        rev_entries = [];
        rev_nodes = [];
        rev_actor_nodes = [];
        rev_store_nodes = [];
      }
    in
    match parse_items st with
    | exception Syntax msg -> Error msg
    | exception Invalid_argument msg -> Error msg
    | () -> (
      match Builder.build st.builder with
      | Error msgs -> Error (String.concat "\n" msgs)
      | Ok diagram -> (
        match
          Mdp_policy.Rbac.create ~hierarchy:(List.rev st.rev_hierarchy) ()
        with
        | exception Invalid_argument msg -> Error msg
        | rbac -> (
          let policy =
            Mdp_policy.Policy.make ~rbac (List.rev st.rev_entries)
          in
          match Mdp_policy.Policy.validate policy diagram with
          | Error msgs -> Error (String.concat "\n" msgs)
          | Ok () -> (
            let placement =
              match
                (st.rev_nodes, st.rev_actor_nodes, st.rev_store_nodes)
              with
              | [], [], [] -> None
              | nodes, actors, stores ->
                Some
                  {
                    nodes = List.rev nodes;
                    actor_nodes = List.rev actors;
                    store_nodes = List.rev stores;
                  }
            in
            (* Placements must reference diagram elements. *)
            let bad =
              match placement with
              | None -> []
              | Some p ->
                List.filter_map
                  (fun (a, _) ->
                    if Diagram.find_actor diagram a = None then
                      Some (Printf.sprintf "placed actor %s is not in the model" a)
                    else None)
                  p.actor_nodes
                @ List.filter_map
                    (fun (s, _) ->
                      if Diagram.find_store diagram s = None then
                        Some
                          (Printf.sprintf "placed datastore %s is not in the model" s)
                      else None)
                    p.store_nodes
            in
            match bad with
            | [] -> Ok { diagram; policy; placement }
            | msgs -> Error (String.concat "\n" msgs))))))
