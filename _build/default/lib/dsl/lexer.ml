let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '~' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let line = ref 1 in
  let rev_tokens = ref [] in
  let push token = rev_tokens := Token.{ token; line = !line } :: !rev_tokens in
  let rec go i =
    if i >= n then Ok ()
    else
      match input.[i] with
      | '\n' ->
        incr line;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '#' ->
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      | '{' -> push Token.Lbrace; go (i + 1)
      | '}' -> push Token.Rbrace; go (i + 1)
      | '[' -> push Token.Lbracket; go (i + 1)
      | ']' -> push Token.Rbracket; go (i + 1)
      | ':' -> push Token.Colon; go (i + 1)
      | '>' -> push Token.Gt; go (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '>' ->
        push Token.Arrow;
        go (i + 2)
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then Error (Printf.sprintf "line %d: unterminated string" !line)
          else
            match input.[j] with
            | '"' ->
              push (Token.String (Buffer.contents buf));
              go (j + 1)
            | '\n' -> Error (Printf.sprintf "line %d: newline in string" !line)
            | '\\' when j + 1 < n && input.[j + 1] = '"' ->
              Buffer.add_char buf '"';
              str (j + 2)
            | c ->
              Buffer.add_char buf c;
              str (j + 1)
        in
        str (i + 1)
      | c when is_digit c ->
        let rec num j = if j < n && is_digit input.[j] then num (j + 1) else j in
        let stop = num i in
        (* A digit-led word containing letters is an identifier, not a
           number followed by garbage. *)
        if stop < n && is_ident_char input.[stop] then begin
          let rec word j = if j < n && is_ident_char input.[j] then word (j + 1) else j in
          let stop = word stop in
          push (Token.Ident (String.sub input i (stop - i)));
          go stop
        end
        else begin
          push (Token.Int (int_of_string (String.sub input i (stop - i))));
          go stop
        end
      | c when is_ident_char c ->
        let rec word j = if j < n && is_ident_char input.[j] then word (j + 1) else j in
        let stop = word i in
        push (Token.Ident (String.sub input i (stop - i)));
        go stop
      | c -> Error (Printf.sprintf "line %d: unexpected character %C" !line c)
  in
  match go 0 with
  | Error e -> Error e
  | Ok () ->
    push Token.Eof;
    Ok (List.rev !rev_tokens)
