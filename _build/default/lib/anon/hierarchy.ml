type t =
  | Numeric of { base : float; widths : float list }
  | Categorical of { levels : (string * string) list list }
  | Suppress_only

let numeric ?(base = 0.0) ~widths () =
  if widths = [] then invalid_arg "Hierarchy.numeric: no widths";
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  if List.exists (fun w -> w <= 0.0) widths then
    invalid_arg "Hierarchy.numeric: non-positive width";
  if not (increasing widths) then
    invalid_arg "Hierarchy.numeric: widths must be strictly increasing";
  Numeric { base; widths }

let categorical ~levels =
  if levels = [] then invalid_arg "Hierarchy.categorical: no levels";
  Categorical { levels }

let suppress_only = Suppress_only

let nlevels = function
  | Numeric { widths; _ } -> 1 + List.length widths
  | Categorical { levels } -> 1 + List.length levels
  | Suppress_only -> 1

let bin ~base ~width x =
  let k = Float.floor ((x -. base) /. width) in
  let lo = base +. (k *. width) in
  Value.interval lo (lo +. width)

let generalise t ~level v =
  let top = nlevels t in
  if level < 0 || level > top then invalid_arg "Hierarchy.generalise: bad level";
  if level = 0 then v
  else if level = top then Value.Suppressed
  else
    match t with
    | Suppress_only -> Value.Suppressed (* unreachable: top = 1 *)
    | Numeric { base; widths } -> (
      match Value.numeric v with
      | Some x -> bin ~base ~width:(List.nth widths (level - 1)) x
      | None -> Value.Suppressed)
    | Categorical { levels } -> (
      let rec climb lvl v =
        if lvl = 0 then Some v
        else
          match climb (lvl - 1) v with
          | None -> None
          | Some s -> List.assoc_opt s (List.nth levels (lvl - 1))
      in
      match v with
      | Value.Str s -> (
        match climb level s with
        | Some s' -> Value.Str s'
        | None -> Value.Suppressed)
      | Value.Int _ | Value.Float _ | Value.Interval _ | Value.Str_set _
      | Value.Suppressed ->
        Value.Suppressed)
