let distribution values =
  (* value (by printed form) -> probability, plus the ordered support *)
  let n = float_of_int (List.length values) in
  let groups = Mdp_prelude.Listx.group_by ~key:Fun.id values in
  List.map (fun (v, occ) -> (v, float_of_int (List.length occ) /. n)) groups

let column_strings ds sensitive rows =
  let col = Dataset.col_index ds sensitive in
  List.map (fun r -> Value.to_string (Dataset.get ds ~row:r ~col)) rows

let numeric_column ds sensitive rows =
  let col = Dataset.col_index ds sensitive in
  let vs =
    List.filter_map (fun r -> Value.numeric (Dataset.get ds ~row:r ~col)) rows
  in
  if List.length vs = List.length rows then Some vs else None

let all_rows ds = List.init (Dataset.nrows ds) Fun.id

(* Ordered-distance EMD between a class distribution and the global one:
   with the global support v_1 < ... < v_m, EMD = (sum over prefixes of
   |cumulative (p - q)|) / (m - 1). *)
let ordered_emd ~support ~global ~cls =
  let m = List.length support in
  if m <= 1 then 0.0
  else begin
    let prob dist v = Option.value (List.assoc_opt v dist) ~default:0.0 in
    let cumulative = ref 0.0 and total = ref 0.0 in
    List.iter
      (fun v ->
        cumulative := !cumulative +. prob cls v -. prob global v;
        total := !total +. Float.abs !cumulative)
      support;
    !total /. float_of_int (m - 1)
  end

let numeric_emd ds ~sensitive =
  if Dataset.nrows ds = 0 then None
  else
    match numeric_column ds sensitive (all_rows ds) with
    | None -> None
    | Some all ->
      let support = List.sort_uniq Float.compare all in
      let dist vs =
        distribution vs
      in
      let global = dist all in
      let worst =
        List.fold_left
          (fun acc cls_rows ->
            match numeric_column ds sensitive cls_rows with
            | Some vs -> Float.max acc (ordered_emd ~support ~global ~cls:(dist vs))
            | None -> acc)
          0.0 (Kanon.classes ds)
      in
      Some worst

let categorical_distance ds ~sensitive =
  if Dataset.nrows ds = 0 then None
  else begin
    let global = distribution (column_strings ds sensitive (all_rows ds)) in
    let support = List.map fst global in
    let worst =
      List.fold_left
        (fun acc cls_rows ->
          let cls = distribution (column_strings ds sensitive cls_rows) in
          let prob dist v = Option.value (List.assoc_opt v dist) ~default:0.0 in
          let tv =
            0.5
            *. Mdp_prelude.Listx.sum_byf
                 (fun v -> Float.abs (prob cls v -. prob global v))
                 support
          in
          Float.max acc tv)
        0.0 (Kanon.classes ds)
    in
    Some worst
  end

let is_t_close ~t ds ~sensitive =
  if Dataset.nrows ds = 0 then true
  else
    match numeric_emd ds ~sensitive with
    | Some d -> d <= t
    | None -> (
      match categorical_distance ds ~sensitive with
      | Some d -> d <= t
      | None -> true)
