lib/anon/value.ml: Float Format List Printf String
