lib/anon/release_gate.mli: Dataset Format Value_risk
