lib/anon/mondrian.ml: Dataset Float Fun Hashtbl List Printf Result Value
