lib/anon/ldiv.mli: Dataset
