lib/anon/mondrian.mli: Dataset
