lib/anon/csv.ml: Attribute Buffer Dataset List Option Printf String Value
