lib/anon/dataset.mli: Attribute Format Value
