lib/anon/reident.ml: Attribute Dataset Float Fun Kanon List Mdp_prelude Value
