lib/anon/attribute.ml: Format
