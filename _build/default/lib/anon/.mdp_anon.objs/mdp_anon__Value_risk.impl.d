lib/anon/value_risk.ml: Array Attribute Dataset Format Frac Int List Listx Mdp_prelude Option String Value
