lib/anon/utility.mli: Dataset Kanon
