lib/anon/dataset.ml: Array Attribute List Listx Mdp_prelude Printf String Texttable Value
