lib/anon/tcloseness.mli: Dataset
