lib/anon/tcloseness.ml: Dataset Float Fun Kanon List Mdp_prelude Option Value
