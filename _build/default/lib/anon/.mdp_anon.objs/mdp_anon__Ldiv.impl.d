lib/anon/ldiv.ml: Dataset Float Fun Kanon List Mdp_prelude Value
