lib/anon/utility.ml: Dataset Float Hierarchy Kanon List Mdp_prelude Option Value
