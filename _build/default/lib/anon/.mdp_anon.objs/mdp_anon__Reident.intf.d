lib/anon/reident.mli: Dataset
