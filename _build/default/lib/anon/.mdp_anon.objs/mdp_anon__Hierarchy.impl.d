lib/anon/hierarchy.ml: Float List Value
