lib/anon/csv.mli: Attribute Dataset
