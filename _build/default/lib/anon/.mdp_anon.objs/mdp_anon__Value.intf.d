lib/anon/value.mli: Format
