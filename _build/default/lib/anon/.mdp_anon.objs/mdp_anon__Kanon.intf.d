lib/anon/kanon.mli: Dataset Hierarchy
