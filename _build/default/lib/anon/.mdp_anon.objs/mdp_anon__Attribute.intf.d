lib/anon/attribute.mli: Format
