lib/anon/kanon.ml: Dataset Float Fun Hierarchy Int List Mdp_prelude Value
