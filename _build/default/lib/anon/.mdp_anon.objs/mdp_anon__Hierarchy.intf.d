lib/anon/hierarchy.mli: Value
