lib/anon/release_gate.ml: Attribute Dataset Format Kanon Ldiv List Option Printf String Tcloseness Utility Value_risk
