lib/anon/value_risk.mli: Dataset Format Mdp_prelude
