(** l-diversity (Machanavajjhala et al. 2006, paper ref [6]).

    k-anonymity bounds re-identification but not attribute disclosure: a
    class whose sensitive values all (nearly) agree still leaks them — the
    exact weakness the paper's value risk (§III-B) measures. l-diversity
    requires diverse sensitive values per class; it removes the paper's
    Table-I style value risk when satisfied (paper: "the above is a risk
    of k-anonymization that is removed when l-diversity is considered"). *)

val distinct : Dataset.t -> sensitive:string -> int
(** The largest l such that every equivalence class (on the quasi columns)
    has at least l distinct values of [sensitive]; 0 on an empty
    dataset. *)

val is_distinct_diverse : l:int -> Dataset.t -> sensitive:string -> bool

val entropy : Dataset.t -> sensitive:string -> float
(** The largest l such that every class has sensitive-value entropy of at
    least log l (entropy l-diversity); returned as that l (1.0 when some
    class is constant). *)

val is_entropy_diverse : l:float -> Dataset.t -> sensitive:string -> bool
