let prosecutor ds =
  match Kanon.min_class_size ds with
  | 0 -> 0.0
  | m -> 1.0 /. float_of_int m

let journalist ~release ~population =
  let rel_quasi = Dataset.quasi_indices release in
  (* Population columns are looked up by the release's quasi attribute
     names so the two tables may order columns differently. *)
  let rel_attrs = Dataset.attrs release in
  let pop_cols =
    List.map
      (fun c -> Dataset.col_index population (List.nth rel_attrs c).Attribute.name)
      rel_quasi
  in
  let classes = Kanon.classes release in
  let match_count cls_repr =
    let gen_cells =
      List.map (fun c -> Dataset.get release ~row:cls_repr ~col:c) rel_quasi
    in
    Mdp_prelude.Listx.count
      (fun prow ->
        List.for_all2
          (fun gen pc -> Value.covers gen (Dataset.get population ~row:prow ~col:pc))
          gen_cells pop_cols)
      (List.init (Dataset.nrows population) Fun.id)
  in
  let rec worst acc = function
    | [] -> Some acc
    | cls :: rest -> (
      match cls with
      | [] -> worst acc rest
      | repr :: _ -> (
        match match_count repr with
        | 0 -> None
        | n -> worst (Float.max acc (1.0 /. float_of_int n)) rest))
  in
  worst 0.0 classes

let marketer ds =
  match Dataset.nrows ds with
  | 0 -> 0.0
  | n -> float_of_int (List.length (Kanon.classes ds)) /. float_of_int n
