type criteria = {
  k : int;
  l : int option;
  t : float option;
  max_violation_ratio : float option;
  value_policy : Value_risk.policy option;
  max_mean_drift : float option;
}

let default ~k =
  {
    k;
    l = None;
    t = None;
    max_violation_ratio = None;
    value_policy = None;
    max_mean_drift = None;
  }

type verdict = { accepted : bool; failures : string list }

let sensitive_names ds =
  List.filter_map
    (fun (a : Attribute.t) -> if Attribute.is_sensitive a then Some a.name else None)
    (Dataset.attrs ds)

let evaluate ~original ~release criteria =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if not (Kanon.is_k_anonymous ~k:criteria.k release) then
    fail "not %d-anonymous (min class size %d)" criteria.k
      (Kanon.min_class_size release);
  let sensitive = sensitive_names release in
  Option.iter
    (fun l ->
      List.iter
        (fun attr ->
          let actual = Ldiv.distinct release ~sensitive:attr in
          if actual < l then
            fail "%s: distinct l-diversity %d below %d" attr actual l)
        sensitive)
    criteria.l;
  Option.iter
    (fun t ->
      List.iter
        (fun attr ->
          if not (Tcloseness.is_t_close ~t release ~sensitive:attr) then
            fail "%s: not %.2f-close" attr t)
        sensitive)
    criteria.t;
  (match (criteria.max_violation_ratio, criteria.value_policy) with
  | Some ratio, Some policy ->
    let n = Dataset.nrows release in
    if n > 0 then
      List.iter
        (fun (report : Value_risk.report) ->
          let r = float_of_int report.violations /. float_of_int n in
          if r > ratio then
            fail
              "value risk: %d/%d violations (%.0f%%) when {%s} is read \
               exceeds %.0f%%"
              report.violations n (100.0 *. r)
              (String.concat ", " report.fields_read)
              (100.0 *. ratio))
        (Value_risk.sweep release policy)
  | Some _, None ->
    fail "criteria list a violation ratio but no value policy"
  | None, _ -> ());
  Option.iter
    (fun max_drift ->
      List.iter
        (fun attr ->
          match Utility.mean_drift ~original ~release attr with
          | Some d when d > max_drift ->
            fail "%s: mean drift %.2f exceeds %.2f" attr d max_drift
          | Some _ | None -> ())
        sensitive)
    criteria.max_mean_drift;
  let failures = List.rev !failures in
  { accepted = failures = []; failures }

let pp_verdict ppf v =
  if v.accepted then Format.pp_print_string ppf "release accepted"
  else
    Format.fprintf ppf "@[<v>release REJECTED:@,%a@]"
      (Format.pp_print_list
         ~pp_sep:Format.pp_print_cut
         (fun ppf m -> Format.fprintf ppf "  - %s" m))
      v.failures
