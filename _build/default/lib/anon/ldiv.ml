let class_values ds ~sensitive cls =
  let col = Dataset.col_index ds sensitive in
  List.map (fun r -> Value.to_string (Dataset.get ds ~row:r ~col)) cls

let distinct ds ~sensitive =
  match Kanon.classes ds with
  | [] -> 0
  | cs ->
    List.fold_left
      (fun acc cls ->
        min acc
          (List.length (Mdp_prelude.Listx.dedup (class_values ds ~sensitive cls))))
      max_int cs

let is_distinct_diverse ~l ds ~sensitive = distinct ds ~sensitive >= l

let class_entropy values =
  let n = float_of_int (List.length values) in
  let groups = Mdp_prelude.Listx.group_by ~key:Fun.id values in
  -.List.fold_left
      (fun acc (_, occ) ->
        let p = float_of_int (List.length occ) /. n in
        acc +. (p *. log p))
      0.0 groups

let entropy ds ~sensitive =
  match Kanon.classes ds with
  | [] -> 0.0
  | cs ->
    let min_entropy =
      List.fold_left
        (fun acc cls -> Float.min acc (class_entropy (class_values ds ~sensitive cls)))
        Float.infinity cs
    in
    exp min_entropy

let is_entropy_diverse ~l ds ~sensitive =
  l <= 1.0 || entropy ds ~sensitive >= l
