(** Utility of a pseudonymised release (paper §III-B: "comparing
    statistical qualities like means and variances between the original
    data and the pseudonymised data", plus the standard generalisation
    metrics used by the tools the paper cites). Interval cells contribute
    their midpoint; suppressed and non-numeric cells are skipped. *)

val mean : Dataset.t -> string -> float option
(** [None] when the column has no numeric content. *)

val variance : Dataset.t -> string -> float option
(** Population variance. *)

val mean_drift : original:Dataset.t -> release:Dataset.t -> string -> float option
(** Absolute difference of means. *)

val variance_drift :
  original:Dataset.t -> release:Dataset.t -> string -> float option

val precision : scheme:Kanon.scheme -> levels:Kanon.levels -> float
(** Sweeney's Prec: 1 - average (level / height) over the scheme's
    attributes; 1.0 means untouched, 0.0 fully suppressed. *)

val discernibility : Dataset.t -> int
(** Discernibility metric: sum over equivalence classes of |class|²
    (lower is better; n² means one big class). *)

val avg_class_size : Dataset.t -> float
