(** Generalisation hierarchies for quasi-identifiers.

    A hierarchy gives, per generalisation level, a coarsening of raw
    values. Level 0 is the identity; the level after the last defined one
    is full suppression. Numeric hierarchies bin values into aligned
    intervals of increasing width; categorical hierarchies map categories
    up a fixed tree level by level. *)

type t

val numeric : ?base:float -> widths:float list -> unit -> t
(** [numeric ~widths:[5.; 20.] ()]: level 1 bins into width-5 intervals
    aligned at [base] (default 0), level 2 into width-20 intervals,
    level 3 suppresses. Widths must be positive and strictly
    increasing. *)

val categorical : levels:(string * string) list list -> t
(** [levels] is one association list per level, mapping a value at the
    previous level to its generalisation at this level. Values missing
    from a mapping are suppressed at that level. *)

val suppress_only : t
(** Only levels 0 (identity) and 1 (suppression). *)

val nlevels : t -> int
(** Number of levels including level 0 and excluding the implicit
    suppression level; [generalise] accepts levels in
    [0, nlevels t] (the top one suppressing). *)

val generalise : t -> level:int -> Value.t -> Value.t
(** @raise Invalid_argument on a level outside [0, nlevels]. Values the
    hierarchy cannot coarsen at the requested level (e.g. a string under
    a numeric hierarchy) become [Suppressed]. *)
