(** Minimal CSV bridge for datasets: comma-separated, first line is the
    header, no quoting (values containing commas are out of scope — the
    microdata this library handles is numeric and categorical codes).
    Cells parse as [Int], then [Float], then ranges like [20-30] as
    [Interval], [*] as [Suppressed], and otherwise [Str]. *)

val parse :
  kinds:(string * Attribute.kind) list -> string -> (Dataset.t, string) result
(** [kinds] assigns attribute kinds by header name; unlisted columns are
    [Insensitive]. *)

val render : Dataset.t -> string
(** Header + rows; inverse of {!parse} up to cell formatting. *)
