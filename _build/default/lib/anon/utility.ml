let numeric_column ds name =
  List.filter_map Value.midpoint (Dataset.column ds name)

let mean ds name =
  match numeric_column ds name with
  | [] -> None
  | vs -> Some (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))

let variance ds name =
  match numeric_column ds name with
  | [] -> None
  | vs ->
    let n = float_of_int (List.length vs) in
    let m = List.fold_left ( +. ) 0.0 vs /. n in
    Some (List.fold_left (fun acc v -> acc +. ((v -. m) ** 2.0)) 0.0 vs /. n)

let drift f ~original ~release name =
  match (f original name, f release name) with
  | Some a, Some b -> Some (Float.abs (a -. b))
  | None, _ | _, None -> None

let mean_drift ~original ~release name = drift mean ~original ~release name

let variance_drift ~original ~release name =
  drift variance ~original ~release name

let precision ~scheme ~levels =
  match scheme with
  | [] -> 1.0
  | _ ->
    let per_attr =
      List.map
        (fun (attr, hier) ->
          let level = Option.value (List.assoc_opt attr levels) ~default:0 in
          float_of_int level /. float_of_int (Hierarchy.nlevels hier))
        scheme
    in
    1.0
    -. (List.fold_left ( +. ) 0.0 per_attr /. float_of_int (List.length per_attr))

let discernibility ds =
  Mdp_prelude.Listx.sum_by
    (fun cls ->
      let s = List.length cls in
      s * s)
    (Kanon.classes ds)

let avg_class_size ds =
  match Kanon.classes ds with
  | [] -> 0.0
  | cs -> float_of_int (Dataset.nrows ds) /. float_of_int (List.length cs)
