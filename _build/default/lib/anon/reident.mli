(** Re-identification risk under the standard attacker models (prosecutor,
    journalist, marketer — the models the ARX tool reports, paper ref
    [10]). These complement §III-B's value risk: they measure risk type 1
    (re-identification) where value risk measures risk type 2. *)

val prosecutor : Dataset.t -> float
(** The prosecutor knows the target is in the release: worst-case success
    probability = 1 / smallest equivalence-class size. 0 on an empty
    release. *)

val journalist : release:Dataset.t -> population:Dataset.t -> float option
(** The journalist knows the target is in the wider population table:
    worst case over release classes of 1 / size of the matching
    population class (matching = every quasi cell of the population row is
    covered by the release class's generalised cell). [None] when some
    release class matches nothing in the population (model assumption
    broken). *)

val marketer : Dataset.t -> float
(** Expected fraction of records re-identified by matching classes:
    (#classes) / n. *)
