(** Release acceptance gate.

    §III-B ends with exactly this workflow: "The risk score is used to
    choose pseudonymisation techniques or find out if a technique
    provides acceptable risk versus data utility ... If a technique
    requires too much data removal and utility is shown to be likely
    adversely affected, the technique used would clearly be not
    appropriate." A gate bundles the thresholds and evaluates a candidate
    release against its original, reporting every failed criterion. *)

type criteria = {
  k : int;  (** Minimum equivalence-class size. *)
  l : int option;  (** Distinct l-diversity per sensitive attribute. *)
  t : float option;  (** t-closeness bound per sensitive attribute. *)
  max_violation_ratio : float option;
      (** §III-B value-risk violations / records, worst case over all
          quasi subsets ({!Value_risk.sweep}). Requires [value_policy]. *)
  value_policy : Value_risk.policy option;
  max_mean_drift : float option;
      (** Utility: allowed |mean(original) - mean(release)| per numeric
          sensitive attribute. *)
}

val default : k:int -> criteria
(** Only the k-anonymity criterion; add others by record update. *)

type verdict = { accepted : bool; failures : string list }

val evaluate : original:Dataset.t -> release:Dataset.t -> criteria -> verdict
(** Sensitive attributes are taken from the release's attribute
    taxonomy. The original is only consulted for utility drift (pass the
    release twice if no original is available — drift is then 0). *)

val pp_verdict : Format.formatter -> verdict -> unit
