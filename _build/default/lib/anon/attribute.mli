(** Dataset attributes and their disclosure taxonomy (Sweeney's
    categories): direct identifiers are removed before release,
    quasi-identifiers are generalised, sensitive attributes are published
    raw and are what value risk (§III-B) protects. *)

type kind = Identifier | Quasi | Sensitive | Insensitive

type t = { name : string; kind : kind }

val make : name:string -> kind:kind -> t
val is_quasi : t -> bool
val is_sensitive : t -> bool
val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
