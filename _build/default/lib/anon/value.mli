(** Cell values of (possibly generalised) datasets.

    Raw microdata uses [Int]/[Float]/[Str]; generalisation replaces them
    with [Interval] (numeric range, inclusive lower bound, exclusive upper
    bound) or [Str_set] (set of categories), and full suppression with
    [Suppressed]. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Interval of float * float  (** [lo, hi) *)
  | Str_set of string list  (** Sorted, deduplicated. *)
  | Suppressed

val interval : float -> float -> t
(** @raise Invalid_argument unless [lo < hi]. *)

val str_set : string list -> t
val equal : t -> t -> bool
val numeric : t -> float option
(** The numeric content of [Int]/[Float]; [None] otherwise. *)

val midpoint : t -> float option
(** Numeric content, or the midpoint of an [Interval]. *)

val close : closeness:float -> t -> t -> bool
(** The paper's Table-I "close enough" test: numeric values within
    [closeness] of each other; non-numeric values must be equal.
    [Suppressed] is close to nothing (not even itself). *)

val covers : t -> t -> bool
(** [covers gen raw]: the generalised value is consistent with the raw one
    ([Interval] contains the number, [Str_set] contains the string,
    [Suppressed] covers everything, equal values cover each other). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
