let parse_cell s =
  let s = String.trim s in
  if s = "*" then Value.Suppressed
  else
    match int_of_string_opt s with
    | Some i -> Value.Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> (
        match String.index_opt s '-' with
        | Some i when i > 0 -> (
          let lo = String.sub s 0 i
          and hi = String.sub s (i + 1) (String.length s - i - 1) in
          match (float_of_string_opt lo, float_of_string_opt hi) with
          | Some lo, Some hi when lo < hi -> Value.Interval (lo, hi)
          | _ -> Value.Str s)
        | _ -> Value.Str s))

let parse ~kinds text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> Error "empty CSV"
  | header :: rows ->
    let names = List.map String.trim (String.split_on_char ',' header) in
    let attrs =
      List.map
        (fun name ->
          Attribute.make ~name
            ~kind:
              (Option.value
                 (List.assoc_opt name kinds)
                 ~default:Attribute.Insensitive))
        names
    in
    let width = List.length names in
    let rec build acc i = function
      | [] -> Ok (Dataset.make ~attrs ~rows:(List.rev acc))
      | row :: rest ->
        let cells = List.map parse_cell (String.split_on_char ',' row) in
        if List.length cells <> width then
          Error (Printf.sprintf "row %d: expected %d cells, found %d" i width
                   (List.length cells))
        else build (cells :: acc) (i + 1) rest
    in
    build [] 1 rows

let render ds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (List.map (fun (a : Attribute.t) -> a.name) (Dataset.attrs ds)));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map Value.to_string row));
      Buffer.add_char buf '\n')
    (Dataset.rows ds);
  Buffer.contents buf
