(** Mondrian multidimensional k-anonymisation (LeFevre et al.) — the
    baseline partitioning anonymiser against the full-domain methods in
    {!Kanon}. Numeric quasi-identifiers only: rows are recursively split
    at the median of the widest-normalised-range attribute while both
    halves keep at least [k] rows; each final partition's quasi cells are
    replaced by the partition's covering interval (or the exact value
    when the partition is constant in that attribute). *)

val anonymise : k:int -> Dataset.t -> (Dataset.t, string) result
(** [Error] when some quasi column is non-numeric or the dataset has
    fewer than [k] rows. Row order is preserved. *)

val partitions : k:int -> Dataset.t -> (int list list, string) result
(** The row-index partitions the anonymisation uses. *)
