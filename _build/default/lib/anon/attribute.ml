type kind = Identifier | Quasi | Sensitive | Insensitive

type t = { name : string; kind : kind }

let make ~name ~kind =
  if name = "" then invalid_arg "Attribute.make: empty name";
  { name; kind }

let is_quasi t = t.kind = Quasi
let is_sensitive t = t.kind = Sensitive

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Identifier -> "identifier"
    | Quasi -> "quasi"
    | Sensitive -> "sensitive"
    | Insensitive -> "insensitive")

let pp ppf t = Format.fprintf ppf "%s(%a)" t.name pp_kind t.kind
