(** t-closeness (Li et al.): a release is t-close when the distribution of
    the sensitive attribute within every equivalence class is within
    distance [t] of its distribution in the whole table. Complements
    {!Ldiv}: l-diversity bounds *how many* sensitive values a class shows,
    t-closeness bounds *how different* the class's value distribution may
    look — the property that finally removes Table-I-style skew. *)

val numeric_emd : Dataset.t -> sensitive:string -> float option
(** Worst (largest) earth-mover's distance over classes, using the
    ordered-distance ground metric on the sorted distinct sensitive
    values (the standard numeric t-closeness instantiation). [None] when
    the column has no numeric content or the dataset is empty. *)

val categorical_distance : Dataset.t -> sensitive:string -> float option
(** Worst total-variation distance over classes (the categorical
    instantiation). Works for any value type via printed equality. *)

val is_t_close : t:float -> Dataset.t -> sensitive:string -> bool
(** Uses {!numeric_emd} when the column is numeric, otherwise
    {!categorical_distance}; vacuously true on empty data. *)
