type t =
  | Int of int
  | Float of float
  | Str of string
  | Interval of float * float
  | Str_set of string list
  | Suppressed

let interval lo hi =
  if not (lo < hi) then invalid_arg "Value.interval: requires lo < hi";
  Interval (lo, hi)

let str_set l = Str_set (List.sort_uniq String.compare l)

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | Str x, Str y -> x = y
  | Interval (a1, b1), Interval (a2, b2) -> Float.equal a1 a2 && Float.equal b1 b2
  | Str_set x, Str_set y -> x = y
  | Suppressed, Suppressed -> true
  | (Int _ | Float _ | Str _ | Interval _ | Str_set _ | Suppressed), _ -> false

let numeric = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Str _ | Interval _ | Str_set _ | Suppressed -> None

let midpoint = function
  | Interval (lo, hi) -> Some ((lo +. hi) /. 2.0)
  | v -> numeric v

let close ~closeness a b =
  match (numeric a, numeric b) with
  | Some x, Some y -> Float.abs (x -. y) <= closeness
  | None, None -> (
    match (a, b) with
    | Suppressed, _ | _, Suppressed -> false
    | _ -> equal a b)
  | Some _, None | None, Some _ -> false

let covers gen raw =
  match (gen, raw) with
  | Suppressed, _ -> true
  | Interval (lo, hi), v -> (
    match numeric v with Some x -> lo <= x && x < hi | None -> false)
  | Str_set set, Str s -> List.mem s set
  | g, r -> equal g r

let to_string = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Str s -> s
  | Interval (lo, hi) ->
    let fmt v =
      if Float.is_integer v then Printf.sprintf "%.0f" v
      else Printf.sprintf "%g" v
    in
    Printf.sprintf "%s-%s" (fmt lo) (fmt hi)
  | Str_set l -> "{" ^ String.concat ", " l ^ "}"
  | Suppressed -> "*"

let pp ppf v = Format.pp_print_string ppf (to_string v)
