open Mdp_prelude

type policy = { sensitive : string; closeness : float; confidence : float }

type score = { record : int; risk : Frac.t; violation : bool }

type report = {
  fields_read : string list;
  policy : policy;
  scores : score list;
  violations : int;
}

let assess ds ~fields_read policy =
  let read_cols = List.map (Dataset.col_index ds) fields_read in
  let sens_col = Dataset.col_index ds policy.sensitive in
  let classes = Dataset.equivalence_classes ds ~by:read_cols in
  let scores = Array.make (Dataset.nrows ds) None in
  List.iter
    (fun cls ->
      let size = List.length cls in
      List.iter
        (fun r ->
          let v = Dataset.get ds ~row:r ~col:sens_col in
          let frequency =
            Listx.count
              (fun r' ->
                Value.close ~closeness:policy.closeness v
                  (Dataset.get ds ~row:r' ~col:sens_col))
              cls
          in
          let risk = Frac.make frequency size in
          scores.(r) <-
            Some { record = r; risk; violation = Frac.ge risk policy.confidence })
        cls)
    classes;
  let scores = List.map Option.get (Array.to_list scores) in
  {
    fields_read;
    policy;
    scores;
    violations = Listx.count (fun s -> s.violation) scores;
  }

let sweep ds policy =
  let quasi =
    List.filter Attribute.is_quasi (Dataset.attrs ds)
    |> List.map (fun (a : Attribute.t) -> a.name)
  in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let tails = subsets rest in
      List.map (fun t -> x :: t) tails @ tails
  in
  let nonempty = List.filter (( <> ) []) (subsets quasi) in
  let ordered =
    List.sort
      (fun a b -> Int.compare (List.length a) (List.length b))
      nonempty
  in
  List.map (fun fields_read -> assess ds ~fields_read policy) ordered

let max_risk report =
  List.fold_left
    (fun acc s -> if Frac.to_float s.risk > Frac.to_float acc then s.risk else acc)
    (Frac.make 0 1) report.scores

let pp_report ppf r =
  Format.fprintf ppf "fields read {%s}: %d/%d records violate (max risk %a)"
    (String.concat ", " r.fields_read)
    r.violations (List.length r.scores) Frac.pp (max_risk r)
