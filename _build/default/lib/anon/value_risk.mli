(** The paper's pseudonymisation *value risk* (§III-B).

    Given a pseudonymised release, an adversary who has read some subset
    of the released quasi fields ([fields_read]) sees the data partitioned
    into sets of records that appear identical on those fields. The risk
    that record [r]'s sensitive value is matched is the marginal
    probability [risk(r, f) = frequency(f) / size(s)]: the number of
    values in [r]'s set within [closeness] of [r]'s own value, over the
    set size. A policy violation occurs when that probability reaches the
    [confidence] threshold — e.g. Table I's "predict an individual's
    weight to within 5 kg with at least 90% confidence". Risks are kept as
    unreduced fractions exactly as the paper reports them (2/4, 2/2, …). *)

type policy = {
  sensitive : string;  (** Attribute the adversary tries to match. *)
  closeness : float;  (** "Close enough" radius on the sensitive value. *)
  confidence : float;  (** Violation threshold in [0, 1]. *)
}

type score = {
  record : int;  (** Row index. *)
  risk : Mdp_prelude.Frac.t;
  violation : bool;
}

type report = {
  fields_read : string list;
  policy : policy;
  scores : score list;  (** One per row, in row order. *)
  violations : int;
}

val assess : Dataset.t -> fields_read:string list -> policy -> report
(** [fields_read] may be empty (the whole release is one set).
    @raise Not_found on an unknown attribute name. *)

val sweep : Dataset.t -> policy -> report list
(** One report per non-empty subset of the quasi attributes, ordered by
    subset size then attribute order — the per-risk-transition inputs of
    Fig. 4. *)

val max_risk : report -> Mdp_prelude.Frac.t
(** Largest per-record risk (0/1 on an empty dataset). *)

val pp_report : Format.formatter -> report -> unit
