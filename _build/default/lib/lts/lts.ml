module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module type LABEL = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (S : STATE) (L : LABEL) = struct
  module Tbl = Hashtbl.Make (S)

  type state_id = int

  type transition = { src : state_id; label : L.t; dst : state_id }

  type t = {
    ids : state_id Tbl.t;
    mutable data : S.t array;
    mutable n : int;
    mutable out : (L.t * state_id) list array; (* reversed insertion order *)
    mutable ntrans : int;
    mutable init : state_id option;
  }

  let create () =
    {
      ids = Tbl.create 64;
      data = [||];
      n = 0;
      out = [||];
      ntrans = 0;
      init = None;
    }

  let grow t =
    if t.n >= Array.length t.data then begin
      let cap = max 16 (2 * Array.length t.data) in
      let data = Array.make cap t.data.(0) in
      Array.blit t.data 0 data 0 t.n;
      t.data <- data;
      let out = Array.make cap [] in
      Array.blit t.out 0 out 0 t.n;
      t.out <- out
    end

  let add_state t s =
    match Tbl.find_opt t.ids s with
    | Some id -> id
    | None ->
      let id = t.n in
      if id = 0 then begin
        t.data <- Array.make 16 s;
        t.out <- Array.make 16 []
      end
      else grow t;
      t.data.(id) <- s;
      t.out.(id) <- [];
      t.n <- id + 1;
      Tbl.add t.ids s id;
      if t.init = None then t.init <- Some id;
      id

  let set_initial t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.set_initial";
    t.init <- Some id

  let initial t =
    match t.init with
    | Some id -> id
    | None -> invalid_arg "Lts.initial: empty LTS"

  let num_states t = t.n
  let num_transitions t = t.ntrans
  let state_data t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.state_data";
    t.data.(id)

  let find_state t s = Tbl.find_opt t.ids s

  let states t = List.init t.n Fun.id

  let successors t id =
    if id < 0 || id >= t.n then invalid_arg "Lts.successors";
    List.rev t.out.(id)

  let add_transition t ~src ~label ~dst =
    if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
      invalid_arg "Lts.add_transition";
    let dup =
      List.exists (fun (l, d) -> d = dst && L.equal l label) t.out.(src)
    in
    if dup then false
    else begin
      t.out.(src) <- (label, dst) :: t.out.(src);
      t.ntrans <- t.ntrans + 1;
      true
    end

  let iter_transitions t f =
    for src = 0 to t.n - 1 do
      List.iter (fun (label, dst) -> f { src; label; dst }) (List.rev t.out.(src))
    done

  let transitions t =
    let acc = ref [] in
    iter_transitions t (fun tr -> acc := tr :: !acc);
    List.rev !acc

  let predecessors t id =
    let acc = ref [] in
    iter_transitions t (fun { src; label; dst } ->
        if dst = id then acc := (src, label) :: !acc);
    List.rev !acc

  let map_labels t f =
    for src = 0 to t.n - 1 do
      t.out.(src) <-
        List.map (fun (label, dst) -> (f { src; label; dst }, dst)) t.out.(src)
    done

  let explore ?(max_states = 200_000) ~init ~step () =
    let t = create () in
    let q = Queue.create () in
    Queue.push (add_state t init) q;
    while not (Queue.is_empty q) do
      let src = Queue.pop q in
      let src_data = state_data t src in
      List.iter
        (fun (label, dst_data) ->
          let before = t.n in
          let dst = add_state t dst_data in
          if t.n > max_states then
            failwith
              (Printf.sprintf "Lts.explore: more than %d states" max_states);
          ignore (add_transition t ~src ~label ~dst : bool);
          if t.n > before then Queue.push dst q)
        (step src_data)
    done;
    t

  let reachable t =
    if t.n = 0 then []
    else begin
      let seen = Array.make t.n false in
      let order = ref [] in
      let q = Queue.create () in
      let start = initial t in
      seen.(start) <- true;
      Queue.push start q;
      while not (Queue.is_empty q) do
        let s = Queue.pop q in
        order := s :: !order;
        List.iter
          (fun (_, d) ->
            if not seen.(d) then begin
              seen.(d) <- true;
              Queue.push d q
            end)
          (successors t s)
      done;
      List.rev !order
    end

  let is_deterministic t =
    let ok = ref true in
    for s = 0 to t.n - 1 do
      let labels = List.map fst (successors t s) in
      let rec dup = function
        | [] -> false
        | l :: rest -> List.exists (L.equal l) rest || dup rest
      in
      if dup labels then ok := false
    done;
    !ok

  let is_acyclic t =
    (* Colours: 0 unvisited, 1 on stack, 2 done. *)
    let colour = Array.make (max t.n 1) 0 in
    let rec visit s =
      if colour.(s) = 1 then false
      else if colour.(s) = 2 then true
      else begin
        colour.(s) <- 1;
        let ok = List.for_all (fun (_, d) -> visit d) (successors t s) in
        colour.(s) <- 2;
        ok
      end
    in
    List.for_all visit (states t)

  let path_to t pred =
    if t.n = 0 then None
    else begin
      let start = initial t in
      if pred start then Some []
      else begin
        let back = Array.make t.n None in
        let seen = Array.make t.n false in
        let q = Queue.create () in
        seen.(start) <- true;
        Queue.push start q;
        let found = ref None in
        while !found = None && not (Queue.is_empty q) do
          let s = Queue.pop q in
          List.iter
            (fun (label, d) ->
              if !found = None && not seen.(d) then begin
                seen.(d) <- true;
                back.(d) <- Some (s, label);
                if pred d then found := Some d else Queue.push d q
              end)
            (successors t s)
        done;
        match !found with
        | None -> None
        | Some goal ->
          let rec unwind acc s =
            match back.(s) with
            | None -> acc
            | Some (prev, label) -> unwind ((label, s) :: acc) prev
          in
          Some (unwind [] goal)
      end
    end

  let exists_finally t pred = path_to t pred <> None

  let always_globally t pred = List.for_all pred (reachable t)

  let states_where t pred = List.filter pred (states t)

  let dag_fold t ~(combine : 'a list -> 'a) ~(sink : 'a) =
    (* Memoised fold over the reachable DAG from the initial state;
       None when a cycle is reachable. *)
    if t.n = 0 then None
    else begin
      let memo = Array.make t.n None in
      let on_stack = Array.make t.n false in
      let exception Cyclic in
      let rec value s =
        match memo.(s) with
        | Some v -> v
        | None ->
          if on_stack.(s) then raise Cyclic;
          on_stack.(s) <- true;
          let v =
            match successors t s with
            | [] -> sink
            | succs -> combine (List.map (fun (_, d) -> value d) succs)
          in
          on_stack.(s) <- false;
          memo.(s) <- Some v;
          v
      in
      match value (initial t) with v -> Some v | exception Cyclic -> None
    end

  let longest_path t =
    dag_fold t ~sink:0
      ~combine:(fun depths -> 1 + List.fold_left max 0 depths)

  let count_maximal_paths t =
    dag_fold t ~sink:1 ~combine:(fun counts -> List.fold_left ( + ) 0 counts)

  (* Partition refinement uses printed labels as signature keys: two labels
     are treated as the same action for bisimulation iff they print
     identically. This sidesteps needing ordered/hashable labels and is
     faithful for our label types, whose printers are injective. *)
  let label_key l = Format.asprintf "%a" L.pp l

  let bisimulation_classes t ~init_key =
    if t.n = 0 then []
    else begin
      let block = Array.make t.n 0 in
      let assign keyed =
        (* keyed: state -> string; returns number of blocks. *)
        let tbl = Hashtbl.create 16 in
        let next = ref 0 in
        for s = 0 to t.n - 1 do
          let k = keyed s in
          match Hashtbl.find_opt tbl k with
          | Some b -> block.(s) <- b
          | None ->
            Hashtbl.add tbl k !next;
            block.(s) <- !next;
            incr next
        done;
        !next
      in
      let nblocks = ref (assign init_key) in
      let changed = ref true in
      while !changed do
        let signature s =
          let sigs =
            List.map
              (fun (l, d) -> Printf.sprintf "%s>%d" (label_key l) block.(d))
              (successors t s)
          in
          Printf.sprintf "%d|%s" block.(s)
            (String.concat ";" (List.sort_uniq String.compare sigs))
        in
        let n' = assign signature in
        changed := n' <> !nblocks;
        nblocks := n'
      done;
      let buckets = Array.make !nblocks [] in
      for s = t.n - 1 downto 0 do
        buckets.(block.(s)) <- s :: buckets.(block.(s))
      done;
      Array.to_list buckets
    end

  let quotient t ~init_key =
    let classes = bisimulation_classes t ~init_key in
    let block_of = Array.make (max t.n 1) 0 in
    List.iteri
      (fun b members -> List.iter (fun s -> block_of.(s) <- b) members)
      classes;
    let q = create () in
    let qid = Array.make (List.length classes) (-1) in
    List.iteri
      (fun b members ->
        let repr = List.fold_left min max_int members in
        qid.(b) <- add_state q (state_data t repr))
      classes;
    if t.n > 0 then set_initial q qid.(block_of.(initial t));
    iter_transitions t (fun { src; label; dst } ->
        ignore
          (add_transition q ~src:qid.(block_of.(src)) ~label
             ~dst:qid.(block_of.(dst))
            : bool));
    (q, fun s -> qid.(block_of.(s)))

  let dot_escape s =
    String.concat ""
      (List.map
         (function '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))

  let to_dot ?(graph_name = "lts") ?state_label ?state_style ?transition_style t
      =
    let buf = Buffer.create 1024 in
    let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    addf "digraph %s {\n  rankdir=LR;\n" graph_name;
    List.iter
      (fun s ->
        let label =
          match state_label with
          | Some f -> f s
          | None -> Printf.sprintf "s%d" s
        in
        let style =
          match state_style with
          | Some f -> ( match f s with "" -> "" | st -> ", " ^ st)
          | None -> ""
        in
        let init_mark = if t.init = Some s then ", penwidth=2" else "" in
        addf "  n%d [label=\"%s\"%s%s];\n" s (dot_escape label) style init_mark)
      (states t);
    iter_transitions t (fun tr ->
        let style =
          match transition_style with
          | Some f -> ( match f tr with "" -> "" | st -> ", " ^ st)
          | None -> ""
        in
        addf "  n%d -> n%d [label=\"%s\"%s];\n" tr.src tr.dst
          (dot_escape (Format.asprintf "%a" L.pp tr.label))
          style);
    addf "}\n";
    Buffer.contents buf

  let pp_stats ppf t =
    Format.fprintf ppf "%d states, %d transitions" t.n t.ntrans
end
