(** Generic labelled transition systems.

    States are hash-consed: adding equal state data twice yields the same
    dense integer id, which is what makes fixed-point exploration of the
    privacy model terminate (paper §II-B generates the LTS as the set of
    reachable privacy states). Labels are arbitrary and mutable in place
    (risk analysis annotates transition labels after generation,
    paper §III). *)

module type STATE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module type LABEL = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (S : STATE) (L : LABEL) : sig
  type t

  type state_id = int
  (** Dense, starting at 0 in insertion order. *)

  type transition = { src : state_id; label : L.t; dst : state_id }

  val create : unit -> t

  (** {1 Construction} *)

  val add_state : t -> S.t -> state_id
  (** Hash-consing: returns the existing id when equal data was added
      before. The first state added becomes the initial state unless
      {!set_initial} overrides it. *)

  val set_initial : t -> state_id -> unit
  val add_transition : t -> src:state_id -> label:L.t -> dst:state_id -> bool
  (** [false] when an identical transition (same endpoints, equal label)
      already exists; the LTS is unchanged in that case. *)

  val explore :
    ?max_states:int -> init:S.t -> step:(S.t -> (L.t * S.t) list) -> unit -> t
  (** Breadth-first fixed point: starting from [init], repeatedly expand
      unvisited states with [step].
      @raise Failure when [max_states] (default 200_000) is exceeded —
      a guard against accidentally infinite models. *)

  (** {1 Observation} *)

  val initial : t -> state_id
  (** @raise Invalid_argument on an empty LTS. *)

  val num_states : t -> int
  val num_transitions : t -> int
  val state_data : t -> state_id -> S.t
  val find_state : t -> S.t -> state_id option
  val states : t -> state_id list
  val successors : t -> state_id -> (L.t * state_id) list
  (** In insertion order. *)

  val predecessors : t -> state_id -> (state_id * L.t) list
  val transitions : t -> transition list
  val iter_transitions : t -> (transition -> unit) -> unit

  (** {1 Label rewriting} *)

  val map_labels : t -> (transition -> L.t) -> unit
  (** Replace every transition's label in place. *)

  (** {1 Analysis} *)

  val reachable : t -> state_id list
  (** States reachable from the initial state, BFS order. *)

  val is_deterministic : t -> bool
  (** No state has two outgoing transitions with equal labels. *)

  val is_acyclic : t -> bool

  val path_to : t -> (state_id -> bool) -> (L.t * state_id) list option
  (** Shortest witness path (sequence of steps from the initial state) to
      a state satisfying the predicate; [Some []] if the initial state
      does. *)

  val exists_finally : t -> (state_id -> bool) -> bool
  (** CTL [EF p] at the initial state. *)

  val always_globally : t -> (state_id -> bool) -> bool
  (** CTL [AG p] at the initial state: [p] holds on every reachable
      state. *)

  val states_where : t -> (state_id -> bool) -> state_id list

  val longest_path : t -> int option
  (** Longest transition count along any path from the initial state;
      [None] when the reachable part is cyclic. *)

  val count_maximal_paths : t -> int option
  (** Number of distinct paths from the initial state to a sink (a state
      with no successors) — for a generated privacy model, the number of
      complete execution interleavings. [None] when cyclic. *)

  val bisimulation_classes : t -> init_key:(state_id -> string) -> state_id list list
  (** Partition refinement: coarsest partition refining [init_key] that is
      stable under transitions (strong bisimulation with labels compared
      by [L.equal] via their printed form — see note in the
      implementation). Covers all states, reachable or not. *)

  val quotient : t -> init_key:(state_id -> string) -> t * (state_id -> state_id)
  (** Quotient LTS by {!bisimulation_classes}; the function maps original
      ids to quotient ids. State data of a class is its representative's. *)

  (** {1 Output} *)

  val to_dot :
    ?graph_name:string ->
    ?state_label:(state_id -> string) ->
    ?state_style:(state_id -> string) ->
    ?transition_style:(transition -> string) ->
    t ->
    string
  (** [state_style]/[transition_style] return extra DOT attributes
      (e.g. ["style=dashed, color=red"]); empty string for none. *)

  val pp_stats : Format.formatter -> t -> unit
end
