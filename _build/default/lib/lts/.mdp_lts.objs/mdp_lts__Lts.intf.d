lib/lts/lts.mli: Format
