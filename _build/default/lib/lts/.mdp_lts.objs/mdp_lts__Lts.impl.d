lib/lts/lts.ml: Array Buffer Format Fun Hashtbl List Printf Queue String
