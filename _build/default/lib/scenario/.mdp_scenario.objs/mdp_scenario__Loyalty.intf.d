lib/scenario/loyalty.mli: Diagram Field Mdp_anon Mdp_core Mdp_dataflow Mdp_policy
