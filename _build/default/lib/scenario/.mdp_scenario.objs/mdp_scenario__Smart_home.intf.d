lib/scenario/smart_home.mli: Diagram Field Mdp_core Mdp_dataflow Mdp_policy
