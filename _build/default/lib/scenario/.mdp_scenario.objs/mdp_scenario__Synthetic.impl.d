lib/scenario/synthetic.ml: Actor Datastore Diagram Field Float Flow Hashtbl List Mdp_anon Mdp_core Mdp_dataflow Mdp_policy Mdp_prelude Option Printf Schema Service
