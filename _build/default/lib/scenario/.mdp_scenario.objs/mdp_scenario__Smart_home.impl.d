lib/scenario/smart_home.ml: Actor Datastore Diagram Field Flow List Mdp_core Mdp_dataflow Mdp_policy Schema Service
