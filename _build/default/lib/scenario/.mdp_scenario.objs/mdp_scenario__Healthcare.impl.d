lib/scenario/healthcare.ml: Actor Datastore Diagram Field Flow List Mdp_anon Mdp_core Mdp_dataflow Mdp_policy Schema Service
