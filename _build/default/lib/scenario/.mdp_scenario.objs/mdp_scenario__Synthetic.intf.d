lib/scenario/synthetic.mli: Mdp_anon Mdp_core Mdp_dataflow Mdp_policy
