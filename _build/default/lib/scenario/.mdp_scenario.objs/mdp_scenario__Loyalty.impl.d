lib/scenario/loyalty.ml: Actor Array Datastore Diagram Field Float Flow List Mdp_anon Mdp_core Mdp_dataflow Mdp_policy Mdp_prelude Printf Schema Service
