open Mdp_dataflow
module Policy = Mdp_policy.Policy
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission
module A = Mdp_anon
module Prng = Mdp_prelude.Prng

let card_id = Field.make "CardId"
let postcode = Field.make "Postcode"
let age = Field.make "Age"
let spend = Field.make "Spend"

let purchase_service = "PurchaseTracking"
let insight_service = "CustomerInsight"

let basket_fields = [ card_id; postcode; age; spend ]

let diagram =
  let actors =
    [
      Actor.make "Cashier" ~roles:[ "store-staff" ];
      Actor.make "CrmOps" ~roles:[ "operations" ];
      Actor.make "DataScience" ~roles:[ "analytics" ];
    ]
  in
  let datastores =
    [
      Datastore.make ~id:"Baskets"
        ~schemas:[ Schema.make ~id:"BasketRecord" ~fields:basket_fields ]
        ();
      Datastore.make ~kind:Datastore.Anonymised ~id:"AnonBaskets"
        ~schemas:
          [
            Schema.make ~id:"AnonBasketRecord"
              ~fields:(List.map Field.anon_of [ postcode; age; spend ]);
          ]
        ();
    ]
  in
  let flow = Flow.make in
  let services =
    [
      Service.make ~id:purchase_service
        ~flows:
          [
            flow ~order:1 ~src:Flow.User ~dst:(Flow.Actor "Cashier")
              ~fields:basket_fields ~purpose:"checkout";
            flow ~order:2 ~src:(Flow.Actor "Cashier")
              ~dst:(Flow.Store "Baskets") ~fields:basket_fields
              ~purpose:"record purchase";
          ];
      Service.make ~id:insight_service
        ~flows:
          [
            flow ~order:1 ~src:(Flow.Store "Baskets")
              ~dst:(Flow.Actor "CrmOps") ~fields:basket_fields
              ~purpose:"prepare release";
            flow ~order:2 ~src:(Flow.Actor "CrmOps")
              ~dst:(Flow.Store "AnonBaskets")
              ~fields:[ postcode; age; spend ]
              ~purpose:"k-anonymise baskets";
            flow ~order:3 ~src:(Flow.Store "AnonBaskets")
              ~dst:(Flow.Actor "DataScience")
              ~fields:[ Field.anon_of spend ]
              ~purpose:"churn modelling";
            flow ~order:4 ~src:(Flow.Store "AnonBaskets")
              ~dst:(Flow.Actor "DataScience")
              ~fields:[ Field.anon_of postcode ]
              ~purpose:"churn modelling";
            flow ~order:5 ~src:(Flow.Store "AnonBaskets")
              ~dst:(Flow.Actor "DataScience")
              ~fields:[ Field.anon_of age ]
              ~purpose:"churn modelling";
          ];
    ]
  in
  Diagram.make_exn ~actors ~datastores ~services

let policy =
  Policy.make
    [
      Acl.allow (Acl.Actor_subject "Cashier") ~store:"Baskets"
        [ Permission.Write ];
      Acl.allow (Acl.Actor_subject "CrmOps") ~store:"Baskets"
        [ Permission.Read; Permission.Delete ];
      Acl.allow (Acl.Actor_subject "CrmOps") ~store:"AnonBaskets"
        [ Permission.Write ];
      Acl.allow (Acl.Actor_subject "DataScience") ~store:"AnonBaskets"
        [ Permission.Read ];
    ]

let districts =
  [| "N1"; "N7"; "E2"; "E8"; "SE1"; "SE15"; "SW2"; "SW9" |]

let raw_baskets ~seed ~rows =
  let rng = Prng.create ~seed in
  let make_row i =
    let d = Prng.int rng (Array.length districts) in
    let base_spend = 40.0 +. (15.0 *. float_of_int d) in
    let spend_v =
      Float.max 5.0 (Prng.gaussian rng ~mean:base_spend ~stddev:8.0)
    in
    A.Value.
      [
        Str (Printf.sprintf "card-%04d" i);
        Str districts.(d);
        Int (Prng.range rng 18 90);
        Float (Float.round spend_v);
      ]
  in
  A.Dataset.make
    ~attrs:
      [
        A.Attribute.make ~name:"CardId" ~kind:A.Attribute.Identifier;
        A.Attribute.make ~name:"Postcode" ~kind:A.Attribute.Quasi;
        A.Attribute.make ~name:"Age" ~kind:A.Attribute.Quasi;
        A.Attribute.make ~name:"Spend" ~kind:A.Attribute.Sensitive;
      ]
    ~rows:(List.init rows make_row)

let scheme : A.Kanon.scheme =
  [
    ( "Postcode",
      A.Hierarchy.categorical
        ~levels:
          [
            (* district -> area *)
            [
              ("N1", "N"); ("N7", "N"); ("E2", "E"); ("E8", "E");
              ("SE1", "SE"); ("SE15", "SE"); ("SW2", "SW"); ("SW9", "SW");
            ];
            (* area -> city *)
            [ ("N", "London"); ("E", "London"); ("SE", "London"); ("SW", "London") ];
          ] );
    ("Age", A.Hierarchy.numeric ~widths:[ 10.0; 20.0 ] ());
  ]

let value_policy : A.Value_risk.policy =
  { sensitive = "Spend"; closeness = 10.0; confidence = 0.8 }

let release ~k raw =
  match
    A.Kanon.datafly ~k ~max_suppression:0.05 (A.Dataset.drop_identifiers raw)
      scheme
  with
  | Ok (ds, _, _) -> Ok ds
  | Error e -> Error e

let binding ~dataset =
  Mdp_core.Pseudonym_risk.make_binding ~store:"AnonBaskets" ~dataset
    ~attr_fields:[ ("Postcode", postcode); ("Age", age); ("Spend", spend) ]
    ~policy:value_policy
