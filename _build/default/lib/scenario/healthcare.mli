(** The paper's doctors'-surgery case study, both halves of §IV.

    {2 Fig. 1 model (§IV-A, unwanted disclosure)}

    Five actors (Receptionist, Doctor, Nurse, Administrator, Researcher),
    six fields (Name, DateOfBirth, Appointment, MedicalIssues, Diagnosis,
    Treatment), three datastores (Appointments, EHR, AnonEHR), two
    services (MedicalService, MedicalResearchService) — giving the
    paper's 2 * 5 * 6 = 60 state variables.

    {2 §IV-B model (pseudonymisation risk, Table I / Fig. 4)}

    A research-study variant whose health records carry Age, Height and
    Weight; records are 2-anonymised (Age and Height quasi-identifiers)
    and a Researcher with access only to the pseudonymised release tries
    to match weights to individuals. *)

open Mdp_dataflow

(** {1 Fields of the Fig. 1 model} *)

val name : Field.t
val date_of_birth : Field.t
val appointment : Field.t
val medical_issues : Field.t
val diagnosis : Field.t
val treatment : Field.t

val diagram : Diagram.t
(** The Fig. 1 data-flow model. *)

val policy : Mdp_policy.Policy.t
(** The initial access policy — the Administrator may read the whole EHR
    (the §IV-A risk) and holds its Delete permission for maintenance. *)

val fixed_policy : Mdp_policy.Policy.t
(** The §IV-A remediation: the Administrator's read of [Diagnosis] in the
    EHR is revoked, reducing the event's risk from Medium to Low. *)

val profile_case_a : Mdp_core.User_profile.t
(** Agreed to MedicalService only; Diagnosis sensitivity High (0.9),
    MedicalIssues Low (0.2). *)

val medical_service : string
val research_service : string

(** {1 §IV-B study model} *)

val age : Field.t
val height : Field.t
val weight : Field.t

val study_diagram : Diagram.t
val study_policy : Mdp_policy.Policy.t

val table1_raw : Mdp_anon.Dataset.t
(** The six §IV-B records with their direct identifier. *)

val table1_scheme : Mdp_anon.Kanon.scheme
(** Age in decades, Height in 20 cm bands. *)

val table1_released : Mdp_anon.Dataset.t
(** 2-anonymised release: identifiers dropped, quasi columns generalised
    one level — exactly the Table I record set. *)

val value_policy : Mdp_anon.Value_risk.policy
(** "predict an individual's weight to within 5 kg with at least 90%
    confidence". *)

val study_binding : Mdp_core.Pseudonym_risk.binding
(** Binds the release to the study model's anonymised store. *)
