(** Retail loyalty programme: the third domain scenario, with a
    pseudonymisation (§III-B-style) risk at its centre.

    Purchases are linked to loyalty cards; a data-science team receives a
    k-anonymised basket release (postcode district and age band as
    quasi-identifiers, basket spend as the sensitive value) for churn
    modelling. The seeded value-risk policy: spend must not be predictable
    to within 10 currency units at 80% confidence. *)

open Mdp_dataflow

val card_id : Field.t
val postcode : Field.t
val age : Field.t
val spend : Field.t

val diagram : Diagram.t
val policy : Mdp_policy.Policy.t
val purchase_service : string
val insight_service : string

val raw_baskets : seed:int -> rows:int -> Mdp_anon.Dataset.t
(** Synthetic purchase records: postcode districts drawn from eight
    values, ages 18-90, spends clustered by district (so quasi columns
    genuinely predict spend and the release carries real value risk). *)

val scheme : Mdp_anon.Kanon.scheme
(** Postcode to district/area (categorical), age to 10/20-year bands. *)

val value_policy : Mdp_anon.Value_risk.policy

val release : k:int -> Mdp_anon.Dataset.t -> (Mdp_anon.Dataset.t, string) result
(** Datafly k-anonymisation of [raw_baskets] output (identifiers
    dropped), with up to 5% suppression. *)

val binding : dataset:Mdp_anon.Dataset.t -> Mdp_core.Pseudonym_risk.binding
