open Mdp_dataflow
module Policy = Mdp_policy.Policy
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission

let address = Field.make "Address"
let meter_id = Field.make "MeterId"
let consumption = Field.make "Consumption"
let occupancy = Field.make "Occupancy"
let tariff = Field.make "Tariff"

let energy_service = "EnergySupply"
let analytics_service = "DemandAnalytics"

let telemetry_fields = [ meter_id; consumption; occupancy ]

let diagram =
  let actors =
    [
      Actor.make "Installer" ~roles:[ "field-ops" ];
      Actor.make "SupplierOps" ~roles:[ "operations" ];
      Actor.make "Billing" ~roles:[ "operations" ];
      Actor.make "Marketing" ~roles:[ "commercial" ];
      Actor.make "AnalyticsPartner" ~roles:[ "third-party" ];
    ]
  in
  let datastores =
    [
      Datastore.make ~id:"Accounts"
        ~schemas:
          [ Schema.make ~id:"AccountRecord" ~fields:[ address; meter_id; tariff ] ]
        ();
      Datastore.make ~id:"Telemetry"
        ~schemas:[ Schema.make ~id:"MeterReadings" ~fields:telemetry_fields ]
        ();
      Datastore.make ~kind:Datastore.Anonymised ~id:"AnonProfiles"
        ~schemas:
          [
            Schema.make ~id:"AnonReadings"
              ~fields:(List.map Field.anon_of [ consumption; occupancy ]);
          ]
        ();
    ]
  in
  let flow = Flow.make in
  let services =
    [
      Service.make ~id:energy_service
        ~flows:
          [
            flow ~order:1 ~src:Flow.User ~dst:(Flow.Actor "Installer")
              ~fields:[ address; meter_id ] ~purpose:"meter installation";
            flow ~order:2 ~src:(Flow.Actor "Installer")
              ~dst:(Flow.Store "Accounts") ~fields:[ address; meter_id; tariff ]
              ~purpose:"open account";
            flow ~order:3 ~src:Flow.User ~dst:(Flow.Actor "SupplierOps")
              ~fields:[ meter_id; consumption; occupancy ]
              ~purpose:"half-hourly readings";
            flow ~order:4 ~src:(Flow.Actor "SupplierOps")
              ~dst:(Flow.Store "Telemetry") ~fields:telemetry_fields
              ~purpose:"store readings";
            flow ~order:5 ~src:(Flow.Store "Accounts")
              ~dst:(Flow.Actor "Billing") ~fields:[ address; meter_id; tariff ]
              ~purpose:"produce bill";
          ];
      Service.make ~id:analytics_service
        ~flows:
          [
            flow ~order:1 ~src:(Flow.Store "Telemetry")
              ~dst:(Flow.Actor "SupplierOps") ~fields:telemetry_fields
              ~purpose:"extract profiles";
            flow ~order:2 ~src:(Flow.Actor "SupplierOps")
              ~dst:(Flow.Store "AnonProfiles")
              ~fields:[ consumption; occupancy ]
              ~purpose:"pseudonymise profiles";
            flow ~order:3 ~src:(Flow.Store "AnonProfiles")
              ~dst:(Flow.Actor "AnalyticsPartner")
              ~fields:(List.map Field.anon_of [ consumption; occupancy ])
              ~purpose:"demand forecasting";
          ];
    ]
  in
  Diagram.make_exn ~actors ~datastores ~services

let policy =
  Policy.make
    ~rbac:(Mdp_policy.Rbac.create ~hierarchy:[ ("operations", "field-ops") ] ())
    [
      Acl.allow (Acl.Role_subject "field-ops") ~store:"Accounts"
        [ Permission.Read; Permission.Write ];
      Acl.allow (Acl.Actor_subject "SupplierOps") ~store:"Telemetry"
        [ Permission.Read; Permission.Write; Permission.Delete ];
      Acl.allow (Acl.Actor_subject "SupplierOps") ~store:"AnonProfiles"
        [ Permission.Write ];
      Acl.allow (Acl.Actor_subject "Billing") ~store:"Accounts"
        [ Permission.Read ];
      (* The seeded risk: commercial access to raw telemetry. *)
      Acl.allow (Acl.Actor_subject "Marketing") ~store:"Telemetry"
        [ Permission.Read ];
      Acl.allow (Acl.Actor_subject "Marketing") ~store:"Accounts"
        ~fields:[ address; tariff ] [ Permission.Read ];
      Acl.allow (Acl.Actor_subject "AnalyticsPartner") ~store:"AnonProfiles"
        [ Permission.Read ];
    ]

let fixed_policy =
  Policy.revoke policy
    ~subject:(Acl.Actor_subject "Marketing")
    ~store:"Telemetry"
    ~fields:[ occupancy; consumption ]
    [ Permission.Read ]

let profile =
  Mdp_core.User_profile.make
    ~sensitivities:
      [
        (occupancy, Mdp_core.User_profile.of_category `High);
        (consumption, Mdp_core.User_profile.of_category `Medium);
        (address, Mdp_core.User_profile.of_category `Low);
      ]
    ~agreed_services:[ energy_service ] ()
