(** Synthetic model and dataset generators for scaling benchmarks and
    property tests. Everything is deterministic in the seed. *)

type spec = {
  seed : int;
  nactors : int;
  nfields : int;
  nstores : int;
  nservices : int;
  flows_per_service : int;
}

val model : spec -> Mdp_dataflow.Diagram.t * Mdp_policy.Policy.t
(** A random but well-formed diagram: each service starts with a collect,
    interleaves creates and reads over random stores and field subsets,
    and the policy grants each actor read/write on the stores its flows
    touch, plus one gratuitous read grant per store to a random actor
    (so potential-read transitions exist). Field counts are clamped so
    every flow carries at least one field. *)

val profile : spec -> Mdp_dataflow.Diagram.t -> Mdp_core.User_profile.t
(** Agrees to the first half of the services; a random third of the
    fields get sensitivity 0.9, another third 0.4. *)

val dataset : seed:int -> rows:int -> quasi:int -> Mdp_anon.Dataset.t
(** Numeric microdata: [quasi] quasi-identifier columns uniform in
    [0, 100), one sensitive column correlated with the first quasi
    column. *)

val scheme_for : quasi:int -> Mdp_anon.Kanon.scheme
(** Width-10/25 numeric hierarchies for {!dataset}'s quasi columns. *)
