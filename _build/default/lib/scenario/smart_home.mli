(** Smart-home energy service: a second domain exercising the API.

    A household's smart meter feeds half-hourly consumption data to an
    energy supplier; an installer technician configures devices; a
    third-party analytics partner receives pseudonymised consumption
    profiles for demand forecasting. The privacy tension mirrors the
    paper's: occupancy patterns are inferable from fine-grained
    consumption, and the marketing team's access to the raw telemetry
    store is the unwanted-disclosure risk. *)

open Mdp_dataflow

val address : Field.t
val meter_id : Field.t
val consumption : Field.t
val occupancy : Field.t
val tariff : Field.t

val diagram : Diagram.t
val policy : Mdp_policy.Policy.t
(** Marketing may read the telemetry store (the seeded risk). *)

val fixed_policy : Mdp_policy.Policy.t
(** Marketing's read of [occupancy] and [consumption] revoked. *)

val profile : Mdp_core.User_profile.t
(** Agreed to EnergySupply only; occupancy High, consumption Medium. *)

val energy_service : string
val analytics_service : string
