open Mdp_dataflow
module Policy = Mdp_policy.Policy
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission

(* Fields of the Fig. 1 model. *)
let name = Field.make "Name"
let date_of_birth = Field.make "DateOfBirth"
let appointment = Field.make "Appointment"
let medical_issues = Field.make "MedicalIssues"
let diagnosis = Field.make "Diagnosis"
let treatment = Field.make "Treatment"

let medical_service = "MedicalService"
let research_service = "MedicalResearchService"

let ehr_fields = [ name; date_of_birth; medical_issues; diagnosis; treatment ]
let anonymised = List.map Field.anon_of

let diagram =
  let actors =
    [
      Actor.make "Receptionist" ~roles:[ "clerical" ];
      Actor.make "Doctor" ~roles:[ "clinician" ];
      Actor.make "Nurse" ~roles:[ "clinician" ];
      Actor.make "Administrator" ~roles:[ "operations" ];
      Actor.make "Researcher" ~roles:[ "research" ];
    ]
  in
  let datastores =
    [
      Datastore.make ~id:"Appointments"
        ~schemas:
          [
            Schema.make ~id:"AppointmentRecord"
              ~fields:[ name; date_of_birth; appointment ];
          ]
        ();
      Datastore.make ~id:"EHR"
        ~schemas:[ Schema.make ~id:"HealthRecord" ~fields:ehr_fields ]
        ();
      Datastore.make ~kind:Datastore.Anonymised ~id:"AnonEHR"
        ~schemas:
          [
            Schema.make ~id:"AnonHealthRecord"
              ~fields:
                (anonymised [ date_of_birth; medical_issues; diagnosis; treatment ]);
          ]
        ();
    ]
  in
  let flow = Flow.make in
  let services =
    [
      Service.make ~id:medical_service
        ~flows:
          [
            flow ~order:1 ~src:Flow.User ~dst:(Flow.Actor "Receptionist")
              ~fields:[ name; date_of_birth ] ~purpose:"book appointment";
            flow ~order:2 ~src:(Flow.Actor "Receptionist")
              ~dst:(Flow.Store "Appointments")
              ~fields:[ name; date_of_birth; appointment ]
              ~purpose:"schedule appointment";
            flow ~order:3 ~src:(Flow.Store "Appointments")
              ~dst:(Flow.Actor "Doctor")
              ~fields:[ name; date_of_birth; appointment ]
              ~purpose:"prepare consultation";
            flow ~order:4 ~src:Flow.User ~dst:(Flow.Actor "Doctor")
              ~fields:[ medical_issues ] ~purpose:"consultation";
            flow ~order:5 ~src:(Flow.Actor "Doctor") ~dst:(Flow.Store "EHR")
              ~fields:ehr_fields ~purpose:"record diagnosis and treatment";
            flow ~order:6 ~src:(Flow.Store "EHR") ~dst:(Flow.Actor "Nurse")
              ~fields:[ name; treatment ] ~purpose:"administer treatment";
          ];
      Service.make ~id:research_service
        ~flows:
          [
            flow ~order:1 ~src:(Flow.Store "EHR")
              ~dst:(Flow.Actor "Administrator") ~fields:ehr_fields
              ~purpose:"prepare research data";
            flow ~order:2 ~src:(Flow.Actor "Administrator")
              ~dst:(Flow.Store "AnonEHR")
              ~fields:[ date_of_birth; medical_issues; diagnosis; treatment ]
              ~purpose:"pseudonymise records";
            flow ~order:3 ~src:(Flow.Store "AnonEHR")
              ~dst:(Flow.Actor "Researcher")
              ~fields:
                (anonymised [ date_of_birth; medical_issues; diagnosis; treatment ])
              ~purpose:"medical research";
          ];
    ]
  in
  Diagram.make_exn ~actors ~datastores ~services

let policy =
  Policy.make
    [
      Acl.allow (Acl.Actor_subject "Receptionist") ~store:"Appointments"
        [ Permission.Read; Permission.Write ];
      Acl.allow (Acl.Actor_subject "Doctor") ~store:"Appointments"
        [ Permission.Read ];
      Acl.allow (Acl.Actor_subject "Doctor") ~store:"EHR"
        [ Permission.Read; Permission.Write ];
      Acl.allow (Acl.Actor_subject "Nurse") ~store:"Appointments"
        [ Permission.Read ];
      Acl.allow (Acl.Actor_subject "Nurse") ~store:"EHR"
        ~fields:[ name; treatment ] [ Permission.Read ];
      (* The §IV-A risk: maintenance access to the whole EHR. *)
      Acl.allow (Acl.Actor_subject "Administrator") ~store:"EHR"
        [ Permission.Read; Permission.Delete ];
      Acl.allow (Acl.Actor_subject "Administrator") ~store:"AnonEHR"
        [ Permission.Write ];
      Acl.allow (Acl.Actor_subject "Researcher") ~store:"AnonEHR"
        [ Permission.Read ];
    ]

let fixed_policy =
  Policy.revoke policy
    ~subject:(Acl.Actor_subject "Administrator")
    ~store:"EHR" ~fields:[ diagnosis ] [ Permission.Read ]

let profile_case_a =
  Mdp_core.User_profile.make
    ~sensitivities:
      [
        (diagnosis, Mdp_core.User_profile.of_category `High);
        (medical_issues, Mdp_core.User_profile.of_category `Low);
      ]
    ~agreed_services:[ medical_service ] ()

(* ------------------------------------------------------------------ *)
(* §IV-B study model. *)

let age = Field.make "Age"
let height = Field.make "Height"
let weight = Field.make "Weight"

let study_fields = [ name; age; height; weight ]

let study_diagram =
  let actors =
    [
      Actor.make "Clinician" ~roles:[ "clinician" ];
      Actor.make "Administrator" ~roles:[ "operations" ];
      Actor.make "Researcher" ~roles:[ "research" ];
    ]
  in
  let datastores =
    [
      Datastore.make ~id:"StudyRecords"
        ~schemas:[ Schema.make ~id:"PhysicalAttributes" ~fields:study_fields ]
        ();
      Datastore.make ~kind:Datastore.Anonymised ~id:"AnonStudy"
        ~schemas:
          [
            Schema.make ~id:"AnonPhysicalAttributes"
              ~fields:(anonymised [ age; height; weight ]);
          ]
        ();
    ]
  in
  let flow = Flow.make in
  let services =
    [
      Service.make ~id:"DataCollection"
        ~flows:
          [
            flow ~order:1 ~src:Flow.User ~dst:(Flow.Actor "Clinician")
              ~fields:study_fields ~purpose:"physical examination";
            flow ~order:2 ~src:(Flow.Actor "Clinician")
              ~dst:(Flow.Store "StudyRecords") ~fields:study_fields
              ~purpose:"record measurements";
          ];
      Service.make ~id:"ResearchStudy"
        ~flows:
          [
            flow ~order:1 ~src:(Flow.Store "StudyRecords")
              ~dst:(Flow.Actor "Administrator") ~fields:study_fields
              ~purpose:"prepare release";
            flow ~order:2 ~src:(Flow.Actor "Administrator")
              ~dst:(Flow.Store "AnonStudy") ~fields:[ age; height; weight ]
              ~purpose:"2-anonymise";
            (* Individual-field reads: the §III-B analysis distinguishes
               states by exactly which anon fields the researcher has seen. *)
            flow ~order:3 ~src:(Flow.Store "AnonStudy")
              ~dst:(Flow.Actor "Researcher")
              ~fields:[ Field.anon_of weight ]
              ~purpose:"statistical analysis";
            flow ~order:4 ~src:(Flow.Store "AnonStudy")
              ~dst:(Flow.Actor "Researcher")
              ~fields:[ Field.anon_of height ]
              ~purpose:"statistical analysis";
            flow ~order:5 ~src:(Flow.Store "AnonStudy")
              ~dst:(Flow.Actor "Researcher")
              ~fields:[ Field.anon_of age ]
              ~purpose:"statistical analysis";
          ];
    ]
  in
  Diagram.make_exn ~actors ~datastores ~services

let study_policy =
  Policy.make
    [
      Acl.allow (Acl.Actor_subject "Clinician") ~store:"StudyRecords"
        [ Permission.Read; Permission.Write ];
      Acl.allow (Acl.Actor_subject "Administrator") ~store:"StudyRecords"
        [ Permission.Read; Permission.Delete ];
      Acl.allow (Acl.Actor_subject "Administrator") ~store:"AnonStudy"
        [ Permission.Write ];
      Acl.allow (Acl.Actor_subject "Researcher") ~store:"AnonStudy"
        [ Permission.Read ];
    ]

module A = Mdp_anon

let table1_raw =
  A.Dataset.make
    ~attrs:
      [
        A.Attribute.make ~name:"Name" ~kind:A.Attribute.Identifier;
        A.Attribute.make ~name:"Age" ~kind:A.Attribute.Quasi;
        A.Attribute.make ~name:"Height" ~kind:A.Attribute.Quasi;
        A.Attribute.make ~name:"Weight" ~kind:A.Attribute.Sensitive;
      ]
    ~rows:
      A.Value.
        [
          [ Str "Alice"; Int 35; Int 185; Int 100 ];
          [ Str "Bob"; Int 33; Int 190; Int 102 ];
          [ Str "Carol"; Int 25; Int 182; Int 110 ];
          [ Str "Dave"; Int 27; Int 195; Int 111 ];
          [ Str "Eve"; Int 22; Int 170; Int 80 ];
          [ Str "Frank"; Int 28; Int 165; Int 110 ];
        ]

let table1_scheme : A.Kanon.scheme =
  [
    ("Age", A.Hierarchy.numeric ~widths:[ 10.0; 20.0 ] ());
    ("Height", A.Hierarchy.numeric ~widths:[ 20.0; 40.0 ] ());
  ]

let table1_released =
  A.Kanon.apply
    (A.Dataset.drop_identifiers table1_raw)
    table1_scheme
    [ ("Age", 1); ("Height", 1) ]

let value_policy : A.Value_risk.policy =
  { sensitive = "Weight"; closeness = 5.0; confidence = 0.9 }

let study_binding =
  Mdp_core.Pseudonym_risk.make_binding ~store:"AnonStudy"
    ~dataset:table1_released
    ~attr_fields:[ ("Age", age); ("Height", height); ("Weight", weight) ]
    ~policy:value_policy
