type ctx = { mutable rev_errors : string list }

let create () = { rev_errors = [] }

let errorf ctx fmt =
  Format.kasprintf (fun msg -> ctx.rev_errors <- msg :: ctx.rev_errors) fmt

let require ctx cond fmt =
  Format.kasprintf
    (fun msg -> if not cond then ctx.rev_errors <- msg :: ctx.rev_errors)
    fmt

let errors ctx = List.rev ctx.rev_errors

let result ctx v =
  match ctx.rev_errors with [] -> Ok v | _ -> Error (errors ctx)

let pp_errors ppf msgs =
  Format.pp_print_list
    ~pp_sep:Format.pp_print_newline
    (fun ppf m -> Format.fprintf ppf "- %s" m)
    ppf msgs
