(** Bidirectional string <-> dense-integer interning.

    Used to index actors and fields so privacy-state variables can live in
    bitsets. Identifiers are assigned in insertion order starting at 0. *)

type t

val create : unit -> t
val intern : t -> string -> int
(** Returns the existing id, or assigns the next one. *)

val find : t -> string -> int option
val find_exn : t -> string -> int
(** @raise Not_found if the string was never interned. *)

val name : t -> int -> string
(** @raise Invalid_argument on an unknown id. *)

val size : t -> int
val names : t -> string list
(** All interned strings in id order. *)

val of_list : string list -> t
