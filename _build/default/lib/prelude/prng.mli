(** Deterministic splittable PRNG (splitmix64).

    All randomised components (synthetic scenarios, dataset generators, the
    runtime simulator) take an explicit [Prng.t] so every run is
    reproducible from a seed, independent of the global [Random] state. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent stream; the parent advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool
val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive. *)

val choose : t -> 'a list -> 'a
(** Uniform element. @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list
val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal deviate. *)
