type t = { header : string list; mutable rev_rows : string list list }

let create ~header = { header; rev_rows = [] }

let add_row t row =
  if List.length row > List.length t.header then
    invalid_arg "Texttable.add_row: row longer than header";
  t.rev_rows <- row :: t.rev_rows

let pad row n = row @ List.init (n - List.length row) (fun _ -> "")

let render t =
  let ncols = List.length t.header in
  let rows = List.map (fun r -> pad r ncols) (List.rev t.rev_rows) in
  let all = t.header :: rows in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all)
  in
  let line cells =
    let padded =
      List.mapi
        (fun c cell -> cell ^ String.make (List.nth widths c - String.length cell) ' ')
        cells
    in
    String.concat "  " padded
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line t.header :: rule :: List.map line rows)

let pp ppf t = Format.pp_print_string ppf (render t)
