(** Error-accumulating validation.

    Model validation wants to report every problem at once rather than
    failing on the first; a [ctx] collects error messages and [result]
    returns either the value or all collected errors. *)

type ctx

val create : unit -> ctx
val errorf : ctx -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Record a formatted error message. *)

val require : ctx -> bool -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [require ctx cond fmt ...] records the message when [cond] is false.
    The format arguments are always consumed. *)

val errors : ctx -> string list
(** Messages in the order recorded. *)

val result : ctx -> 'a -> ('a, string list) Stdlib.result
(** [Ok v] when no errors were recorded, otherwise [Error messages]. *)

val pp_errors : Format.formatter -> string list -> unit
