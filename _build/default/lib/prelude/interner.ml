type t = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create () = { by_name = Hashtbl.create 16; by_id = Array.make 16 ""; next = 0 }

let grow t =
  if t.next >= Array.length t.by_id then begin
    let bigger = Array.make (2 * Array.length t.by_id) "" in
    Array.blit t.by_id 0 bigger 0 t.next;
    t.by_id <- bigger
  end

let intern t s =
  match Hashtbl.find_opt t.by_name s with
  | Some id -> id
  | None ->
    let id = t.next in
    grow t;
    t.by_id.(id) <- s;
    Hashtbl.add t.by_name s id;
    t.next <- id + 1;
    id

let find t s = Hashtbl.find_opt t.by_name s

let find_exn t s =
  match find t s with Some id -> id | None -> raise Not_found

let name t id =
  if id < 0 || id >= t.next then invalid_arg "Interner.name";
  t.by_id.(id)

let size t = t.next

let names t = List.init t.next (fun i -> t.by_id.(i))

let of_list l =
  let t = create () in
  List.iter (fun s -> ignore (intern t s)) l;
  t
