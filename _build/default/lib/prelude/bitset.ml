type t = { len : int; words : int array }

let bits_per_word = 63

let nwords len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { len; words = Array.make (max 1 (nwords len)) 0 }

let length t = t.len

let copy t = { t with words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let assign t i b = if b then set t i else clear t i

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount =
  (* Kernighan's loop: words are sparse in privacy states. *)
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  fun w -> go 0 w

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let same_len a b =
  if a.len <> b.len then invalid_arg "Bitset: length mismatch"

let equal a b = same_len a b; Array.for_all2 ( = ) a.words b.words

let compare a b =
  same_len a b;
  let rec go i =
    if i = Array.length a.words then 0
    else
      let c = Int.compare a.words.(i) b.words.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash t =
  Array.fold_left (fun acc w -> (acc * 1000003) lxor w) t.len t.words

let map2 f a b =
  same_len a b;
  { len = a.len; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let union_into ~dst src =
  same_len dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let subset a b =
  same_len a b;
  let rec go i =
    i = Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let iter f t =
  for i = 0 to t.len - 1 do
    if get t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list len l =
  let t = create len in
  List.iter (set t) l;
  t

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (to_list t)
