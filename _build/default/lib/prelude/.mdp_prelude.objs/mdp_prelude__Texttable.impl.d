lib/prelude/texttable.ml: Format List String
