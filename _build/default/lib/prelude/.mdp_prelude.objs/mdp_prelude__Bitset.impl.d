lib/prelude/bitset.ml: Array Format Int List
