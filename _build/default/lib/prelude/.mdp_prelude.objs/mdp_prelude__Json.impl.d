lib/prelude/json.ml: Buffer Char Float Format List Printf String
