lib/prelude/interner.mli:
