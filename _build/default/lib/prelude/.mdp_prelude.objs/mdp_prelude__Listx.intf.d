lib/prelude/listx.mli:
