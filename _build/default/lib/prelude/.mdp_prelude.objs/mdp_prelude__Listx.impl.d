lib/prelude/listx.ml: Float List
