lib/prelude/bitset.mli: Format
