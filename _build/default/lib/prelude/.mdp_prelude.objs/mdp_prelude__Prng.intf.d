lib/prelude/prng.mli:
