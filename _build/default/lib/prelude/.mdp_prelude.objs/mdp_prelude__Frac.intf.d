lib/prelude/frac.mli: Format
