lib/prelude/interner.ml: Array Hashtbl List
