lib/prelude/prng.ml: Array Float Int64 List
