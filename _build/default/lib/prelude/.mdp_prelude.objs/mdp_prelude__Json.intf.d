lib/prelude/json.mli: Format
