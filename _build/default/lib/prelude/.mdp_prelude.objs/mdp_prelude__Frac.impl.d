lib/prelude/frac.ml: Format Printf
