lib/prelude/texttable.mli: Format
