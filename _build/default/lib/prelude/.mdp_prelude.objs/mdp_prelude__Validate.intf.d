lib/prelude/validate.mli: Format Stdlib
