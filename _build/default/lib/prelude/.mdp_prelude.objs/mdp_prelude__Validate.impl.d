lib/prelude/validate.ml: Format List
