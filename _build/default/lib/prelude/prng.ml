type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next_raw t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_raw t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  (* Modulo bias is negligible for the bounds used here (<< 2^32). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_raw t) 1) (Int64.of_int bound))

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  bound *. mantissa /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_raw t) 1L = 1L

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range";
  lo + int t (hi - lo + 1)

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let gaussian t ~mean ~stddev =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
