(** Fixed-capacity mutable bitsets.

    A bitset is created with a fixed [length]; all operations on indices
    outside [0, length) raise [Invalid_argument]. Binary operations require
    operands of equal length. *)

type t

val create : int -> t
(** [create n] is a bitset of capacity [n] with all bits clear. *)

val length : t -> int
(** Capacity given at creation. *)

val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

val is_empty : t -> bool
val cardinal : t -> int
(** Number of set bits. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val union : t -> t -> t
(** Fresh bitset; operands unchanged. *)

val inter : t -> t -> t
val diff : t -> t -> t

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets every bit of [src] in [dst]. *)

val subset : t -> t -> bool
(** [subset a b] is true iff every bit set in [a] is set in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over set-bit indices in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val clear_all : t -> unit

val pp : Format.formatter -> t -> unit
(** Renders as e.g. [{1, 4, 7}]. *)
