type t = { num : int; den : int }

let make num den =
  if den <= 0 then invalid_arg "Frac.make: non-positive denominator";
  if num < 0 then invalid_arg "Frac.make: negative numerator";
  { num; den }

let to_float { num; den } = float_of_int num /. float_of_int den

let ge { num; den } x = float_of_int num >= x *. float_of_int den

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let reduce { num; den } =
  if num = 0 then { num = 0; den = 1 }
  else
    let g = gcd num den in
    { num = num / g; den = den / g }

let equal a b = a.num = b.num && a.den = b.den

let equal_value a b = a.num * b.den = b.num * a.den

let to_string { num; den } = Printf.sprintf "%d/%d" num den

let pp ppf f = Format.pp_print_string ppf (to_string f)
