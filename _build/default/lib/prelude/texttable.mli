(** Plain-text tables for reports and the bench harness.

    Columns are sized to content; cells are strings. Used to print the
    paper's Table I and risk reports in a shape comparable to the paper. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty.
    @raise Invalid_argument if longer than the header. *)

val render : t -> string
val pp : Format.formatter -> t -> unit
