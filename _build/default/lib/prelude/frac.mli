(** Exact non-negative fractions.

    The paper's Table I reports value risks as unreduced fractions
    (e.g. 2/4, not 1/2), because numerator and denominator carry meaning:
    occurrences within the equivalence set / size of the set. We therefore
    keep both and never reduce implicitly. *)

type t = { num : int; den : int }

val make : int -> int -> t
(** @raise Invalid_argument if the denominator is not positive or the
    numerator is negative. *)

val to_float : t -> float
val ge : t -> float -> bool
(** [ge f x] is [to_float f >= x], exact in the common cases. *)

val reduce : t -> t
val equal : t -> t -> bool
(** Structural equality (2/4 <> 1/2); use [equal_value] for numeric
    equality. *)

val equal_value : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
