(** Generation-time configurations.

    The paper's LTS states are privacy states; generating the reachable
    system additionally needs the operational context — which fields each
    datastore currently holds and which flows have executed. A [Config.t]
    bundles all three and is what the generator hash-conses; analyses
    project out the privacy state. *)

open Mdp_prelude

type t = {
  privacy : Privacy_state.t;
  stores : Bitset.t array;  (** Per store index: field indices present. *)
  executed : Bitset.t;  (** Flow indices already run. *)
}

val initial : Universe.t -> t
(** Absolute privacy, empty stores, no flows executed. *)

val copy : t -> t
val equal : t -> t -> bool
val hash : t -> int

val store_has : t -> store:int -> field:int -> bool
val executed : t -> flow:int -> bool

val pp : Universe.t -> Format.formatter -> t -> unit
(** Compact: the true privacy variables plus non-empty store contents. *)
