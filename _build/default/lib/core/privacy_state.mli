(** A user's privacy state (paper §II-B, Fig. 2): for every (actor, field)
    pair, two Booleans — whether the actor *has* identified the field and
    whether it *could*. Values are immutable; transitions build fresh
    states. *)

open Mdp_dataflow
open Mdp_prelude

type t = { has : Bitset.t; could : Bitset.t }

val absolute : Universe.t -> t
(** The absolute privacy state: every variable false (§III-A measures
    impact "relative to the absolute privacy state"). *)

val copy : t -> t
val equal : t -> t -> bool
val hash : t -> int

val has : Universe.t -> t -> actor:string -> field:Field.t -> bool
val could : Universe.t -> t -> actor:string -> field:Field.t -> bool
val has_i : t -> int -> bool
(** By variable index. *)

val could_i : t -> int -> bool

val identified_pairs : Universe.t -> t -> (string * Field.t) list
(** (actor, field) pairs with [has] or [could] true — the pairs whose
    sensitivity defines the state's sensitivity (§III-A). *)

val pp_table : Universe.t -> Format.formatter -> t -> unit
(** The Fig. 2 state-variable table: one row per actor, one column pair
    (has/could) per field. *)

val pp_compact : Universe.t -> Format.formatter -> t -> unit
(** One line, only the true variables: [Doctor has Name; Nurse could ...]. *)
