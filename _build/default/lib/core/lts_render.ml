let transition_style (tr : Plts.transition) =
  let base =
    match tr.label.Action.provenance with
    | Action.From_flow _ -> ""
    | Action.Potential -> "style=dashed"
    | Action.Inferred -> "style=dotted, color=red, fontcolor=red"
  in
  let risk_colour =
    match tr.label.Action.risk with
    | Some (Action.Disclosure_risk { level = Level.High; _ }) -> "color=red"
    | Some (Action.Disclosure_risk { level = Level.Medium; _ }) -> "color=orange"
    | Some (Action.Disclosure_risk { level = Level.Low; _ }) -> "color=blue"
    | Some (Action.Disclosure_risk { level = Level.None_; _ })
    | Some (Action.Value_risk _) | None ->
      ""
  in
  String.concat ", " (List.filter (( <> ) "") [ base; risk_colour ])

let to_dot ?(graph_name = "privacy_lts") ?(verbose_states = false) u lts =
  let state_label s =
    if verbose_states then
      Format.asprintf "s%d: %a" s
        (Privacy_state.pp_compact u)
        (Plts.state_data lts s).Config.privacy
    else Printf.sprintf "s%d" s
  in
  Plts.to_dot ~graph_name ~state_label ~transition_style lts

let summary u lts =
  ignore u;
  let kinds = Hashtbl.create 8 and provs = Hashtbl.create 4 in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0) in
  Plts.iter_transitions lts (fun tr ->
      bump kinds (Format.asprintf "%a" Action.pp_kind tr.label.Action.kind);
      bump provs
        (match tr.label.Action.provenance with
        | Action.From_flow _ -> "flow"
        | Action.Potential -> "potential"
        | Action.Inferred -> "inferred"));
  let render tbl =
    Hashtbl.fold (fun k v acc -> Printf.sprintf "%s %d" k v :: acc) tbl []
    |> List.sort String.compare
    |> String.concat ", "
  in
  Printf.sprintf "%d states, %d transitions (%s; %s)" (Plts.num_states lts)
    (Plts.num_transitions lts) (render kinds) (render provs)
