type signature = {
  actor : string;
  store : string option;
  kind : Action.kind;
  fields : string list;
}

type change = { signature : signature; before : Level.t; after : Level.t }

type t = {
  removed : change list;
  added : change list;
  changed : change list;
  unchanged : int;
}

let signature_of_finding (f : Disclosure_risk.finding) =
  {
    actor = f.action.Action.actor;
    store = f.action.Action.store;
    kind = f.action.Action.kind;
    fields =
      List.sort String.compare
        (List.map Mdp_dataflow.Field.name f.action.Action.fields);
  }

(* Worst level per signature: the same access can appear from many LTS
   states; the report's risk for it is the maximum. *)
let levels_by_signature (report : Disclosure_risk.report) =
  List.fold_left
    (fun acc (f : Disclosure_risk.finding) ->
      let s = signature_of_finding f in
      let existing = Option.value (List.assoc_opt s acc) ~default:Level.None_ in
      (s, Level.max existing f.level) :: List.remove_assoc s acc)
    [] report.findings

let diff ~before ~after =
  let b = levels_by_signature before and a = levels_by_signature after in
  let removed =
    List.filter_map
      (fun (s, lvl) ->
        if List.mem_assoc s a then None
        else Some { signature = s; before = lvl; after = Level.None_ })
      b
  in
  let added =
    List.filter_map
      (fun (s, lvl) ->
        if List.mem_assoc s b then None
        else Some { signature = s; before = Level.None_; after = lvl })
      a
  in
  let changed, unchanged =
    List.fold_left
      (fun (changed, unchanged) (s, before_lvl) ->
        match List.assoc_opt s a with
        | Some after_lvl when not (Level.equal before_lvl after_lvl) ->
          ({ signature = s; before = before_lvl; after = after_lvl } :: changed,
           unchanged)
        | Some _ -> (changed, unchanged + 1)
        | None -> (changed, unchanged))
      ([], 0) b
  in
  { removed; added; changed = List.rev changed; unchanged }

let improved t =
  t.added = []
  && List.for_all (fun c -> Level.compare c.after c.before < 0) t.changed

let pp_signature ppf s =
  Format.fprintf ppf "%a of %s by %s" Action.pp_kind s.kind
    (match s.store with Some st -> st | None -> "(no store)")
    s.actor;
  Format.fprintf ppf " [%s]" (String.concat ", " s.fields)

let pp ppf t =
  let change verb c =
    Format.fprintf ppf "  %s %a: %a -> %a@," verb pp_signature c.signature
      Level.pp c.before Level.pp c.after
  in
  Format.fprintf ppf "@[<v>";
  List.iter (change "removed") t.removed;
  List.iter (change "added  ") t.added;
  List.iter (change "changed") t.changed;
  Format.fprintf ppf "  (%d finding signature(s) unchanged)@]" t.unchanged
