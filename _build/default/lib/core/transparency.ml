open Mdp_dataflow

type status = Has | Could

type entry = {
  actor : string;
  field : Field.t;
  status : status;
  via : Action.t list;
}

let witness lts pred =
  match Plts.path_to lts pred with
  | Some steps -> List.map fst steps
  | None -> []

let entries_of_vars u lts vars =
  (* vars: (var index, status) pairs; produce ordered entries with the
     earliest witness for each fact. *)
  List.map
    (fun (v, status) ->
      let actor = Universe.actor_name u (Universe.var_actor u v) in
      let field = Universe.field_at u (Universe.var_field u v) in
      let via =
        witness lts (fun s ->
            let p = (Plts.state_data lts s : Config.t).Config.privacy in
            match status with
            | Has -> Privacy_state.has_i p v
            | Could -> Privacy_state.could_i p v)
      in
      { actor; field; status; via })
    vars

let collect u (privacy : Privacy_state.t) =
  let acc = ref [] in
  for v = Universe.nvars u - 1 downto 0 do
    if Privacy_state.has_i privacy v then acc := (v, Has) :: !acc
    else if Privacy_state.could_i privacy v then acc := (v, Could) :: !acc
  done;
  !acc

let at_state u lts state =
  let cfg : Config.t = Plts.state_data lts state in
  entries_of_vars u lts (collect u cfg.Config.privacy)

let worst_case u lts =
  (* Union of variables over reachable states; Has dominates Could. *)
  let n = Universe.nvars u in
  let has = Array.make n false and could = Array.make n false in
  List.iter
    (fun s ->
      let p = (Plts.state_data lts s : Config.t).Config.privacy in
      for v = 0 to n - 1 do
        if Privacy_state.has_i p v then has.(v) <- true;
        if Privacy_state.could_i p v then could.(v) <- true
      done)
    (Plts.reachable lts);
  let vars = ref [] in
  for v = n - 1 downto 0 do
    if has.(v) then vars := (v, Has) :: !vars
    else if could.(v) then vars := (v, Could) :: !vars
  done;
  entries_of_vars u lts !vars

let for_actor entries actor = List.filter (fun e -> e.actor = actor) entries

let pp_entry ppf e =
  Format.fprintf ppf "%s %s %s%s" e.actor
    (match e.status with Has -> "has seen" | Could -> "could see")
    (Field.name e.field)
    (match e.via with
    | [] -> ""
    | trace ->
      Printf.sprintf " (via %s)"
        (String.concat " ; "
           (List.map
              (fun (a : Action.t) ->
                Format.asprintf "%a by %s" Action.pp_kind a.kind a.actor)
              trace)))

let pp ppf entries =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry ppf entries
