open Mdp_dataflow

type t =
  | Never_identifies of { actor : string; field : Field.t }
  | Never_could_identify of { actor : string; field : Field.t }
  | Only_for_purposes of { field : Field.t; purposes : string list }
  | No_action_by of { actor : string; kind : Action.kind }
  | Max_disclosure_risk of Level.t

type violation = { requirement : t; witness : Action.t list }

(* A requirement is violated either at a state (predicate on privacy
   variables) or on a transition (predicate on the label). Both reduce to
   a shortest-path search; for transition requirements we search for the
   earliest reachable source state with an offending outgoing label and
   extend the witness by that label. *)

let state_violation lts pred =
  match
    Plts.path_to lts (fun s ->
        pred (Plts.state_data lts s : Config.t).Config.privacy)
  with
  | Some steps -> Some (List.map fst steps)
  | None -> None

let transition_violation lts pred =
  (* BFS over reachable states, checking outgoing labels in order. *)
  let reachable = Plts.reachable lts in
  let rec scan = function
    | [] -> None
    | s :: rest -> (
      match List.find_opt (fun (label, _) -> pred label) (Plts.successors lts s) with
      | Some (label, _) -> (
        match Plts.path_to lts (fun s' -> s' = s) with
        | Some steps -> Some (List.map fst steps @ [ label ])
        | None -> None)
      | None -> scan rest)
  in
  scan reachable

let touches field (label : Action.t) =
  List.exists (Field.equal field) label.fields

let violation_of u lts requirement =
  let witness =
    match requirement with
    | Never_identifies { actor; field } ->
      state_violation lts (fun p -> Privacy_state.has u p ~actor ~field)
    | Never_could_identify { actor; field } ->
      state_violation lts (fun p -> Privacy_state.could u p ~actor ~field)
    | Only_for_purposes { field; purposes } ->
      transition_violation lts (fun label ->
          touches field label
          &&
          match label.Action.purpose with
          | Some p -> not (List.mem p purposes)
          | None -> true)
    | No_action_by { actor; kind } ->
      transition_violation lts (fun label ->
          label.Action.actor = actor && label.Action.kind = kind)
    | Max_disclosure_risk max_level ->
      transition_violation lts (fun label ->
          match label.Action.risk with
          | Some (Action.Disclosure_risk { level; _ }) ->
            Level.compare level max_level > 0
          | Some (Action.Value_risk _) | None -> false)
  in
  Option.map (fun witness -> { requirement; witness }) witness

let kind_of_string = function
  | "collect" -> Some Action.Collect
  | "create" -> Some Action.Create
  | "read" -> Some Action.Read
  | "disclose" -> Some Action.Disclose
  | "anon" -> Some Action.Anon
  | "delete" -> Some Action.Delete
  | _ -> None

let kind_to_string k = Format.asprintf "%a" Action.pp_kind k

let of_spec spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "bad requirement %S (expected key=value)" spec)
  | Some i -> (
    let key = String.sub spec 0 i in
    let value = String.sub spec (i + 1) (String.length spec - i - 1) in
    let actor_field () =
      match String.split_on_char ':' value with
      | [ actor; field ] -> Ok (actor, Field.of_name field)
      | _ -> Error (Printf.sprintf "expected ACTOR:FIELD in %S" spec)
    in
    match key with
    | "never" ->
      Result.map
        (fun (actor, field) -> Never_identifies { actor; field })
        (actor_field ())
    | "nevercould" ->
      Result.map
        (fun (actor, field) -> Never_could_identify { actor; field })
        (actor_field ())
    | "noaction" -> (
      match String.split_on_char ':' value with
      | [ actor; kind ] -> (
        match kind_of_string kind with
        | Some kind -> Ok (No_action_by { actor; kind })
        | None -> Error (Printf.sprintf "unknown action kind in %S" spec))
      | _ -> Error (Printf.sprintf "expected ACTOR:KIND in %S" spec))
    | "purposes" -> (
      match String.split_on_char ':' value with
      | [ field; purposes ] ->
        Ok
          (Only_for_purposes
             {
               field = Field.of_name field;
               purposes = String.split_on_char ';' purposes;
             })
      | _ -> Error (Printf.sprintf "expected FIELD:p1;p2 in %S" spec))
    | "maxrisk" -> (
      match Level.of_string value with
      | Some level -> Ok (Max_disclosure_risk level)
      | None -> Error (Printf.sprintf "unknown level in %S" spec))
    | _ -> Error (Printf.sprintf "unknown requirement kind %S" key))

let to_spec = function
  | Never_identifies { actor; field } ->
    Printf.sprintf "never=%s:%s" actor (Field.name field)
  | Never_could_identify { actor; field } ->
    Printf.sprintf "nevercould=%s:%s" actor (Field.name field)
  | No_action_by { actor; kind } ->
    Printf.sprintf "noaction=%s:%s" actor (kind_to_string kind)
  | Only_for_purposes { field; purposes } ->
    Printf.sprintf "purposes=%s:%s" (Field.name field)
      (String.concat ";" purposes)
  | Max_disclosure_risk level ->
    Printf.sprintf "maxrisk=%s" (Level.to_string level)

let check u lts requirements =
  List.filter_map (violation_of u lts) requirements

let holds u lts requirement = violation_of u lts requirement = None

let pp ppf = function
  | Never_identifies { actor; field } ->
    Format.fprintf ppf "%s never identifies %s" actor (Field.name field)
  | Never_could_identify { actor; field } ->
    Format.fprintf ppf "%s could never identify %s" actor (Field.name field)
  | Only_for_purposes { field; purposes } ->
    Format.fprintf ppf "%s only for purposes {%s}" (Field.name field)
      (String.concat ", " purposes)
  | No_action_by { actor; kind } ->
    Format.fprintf ppf "%s never performs %a" actor Action.pp_kind kind
  | Max_disclosure_risk level ->
    Format.fprintf ppf "no transition risk above %a" Level.pp level

let pp_violation ppf v =
  Format.fprintf ppf "@[<v>VIOLATED: %a@,witness:@,  @[<v>%a@]@]" pp
    v.requirement
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Action.pp)
    v.witness
