(** End-to-end façade over the pipeline: model -> generated LTS ->
    consistency + disclosure risk + pseudonymisation risk -> report.
    This is the API the examples and the CLI drive; the individual
    analyses remain available for finer control. *)

type params = {
  options : Generate.options;
  matrix : Risk_matrix.t;
  model : Disclosure_risk.likelihood_model;
  profile : User_profile.t option;
  bindings : Pseudonym_risk.binding list;
}

type t = {
  params : params;
  universe : Universe.t;
  lts : Plts.t;  (** Annotated in place by the analyses. *)
  consistency : Consistency.gap list;
  disclosure : Disclosure_risk.report option;
      (** [None] when no profile was supplied. *)
  pseudonym : Pseudonym_risk.risk_transition list;
}

val run :
  ?options:Generate.options ->
  ?matrix:Risk_matrix.t ->
  ?model:Disclosure_risk.likelihood_model ->
  ?profile:User_profile.t ->
  ?bindings:Pseudonym_risk.binding list ->
  Mdp_dataflow.Diagram.t ->
  Mdp_policy.Policy.t ->
  t
(** @raise Invalid_argument when the policy does not validate against the
    diagram. *)

val rerun_with_policy : t -> Mdp_policy.Policy.t -> t
(** The §IV-A design loop: same model, profile, bindings and parameters;
    edited policy; everything regenerated. *)

val pp_summary : Format.formatter -> t -> unit
