(** Rendering of the privacy LTS (paper Fig. 3 / Fig. 4 shape): flow
    transitions solid, policy-derived potential actions dashed,
    §III-B inferred risk-transitions dotted and labelled with their
    violation counts; risk-annotated reads are coloured by level. *)

val to_dot :
  ?graph_name:string -> ?verbose_states:bool -> Universe.t -> Plts.t -> string
(** [verbose_states] prints the true privacy variables inside each node
    rather than bare state numbers (Fig. 2's table, compacted). *)

val summary : Universe.t -> Plts.t -> string
(** One-paragraph textual account: state/transition counts, counts per
    action kind and provenance. *)
