open Mdp_prelude

type t = {
  privacy : Privacy_state.t;
  stores : Bitset.t array;
  executed : Bitset.t;
}

let initial u =
  {
    privacy = Privacy_state.absolute u;
    stores =
      Array.init (Universe.nstores u) (fun _ -> Bitset.create (Universe.nfields u));
    executed = Bitset.create (max 1 (Universe.nflows u));
  }

let copy t =
  {
    privacy = Privacy_state.copy t.privacy;
    stores = Array.map Bitset.copy t.stores;
    executed = Bitset.copy t.executed;
  }

let equal a b =
  Privacy_state.equal a.privacy b.privacy
  && Bitset.equal a.executed b.executed
  && Array.for_all2 Bitset.equal a.stores b.stores

let hash t =
  let h = ref (Privacy_state.hash t.privacy) in
  Array.iter (fun s -> h := (!h * 65599) lxor Bitset.hash s) t.stores;
  (!h * 65599) lxor Bitset.hash t.executed

let store_has t ~store ~field = Bitset.get t.stores.(store) field
let executed t ~flow = Bitset.get t.executed flow

let pp u ppf t =
  Format.fprintf ppf "@[<v>%a" (Privacy_state.pp_compact u) t.privacy;
  Array.iteri
    (fun s contents ->
      if not (Bitset.is_empty contents) then
        Format.fprintf ppf "@,%s = {%s}" (Universe.store_name u s)
          (String.concat ", "
             (List.map
                (fun f -> Mdp_dataflow.Field.name (Universe.field_at u f))
                (Bitset.to_list contents))))
    t.stores;
  Format.fprintf ppf "@]"
