(** Population-level risk analysis.

    §III-A notes the analysis "takes the user privacy control
    requirements ... hence there is an instance for each user. The
    process can be executed with running users of the system, or with
    simulated users in the development phase." This module runs the
    disclosure analysis for a whole population of (simulated or real)
    profiles over one generated LTS and aggregates the results into a
    design-time report: how many users face which worst risk level, and
    which (actor, store) accesses drive it. *)

type spec = {
  seed : int;
  size : int;
  westin_mix : (Questionnaire.westin * float) list;
      (** Segment weights; normalised internally. Westin's surveys put
          roughly 25/55/20 across
          fundamentalists/pragmatists/unconcerned. *)
  agree_probability : float;
      (** Independent probability that a user agrees to each service. *)
}

val default_mix : (Questionnaire.westin * float) list

val simulate : spec -> Mdp_dataflow.Diagram.t -> User_profile.t list
(** Deterministic in [spec.seed]. Every user answers the questionnaire
    with their segment's baseline (no per-field overrides). *)

type hotspot = {
  actor : string;
  store : string option;
  affected : int;  (** Users with at least one finding on this access. *)
  worst : Level.t;
}

type aggregate = {
  total : int;
  by_level : (Level.t * int) list;
      (** Users per worst-finding level, [None_] first. Sums to
          [total]. *)
  hotspots : hotspot list;  (** Sorted worst level first, then reach. *)
}

val analyse :
  ?matrix:Risk_matrix.t ->
  ?model:Disclosure_risk.likelihood_model ->
  Universe.t ->
  Plts.t ->
  User_profile.t list ->
  aggregate
(** The LTS is generated once and shared; per-profile label annotations
    are overwritten on each pass and left in the last profile's state. *)

val pp_aggregate : Format.formatter -> aggregate -> unit
