(** Differencing two disclosure-risk reports.

    The §IV-A workflow is iterative — analyse, edit the policy,
    re-analyse; this module states precisely what an edit changed:
    findings that disappeared, appeared, or moved between levels.
    Findings are identified by their access signature (actor, store,
    action kind, field set), not by LTS state ids, which differ across
    regenerations. *)

type signature = {
  actor : string;
  store : string option;
  kind : Action.kind;
  fields : string list;  (** Sorted field names. *)
}

type change = {
  signature : signature;
  before : Level.t;  (** [None_] when the finding is new. *)
  after : Level.t;  (** [None_] when the finding disappeared. *)
}

type t = {
  removed : change list;
  added : change list;
  changed : change list;  (** Present in both with different levels. *)
  unchanged : int;
}

val signature_of_finding : Disclosure_risk.finding -> signature
val diff : before:Disclosure_risk.report -> after:Disclosure_risk.report -> t
val improved : t -> bool
(** No added findings and no finding whose level rose. *)

val pp : Format.formatter -> t -> unit
