open Mdp_dataflow

type westin = Fundamentalist | Pragmatist | Unconcerned

let baseline = function
  | Fundamentalist -> 0.8
  | Pragmatist -> 0.5
  | Unconcerned -> 0.15

type concern = Not_concerned | Somewhat_concerned | Very_concerned

let concern_sensitivity = function
  | Not_concerned -> 0.1
  | Somewhat_concerned -> 0.5
  | Very_concerned -> 0.9

type answer = { field : Field.t; concern : concern }

let profile diagram westin ~agreed_services ~answers =
  let answered f =
    List.find_opt (fun a -> Field.equal a.field f) answers
  in
  let base_fields =
    List.filter (fun f -> not (Field.is_anon f)) (Diagram.all_fields diagram)
  in
  let from_fields =
    List.map
      (fun f ->
        match answered f with
        | Some a -> (f, concern_sensitivity a.concern)
        | None -> (f, baseline westin))
      base_fields
  in
  (* Explicit answers about anon variants are honoured too. *)
  let extra_anon =
    List.filter_map
      (fun a ->
        if Field.is_anon a.field then
          Some (a.field, concern_sensitivity a.concern)
        else None)
      answers
  in
  User_profile.make
    ~sensitivities:(from_fields @ extra_anon)
    ~agreed_services ()

let pp_westin ppf w =
  Format.pp_print_string ppf
    (match w with
    | Fundamentalist -> "fundamentalist"
    | Pragmatist -> "pragmatist"
    | Unconcerned -> "unconcerned")
