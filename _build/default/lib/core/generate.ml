open Mdp_dataflow
open Mdp_prelude

type ordering = Strict | Data_driven

type options = {
  ordering : ordering;
  potential_reads : bool;
  granular_reads : bool;
  potential_deletes : bool;
  enforce_policy : bool;
  services : string list option;
  max_states : int;
}

let default_options =
  {
    ordering = Strict;
    potential_reads = true;
    granular_reads = false;
    potential_deletes = false;
    enforce_policy = true;
    services = None;
    max_states = 100_000;
  }

let flow_only =
  { default_options with potential_reads = false; potential_deletes = false }

(* The schema label of an action touching [fields] of [store]: the schema
   containing them if unique, otherwise the store id itself. *)
let schema_label (store : Datastore.t) fields =
  let schemas =
    Listx.dedup
      (List.filter_map
         (fun f ->
           Option.map (fun (s : Schema.t) -> s.id) (Datastore.schema_of_field store f))
         fields)
  in
  match schemas with [ s ] -> Some s | [] | _ :: _ -> Some store.id

let field_indices u fields = List.map (Universe.field_index u) fields

let set_has u (privacy : Privacy_state.t) ~actor fields =
  List.iter
    (fun f -> Bitset.set privacy.has (Universe.var u ~actor ~field:f))
    fields

(* Recompute every [could] bit from current store contents: an actor could
   identify a field iff some store holds it and the policy lets the actor
   read it there. Used after deletes; creation updates incrementally. *)
let recompute_could u (cfg : Config.t) =
  Bitset.clear_all cfg.privacy.could;
  Array.iteri
    (fun s contents ->
      Bitset.iter
        (fun f ->
          List.iter
            (fun a ->
              Bitset.set cfg.privacy.could (Universe.var u ~actor:a ~field:f))
            (Universe.readers u ~store:s ~field:f))
        contents)
    cfg.stores

let set_could_for_creation u (cfg : Config.t) ~store fields =
  List.iter
    (fun f ->
      List.iter
        (fun a -> Bitset.set cfg.privacy.could (Universe.var u ~actor:a ~field:f))
        (Universe.readers u ~store ~field:f))
    fields

(* Which flows are in scope, with their indices and strict-mode
   prerequisites, precomputed once per run. *)
type flow_info = {
  index : int;
  service : Service.t;
  flow : Flow.t;
  kind : Flow.action_kind;
  prereqs : int list; (* same-service flows with smaller order *)
}

let flows_in_scope u options =
  let in_scope (svc : Service.t) =
    match options.services with
    | None -> true
    | Some ids -> List.mem svc.id ids
  in
  let all = List.init (Universe.nflows u) (fun i -> (i, Universe.flow_at u i)) in
  List.filter_map
    (fun (index, ((svc : Service.t), (flow : Flow.t))) ->
      if not (in_scope svc) then None
      else
        let prereqs =
          List.filter_map
            (fun (j, ((svc' : Service.t), (flow' : Flow.t))) ->
              if svc'.id = svc.id && flow'.order < flow.order then Some j
              else None)
            all
        in
        Some
          {
            index;
            service = svc;
            flow;
            kind = Diagram.classify (Universe.diagram u) flow;
            prereqs;
          })
    all

let source_holds u (cfg : Config.t) kind (flow : Flow.t) =
  match flow.src with
  | Flow.User -> true (* the subject always holds their own raw data *)
  | Flow.Actor _ when kind = Flow.Create ->
    (* Creating a record is authorship: the Doctor creates a Diagnosis it
       never collected. The author's [has] bits are set by the action.
       [Anon] is different -- it transforms data the actor already holds,
       so it falls through to the possession check below. *)
    true
  | Flow.Actor a ->
    let ai = Universe.actor_index u a in
    List.for_all
      (fun f ->
        Bitset.get cfg.privacy.has (Universe.var u ~actor:ai ~field:f))
      (field_indices u flow.fields)
  | Flow.Store s ->
    let si = Universe.store_index u s in
    List.for_all
      (fun f -> Config.store_has cfg ~store:si ~field:f)
      (field_indices u flow.fields)

let flow_enabled options (cfg : Config.t) info =
  (not (Config.executed cfg ~flow:info.index))
  && (match options.ordering with
     | Data_driven -> true
     | Strict -> List.for_all (fun j -> Config.executed cfg ~flow:j) info.prereqs)

(* Enforcement at the datastore interface: a [read] delivers only the
   fields the policy lets the actor read; a [create]/[anon] persists only
   the fields the policy lets the author write (for [anon], permission is
   checked on the anon variant actually written). An empty result disables
   the flow, as a fully denied operation would fail at run time. *)
let effective_fields u options info =
  if not options.enforce_policy then info.flow.Flow.fields
  else
    let diagram = Universe.diagram u and policy = Universe.policy u in
    match info.kind with
    | Flow.Collect | Flow.Disclose -> info.flow.Flow.fields
    | Flow.Read ->
      let store = Flow.node_name info.flow.Flow.src
      and actor = Flow.node_name info.flow.Flow.dst in
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor
            Mdp_policy.Permission.Read ~store f)
        info.flow.Flow.fields
    | Flow.Create ->
      let store = Flow.node_name info.flow.Flow.dst
      and actor = Flow.node_name info.flow.Flow.src in
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor
            Mdp_policy.Permission.Write ~store f)
        info.flow.Flow.fields
    | Flow.Anon ->
      let store = Flow.node_name info.flow.Flow.dst
      and actor = Flow.node_name info.flow.Flow.src in
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor
            Mdp_policy.Permission.Write ~store (Field.anon_of f))
        info.flow.Flow.fields

let apply_flow u (cfg : Config.t) info eff_fields =
  let cfg' = Config.copy cfg in
  Bitset.set cfg'.executed info.index;
  let flow = { info.flow with Flow.fields = eff_fields } in
  let provenance =
    Action.From_flow { service = info.service.id; order = flow.order }
  in
  let action =
    match info.kind with
    | Flow.Collect ->
      let actor = Flow.node_name flow.dst in
      set_has u cfg'.privacy ~actor:(Universe.actor_index u actor)
        (field_indices u flow.fields);
      Action.make ~purpose:flow.purpose ~kind:Action.Collect
        ~fields:flow.fields ~actor provenance
    | Flow.Disclose ->
      let src = Flow.node_name flow.src and dst = Flow.node_name flow.dst in
      set_has u cfg'.privacy ~actor:(Universe.actor_index u dst)
        (field_indices u flow.fields);
      Action.make ~purpose:flow.purpose ~kind:Action.Disclose
        ~fields:flow.fields ~actor:src provenance
    | Flow.Create ->
      let actor = Flow.node_name flow.src in
      let store_id = Flow.node_name flow.dst in
      let si = Universe.store_index u store_id in
      let fis = field_indices u flow.fields in
      set_has u cfg'.privacy ~actor:(Universe.actor_index u actor) fis;
      List.iter (Bitset.set cfg'.stores.(si)) fis;
      set_could_for_creation u cfg' ~store:si fis;
      let store = Universe.store_at u si in
      Action.make ?schema:(schema_label store flow.fields) ~store:store.id
        ~purpose:flow.purpose ~kind:Action.Create ~fields:flow.fields ~actor
        provenance
    | Flow.Anon ->
      let actor = Flow.node_name flow.src in
      let store_id = Flow.node_name flow.dst in
      let si = Universe.store_index u store_id in
      let anon_fields = List.map Field.anon_of flow.fields in
      let fis = field_indices u anon_fields in
      List.iter (Bitset.set cfg'.stores.(si)) fis;
      set_could_for_creation u cfg' ~store:si fis;
      let store = Universe.store_at u si in
      Action.make ?schema:(schema_label store anon_fields) ~store:store.id
        ~purpose:flow.purpose ~kind:Action.Anon ~fields:flow.fields ~actor
        provenance
    | Flow.Read ->
      let actor = Flow.node_name flow.dst in
      let store_id = Flow.node_name flow.src in
      let si = Universe.store_index u store_id in
      set_has u cfg'.privacy ~actor:(Universe.actor_index u actor)
        (field_indices u flow.fields);
      let store = Universe.store_at u si in
      Action.make ?schema:(schema_label store flow.fields) ~store:store.id
        ~purpose:flow.purpose ~kind:Action.Read ~fields:flow.fields ~actor
        provenance
  in
  (action, cfg')

(* Policy-derived reads: fields present in the store, readable by the
   actor, and not yet identified by it (reads that change no state are
   omitted to keep the LTS acyclic). *)
let potential_reads u options (cfg : Config.t) =
  let transitions = ref [] in
  for a = 0 to Universe.nactors u - 1 do
    for s = 0 to Universe.nstores u - 1 do
      let fresh =
        List.filter
          (fun f ->
            Config.store_has cfg ~store:s ~field:f
            && not (Bitset.get cfg.privacy.has (Universe.var u ~actor:a ~field:f)))
          (Universe.readable_by u ~actor:a ~store:s)
      in
      let emit fis =
        let cfg' = Config.copy cfg in
        set_has u cfg'.privacy ~actor:a fis;
        let store = Universe.store_at u s in
        let fields = List.map (Universe.field_at u) fis in
        let action =
          Action.make ?schema:(schema_label store fields) ~store:store.id
            ~kind:Action.Read ~fields ~actor:(Universe.actor_name u a)
            Action.Potential
        in
        transitions := (action, cfg') :: !transitions
      in
      if fresh <> [] then
        if options.granular_reads then List.iter (fun f -> emit [ f ]) fresh
        else emit fresh
    done
  done;
  !transitions

let potential_deletes u (cfg : Config.t) =
  let transitions = ref [] in
  for s = 0 to Universe.nstores u - 1 do
    if not (Bitset.is_empty cfg.stores.(s)) then
      List.iter
        (fun a ->
          let cfg' = Config.copy cfg in
          let fields =
            List.map (Universe.field_at u) (Bitset.to_list cfg.stores.(s))
          in
          Bitset.clear_all cfg'.stores.(s);
          recompute_could u cfg';
          let store = Universe.store_at u s in
          let action =
            Action.make ?schema:(schema_label store fields) ~store:store.id
              ~kind:Action.Delete ~fields ~actor:(Universe.actor_name u a)
              Action.Potential
          in
          transitions := (action, cfg') :: !transitions)
        (Universe.deleters u ~store:s)
  done;
  !transitions

let run ?(options = default_options) u =
  let infos = flows_in_scope u options in
  let step cfg =
    let from_flows =
      List.filter_map
        (fun info ->
          if not (flow_enabled options cfg info) then None
          else
            match effective_fields u options info with
            | [] -> None
            | eff ->
              if
                source_holds u cfg info.kind
                  { info.flow with Flow.fields = eff }
              then Some (apply_flow u cfg info eff)
              else None)
        infos
    in
    let reads = if options.potential_reads then potential_reads u options cfg else [] in
    let deletes = if options.potential_deletes then potential_deletes u cfg else [] in
    from_flows @ reads @ deletes
  in
  Plts.explore ~max_states:options.max_states ~init:(Config.initial u) ~step ()
