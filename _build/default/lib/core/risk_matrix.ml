type t = {
  impact_thresholds : float * float;
  likelihood_thresholds : float * float;
  table : Level.t array array;
}

let default_table =
  [|
    [| Level.Low; Level.Low; Level.Medium |];
    [| Level.Low; Level.Medium; Level.High |];
    [| Level.Medium; Level.High; Level.High |];
  |]

let make ?(impact_thresholds = (0.4, 0.7)) ?(likelihood_thresholds = (0.1, 0.5))
    ?(table = default_table) () =
  let check (a, b) what =
    if not (0.0 < a && a < b) then
      invalid_arg (Printf.sprintf "Risk_matrix.make: bad %s thresholds" what)
  in
  check impact_thresholds "impact";
  check likelihood_thresholds "likelihood";
  if Array.length table <> 3 || Array.exists (fun r -> Array.length r <> 3) table
  then invalid_arg "Risk_matrix.make: table must be 3x3";
  { impact_thresholds; likelihood_thresholds; table }

let default = make ()

let categorise (a, b) x =
  if x <= 0.0 then Level.None_
  else if x < a then Level.Low
  else if x < b then Level.Medium
  else Level.High

let impact_level t x = categorise t.impact_thresholds x
let likelihood_level t x = categorise t.likelihood_thresholds x

let index = function
  | Level.Low -> 0
  | Level.Medium -> 1
  | Level.High -> 2
  | Level.None_ -> invalid_arg "Risk_matrix: None_ has no table index"

let level t ~impact ~likelihood =
  match (impact, likelihood) with
  | Level.None_, _ | _, Level.None_ -> Level.None_
  | _ -> t.table.(index impact).(index likelihood)

let assess t ~impact ~likelihood =
  let i = impact_level t impact and l = likelihood_level t likelihood in
  Action.Disclosure_risk { impact = i; likelihood = l; level = level t ~impact:i ~likelihood:l }
