(** Machine-readable export of analysis results.

    The paper motivates returning analysis output to users and feeding it
    into privacy policies ("the information output from the analysis
    [could] form part of the privacy policy explained to users"); this
    module serialises a completed {!Analysis.t} as JSON for exactly such
    downstream consumption. *)

val action : Action.t -> Mdp_prelude.Json.t
val finding : Disclosure_risk.finding -> Mdp_prelude.Json.t
val risk_transition : Pseudonym_risk.risk_transition -> Mdp_prelude.Json.t
val consistency_gap : Consistency.gap -> Mdp_prelude.Json.t

val analysis : Analysis.t -> Mdp_prelude.Json.t
(** Top-level object: model statistics, consistency gaps, the disclosure
    report (non-allowed actors, findings with witnesses, exposures) and
    the pseudonymisation risk-transitions. *)

val to_string : Analysis.t -> string
(** Pretty-printed {!analysis}. *)
