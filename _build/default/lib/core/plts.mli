(** The privacy LTS: the {!Mdp_lts.Lts} instance over generation
    {!Config}s and {!Action} labels. A single shared instantiation so the
    generator and every analysis agree on the type. *)

module State : Mdp_lts.Lts.STATE with type t = Config.t

include module type of Mdp_lts.Lts.Make (State) (Action)
