(** Model/policy consistency: does the access-control policy actually
    permit the behaviour the data-flow diagrams prescribe? A flow the
    policy denies is a defect in one of the two artifacts (cf. the
    paper's §V discussion of behaviour-vs-policy checking — our LTS
    supports the same analysis directly on the design artifacts). *)

open Mdp_dataflow

type gap = {
  service : string;
  flow : Flow.t;
  actor : string;
  store : string;
  missing : Mdp_policy.Permission.t;
  fields : Field.t list;  (** The denied fields. *)
}

val check : Universe.t -> gap list
(** [read] flows need the destination actor's Read on every field;
    [create]/[anon] flows need the source actor's Write on every created
    field. [collect]/[disclose] flows touch no store and cannot gap. *)

val pp_gap : Format.formatter -> gap -> unit
