open Mdp_dataflow
module Prng = Mdp_prelude.Prng
module Listx = Mdp_prelude.Listx

type spec = {
  seed : int;
  size : int;
  westin_mix : (Questionnaire.westin * float) list;
  agree_probability : float;
}

let default_mix =
  [
    (Questionnaire.Fundamentalist, 0.25);
    (Questionnaire.Pragmatist, 0.55);
    (Questionnaire.Unconcerned, 0.20);
  ]

let pick_segment rng mix =
  let total = Listx.sum_byf snd mix in
  let x = Prng.float rng total in
  let rec go acc = function
    | [ (w, _) ] -> w
    | (w, p) :: rest -> if x < acc +. p then w else go (acc +. p) rest
    | [] -> invalid_arg "Population: empty westin mix"
  in
  go 0.0 mix

let simulate spec diagram =
  if spec.westin_mix = [] then invalid_arg "Population.simulate: empty mix";
  let rng = Prng.create ~seed:spec.seed in
  let services = List.map (fun (s : Service.t) -> s.id) diagram.Diagram.services in
  List.init spec.size (fun _ ->
      let segment = pick_segment rng spec.westin_mix in
      let agreed =
        List.filter (fun _ -> Prng.float rng 1.0 < spec.agree_probability) services
      in
      Questionnaire.profile diagram segment ~agreed_services:agreed ~answers:[])

type hotspot = {
  actor : string;
  store : string option;
  affected : int;
  worst : Level.t;
}

type aggregate = {
  total : int;
  by_level : (Level.t * int) list;
  hotspots : hotspot list;
}

let analyse ?matrix ?model u lts profiles =
  let level_counts = Hashtbl.create 4 in
  let hotspot_tbl = Hashtbl.create 16 in
  List.iter
    (fun profile ->
      let report = Disclosure_risk.analyse ?matrix ?model u lts profile in
      let worst = Disclosure_risk.max_level report in
      Hashtbl.replace level_counts worst
        (1 + Option.value (Hashtbl.find_opt level_counts worst) ~default:0);
      (* Each distinct (actor, store) with a finding counts once per
         user. *)
      let accesses =
        Listx.dedup
          (List.map
             (fun (f : Disclosure_risk.finding) ->
               (f.action.Action.actor, f.action.Action.store, f.level))
             report.findings)
      in
      List.iter
        (fun (actor, store, level) ->
          let key = (actor, store) in
          let affected, worst_so_far =
            Option.value
              (Hashtbl.find_opt hotspot_tbl key)
              ~default:(0, Level.None_)
          in
          Hashtbl.replace hotspot_tbl key
            (affected + 1, Level.max worst_so_far level))
        (Listx.dedup (List.map (fun (a, s, l) -> (a, s, l)) accesses)))
    profiles;
  let by_level =
    List.filter_map
      (fun l ->
        Option.map (fun c -> (l, c)) (Hashtbl.find_opt level_counts l))
      [ Level.None_; Level.Low; Level.Medium; Level.High ]
  in
  let hotspots =
    Hashtbl.fold
      (fun (actor, store) (affected, worst) acc ->
        { actor; store; affected; worst } :: acc)
      hotspot_tbl []
    |> List.sort (fun a b ->
           match Level.compare b.worst a.worst with
           | 0 -> Int.compare b.affected a.affected
           | c -> c)
  in
  { total = List.length profiles; by_level; hotspots }

let pp_aggregate ppf agg =
  Format.fprintf ppf "@[<v>%d users:@," agg.total;
  List.iter
    (fun (l, c) -> Format.fprintf ppf "  worst level %a: %d user(s)@," Level.pp l c)
    agg.by_level;
  Format.fprintf ppf "hotspots:@,";
  List.iter
    (fun h ->
      Format.fprintf ppf "  %s%s: %d user(s), worst %a@," h.actor
        (match h.store with Some s -> " on " ^ s | None -> "")
        h.affected Level.pp h.worst)
    agg.hotspots;
  Format.fprintf ppf "@]"
