(** Categorisation of the two risk dimensions and the risk table mapping
    them to a level (paper §III-A: "we categorise the impact and
    likelihood into categories (low, medium and high), and then use a
    table to determine a risk level. The categorisation ... as well as the
    table ... should be specified according to the type of service"). *)

type t

val make :
  ?impact_thresholds:float * float ->
  ?likelihood_thresholds:float * float ->
  ?table:Level.t array array ->
  unit ->
  t
(** [impact_thresholds = (a, b)]: impact x is Low when [x < a], Medium
    when [a <= x < b], High otherwise (and None when x = 0). Defaults:
    impact (0.4, 0.7); likelihood (0.1, 0.5); table rows indexed by
    impact Low..High, columns by likelihood Low..High:
    {v Low    -> L L M
       Medium -> L M H
       High   -> M H H v}
    @raise Invalid_argument on non-increasing thresholds or a table not
    3x3. *)

val default : t

val impact_level : t -> float -> Level.t
(** [None_] exactly when the impact is 0. *)

val likelihood_level : t -> float -> Level.t
val level : t -> impact:Level.t -> likelihood:Level.t -> Level.t
(** [None_] when either dimension is [None_]. *)

val assess : t -> impact:float -> likelihood:float -> Action.risk
(** Bundle the full §III-A annotation for a transition. *)
