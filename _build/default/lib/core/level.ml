type t = None_ | Low | Medium | High

let rank = function None_ -> 0 | Low -> 1 | Medium -> 2 | High -> 3

let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b
let max a b = if compare a b >= 0 then a else b

let to_string = function
  | None_ -> "None"
  | Low -> "Low"
  | Medium -> "Medium"
  | High -> "High"

let of_string = function
  | "None" -> Some None_
  | "Low" -> Some Low
  | "Medium" -> Some Medium
  | "High" -> Some High
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
