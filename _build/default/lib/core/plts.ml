module State = struct
  type t = Config.t

  let equal = Config.equal
  let hash = Config.hash

  (* Configs cannot be printed without their universe; LTS renderers take
     explicit state_label functions instead. *)
  let pp ppf _ = Format.pp_print_string ppf "<config>"
end

include Mdp_lts.Lts.Make (State) (Action)
