open Mdp_dataflow

type gap = {
  service : string;
  flow : Flow.t;
  actor : string;
  store : string;
  missing : Mdp_policy.Permission.t;
  fields : Field.t list;
}

let check u =
  let diagram = Universe.diagram u in
  let policy = Universe.policy u in
  let denied ~actor ~store perm fields =
    List.filter
      (fun f -> not (Mdp_policy.Policy.allows policy ~diagram ~actor perm ~store f))
      fields
  in
  List.filter_map
    (fun ((svc : Service.t), (flow : Flow.t)) ->
      let gap ~actor ~store perm fields =
        match denied ~actor ~store perm fields with
        | [] -> None
        | missing_fields ->
          Some
            {
              service = svc.id;
              flow;
              actor;
              store;
              missing = perm;
              fields = missing_fields;
            }
      in
      match Diagram.classify diagram flow with
      | Flow.Collect | Flow.Disclose -> None
      | Flow.Read ->
        gap
          ~actor:(Flow.node_name flow.dst)
          ~store:(Flow.node_name flow.src)
          Mdp_policy.Permission.Read flow.fields
      | Flow.Create ->
        gap
          ~actor:(Flow.node_name flow.src)
          ~store:(Flow.node_name flow.dst)
          Mdp_policy.Permission.Write flow.fields
      | Flow.Anon ->
        gap
          ~actor:(Flow.node_name flow.src)
          ~store:(Flow.node_name flow.dst)
          Mdp_policy.Permission.Write
          (List.map Field.anon_of flow.fields))
    (Diagram.all_flows diagram)

let pp_gap ppf g =
  Format.fprintf ppf
    "%s flow %d: actor %s lacks %a on %s.[%s]" g.service g.flow.Flow.order
    g.actor Mdp_policy.Permission.pp g.missing g.store
    (String.concat ", " (List.map Field.name g.fields))
