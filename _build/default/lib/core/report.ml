open Mdp_prelude.Json
module Field = Mdp_dataflow.Field

let opt_str = function Some s -> Str s | None -> Null

let fields fs = List (List.map (fun f -> Str (Field.name f)) fs)

let level l = Str (Level.to_string l)

let risk = function
  | Action.Disclosure_risk { impact; likelihood; level = l } ->
    Obj
      [
        ("type", Str "disclosure");
        ("impact", level impact);
        ("likelihood", level likelihood);
        ("level", level l);
      ]
  | Action.Value_risk { violations; total; max_risk } ->
    Obj
      [
        ("type", Str "value");
        ("violations", int violations);
        ("total", int total);
        ("max_risk", Num max_risk);
      ]

let action (a : Action.t) =
  Obj
    [
      ("kind", Str (Format.asprintf "%a" Action.pp_kind a.kind));
      ("actor", Str a.actor);
      ("fields", fields a.fields);
      ("schema", opt_str a.schema);
      ("store", opt_str a.store);
      ("purpose", opt_str a.purpose);
      ( "provenance",
        match a.provenance with
        | Action.From_flow { service; order } ->
          Obj [ ("service", Str service); ("order", int order) ]
        | Action.Potential -> Str "potential"
        | Action.Inferred -> Str "inferred" );
      ("risk", match a.risk with Some r -> risk r | None -> Null);
    ]

let finding (f : Disclosure_risk.finding) =
  Obj
    [
      ("src", int f.src);
      ("dst", int f.dst);
      ("action", action f.action);
      ("impact", Num f.impact);
      ("likelihood", Num f.likelihood);
      ("level", level f.level);
      ("witness", List (List.map action f.witness));
    ]

let risk_transition (rt : Pseudonym_risk.risk_transition) =
  Obj
    [
      ("src", int rt.src);
      ("dst", int rt.dst);
      ("actor", Str rt.actor);
      ("field", Str (Field.name rt.field));
      ("fields_read", fields rt.fields_read);
      ("violations", int rt.report.Mdp_anon.Value_risk.violations);
      ("records", int (List.length rt.report.Mdp_anon.Value_risk.scores));
      ( "risks",
        List
          (List.map
             (fun (s : Mdp_anon.Value_risk.score) ->
               Obj
                 [
                   ("record", int s.record);
                   ("num", int s.risk.Mdp_prelude.Frac.num);
                   ("den", int s.risk.Mdp_prelude.Frac.den);
                   ("violation", Bool s.violation);
                 ])
             rt.report.Mdp_anon.Value_risk.scores) );
    ]

let consistency_gap (g : Consistency.gap) =
  Obj
    [
      ("service", Str g.service);
      ("flow_order", int g.flow.Mdp_dataflow.Flow.order);
      ("actor", Str g.actor);
      ("store", Str g.store);
      ("missing", Str (Mdp_policy.Permission.to_string g.missing));
      ("fields", fields g.fields);
    ]

let analysis (a : Analysis.t) =
  let disclosure =
    match a.disclosure with
    | None -> Null
    | Some report ->
      Obj
        [
          ( "non_allowed_actors",
            List (List.map (fun s -> Str s) report.non_allowed) );
          ( "max_level",
            level (Disclosure_risk.max_level report) );
          ("findings", List (List.map finding report.findings));
          ("exposures", List (List.map finding report.exposures));
        ]
  in
  Obj
    [
      ( "model",
        Obj
          [
            ("states", int (Plts.num_states a.lts));
            ("transitions", int (Plts.num_transitions a.lts));
            ("actors", int (Universe.nactors a.universe));
            ("fields", int (Universe.nfields a.universe));
            ("state_variable_pairs", int (Universe.nvars a.universe));
          ] );
      ("consistency_gaps", List (List.map consistency_gap a.consistency));
      ("disclosure", disclosure);
      ("pseudonym_risks", List (List.map risk_transition a.pseudonym));
    ]

let to_string a = to_string (analysis a)
