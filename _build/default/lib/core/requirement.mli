(** Declarative privacy requirements checked against the generated LTS.

    The paper's related work (§V) observes that behaviour-vs-policy
    compliance checks "only check if a system behaves according to its
    stated privacy policy (our LTS can be similarly analysed)" — this
    module is that analysis: a small requirement language whose
    violations come with witness traces. *)

open Mdp_dataflow

type t =
  | Never_identifies of { actor : string; field : Field.t }
      (** No reachable state has [has(actor, field)]. *)
  | Never_could_identify of { actor : string; field : Field.t }
      (** No reachable state has [could(actor, field)] — stronger: the
          data must never even sit where the actor's permissions reach. *)
  | Only_for_purposes of { field : Field.t; purposes : string list }
      (** Every reachable transition carrying the field declares one of
          these purposes (policy-derived potential actions carry no
          purpose and therefore violate). *)
  | No_action_by of { actor : string; kind : Action.kind }
      (** The actor never performs this action kind on any reachable
          transition. *)
  | Max_disclosure_risk of Level.t
      (** No reachable transition is annotated above this level; check
          after {!Disclosure_risk.analyse}. *)

type violation = {
  requirement : t;
  witness : Action.t list;
      (** Shortest trace from the initial state to the violation; the
          last element is the offending transition when the requirement
          constrains transitions. *)
}

val of_spec : string -> (t, string) result
(** Compact textual form, used by the CLI and suitable for config files:
    [never=Actor:Field], [nevercould=Actor:Field], [noaction=Actor:KIND],
    [purposes=Field:p1;p2], [maxrisk=LEVEL]. *)

val to_spec : t -> string
(** Inverse of {!of_spec}. *)

val check : Universe.t -> Plts.t -> t list -> violation list
(** One violation (with a shortest witness) per violated requirement;
    requirements that hold contribute nothing. *)

val holds : Universe.t -> Plts.t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_violation : Format.formatter -> violation -> unit
