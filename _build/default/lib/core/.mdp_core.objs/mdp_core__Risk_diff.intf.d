lib/core/risk_diff.mli: Action Disclosure_risk Format Level
