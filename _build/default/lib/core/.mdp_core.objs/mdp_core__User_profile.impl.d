lib/core/user_profile.ml: Actor Diagram Field Format List Mdp_dataflow Mdp_prelude Printf Service String
