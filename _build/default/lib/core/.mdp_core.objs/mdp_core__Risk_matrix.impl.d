lib/core/risk_matrix.ml: Action Array Level Printf
