lib/core/lts_render.ml: Action Config Format Hashtbl Level List Option Plts Printf Privacy_state String
