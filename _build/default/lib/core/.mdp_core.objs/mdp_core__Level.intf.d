lib/core/level.mli: Format
