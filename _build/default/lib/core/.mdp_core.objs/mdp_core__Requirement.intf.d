lib/core/requirement.mli: Action Field Format Level Mdp_dataflow Plts Universe
