lib/core/risk_matrix.mli: Action Level
