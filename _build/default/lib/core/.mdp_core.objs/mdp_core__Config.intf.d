lib/core/config.mli: Bitset Format Mdp_prelude Privacy_state Universe
