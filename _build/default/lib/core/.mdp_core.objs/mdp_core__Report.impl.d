lib/core/report.ml: Action Analysis Consistency Disclosure_risk Format Level List Mdp_anon Mdp_dataflow Mdp_policy Mdp_prelude Plts Pseudonym_risk Universe
