lib/core/plts.ml: Action Config Format Mdp_lts
