lib/core/questionnaire.ml: Diagram Field Format List Mdp_dataflow User_profile
