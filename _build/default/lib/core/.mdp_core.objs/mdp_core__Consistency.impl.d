lib/core/consistency.ml: Diagram Field Flow Format List Mdp_dataflow Mdp_policy Service String Universe
