lib/core/universe.mli: Datastore Diagram Field Flow Mdp_dataflow Mdp_policy
