lib/core/analysis.mli: Consistency Disclosure_risk Format Generate Mdp_dataflow Mdp_policy Plts Pseudonym_risk Risk_matrix Universe User_profile
