lib/core/generate.ml: Action Array Bitset Config Datastore Diagram Field Flow List Listx Mdp_dataflow Mdp_policy Mdp_prelude Option Plts Privacy_state Schema Service Universe
