lib/core/consistency.mli: Field Flow Format Mdp_dataflow Mdp_policy Universe
