lib/core/action.mli: Field Flow Format Level Mdp_dataflow
