lib/core/requirement.ml: Action Config Field Format Level List Mdp_dataflow Option Plts Printf Privacy_state Result String
