lib/core/population.ml: Action Diagram Disclosure_risk Format Hashtbl Int Level List Mdp_dataflow Mdp_prelude Option Questionnaire Service
