lib/core/config.ml: Array Bitset Format List Mdp_dataflow Mdp_prelude Privacy_state String Universe
