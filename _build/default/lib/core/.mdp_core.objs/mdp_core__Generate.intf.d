lib/core/generate.mli: Plts Universe
