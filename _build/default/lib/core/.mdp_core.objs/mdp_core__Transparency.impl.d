lib/core/transparency.ml: Action Array Config Field Format List Mdp_dataflow Plts Printf Privacy_state String Universe
