lib/core/lts_render.mli: Plts Universe
