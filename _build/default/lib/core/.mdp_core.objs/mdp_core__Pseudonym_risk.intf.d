lib/core/pseudonym_risk.mli: Field Format Mdp_anon Mdp_dataflow Plts Universe
