lib/core/risk_diff.ml: Action Disclosure_risk Format Level List Mdp_dataflow Option String
