lib/core/level.ml: Format Int
