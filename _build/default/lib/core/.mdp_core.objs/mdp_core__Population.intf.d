lib/core/population.mli: Disclosure_risk Format Level Mdp_dataflow Plts Questionnaire Risk_matrix Universe User_profile
