lib/core/user_profile.mli: Diagram Field Format Mdp_dataflow
