lib/core/questionnaire.mli: Diagram Field Format Mdp_dataflow User_profile
