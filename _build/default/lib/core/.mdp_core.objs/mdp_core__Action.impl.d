lib/core/action.ml: Field Flow Format Level List Mdp_dataflow String
