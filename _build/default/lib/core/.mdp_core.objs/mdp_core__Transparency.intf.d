lib/core/transparency.mli: Action Field Format Mdp_dataflow Plts Universe
