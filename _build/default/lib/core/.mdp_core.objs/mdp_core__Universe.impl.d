lib/core/universe.ml: Actor Array Datastore Diagram Field Flow Hashtbl Interner List Mdp_dataflow Mdp_policy Mdp_prelude Option Service String
