lib/core/privacy_state.mli: Bitset Field Format Mdp_dataflow Mdp_prelude Universe
