lib/core/disclosure_risk.mli: Action Field Format Level Mdp_dataflow Plts Risk_matrix Universe User_profile
