lib/core/plts.mli: Action Config Mdp_lts
