lib/core/pseudonym_risk.ml: Action Bitset Config Diagram Field Format Frac Int List Mdp_anon Mdp_dataflow Mdp_prelude Plts Printf Privacy_state String Universe
