lib/core/privacy_state.ml: Array Bitset Format Fun List Mdp_dataflow Mdp_prelude Printf String Texttable Universe
