lib/core/report.mli: Action Analysis Consistency Disclosure_risk Mdp_prelude Pseudonym_risk
