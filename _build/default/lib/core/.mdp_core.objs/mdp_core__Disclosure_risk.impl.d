lib/core/disclosure_risk.ml: Action Diagram Field Float Flow Format Level List Listx Mdp_dataflow Mdp_prelude Plts Risk_matrix Service String Universe User_profile
