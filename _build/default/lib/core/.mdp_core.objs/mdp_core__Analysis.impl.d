lib/core/analysis.ml: Consistency Disclosure_risk Format Generate List Lts_render Option Plts Pseudonym_risk Risk_matrix Universe User_profile
