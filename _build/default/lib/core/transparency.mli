(** Data-subject transparency reports.

    §IV-A motivates returning the analysis to the user: the developer can
    "engineer systems that assure the data subject of the transparency of
    any processing of their data. If such information is returned to
    users, identifying the risks associated with any processing enables
    greater understanding by the data subjects". A transparency report
    answers, for one subject: *who has seen (or could see) which of my
    fields, and through which actions?* — either at a concrete state (the
    runtime monitor's current state) or worst-case over the whole model. *)

open Mdp_dataflow

type status = Has | Could

type entry = {
  actor : string;
  field : Field.t;
  status : status;  (** [Has] wins when both hold. *)
  via : Action.t list;
      (** Shortest action trace establishing the fact (empty for
          worst-case entries at the initial state). *)
}

val at_state : Universe.t -> Plts.t -> Plts.state_id -> entry list
(** The subject's exposure at one state, e.g.
    [Mdp_runtime.Monitor.current_state]. Entries ordered by actor then
    field. [via] traces lead to the first reachable state exhibiting the
    fact (the earliest explanation), not necessarily the given state. *)

val worst_case : Universe.t -> Plts.t -> entry list
(** Union over every reachable state: everything that *can* happen to
    this subject's data under the model. *)

val for_actor : entry list -> string -> entry list
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> entry list -> unit
(** Grouped one-per-line rendering suitable for showing to the
    subject. *)
