(** Profile elicitation (paper §III-A: "This information can be obtained
    directly from the user through a questionnaire").

    Users are segmented on Westin's privacy indexes (paper ref [1]):
    fundamentalists are highly protective by default, pragmatists
    moderately, the unconcerned barely. Per-field answers override the
    segment's baseline; unanswered base fields of the diagram get the
    baseline. Anon variants stay at 0 unless answered explicitly. *)

open Mdp_dataflow

type westin = Fundamentalist | Pragmatist | Unconcerned

val baseline : westin -> float
(** 0.8 / 0.5 / 0.15. *)

type concern = Not_concerned | Somewhat_concerned | Very_concerned

val concern_sensitivity : concern -> float
(** 0.1 / 0.5 / 0.9. *)

type answer = { field : Field.t; concern : concern }

val profile :
  Diagram.t ->
  westin ->
  agreed_services:string list ->
  answers:answer list ->
  User_profile.t

val pp_westin : Format.formatter -> westin -> unit
