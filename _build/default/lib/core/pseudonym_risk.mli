(** Pseudonymisation value risk on the LTS (paper §III-B).

    A value risk for actor [a] and sensitive field [f] is present in every
    state where [a] has accessed the pseudonymised variant f_anon while
    holding access rights to f_anon but not to [f] itself. From each such
    at-risk state a dotted *risk-transition* is added: an [Inferred] read
    of [f] by [a], annotated with the §III-B risk scores computed from the
    bound release dataset — the equivalence sets induced by the anon
    fields [a] has actually read, the per-record marginal probabilities,
    and the count of policy violations (Fig. 4's 0 / 2 / 4 labels). *)

open Mdp_dataflow

type binding = {
  store : string;  (** The anonymised datastore the release came from. *)
  dataset : Mdp_anon.Dataset.t;
      (** The released records: generalised quasi columns, raw sensitive
          column. Simulated data at design time, live data at run time
          (§III-B "Using Risk Scores"). *)
  attr_fields : (string * Field.t) list;
      (** Dataset attribute name -> the model's *base* field whose anon
          variant carries it in the release. *)
  policy : Mdp_anon.Value_risk.policy;
      (** Closeness + confidence; [policy.sensitive] must be bound in
          [attr_fields]. *)
}

val make_binding :
  store:string ->
  dataset:Mdp_anon.Dataset.t ->
  attr_fields:(string * Field.t) list ->
  policy:Mdp_anon.Value_risk.policy ->
  binding
(** @raise Invalid_argument when [policy.sensitive] or a quasi attribute
    of the dataset is unbound, or a bound attribute is missing from the
    dataset. *)

type risk_transition = {
  src : Plts.state_id;
  dst : Plts.state_id;  (** Fresh state where the actor has the field. *)
  actor : string;
  field : Field.t;  (** The base sensitive field inferred. *)
  fields_read : Field.t list;
      (** Anon quasi fields the actor had accessed at [src]. *)
  report : Mdp_anon.Value_risk.report;
}

val analyse : Universe.t -> Plts.t -> binding -> risk_transition list
(** Adds the risk-transitions to the LTS (labelled [Inferred], annotated
    with {!Action.Value_risk}) and returns them, ordered by source
    state. *)

val check :
  max_violation_ratio:float -> risk_transition list -> (unit, string) result
(** Design-time gate (§IV-B: "a system designer could declare that a
    number of violations above 50% is unacceptable. The system would now
    throw an error"): [Error] describes the worst offending transition. *)

val pp_risk_transition : Format.formatter -> risk_transition -> unit
