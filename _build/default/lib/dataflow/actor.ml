type t = { id : string; roles : string list }

let make ?(roles = []) id =
  if id = "" then invalid_arg "Actor.make: empty id";
  (match Mdp_prelude.Listx.find_duplicate Fun.id roles with
  | Some r -> invalid_arg (Printf.sprintf "Actor.make: duplicate role %s" r)
  | None -> ());
  { id; roles }

let has_role t r = List.mem r t.roles

let pp ppf t =
  match t.roles with
  | [] -> Format.pp_print_string ppf t.id
  | roles -> Format.fprintf ppf "%s[%s]" t.id (String.concat ", " roles)
