type t = { id : string; flows : Flow.t list }

let make ~id ~flows =
  if id = "" then invalid_arg "Service.make: empty id";
  if flows = [] then invalid_arg "Service.make: no flows";
  (match Mdp_prelude.Listx.find_duplicate (fun (f : Flow.t) -> f.order) flows with
  | Some o -> invalid_arg (Printf.sprintf "Service.make: duplicate flow order %d" o)
  | None -> ());
  let flows = List.sort (fun (a : Flow.t) b -> Int.compare a.order b.order) flows in
  { id; flows }

let endpoints t = List.concat_map (fun (f : Flow.t) -> [ f.src; f.dst ]) t.flows

let actors t =
  Mdp_prelude.Listx.dedup
    (List.filter_map
       (function Flow.Actor a -> Some a | Flow.User | Flow.Store _ -> None)
       (endpoints t))

let stores t =
  Mdp_prelude.Listx.dedup
    (List.filter_map
       (function Flow.Store s -> Some s | Flow.User | Flow.Actor _ -> None)
       (endpoints t))

let fields t =
  Mdp_prelude.Listx.dedup (List.concat_map (fun (f : Flow.t) -> f.fields) t.flows)

let flow_with_order t o = List.find_opt (fun (f : Flow.t) -> f.order = o) t.flows

let pp ppf t =
  Format.fprintf ppf "service %s@,%a" t.id
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Flow.pp)
    t.flows
