(** Personal-data fields.

    A field is a named item of personal data (e.g. [Name], [Diagnosis]).
    Every field also has a pseudonymised variant (paper §II-B): [anon_of f]
    denotes f_anon, the version of [f] disclosed after pseudonymisation.
    Access rights and privacy-state variables can be declared on the anon
    variant independently of the base field. *)

type t = private { base : string; anon : bool }

val make : string -> t
(** A base (non-pseudonymised) field. @raise Invalid_argument on an empty
    name or a name containing whitespace. *)

val anon_of : t -> t
(** The pseudonymised variant. Idempotent. *)

val base_of : t -> t
(** The underlying base field ([base_of (anon_of f) = f]). *)

val is_anon : t -> bool
val name : t -> string
(** Rendered name: ["Diagnosis"] or ["Diagnosis~anon"]. *)

val of_name : string -> t
(** Inverse of [name]: a trailing ["~anon"] marks the anon variant. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
