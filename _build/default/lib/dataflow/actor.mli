(** Actors: individuals or role types that can identify a user's personal
    data (paper §II-B). An actor carries the RBAC roles it holds; role
    semantics live in [Mdp_policy]. *)

type t = { id : string; roles : string list }

val make : ?roles:string list -> string -> t
(** @raise Invalid_argument on an empty id or duplicate roles. *)

val has_role : t -> string -> bool
val pp : Format.formatter -> t -> unit
