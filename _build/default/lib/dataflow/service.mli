(** Services: named, purpose-driven processes, each a set of ordered data
    flows (paper Fig. 1 shows two: a Medical Service and a Medical Research
    Service). A user agrees (or not) to each service independently; that
    agreement drives the allowed/non-allowed actor split of §III-A. *)

type t = { id : string; flows : Flow.t list }

val make : id:string -> flows:Flow.t list -> t
(** Flows are sorted by [order]. @raise Invalid_argument on an empty id,
    no flows, or duplicate orders. *)

val actors : t -> string list
(** Ids of actors appearing as flow endpoints, deduplicated. *)

val stores : t -> string list
val fields : t -> Field.t list
val flow_with_order : t -> int -> Flow.t option
val pp : Format.formatter -> t -> unit
