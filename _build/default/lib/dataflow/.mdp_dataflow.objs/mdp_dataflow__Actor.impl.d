lib/dataflow/actor.ml: Format Fun List Mdp_prelude Printf String
