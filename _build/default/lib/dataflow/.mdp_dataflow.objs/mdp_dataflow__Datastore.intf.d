lib/dataflow/datastore.mli: Field Format Schema
