lib/dataflow/builder.ml: Actor Datastore Diagram Field Flow List Mdp_prelude Option Schema Service String
