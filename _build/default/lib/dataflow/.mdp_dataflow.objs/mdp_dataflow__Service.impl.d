lib/dataflow/service.ml: Flow Format Int List Mdp_prelude Printf
