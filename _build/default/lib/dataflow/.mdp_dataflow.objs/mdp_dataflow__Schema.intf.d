lib/dataflow/schema.mli: Field Format
