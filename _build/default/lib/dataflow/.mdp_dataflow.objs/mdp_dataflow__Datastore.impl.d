lib/dataflow/datastore.ml: Format List Mdp_prelude Printf Schema
