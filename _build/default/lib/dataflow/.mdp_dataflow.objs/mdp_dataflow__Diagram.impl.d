lib/dataflow/diagram.ml: Actor Datastore Field Flow Format List Listx Mdp_prelude Option Printf Service String Validate
