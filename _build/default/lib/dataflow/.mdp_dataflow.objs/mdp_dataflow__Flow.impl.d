lib/dataflow/flow.ml: Datastore Field Format Mdp_prelude Printf
