lib/dataflow/actor.mli: Format
