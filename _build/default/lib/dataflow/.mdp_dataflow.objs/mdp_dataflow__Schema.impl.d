lib/dataflow/schema.ml: Field Format List Mdp_prelude Printf
