lib/dataflow/diagram.mli: Actor Datastore Field Flow Format Service
