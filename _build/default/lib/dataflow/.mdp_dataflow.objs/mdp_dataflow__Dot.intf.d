lib/dataflow/dot.mli: Diagram Format
