lib/dataflow/flow.mli: Datastore Field Format
