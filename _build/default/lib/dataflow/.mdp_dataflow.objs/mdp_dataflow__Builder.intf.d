lib/dataflow/builder.mli: Diagram
