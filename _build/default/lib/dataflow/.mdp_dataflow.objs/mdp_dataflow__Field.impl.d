lib/dataflow/field.ml: Bool Format Printf String
