lib/dataflow/service.mli: Field Flow Format
