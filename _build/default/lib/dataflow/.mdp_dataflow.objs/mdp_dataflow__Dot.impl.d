lib/dataflow/dot.ml: Actor Buffer Datastore Diagram Field Flow Format List Printf Schema Service String
