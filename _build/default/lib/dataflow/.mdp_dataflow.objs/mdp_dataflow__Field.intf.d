lib/dataflow/field.mli: Format
