(** Datastores.

    A datastore holds one or more schemas. An [Anonymised] datastore only
    ever receives pseudonymised field variants via [anon] flows
    (paper §II-B: "Where it is an anonymized data store then this is an
    anon action"). *)

type kind = Plain | Anonymised

type t = { id : string; kind : kind; schemas : Schema.t list }

val make : ?kind:kind -> id:string -> schemas:Schema.t list -> unit -> t
(** Defaults to [Plain]. @raise Invalid_argument on an empty id, no
    schemas, or duplicate schema ids. *)

val fields : t -> Field.t list
(** All fields across schemas, deduplicated, in schema order. *)

val mem : t -> Field.t -> bool
val schema_of_field : t -> Field.t -> Schema.t option
(** First schema containing the field. *)

val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
