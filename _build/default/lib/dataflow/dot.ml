let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let node_id = function
  | Flow.User -> "user"
  | Flow.Actor a -> "actor_" ^ a
  | Flow.Store s -> "store_" ^ s

let fields_label fields =
  String.concat ", " (List.map Field.name fields)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let to_string (d : Diagram.t) =
  let buf = Buffer.create 1024 in
  buf_addf buf "digraph dataflow {\n  rankdir=LR;\n";
  buf_addf buf "  user [label=\"User\", shape=oval, style=bold];\n";
  List.iter
    (fun (a : Actor.t) ->
      buf_addf buf "  actor_%s [label=\"%s\", shape=oval];\n" a.id (escape a.id))
    d.actors;
  List.iter
    (fun (s : Datastore.t) ->
      let schemas =
        String.concat "\\n"
          (List.map
             (fun (sc : Schema.t) ->
               Printf.sprintf "%s: %s" sc.id (fields_label sc.fields))
             s.schemas)
      in
      buf_addf buf "  store_%s [label=\"%s\\n%s\", shape=box%s];\n" s.id
        (escape s.id) (escape schemas)
        (match s.kind with
        | Datastore.Anonymised -> ", style=dashed"
        | Datastore.Plain -> ""))
    d.datastores;
  List.iteri
    (fun i (s : Service.t) ->
      buf_addf buf "  subgraph cluster_%d { label=\"%s\"; style=invis;\n" i
        (escape s.id);
      buf_addf buf "  }\n";
      List.iter
        (fun (f : Flow.t) ->
          buf_addf buf "  %s -> %s [label=\"%d: %s\\n(%s)\"];\n"
            (node_id f.src) (node_id f.dst) f.order
            (escape (fields_label f.fields))
            (escape f.purpose))
        s.flows)
    d.services;
  buf_addf buf "}\n";
  Buffer.contents buf

let pp ppf d = Format.pp_print_string ppf (to_string d)
