open Mdp_prelude

type t = {
  actors : Actor.t list;
  datastores : Datastore.t list;
  services : Service.t list;
}

let find_actor t id = List.find_opt (fun (a : Actor.t) -> a.id = id) t.actors
let find_store t id = List.find_opt (fun (d : Datastore.t) -> d.id = id) t.datastores
let find_service t id = List.find_opt (fun (s : Service.t) -> s.id = id) t.services

let store_kind t id =
  match find_store t id with
  | Some d -> d.kind
  | None -> raise Not_found

let classify t flow = Flow.classify ~store_kind:(store_kind t) flow

let validate_ids ctx t =
  (match Listx.find_duplicate (fun (a : Actor.t) -> a.id) t.actors with
  | Some id -> Validate.errorf ctx "duplicate actor id %s" id
  | None -> ());
  (match Listx.find_duplicate (fun (d : Datastore.t) -> d.id) t.datastores with
  | Some id -> Validate.errorf ctx "duplicate datastore id %s" id
  | None -> ());
  (match Listx.find_duplicate (fun (s : Service.t) -> s.id) t.services with
  | Some id -> Validate.errorf ctx "duplicate service id %s" id
  | None -> ());
  List.iter
    (fun (a : Actor.t) ->
      Validate.require ctx
        (find_store t a.id = None)
        "id %s names both an actor and a datastore" a.id;
      Validate.require ctx (a.id <> "User")
        "actor id User is reserved for the data subject")
    t.actors;
  List.iter
    (fun (d : Datastore.t) ->
      Validate.require ctx (d.id <> "User")
        "datastore id User is reserved for the data subject")
    t.datastores

let validate_flow ctx t ~service (flow : Flow.t) =
  let where = Printf.sprintf "service %s, flow %d" service flow.order in
  let check_node = function
    | Flow.User -> true
    | Flow.Actor a ->
      let ok = find_actor t a <> None in
      Validate.require ctx ok "%s: unknown actor %s" where a;
      ok
    | Flow.Store s ->
      let ok = find_store t s <> None in
      Validate.require ctx ok "%s: unknown datastore %s" where s;
      ok
  in
  if check_node flow.src && check_node flow.dst then
    match classify t flow with
    | Flow.Collect ->
      List.iter
        (fun f ->
          Validate.require ctx
            (not (Field.is_anon f))
            "%s: collect of pseudonymised field %a" where Field.pp f)
        flow.fields
    | Flow.Disclose -> ()
    | Flow.Create -> (
      match flow.dst with
      | Flow.Store s ->
        let store = Option.get (find_store t s) in
        List.iter
          (fun f ->
            Validate.require ctx (Datastore.mem store f)
              "%s: field %a not in the schemas of datastore %s" where
              Field.pp f s)
          flow.fields
      | Flow.User | Flow.Actor _ -> assert false)
    | Flow.Anon -> (
      match flow.dst with
      | Flow.Store s ->
        let store = Option.get (find_store t s) in
        List.iter
          (fun f ->
            Validate.require ctx
              (not (Field.is_anon f))
              "%s: anon flow must carry base fields, got %a" where Field.pp f;
            Validate.require ctx
              (Datastore.mem store (Field.anon_of f))
              "%s: anonymised store %s lacks schema field %a" where s
              Field.pp (Field.anon_of f))
          flow.fields
      | Flow.User | Flow.Actor _ -> assert false)
    | Flow.Read -> (
      match flow.src with
      | Flow.Store s ->
        let store = Option.get (find_store t s) in
        List.iter
          (fun f ->
            Validate.require ctx (Datastore.mem store f)
              "%s: field %a not in the schemas of datastore %s" where
              Field.pp f s;
            if store.kind = Datastore.Anonymised then
              Validate.require ctx (Field.is_anon f)
                "%s: read from anonymised store %s must carry anon fields, got %a"
                where s Field.pp f)
          flow.fields
      | Flow.User | Flow.Actor _ -> assert false)

let make ~actors ~datastores ~services =
  let t = { actors; datastores; services } in
  let ctx = Validate.create () in
  validate_ids ctx t;
  List.iter
    (fun (s : Service.t) ->
      List.iter (validate_flow ctx t ~service:s.id) s.flows)
    services;
  Validate.result ctx t

let make_exn ~actors ~datastores ~services =
  match make ~actors ~datastores ~services with
  | Ok t -> t
  | Error msgs ->
    invalid_arg ("Diagram.make_exn:\n" ^ String.concat "\n" msgs)

let all_flows t =
  List.concat_map
    (fun (s : Service.t) -> List.map (fun f -> (s, f)) s.flows)
    t.services

let all_fields t =
  let from_flows =
    List.concat_map
      (fun ((_, flow) : Service.t * Flow.t) ->
        let anon_variants =
          match classify t flow with
          | Flow.Anon -> List.map Field.anon_of flow.fields
          | Flow.Collect | Flow.Disclose | Flow.Create | Flow.Read -> []
        in
        flow.fields @ anon_variants)
      (all_flows t)
  in
  let from_schemas = List.concat_map Datastore.fields t.datastores in
  Listx.dedup (from_flows @ from_schemas)

let services_of_actor t id =
  List.filter (fun s -> List.mem id (Service.actors s)) t.services

let pp ppf t =
  Format.fprintf ppf "@[<v>actors: %a@,stores:@,  @[<v>%a@]@,%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Actor.pp)
    t.actors
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Datastore.pp)
    t.datastores
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Service.pp)
    t.services
