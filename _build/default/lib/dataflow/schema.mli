(** Data schemas.

    A schema names a set of fields stored together in a datastore
    (paper §II-A: "the data schema ... associated with each datastore").
    A datastore may hold several schemas. *)

type t = { id : string; fields : Field.t list }

val make : id:string -> fields:Field.t list -> t
(** @raise Invalid_argument on an empty id, no fields, or duplicate
    fields. *)

val mem : t -> Field.t -> bool
val pp : Format.formatter -> t -> unit
