type pending_flow = {
  service : string;
  order : int option;
  purpose : string option;
  src : string;
  dst : string;
  fields : string list;
}

type t = {
  mutable rev_actors : Actor.t list;
  mutable rev_stores : Datastore.t list;
  mutable rev_flows : pending_flow list;
}

let create () = { rev_actors = []; rev_stores = []; rev_flows = [] }

let actor t ?roles id = t.rev_actors <- Actor.make ?roles id :: t.rev_actors

let add_store t kind id schemas =
  let schemas =
    List.map
      (fun (sid, fields) ->
        Schema.make ~id:sid ~fields:(List.map Field.of_name fields))
      schemas
  in
  t.rev_stores <- Datastore.make ~kind ~id ~schemas () :: t.rev_stores

let plain_store t id ~schemas = add_store t Datastore.Plain id schemas
let anon_store t id ~schemas = add_store t Datastore.Anonymised id schemas

let flow t ~service ?order ?purpose ~src ~dst fields =
  t.rev_flows <- { service; order; purpose; src; dst; fields } :: t.rev_flows

let resolve_node t s =
  if s = "User" then Flow.User
  else if List.exists (fun (d : Datastore.t) -> d.id = s) t.rev_stores then
    Flow.Store s
  else Flow.Actor s

let build t =
  let actors = List.rev t.rev_actors in
  let datastores = List.rev t.rev_stores in
  let pending = List.rev t.rev_flows in
  let services =
    Mdp_prelude.Listx.group_by ~key:(fun f -> f.service) pending
    |> List.map (fun (sid, flows) ->
           let next = ref 0 in
           let flows =
             List.map
               (fun f ->
                 incr next;
                 let order = Option.value f.order ~default:!next in
                 next := max !next order;
                 Flow.make ~order
                   ~src:(resolve_node t f.src)
                   ~dst:(resolve_node t f.dst)
                   ~fields:(List.map Field.of_name f.fields)
                   ~purpose:(Option.value f.purpose ~default:sid))
               flows
           in
           Service.make ~id:sid ~flows)
  in
  Diagram.make ~actors ~datastores ~services

let build_exn t =
  match build t with
  | Ok d -> d
  | Error msgs -> invalid_arg ("Builder.build_exn:\n" ^ String.concat "\n" msgs)
