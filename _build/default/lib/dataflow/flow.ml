type node = User | Actor of string | Store of string

type action_kind = Collect | Disclose | Create | Anon | Read

type t = {
  order : int;
  src : node;
  dst : node;
  fields : Field.t list;
  purpose : string;
}

let equal_node a b =
  match (a, b) with
  | User, User -> true
  | Actor x, Actor y | Store x, Store y -> x = y
  | (User | Actor _ | Store _), _ -> false

let valid_endpoints src dst =
  match (src, dst) with
  | User, Actor _ | Actor _, Actor _ | Actor _, Store _ | Store _, Actor _ ->
    not (equal_node src dst)
  | _, User | User, Store _ | Store _, Store _ -> false

let make ~order ~src ~dst ~fields ~purpose =
  if order < 0 then invalid_arg "Flow.make: negative order";
  if fields = [] then invalid_arg "Flow.make: no fields";
  (match Mdp_prelude.Listx.find_duplicate Field.name fields with
  | Some f -> invalid_arg (Printf.sprintf "Flow.make: duplicate field %s" f)
  | None -> ());
  if not (valid_endpoints src dst) then
    invalid_arg "Flow.make: endpoint pattern denotes no privacy action";
  { order; src; dst; fields; purpose }

let classify ~store_kind t =
  match (t.src, t.dst) with
  | User, Actor _ -> Collect
  | Actor _, Actor _ -> Disclose
  | Actor _, Store s -> (
    match store_kind s with
    | Datastore.Plain -> Create
    | Datastore.Anonymised -> Anon)
  | Store _, Actor _ -> Read
  | (User | Actor _ | Store _), _ ->
    (* Unreachable: [make] rejects every other pattern. *)
    assert false

let node_name = function
  | User -> "User"
  | Actor a -> a
  | Store s -> s

let pp_node ppf n = Format.pp_print_string ppf (node_name n)

let pp_action_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Collect -> "collect"
    | Disclose -> "disclose"
    | Create -> "create"
    | Anon -> "anon"
    | Read -> "read")

let pp ppf t =
  Format.fprintf ppf "%d: %a -> %a [%a] purpose %S" t.order pp_node t.src
    pp_node t.dst
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Field.pp)
    t.fields t.purpose
