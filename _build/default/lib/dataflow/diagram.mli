(** Whole-system data-flow model: the developer-authored artifact set of
    paper §II-A (data-flow diagrams + datastores with schemas), validated
    for internal consistency before any LTS is generated from it. *)

type t = private {
  actors : Actor.t list;
  datastores : Datastore.t list;
  services : Service.t list;
}

val make :
  actors:Actor.t list ->
  datastores:Datastore.t list ->
  services:Service.t list ->
  (t, string list) result
(** Validates and builds. All errors are reported at once. Checks:
    unique ids (across actors, datastores and services; actor and store
    ids must also not collide with each other or with ["User"]); every
    flow endpoint resolves; [collect] flows carry base fields only;
    [create]/[read] flow fields belong to the target/source store's
    schemas; [anon] flow fields are base fields whose anon variants the
    anonymised store's schemas contain; [read] flows from anonymised
    stores carry anon fields. *)

val make_exn :
  actors:Actor.t list ->
  datastores:Datastore.t list ->
  services:Service.t list ->
  t
(** @raise Invalid_argument with all messages on validation failure. *)

val find_actor : t -> string -> Actor.t option
val find_store : t -> string -> Datastore.t option
val find_service : t -> string -> Service.t option
val store_kind : t -> string -> Datastore.kind
(** @raise Not_found on an unknown store (cannot happen on ids drawn from
    a validated diagram). *)

val classify : t -> Flow.t -> Flow.action_kind
(** §II-B extraction rule, resolved against this diagram's stores. *)

val all_fields : t -> Field.t list
(** The field universe: every field appearing in any schema or flow, plus
    the anon variants introduced by [anon] flows. Deterministic order. *)

val services_of_actor : t -> string -> Service.t list
(** Services in which the actor appears as a flow endpoint. *)

val all_flows : t -> (Service.t * Flow.t) list
val pp : Format.formatter -> t -> unit
