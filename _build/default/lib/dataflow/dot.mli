(** Graphviz rendering of data-flow diagrams (paper Fig. 1 shape: ovals for
    the user and actors, rectangles for datastores, one labelled arrow per
    flow). Services are rendered as clusters. *)

val to_string : Diagram.t -> string
val pp : Format.formatter -> Diagram.t -> unit
