type t = { id : string; fields : Field.t list }

let make ~id ~fields =
  if id = "" then invalid_arg "Schema.make: empty id";
  if fields = [] then invalid_arg "Schema.make: no fields";
  (match Mdp_prelude.Listx.find_duplicate Field.name fields with
  | Some f -> invalid_arg (Printf.sprintf "Schema.make: duplicate field %s" f)
  | None -> ());
  { id; fields }

let mem t f = List.exists (Field.equal f) t.fields

let pp ppf t =
  Format.fprintf ppf "%s{%a}" t.id
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Field.pp)
    t.fields
