type kind = Plain | Anonymised

type t = { id : string; kind : kind; schemas : Schema.t list }

let make ?(kind = Plain) ~id ~schemas () =
  if id = "" then invalid_arg "Datastore.make: empty id";
  if schemas = [] then invalid_arg "Datastore.make: no schemas";
  (match Mdp_prelude.Listx.find_duplicate (fun (s : Schema.t) -> s.id) schemas with
  | Some s -> invalid_arg (Printf.sprintf "Datastore.make: duplicate schema %s" s)
  | None -> ());
  { id; kind; schemas }

let fields t =
  Mdp_prelude.Listx.dedup (List.concat_map (fun (s : Schema.t) -> s.fields) t.schemas)

let mem t f = List.exists (fun s -> Schema.mem s f) t.schemas

let schema_of_field t f = List.find_opt (fun s -> Schema.mem s f) t.schemas

let pp_kind ppf = function
  | Plain -> Format.pp_print_string ppf "plain"
  | Anonymised -> Format.pp_print_string ppf "anonymised"

let pp ppf t =
  Format.fprintf ppf "%s(%a): %a" t.id pp_kind t.kind
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Schema.pp)
    t.schemas
