type t = { base : string; anon : bool }

let valid_name s =
  String.length s > 0
  && not (String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') s)

let make base =
  if not (valid_name base) then
    invalid_arg (Printf.sprintf "Field.make: invalid field name %S" base);
  { base; anon = false }

let anon_of t = { t with anon = true }
let base_of t = { t with anon = false }
let is_anon t = t.anon

let anon_suffix = "~anon"

let name t = if t.anon then t.base ^ anon_suffix else t.base

let of_name s =
  let n = String.length s and k = String.length anon_suffix in
  if n > k && String.sub s (n - k) k = anon_suffix then
    anon_of (make (String.sub s 0 (n - k)))
  else make s

let equal a b = a.base = b.base && a.anon = b.anon
let compare a b =
  match String.compare a.base b.base with
  | 0 -> Bool.compare a.anon b.anon
  | c -> c

let pp ppf t = Format.pp_print_string ppf (name t)
