(** Imperative convenience layer for assembling diagrams from strings.

    Declare actors and stores first, then flows: endpoint strings resolve
    to [User] (the literal ["User"]), a declared store id, or otherwise an
    actor id. Field strings go through {!Field.of_name}, so ["Weight~anon"]
    denotes the pseudonymised variant. Flow order within a service is
    assigned by declaration sequence (starting at 1) unless given. *)

type t

val create : unit -> t
val actor : t -> ?roles:string list -> string -> unit
val plain_store : t -> string -> schemas:(string * string list) list -> unit
val anon_store : t -> string -> schemas:(string * string list) list -> unit
val flow :
  t ->
  service:string ->
  ?order:int ->
  ?purpose:string ->
  src:string ->
  dst:string ->
  string list ->
  unit
(** [flow t ~service ~src ~dst fields]. Default purpose is the service id. *)

val build : t -> (Diagram.t, string list) result
val build_exn : t -> Diagram.t
