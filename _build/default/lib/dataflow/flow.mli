(** Data flows: the directed, ordered, purpose-annotated arrows of the
    data-flow diagram (paper §II-A, Fig. 1).

    The endpoint pattern of a flow determines the privacy action the flow
    denotes (paper §II-B extraction rules); [action_kind] implements that
    classification. *)

type node =
  | User  (** The data subject whose privacy is modelled. *)
  | Actor of string  (** Actor id. *)
  | Store of string  (** Datastore id. *)

type action_kind = Collect | Disclose | Create | Anon | Read

type t = {
  order : int;  (** Position in the service's intended execution sequence. *)
  src : node;
  dst : node;
  fields : Field.t list;
  purpose : string;
}

val make :
  order:int -> src:node -> dst:node -> fields:Field.t list -> purpose:string -> t
(** @raise Invalid_argument on a negative order, empty field list, duplicate
    fields, or an endpoint pattern with no action (flows into [User],
    store-to-store flows, user-to-store flows, self-loops). *)

val classify : store_kind:(string -> Datastore.kind) -> t -> action_kind
(** The §II-B extraction rule for this flow. [store_kind] resolves a
    datastore id to its kind (an actor-to-store flow is [Create] for a
    plain store and [Anon] for an anonymised one). *)

val node_name : node -> string
val equal_node : node -> node -> bool
val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
val pp_action_kind : Format.formatter -> action_kind -> unit
