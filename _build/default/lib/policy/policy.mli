(** Access-control policies: an RBAC role hierarchy plus ACL entries,
    evaluated deny-overrides (an access is allowed iff some [Allow] entry
    matches and no [Deny] entry matches).

    The §IV-A case study edits a policy to remove a risk ("the access
    policies were changed accordingly and the risk level was reduced"):
    {!revoke} and {!grant} are those edits, and {!diff} reports the change
    in the concrete permission relation they induce. *)

open Mdp_dataflow

type t = { rbac : Rbac.t; entries : Acl.entry list }

val make : ?rbac:Rbac.t -> Acl.entry list -> t

val allows :
  t -> diagram:Diagram.t -> actor:string -> Permission.t -> store:string ->
  Field.t -> bool
(** False for unknown actors. *)

val readable_fields :
  t -> diagram:Diagram.t -> actor:string -> store:Datastore.t -> Field.t list
(** Fields of [store] the actor may [Read], in schema order. *)

val actors_with :
  t -> diagram:Diagram.t -> Permission.t -> store:string -> Field.t ->
  Actor.t list
(** All actors of the diagram granted the permission on the field. *)

val grant : t -> Acl.entry -> t
(** Appends an entry (of either effect). *)

val revoke :
  t -> subject:Acl.subject -> store:string -> ?fields:Field.t list ->
  Permission.t list -> t
(** Adds a [Deny] entry: deny-overrides makes this a true revocation
    whatever allow entries exist. *)

val validate : t -> Diagram.t -> (unit, string list) result
(** Every subject names a known actor (role subjects are unconstrained:
    roles are open-world), every store exists, and selected fields belong
    to the store's schemas. *)

type grant_tuple = {
  actor : string;
  perm : Permission.t;
  store : string;
  field : Field.t;
}

val concrete_grants : t -> Diagram.t -> grant_tuple list
(** The full concrete permission relation over the diagram's actors,
    stores and schema fields. *)

val diff : before:t -> after:t -> Diagram.t -> grant_tuple list * grant_tuple list
(** [(removed, added)] concrete grants. *)

val pp : Format.formatter -> t -> unit
