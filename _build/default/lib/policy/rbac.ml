open Mdp_prelude

type t = { hierarchy : (string * string) list }

let juniors t role =
  let rec expand acc frontier =
    match frontier with
    | [] -> acc
    | r :: rest ->
      let direct =
        List.filter_map
          (fun (senior, junior) -> if senior = r then Some junior else None)
          t.hierarchy
      in
      let fresh = List.filter (fun j -> not (List.mem j acc)) direct in
      expand (acc @ fresh) (rest @ fresh)
  in
  expand [] [ role ]

let create ?(hierarchy = []) () =
  let t = { hierarchy } in
  List.iter
    (fun (senior, _) ->
      if List.mem senior (juniors t senior) then
        invalid_arg
          (Printf.sprintf "Rbac.create: cycle through role %s" senior))
    hierarchy;
  t

let empty = { hierarchy = [] }

let effective_roles t (actor : Mdp_dataflow.Actor.t) =
  Listx.dedup (actor.roles @ List.concat_map (juniors t) actor.roles)

let holds_role t actor role = List.mem role (effective_roles t actor)

let all_roles t =
  Listx.dedup (List.concat_map (fun (a, b) -> [ a; b ]) t.hierarchy)

let hierarchy t = t.hierarchy
