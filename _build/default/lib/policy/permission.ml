type t = Read | Write | Delete

let all = [ Read; Write; Delete ]

let equal = ( = )

let to_string = function Read -> "read" | Write -> "write" | Delete -> "delete"

let of_string = function
  | "read" -> Some Read
  | "write" -> Some Write
  | "delete" -> Some Delete
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
