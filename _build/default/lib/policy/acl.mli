(** Access-control-list entries.

    An entry grants or denies a set of permissions on (a selection of
    fields of) one datastore to a subject — a named actor or a role.
    Policies are entry lists evaluated deny-overrides (see {!Policy}). *)

open Mdp_dataflow

type subject = Actor_subject of string | Role_subject of string

type field_selector = All_fields | Fields of Field.t list

type effect_ = Allow | Deny

type entry = {
  effect_ : effect_;
  subject : subject;
  store : string;
  selector : field_selector;
  perms : Permission.t list;
}

val allow :
  subject -> store:string -> ?fields:Field.t list -> Permission.t list -> entry
(** Omitting [fields] selects all fields of the store. *)

val deny :
  subject -> store:string -> ?fields:Field.t list -> Permission.t list -> entry

val selector_matches : field_selector -> Field.t -> bool

val subject_matches : Rbac.t -> Actor.t -> subject -> bool
(** True when the subject names the actor, or names a role the actor holds
    (directly or through the hierarchy). *)

val entry_matches :
  Rbac.t -> Actor.t -> Permission.t -> store:string -> Field.t -> entry -> bool
(** Ignores the entry's effect. *)

val pp_subject : Format.formatter -> subject -> unit
val pp_entry : Format.formatter -> entry -> unit
