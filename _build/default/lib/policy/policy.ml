open Mdp_dataflow

type t = { rbac : Rbac.t; entries : Acl.entry list }

let make ?(rbac = Rbac.empty) entries = { rbac; entries }

let allows t ~diagram ~actor perm ~store field =
  match Diagram.find_actor diagram actor with
  | None -> false
  | Some a ->
    let matches (e : Acl.entry) =
      Acl.entry_matches t.rbac a perm ~store field e
    in
    List.exists (fun (e : Acl.entry) -> e.effect_ = Acl.Allow && matches e)
      t.entries
    && not
         (List.exists
            (fun (e : Acl.entry) -> e.effect_ = Acl.Deny && matches e)
            t.entries)

let readable_fields t ~diagram ~actor ~store =
  List.filter
    (fun f ->
      allows t ~diagram ~actor Permission.Read ~store:store.Datastore.id f)
    (Datastore.fields store)

let actors_with t ~diagram perm ~store field =
  List.filter
    (fun (a : Actor.t) -> allows t ~diagram ~actor:a.id perm ~store field)
    diagram.Diagram.actors

let grant t entry = { t with entries = t.entries @ [ entry ] }

let revoke t ~subject ~store ?fields perms =
  grant t (Acl.deny subject ~store ?fields perms)

let validate t diagram =
  let ctx = Mdp_prelude.Validate.create () in
  List.iter
    (fun (e : Acl.entry) ->
      (match e.subject with
      | Acl.Actor_subject a ->
        Mdp_prelude.Validate.require ctx
          (Diagram.find_actor diagram a <> None)
          "policy entry references unknown actor %s" a
      | Acl.Role_subject _ -> ());
      match Diagram.find_store diagram e.store with
      | None ->
        Mdp_prelude.Validate.errorf ctx
          "policy entry references unknown datastore %s" e.store
      | Some store -> (
        match e.selector with
        | Acl.All_fields -> ()
        | Acl.Fields fs ->
          List.iter
            (fun f ->
              Mdp_prelude.Validate.require ctx (Datastore.mem store f)
                "policy entry selects field %s absent from datastore %s"
                (Field.name f) e.store)
            fs))
    t.entries;
  Mdp_prelude.Validate.result ctx ()

type grant_tuple = {
  actor : string;
  perm : Permission.t;
  store : string;
  field : Field.t;
}

let concrete_grants t diagram =
  List.concat_map
    (fun (a : Actor.t) ->
      List.concat_map
        (fun (s : Datastore.t) ->
          List.concat_map
            (fun field ->
              List.filter_map
                (fun perm ->
                  if allows t ~diagram ~actor:a.id perm ~store:s.id field then
                    Some { actor = a.id; perm; store = s.id; field }
                  else None)
                Permission.all)
            (Datastore.fields s))
        diagram.Diagram.datastores)
    diagram.Diagram.actors

let diff ~before ~after diagram =
  let b = concrete_grants before diagram and a = concrete_grants after diagram in
  let removed = List.filter (fun g -> not (List.mem g a)) b in
  let added = List.filter (fun g -> not (List.mem g b)) a in
  (removed, added)

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut Acl.pp_entry ppf t.entries
