(** Role-based access control: a role hierarchy in which a senior role
    inherits every permission granted to its junior roles (paper §II-A
    assumes "traditional access control lists and role-based access
    control"). *)

type t

val create : ?hierarchy:(string * string) list -> unit -> t
(** [hierarchy] lists [(senior, junior)] pairs.
    @raise Invalid_argument if the hierarchy has a cycle. *)

val empty : t
val juniors : t -> string -> string list
(** Transitive juniors of a role, excluding the role itself. *)

val effective_roles : t -> Mdp_dataflow.Actor.t -> string list
(** The actor's direct roles plus all transitive juniors, deduplicated:
    the roles whose ACL entries apply to the actor. *)

val holds_role : t -> Mdp_dataflow.Actor.t -> string -> bool
val all_roles : t -> string list
(** Roles mentioned anywhere in the hierarchy. *)

val hierarchy : t -> (string * string) list
(** The [(senior, junior)] pairs given at creation, in order. *)
