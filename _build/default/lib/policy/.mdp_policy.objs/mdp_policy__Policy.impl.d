lib/policy/policy.ml: Acl Actor Datastore Diagram Field Format List Mdp_dataflow Mdp_prelude Permission Rbac
