lib/policy/rbac.ml: List Listx Mdp_dataflow Mdp_prelude Printf
