lib/policy/policy.mli: Acl Actor Datastore Diagram Field Format Mdp_dataflow Permission Rbac
