lib/policy/permission.mli: Format
