lib/policy/rbac.mli: Mdp_dataflow
