lib/policy/acl.ml: Actor Field Format List Mdp_dataflow Permission Rbac String
