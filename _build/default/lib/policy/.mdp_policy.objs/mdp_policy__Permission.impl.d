lib/policy/permission.ml: Format
