lib/policy/acl.mli: Actor Field Format Mdp_dataflow Permission Rbac
