(** Datastore permissions. [Read] gates the [read] privacy action and the
    "could identify" state variables; [Write] gates [create]/[anon];
    [Delete] gates [delete] (and §III-A's maintenance-exposure likelihood
    scenario). *)

type t = Read | Write | Delete

val all : t list
val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
