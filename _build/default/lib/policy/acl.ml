open Mdp_dataflow

type subject = Actor_subject of string | Role_subject of string

type field_selector = All_fields | Fields of Field.t list

type effect_ = Allow | Deny

type entry = {
  effect_ : effect_;
  subject : subject;
  store : string;
  selector : field_selector;
  perms : Permission.t list;
}

let make effect_ subject ~store ?fields perms =
  if perms = [] then invalid_arg "Acl: entry with no permissions";
  let selector =
    match fields with
    | None -> All_fields
    | Some [] -> invalid_arg "Acl: empty field selection"
    | Some fs -> Fields fs
  in
  { effect_; subject; store; selector; perms }

let allow subject ~store ?fields perms = make Allow subject ~store ?fields perms
let deny subject ~store ?fields perms = make Deny subject ~store ?fields perms

let selector_matches selector f =
  match selector with
  | All_fields -> true
  | Fields fs -> List.exists (Field.equal f) fs

let subject_matches rbac (actor : Actor.t) = function
  | Actor_subject id -> id = actor.id
  | Role_subject role -> Rbac.holds_role rbac actor role

let entry_matches rbac actor perm ~store f entry =
  entry.store = store
  && List.exists (Permission.equal perm) entry.perms
  && selector_matches entry.selector f
  && subject_matches rbac actor entry.subject

let pp_subject ppf = function
  | Actor_subject a -> Format.fprintf ppf "actor:%s" a
  | Role_subject r -> Format.fprintf ppf "role:%s" r

let pp_entry ppf e =
  let effect_ = match e.effect_ with Allow -> "allow" | Deny -> "deny" in
  let fields =
    match e.selector with
    | All_fields -> "*"
    | Fields fs -> String.concat ", " (List.map Field.name fs)
  in
  Format.fprintf ppf "%s %a %s %s.[%s]" effect_ pp_subject e.subject
    (String.concat "+" (List.map Permission.to_string e.perms))
    e.store fields
