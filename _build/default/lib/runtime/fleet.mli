(** Multi-subject monitoring.

    The privacy LTS is per data subject (paper §III: "there is an
    instance for each user"); a deployed service interleaves many
    subjects' events. A fleet lazily maintains one {!Monitor} per
    subject, routing each event by subject identifier, and aggregates the
    alerts raised across the population. *)

type t

val create :
  ?min_level:Mdp_core.Level.t ->
  Mdp_core.Universe.t ->
  Mdp_core.Plts.t ->
  t
(** All subjects share the (annotated) LTS; monitor state is
    per-subject. *)

val observe : t -> subject:string -> Event.t -> Monitor.alert list
val subjects : t -> string list
(** In first-seen order. *)

val state_of : t -> subject:string -> Mdp_core.Plts.state_id option
(** [None] for a subject never observed. *)

val alert_count : t -> int
(** Total alerts raised so far across all subjects. *)

val alerts_for : t -> subject:string -> Monitor.alert list
(** In observation order. *)
