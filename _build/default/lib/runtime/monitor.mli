(** Runtime privacy monitor (paper §I: the models also "monitor the
    privacy risks during the lifetime of the service").

    One monitor tracks one data subject's journey through the generated
    (and risk-annotated) LTS. Each observed event is first put through the
    {!Enforce} PEP, then matched against the outgoing transitions of the
    current LTS state:

    - a matching risk-annotated transition raises a {!Risky} alert (and
      the state advances);
    - a matching unannotated transition advances silently;
    - a denied event raises {!Denied} and does not advance;
    - an event matching no transition raises {!Off_model} — behaviour the
      design never predicted, the strongest signal — and does not
      advance. *)

type alert =
  | Denied of Event.t * string
  | Risky of Event.t * Mdp_core.Action.risk
  | Off_model of Event.t

type t

val create :
  ?min_level:Mdp_core.Level.t ->
  Mdp_core.Universe.t ->
  Mdp_core.Plts.t ->
  t
(** [min_level] (default [Low]) is the smallest disclosure-risk level that
    raises [Risky]; value-risk annotations always raise when they carry at
    least one violation. The LTS should already be annotated (run
    {!Mdp_core.Disclosure_risk.analyse} / {!Mdp_core.Pseudonym_risk.analyse}
    first). *)

val current_state : t -> Mdp_core.Plts.state_id
val observe : t -> Event.t -> alert list
(** At most one alert per event today; a list for forward compatibility. *)

val run_trace : t -> Event.t list -> alert list
(** Observe a whole trace; alerts in event order. *)

val pp_alert : Format.formatter -> alert -> unit
