type entry = { monitor : Monitor.t; mutable rev_alerts : Monitor.alert list }

type t = {
  universe : Mdp_core.Universe.t;
  lts : Mdp_core.Plts.t;
  min_level : Mdp_core.Level.t;
  monitors : (string, entry) Hashtbl.t;
  mutable rev_subjects : string list;
  mutable alerts : int;
}

let create ?(min_level = Mdp_core.Level.Low) universe lts =
  {
    universe;
    lts;
    min_level;
    monitors = Hashtbl.create 16;
    rev_subjects = [];
    alerts = 0;
  }

let entry_for t subject =
  match Hashtbl.find_opt t.monitors subject with
  | Some e -> e
  | None ->
    let e =
      {
        monitor = Monitor.create ~min_level:t.min_level t.universe t.lts;
        rev_alerts = [];
      }
    in
    Hashtbl.add t.monitors subject e;
    t.rev_subjects <- subject :: t.rev_subjects;
    e

let observe t ~subject event =
  let e = entry_for t subject in
  let alerts = Monitor.observe e.monitor event in
  e.rev_alerts <- List.rev_append alerts e.rev_alerts;
  t.alerts <- t.alerts + List.length alerts;
  alerts

let subjects t = List.rev t.rev_subjects

let state_of t ~subject =
  Option.map
    (fun e -> Monitor.current_state e.monitor)
    (Hashtbl.find_opt t.monitors subject)

let alert_count t = t.alerts

let alerts_for t ~subject =
  match Hashtbl.find_opt t.monitors subject with
  | Some e -> List.rev e.rev_alerts
  | None -> []
