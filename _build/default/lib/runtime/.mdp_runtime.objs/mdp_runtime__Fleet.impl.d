lib/runtime/fleet.ml: Hashtbl List Mdp_core Monitor Option
