lib/runtime/enforce.mli: Event Format Mdp_core
