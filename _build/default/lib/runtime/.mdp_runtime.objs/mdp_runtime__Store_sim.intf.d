lib/runtime/store_sim.mli: Field Mdp_anon Mdp_core Mdp_dataflow
