lib/runtime/monitor.mli: Event Format Mdp_core
