lib/runtime/deployment.ml: Actor Datastore Diagram Flow Format Hashtbl List Mdp_core Mdp_dataflow Mdp_prelude Option Printf Service
