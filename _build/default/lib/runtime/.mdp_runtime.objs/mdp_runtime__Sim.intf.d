lib/runtime/sim.mli: Event Mdp_core
