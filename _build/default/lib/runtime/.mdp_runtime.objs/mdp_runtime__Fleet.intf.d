lib/runtime/fleet.mli: Event Mdp_core Monitor
