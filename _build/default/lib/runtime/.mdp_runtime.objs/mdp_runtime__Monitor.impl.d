lib/runtime/monitor.ml: Enforce Event Format List Mdp_core
