lib/runtime/sim.ml: Datastore Diagram Event Field Flow Hashtbl List Mdp_core Mdp_dataflow Mdp_prelude Option Service
