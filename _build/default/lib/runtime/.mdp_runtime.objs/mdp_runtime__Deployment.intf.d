lib/runtime/deployment.mli: Format Mdp_core
