lib/runtime/trace.ml: Event Format List Mdp_core Mdp_prelude Printf String
