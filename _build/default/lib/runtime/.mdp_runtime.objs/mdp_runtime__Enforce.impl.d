lib/runtime/enforce.ml: Event Field Format Fun List Mdp_core Mdp_dataflow Mdp_policy Printf String
