lib/runtime/event.mli: Field Format Mdp_core Mdp_dataflow
