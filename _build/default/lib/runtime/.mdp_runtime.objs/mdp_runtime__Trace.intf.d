lib/runtime/trace.mli: Event Format Mdp_core
