lib/runtime/event.ml: Field Format List Mdp_core Mdp_dataflow Printf String
