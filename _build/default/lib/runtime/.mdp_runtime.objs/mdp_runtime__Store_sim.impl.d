lib/runtime/store_sim.ml: Datastore Diagram Field Hashtbl Int64 List Mdp_anon Mdp_core Mdp_dataflow Mdp_policy Mdp_prelude Option Printf Result
