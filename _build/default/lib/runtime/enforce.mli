(** Policy-enforcement point (PEP) of the simulated service: every
    store-touching event is checked against the access policy before it
    takes effect, exactly as the generator's [enforce_policy] mode models
    it. *)

type decision =
  | Allowed of Event.t
      (** Possibly narrowed: a read/create delivering only the permitted
          subset of the requested fields. *)
  | Denied of string  (** No requested field was permitted. *)

val decide : Mdp_core.Universe.t -> Event.t -> decision
(** [Collect]/[Disclose] events touch no store and pass through
    unchanged. [Read]/[Create]/[Anon]/[Delete] need the matching
    permission per field ([Anon] is checked on the anon variants it
    writes); events naming no store are denied. *)

val pp_decision : Format.formatter -> decision -> unit
