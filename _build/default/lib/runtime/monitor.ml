module Core = Mdp_core

type alert =
  | Denied of Event.t * string
  | Risky of Event.t * Core.Action.risk
  | Off_model of Event.t

type t = {
  universe : Core.Universe.t;
  lts : Core.Plts.t;
  min_level : Core.Level.t;
  mutable state : Core.Plts.state_id;
}

let create ?(min_level = Core.Level.Low) universe lts =
  { universe; lts; min_level; state = Core.Plts.initial lts }

let current_state t = t.state

let matches (event : Event.t) (label : Core.Action.t) =
  label.Core.Action.kind = event.Event.kind
  && label.Core.Action.actor = event.Event.actor
  && label.Core.Action.store = event.Event.store
  && Event.fields_equal label.Core.Action.fields event.Event.fields

(* An in-service event should consume that service's flow transition and
   an ad-hoc access a [Potential] one — otherwise a snoop could swallow a
   pending flow transition and make the real flow look off-model. *)
let provenance_consistent (event : Event.t) (label : Core.Action.t) =
  match (event.Event.service, label.Core.Action.provenance) with
  | Some svc, Core.Action.From_flow { service; _ } -> svc = service
  | None, (Core.Action.Potential | Core.Action.Inferred) -> true
  | Some _, (Core.Action.Potential | Core.Action.Inferred)
  | None, Core.Action.From_flow _ ->
    false

let risk_alert t (label : Core.Action.t) =
  match label.Core.Action.risk with
  | Some (Core.Action.Disclosure_risk { level; _ } as risk)
    when Core.Level.compare level t.min_level >= 0 ->
    Some risk
  | Some (Core.Action.Value_risk { violations; _ } as risk) when violations > 0
    ->
    Some risk
  | Some (Core.Action.Disclosure_risk _ | Core.Action.Value_risk _) | None ->
    None

let observe t event =
  match Enforce.decide t.universe event with
  | Enforce.Denied reason -> [ Denied (event, reason) ]
  | Enforce.Allowed event -> (
    let candidates = Core.Plts.successors t.lts t.state in
    let matching =
      List.filter (fun (label, _) -> matches event label) candidates
    in
    let best =
      match
        List.find_opt
          (fun (label, _) -> provenance_consistent event label)
          matching
      with
      | Some _ as exact -> exact
      | None -> ( match matching with m :: _ -> Some m | [] -> None)
    in
    match best with
    | Some (label, next) ->
      t.state <- next;
      (match risk_alert t label with
      | Some risk -> [ Risky (event, risk) ]
      | None -> [])
    | None -> [ Off_model event ])

let run_trace t events = List.concat_map (observe t) events

let pp_alert ppf = function
  | Denied (e, reason) -> Format.fprintf ppf "DENIED %a: %s" Event.pp e reason
  | Risky (e, risk) ->
    Format.fprintf ppf "RISK %a: %a" Event.pp e Core.Action.pp_risk risk
  | Off_model e -> Format.fprintf ppf "OFF-MODEL %a" Event.pp e
