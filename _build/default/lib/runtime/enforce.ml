open Mdp_dataflow
module Core = Mdp_core
module Permission = Mdp_policy.Permission

type decision = Allowed of Event.t | Denied of string

let check_store u (event : Event.t) perm ~fields_written =
  match event.store with
  | None ->
    Denied
      (Format.asprintf "%a event without a datastore" Core.Action.pp_kind
         event.kind)
  | Some store ->
    let diagram = Core.Universe.diagram u and policy = Core.Universe.policy u in
    let requested = fields_written event.fields in
    let permitted =
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor:event.actor perm
            ~store f)
        requested
    in
    if permitted = [] then
      Denied
        (Printf.sprintf "%s may not %s any of [%s] in %s" event.actor
           (Permission.to_string perm)
           (String.concat ", " (List.map Field.name requested))
           store)
    else
      (* Report the event in the caller's field space (base fields for
         anon events), narrowed to what was permitted. *)
      let kept =
        List.filter
          (fun f -> List.exists (Field.equal (fields_written [ f ] |> List.hd)) permitted)
          event.fields
      in
      Allowed { event with Event.fields = kept }

let decide u (event : Event.t) =
  match event.kind with
  | Core.Action.Collect | Core.Action.Disclose -> Allowed event
  | Core.Action.Read -> check_store u event Permission.Read ~fields_written:Fun.id
  | Core.Action.Create ->
    check_store u event Permission.Write ~fields_written:Fun.id
  | Core.Action.Anon ->
    check_store u event Permission.Write
      ~fields_written:(List.map Field.anon_of)
  | Core.Action.Delete ->
    check_store u event Permission.Delete ~fields_written:Fun.id

let pp_decision ppf = function
  | Allowed e -> Format.fprintf ppf "allowed: %a" Event.pp e
  | Denied reason -> Format.fprintf ppf "denied: %s" reason
