(* Tests for the access-control layer: permissions, RBAC role hierarchy,
   ACL matching, deny-overrides evaluation, editing and diffing. *)

open Mdp_dataflow
module Policy = Mdp_policy.Policy
module Acl = Mdp_policy.Acl
module Rbac = Mdp_policy.Rbac
module Permission = Mdp_policy.Permission

let check = Alcotest.check
let bool_ = Alcotest.bool

let fa = Field.make "A"
let fb = Field.make "B"

let diagram =
  Diagram.make_exn
    ~actors:
      [
        Actor.make "alice" ~roles:[ "senior" ];
        Actor.make "bob" ~roles:[ "junior" ];
        Actor.make "carol";
      ]
    ~datastores:
      [
        Datastore.make ~id:"D"
          ~schemas:[ Schema.make ~id:"S" ~fields:[ fa; fb ] ]
          ();
      ]
    ~services:
      [
        Service.make ~id:"Svc"
          ~flows:
            [
              Flow.make ~order:1 ~src:Flow.User ~dst:(Flow.Actor "alice")
                ~fields:[ fa ] ~purpose:"p";
            ];
      ]

let rbac = Rbac.create ~hierarchy:[ ("senior", "junior") ] ()

(* ------------------------------------------------------------------ *)
(* Permission *)

let test_permission_strings () =
  List.iter
    (fun p ->
      check bool_ "roundtrip" true
        (Permission.of_string (Permission.to_string p) = Some p))
    Permission.all;
  check bool_ "unknown" true (Permission.of_string "admin" = None)

(* ------------------------------------------------------------------ *)
(* RBAC *)

let test_rbac_closure () =
  let deep =
    Rbac.create ~hierarchy:[ ("a", "b"); ("b", "c"); ("b", "d") ] ()
  in
  check (Alcotest.list Alcotest.string) "transitive juniors" [ "b"; "c"; "d" ]
    (List.sort String.compare (Rbac.juniors deep "a"));
  check (Alcotest.list Alcotest.string) "leaf" [] (Rbac.juniors deep "c");
  let actor = Actor.make "x" ~roles:[ "a" ] in
  check bool_ "holds own role" true (Rbac.holds_role deep actor "a");
  check bool_ "holds transitive" true (Rbac.holds_role deep actor "d");
  check bool_ "not unrelated" false (Rbac.holds_role deep actor "z")

let test_rbac_cycle_rejected () =
  match Rbac.create ~hierarchy:[ ("a", "b"); ("b", "a") ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cycle should be rejected"

let test_rbac_empty () =
  let actor = Actor.make "x" ~roles:[ "solo" ] in
  check bool_ "direct role without hierarchy" true
    (Rbac.holds_role Rbac.empty actor "solo");
  check (Alcotest.list Alcotest.string) "all_roles empty" [] (Rbac.all_roles Rbac.empty)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let test_actor_subject () =
  let p = Policy.make [ Acl.allow (Acl.Actor_subject "alice") ~store:"D" [ Permission.Read ] ] in
  check bool_ "alice reads A" true
    (Policy.allows p ~diagram ~actor:"alice" Permission.Read ~store:"D" fa);
  check bool_ "alice cannot write" false
    (Policy.allows p ~diagram ~actor:"alice" Permission.Write ~store:"D" fa);
  check bool_ "bob cannot read" false
    (Policy.allows p ~diagram ~actor:"bob" Permission.Read ~store:"D" fa);
  check bool_ "unknown actor" false
    (Policy.allows p ~diagram ~actor:"mallory" Permission.Read ~store:"D" fa)

let test_role_subject_with_hierarchy () =
  let p =
    Policy.make ~rbac
      [ Acl.allow (Acl.Role_subject "junior") ~store:"D" [ Permission.Read ] ]
  in
  check bool_ "junior role reads" true
    (Policy.allows p ~diagram ~actor:"bob" Permission.Read ~store:"D" fa);
  check bool_ "senior inherits junior grant" true
    (Policy.allows p ~diagram ~actor:"alice" Permission.Read ~store:"D" fa);
  check bool_ "roleless actor" false
    (Policy.allows p ~diagram ~actor:"carol" Permission.Read ~store:"D" fa);
  let p_senior =
    Policy.make ~rbac
      [ Acl.allow (Acl.Role_subject "senior") ~store:"D" [ Permission.Read ] ]
  in
  check bool_ "junior does not inherit senior grant" false
    (Policy.allows p_senior ~diagram ~actor:"bob" Permission.Read ~store:"D" fa)

let test_field_selector () =
  let p =
    Policy.make
      [ Acl.allow (Acl.Actor_subject "alice") ~store:"D" ~fields:[ fa ] [ Permission.Read ] ]
  in
  check bool_ "selected field" true
    (Policy.allows p ~diagram ~actor:"alice" Permission.Read ~store:"D" fa);
  check bool_ "unselected field" false
    (Policy.allows p ~diagram ~actor:"alice" Permission.Read ~store:"D" fb)

let test_deny_overrides () =
  let p =
    Policy.make
      [
        Acl.allow (Acl.Actor_subject "alice") ~store:"D" [ Permission.Read ];
        Acl.deny (Acl.Actor_subject "alice") ~store:"D" ~fields:[ fb ] [ Permission.Read ];
      ]
  in
  check bool_ "A still allowed" true
    (Policy.allows p ~diagram ~actor:"alice" Permission.Read ~store:"D" fa);
  check bool_ "B denied" false
    (Policy.allows p ~diagram ~actor:"alice" Permission.Read ~store:"D" fb);
  let only_deny =
    Policy.make [ Acl.deny (Acl.Actor_subject "alice") ~store:"D" [ Permission.Read ] ]
  in
  check bool_ "deny alone grants nothing" false
    (Policy.allows only_deny ~diagram ~actor:"alice" Permission.Read ~store:"D" fa)

let test_revoke_equals_deny () =
  let p = Policy.make [ Acl.allow (Acl.Actor_subject "alice") ~store:"D" [ Permission.Read ] ] in
  let p' =
    Policy.revoke p ~subject:(Acl.Actor_subject "alice") ~store:"D" ~fields:[ fa ]
      [ Permission.Read ]
  in
  check bool_ "revoked" false
    (Policy.allows p' ~diagram ~actor:"alice" Permission.Read ~store:"D" fa);
  check bool_ "other field unaffected" true
    (Policy.allows p' ~diagram ~actor:"alice" Permission.Read ~store:"D" fb)

let test_readable_fields_and_actors_with () =
  let p =
    Policy.make
      [
        Acl.allow (Acl.Actor_subject "alice") ~store:"D" ~fields:[ fb ] [ Permission.Read ];
        Acl.allow (Acl.Actor_subject "bob") ~store:"D" [ Permission.Read ];
      ]
  in
  let store = Option.get (Diagram.find_store diagram "D") in
  check (Alcotest.list Alcotest.string) "alice reads only B" [ "B" ]
    (List.map Field.name (Policy.readable_fields p ~diagram ~actor:"alice" ~store));
  check (Alcotest.list Alcotest.string) "readers of A" [ "bob" ]
    (List.map (fun (a : Actor.t) -> a.id)
       (Policy.actors_with p ~diagram Permission.Read ~store:"D" fa))

let test_validate () =
  let bad_store = Policy.make [ Acl.allow (Acl.Actor_subject "alice") ~store:"Nope" [ Permission.Read ] ] in
  (match Policy.validate bad_store diagram with
  | Error [ _ ] -> ()
  | _ -> Alcotest.fail "expected one error for unknown store");
  let bad_actor = Policy.make [ Acl.allow (Acl.Actor_subject "nobody") ~store:"D" [ Permission.Read ] ] in
  (match Policy.validate bad_actor diagram with
  | Error [ _ ] -> ()
  | _ -> Alcotest.fail "expected one error for unknown actor");
  let bad_field =
    Policy.make
      [ Acl.allow (Acl.Actor_subject "alice") ~store:"D" ~fields:[ Field.make "Z" ] [ Permission.Read ] ]
  in
  (match Policy.validate bad_field diagram with
  | Error [ _ ] -> ()
  | _ -> Alcotest.fail "expected one error for foreign field");
  let role_only = Policy.make [ Acl.allow (Acl.Role_subject "whatever") ~store:"D" [ Permission.Read ] ] in
  check bool_ "role subjects are open-world" true
    (Policy.validate role_only diagram = Ok ())

let test_diff () =
  let before = Policy.make [ Acl.allow (Acl.Actor_subject "alice") ~store:"D" [ Permission.Read ] ] in
  let after =
    Policy.revoke before ~subject:(Acl.Actor_subject "alice") ~store:"D"
      ~fields:[ fa ] [ Permission.Read ]
  in
  let removed, added = Policy.diff ~before ~after diagram in
  check Alcotest.int "one removal" 1 (List.length removed);
  check Alcotest.int "no additions" 0 (List.length added);
  let g = List.hd removed in
  check Alcotest.string "removed actor" "alice" g.Policy.actor;
  check Alcotest.string "removed field" "A" (Field.name g.Policy.field)

let prop_revoke_monotone =
  (* Revoking permissions never allows anything new. *)
  QCheck.Test.make ~name:"revoke is monotone" ~count:100
    QCheck.(pair (int_bound 2) bool)
    (fun (perm_i, whole_store) ->
      let perm = List.nth Permission.all perm_i in
      let before =
        Policy.make
          [
            Acl.allow (Acl.Actor_subject "alice") ~store:"D" [ perm ];
            Acl.allow (Acl.Actor_subject "bob") ~store:"D" [ Permission.Read ];
          ]
      in
      let after =
        Policy.revoke before ~subject:(Acl.Actor_subject "alice") ~store:"D"
          ?fields:(if whole_store then None else Some [ fa ])
          [ perm ]
      in
      let b = Policy.concrete_grants before diagram
      and a = Policy.concrete_grants after diagram in
      List.for_all (fun g -> List.mem g b) a)

let () =
  Alcotest.run "policy"
    [
      ("permission", [ Alcotest.test_case "strings" `Quick test_permission_strings ]);
      ( "rbac",
        [
          Alcotest.test_case "closure" `Quick test_rbac_closure;
          Alcotest.test_case "cycle rejected" `Quick test_rbac_cycle_rejected;
          Alcotest.test_case "empty" `Quick test_rbac_empty;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "actor subject" `Quick test_actor_subject;
          Alcotest.test_case "role subject" `Quick test_role_subject_with_hierarchy;
          Alcotest.test_case "field selector" `Quick test_field_selector;
          Alcotest.test_case "deny overrides" `Quick test_deny_overrides;
          Alcotest.test_case "revoke" `Quick test_revoke_equals_deny;
          Alcotest.test_case "derived queries" `Quick test_readable_fields_and_actors_with;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "diff" `Quick test_diff;
          QCheck_alcotest.to_alcotest prop_revoke_monotone;
        ] );
    ]
