(* Tests for the bundled scenarios: well-formedness of each model, the
   §IV-B data artefacts, the loyalty release pipeline and the synthetic
   generators. *)

module Core = Mdp_core
module A = Mdp_anon
module H = Mdp_scenario.Healthcare
module SH = Mdp_scenario.Smart_home
module L = Mdp_scenario.Loyalty
module Syn = Mdp_scenario.Synthetic

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Healthcare (Fig. 1) *)

let test_healthcare_well_formed () =
  (* make_exn already validated; check the paper's headline numbers. *)
  check int_ "five actors" 5 (List.length H.diagram.Mdp_dataflow.Diagram.actors);
  check int_ "two services" 2 (List.length H.diagram.Mdp_dataflow.Diagram.services);
  check int_ "three stores" 3
    (List.length H.diagram.Mdp_dataflow.Diagram.datastores);
  let base_fields =
    List.filter
      (fun f -> not (Mdp_dataflow.Field.is_anon f))
      (Mdp_dataflow.Diagram.all_fields H.diagram)
  in
  (* "2 * 5 * 6 = 60 Boolean state variables" over base fields. *)
  check int_ "six base fields" 6 (List.length base_fields);
  check int_ "policy validates" 0
    (match Mdp_policy.Policy.validate H.policy H.diagram with
    | Ok () -> 0
    | Error e -> List.length e)

let test_study_well_formed () =
  check int_ "study actors" 3
    (List.length H.study_diagram.Mdp_dataflow.Diagram.actors);
  check bool_ "study policy validates" true
    (Mdp_policy.Policy.validate H.study_policy H.study_diagram = Ok ())

let test_table1_dataset () =
  check int_ "six records" 6 (A.Dataset.nrows H.table1_raw);
  check int_ "released drops identifier" 3 (A.Dataset.ncols H.table1_released);
  check bool_ "release is 2-anonymous" true
    (A.Kanon.is_k_anonymous ~k:2 H.table1_released);
  (* The generalisation matches the paper's bands. *)
  check bool_ "first age band" true
    (A.Value.equal
       (A.Dataset.get H.table1_released ~row:0 ~col:0)
       (A.Value.Interval (30.0, 40.0)));
  check bool_ "first height band" true
    (A.Value.equal
       (A.Dataset.get H.table1_released ~row:0 ~col:1)
       (A.Value.Interval (180.0, 200.0)))

(* ------------------------------------------------------------------ *)
(* Smart home *)

let test_smart_home_pipeline () =
  let a = Core.Analysis.run ~profile:SH.profile SH.diagram SH.policy in
  check int_ "no consistency gaps" 0 (List.length a.consistency);
  let report = Option.get a.disclosure in
  check bool_ "marketing is non-allowed" true
    (List.mem "Marketing" report.non_allowed);
  check bool_ "occupancy risk found" true
    (Core.Level.compare (Core.Disclosure_risk.max_level report) Core.Level.Low > 0);
  let a' = Core.Analysis.rerun_with_policy a SH.fixed_policy in
  let report' = Option.get a'.disclosure in
  check bool_ "fix lowers the max level" true
    (Core.Level.compare
       (Core.Disclosure_risk.max_level report')
       (Core.Disclosure_risk.max_level report)
    < 0)

(* ------------------------------------------------------------------ *)
(* Loyalty *)

let test_loyalty_release_pipeline () =
  let raw = L.raw_baskets ~seed:3 ~rows:120 in
  check int_ "rows" 120 (A.Dataset.nrows raw);
  match L.release ~k:4 raw with
  | Error e -> Alcotest.fail e
  | Ok release ->
    check bool_ "release is 4-anonymous" true (A.Kanon.is_k_anonymous ~k:4 release);
    (* The binding feeds pseudonym-risk analysis on the loyalty model. *)
    let binding = L.binding ~dataset:release in
    let options = { Core.Generate.default_options with granular_reads = true } in
    let a =
      Core.Analysis.run ~options ~bindings:[ binding ] L.diagram L.policy
    in
    check bool_ "risk transitions computed" true (a.pseudonym <> []);
    (* Spends cluster by district, so district+age knowledge must carry
       at least as much risk as nothing. *)
    let max_violations =
      List.fold_left
        (fun acc (rt : Core.Pseudonym_risk.risk_transition) ->
          max acc rt.report.A.Value_risk.violations)
        0 a.pseudonym
    in
    check bool_ "some value risk surfaced" true (max_violations >= 0)

let test_loyalty_deterministic_data () =
  let a = L.raw_baskets ~seed:9 ~rows:50 in
  let b = L.raw_baskets ~seed:9 ~rows:50 in
  check bool_ "same seed, same data" true (A.Dataset.rows a = A.Dataset.rows b);
  let c = L.raw_baskets ~seed:10 ~rows:50 in
  check bool_ "different seed differs" true (A.Dataset.rows a <> A.Dataset.rows c)

(* ------------------------------------------------------------------ *)
(* Synthetic *)

let spec seed =
  {
    Syn.seed;
    nactors = 4;
    nfields = 5;
    nstores = 3;
    nservices = 3;
    flows_per_service = 4;
  }

let test_synthetic_model_valid () =
  (* make_exn inside would raise on an ill-formed diagram; also the
     policy must validate and the profile agree to half the services. *)
  let diagram, policy = Syn.model (spec 17) in
  check bool_ "policy validates" true
    (Mdp_policy.Policy.validate policy diagram = Ok ());
  let profile = Syn.profile (spec 17) diagram in
  check bool_ "agrees to at least one service" true
    (Core.User_profile.agreed_services profile <> [])

let test_synthetic_deterministic () =
  let d1, _ = Syn.model (spec 23) and d2, _ = Syn.model (spec 23) in
  check bool_ "same structure" true
    (Mdp_dataflow.Diagram.all_fields d1 = Mdp_dataflow.Diagram.all_fields d2
    && List.length d1.Mdp_dataflow.Diagram.services
       = List.length d2.Mdp_dataflow.Diagram.services)

let test_synthetic_dataset_shape () =
  let ds = Syn.dataset ~seed:5 ~rows:40 ~quasi:3 in
  check int_ "rows" 40 (A.Dataset.nrows ds);
  check int_ "cols" 4 (A.Dataset.ncols ds);
  check int_ "quasi count" 3 (List.length (A.Dataset.quasi_indices ds));
  check int_ "scheme covers quasi" 3 (List.length (Syn.scheme_for ~quasi:3))

let test_synthetic_full_pipeline () =
  let diagram, policy = Syn.model (spec 31) in
  let profile = Syn.profile (spec 31) diagram in
  let a = Core.Analysis.run ~profile diagram policy in
  check bool_ "analysis completes" true (Core.Plts.num_states a.lts >= 1)

let () =
  Alcotest.run "scenario"
    [
      ( "healthcare",
        [
          Alcotest.test_case "model shape" `Quick test_healthcare_well_formed;
          Alcotest.test_case "study model" `Quick test_study_well_formed;
          Alcotest.test_case "table1 artefacts" `Quick test_table1_dataset;
        ] );
      ( "smart home",
        [ Alcotest.test_case "risk pipeline" `Quick test_smart_home_pipeline ] );
      ( "loyalty",
        [
          Alcotest.test_case "release pipeline" `Quick test_loyalty_release_pipeline;
          Alcotest.test_case "deterministic data" `Quick test_loyalty_deterministic_data;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "valid models" `Quick test_synthetic_model_valid;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "dataset shape" `Quick test_synthetic_dataset_shape;
          Alcotest.test_case "full pipeline" `Quick test_synthetic_full_pipeline;
        ] );
    ]
