(* Tests for the model-description language: lexer, parser, printer and
   the print->parse round-trip property over all bundled scenarios. *)

module P = Mdp_dsl.Parser
module Printer = Mdp_dsl.Printer
module Lexer = Mdp_dsl.Lexer
module Token = Mdp_dsl.Token

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Lexer *)

let tokens_of s =
  match Lexer.tokenize s with
  | Ok toks -> List.map (fun (t : Token.located) -> t.token) toks
  | Error e -> Alcotest.fail e

let test_lexer_basics () =
  check int_ "empty input is just Eof" 1 (List.length (tokens_of ""));
  let toks = tokens_of "actor Bob roles [a b] # comment\n1: x -> y" in
  check bool_ "idents and punctuation" true
    (toks
    = [
        Token.Ident "actor"; Token.Ident "Bob"; Token.Ident "roles";
        Token.Lbracket; Token.Ident "a"; Token.Ident "b"; Token.Rbracket;
        Token.Int 1; Token.Colon; Token.Ident "x"; Token.Arrow; Token.Ident "y";
        Token.Eof;
      ])

let test_lexer_strings_and_fields () =
  check bool_ "string token" true
    (tokens_of {|"hello world"|} = [ Token.String "hello world"; Token.Eof ]);
  check bool_ "escaped quote" true
    (tokens_of {|"a\"b"|} = [ Token.String {|a"b|}; Token.Eof ]);
  check bool_ "anon field is one token" true
    (tokens_of "Weight~anon" = [ Token.Ident "Weight~anon"; Token.Eof ]);
  check bool_ "digit-led ident" true
    (tokens_of "2fast" = [ Token.Ident "2fast"; Token.Eof ])

let test_lexer_errors () =
  (match Lexer.tokenize "\"unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated string accepted");
  match Lexer.tokenize "a ! b" with
  | Error msg ->
    check bool_ "line number reported" true
      (String.length msg >= 6 && String.sub msg 0 6 = "line 1")
  | Ok _ -> Alcotest.fail "bad character accepted"

(* ------------------------------------------------------------------ *)
(* Parser *)

let minimal_model =
  {|
  actor Alice roles [staff]
  actor Bob
  store D { schema S { F G } }
  anonstore AD { schema AS { F~anon } }
  service Svc {
    1: User -> Alice [F G] "intake"
    2: Alice -> D [F G]
    3: Alice -> AD [F]
    4: D -> Bob [G] "review"
  }
  hierarchy senior > staff
  allow actor:Alice read write on D
  allow actor:Alice write on AD
  allow role:staff read on D [G]
  deny actor:Bob read delete on D [F]
  |}

let parse_ok s =
  match P.parse s with Ok m -> m | Error e -> Alcotest.fail e

let test_parse_minimal () =
  let m = parse_ok minimal_model in
  let d = m.P.diagram in
  check int_ "actors" 2 (List.length d.Mdp_dataflow.Diagram.actors);
  check int_ "stores" 2 (List.length d.Mdp_dataflow.Diagram.datastores);
  check int_ "services" 1 (List.length d.Mdp_dataflow.Diagram.services);
  let svc = List.hd d.Mdp_dataflow.Diagram.services in
  check int_ "flows" 4 (List.length svc.Mdp_dataflow.Service.flows);
  let flow2 = List.nth svc.Mdp_dataflow.Service.flows 1 in
  check Alcotest.string "default purpose is the service id" "Svc"
    flow2.Mdp_dataflow.Flow.purpose;
  check int_ "policy entries" 4
    (List.length m.P.policy.Mdp_policy.Policy.entries);
  (* role hierarchy took effect: Alice (staff) reads G via the role
     grant; a senior-role holder would too. *)
  check bool_ "role grant applies" true
    (Mdp_policy.Policy.allows m.P.policy ~diagram:d ~actor:"Alice"
       Mdp_policy.Permission.Read ~store:"D" (Mdp_dataflow.Field.make "G"))

let expect_parse_error ?(substring = "") s =
  match P.parse s with
  | Ok _ -> Alcotest.failf "parse succeeded unexpectedly: %s" s
  | Error msg ->
    if substring <> "" then begin
      let contains hay needle =
        let hn = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      if not (contains msg substring) then
        Alcotest.failf "error %S does not mention %S" msg substring
    end

let test_parse_errors () =
  expect_parse_error ~substring:"expected" "actor";
  expect_parse_error ~substring:"line" "service S { oops }";
  expect_parse_error ~substring:"unknown permission"
    "actor A\nstore D { schema S { F } }\nallow actor:A fly on D";
  expect_parse_error ~substring:"subject"
    "store D { schema S { F } }\nallow wizard:A read on D";
  (* validation failures surface too: unknown flow endpoint *)
  expect_parse_error ~substring:"unknown"
    "actor A\nservice S { 1: Ghost -> A [F] }";
  (* and policy validation *)
  expect_parse_error ~substring:"unknown actor"
    "actor A\nstore D { schema S { F } }\nallow actor:Ghost read on D";
  (* and RBAC cycles *)
  expect_parse_error ~substring:"cycle"
    "actor A\nhierarchy a > b\nhierarchy b > a"

(* ------------------------------------------------------------------ *)
(* Printer round-trips *)

let roundtrip name (m : P.model) =
  let text = Printer.to_string m in
  match P.parse text with
  | Error e -> Alcotest.failf "%s: reparse failed: %s" name e
  | Ok m2 ->
    check Alcotest.string
      (name ^ " print/parse/print fixpoint")
      text (Printer.to_string m2)

let test_roundtrip_scenarios () =
  roundtrip "healthcare"
    {
      P.diagram = Mdp_scenario.Healthcare.diagram;
      policy = Mdp_scenario.Healthcare.policy;
      placement = None;
    };
  roundtrip "study"
    {
      P.diagram = Mdp_scenario.Healthcare.study_diagram;
      policy = Mdp_scenario.Healthcare.study_policy;
      placement = None;
    };
  roundtrip "smart home"
    {
      P.diagram = Mdp_scenario.Smart_home.diagram;
      policy = Mdp_scenario.Smart_home.policy;
      placement = None;
    };
  roundtrip "loyalty"
    {
      P.diagram = Mdp_scenario.Loyalty.diagram;
      policy = Mdp_scenario.Loyalty.policy;
      placement = None;
    };
  roundtrip "minimal" (parse_ok minimal_model)

let prop_roundtrip_synthetic =
  QCheck.Test.make ~name:"synthetic models round-trip" ~count:25
    QCheck.(int_range 1 500)
    (fun seed ->
      let spec =
        {
          Mdp_scenario.Synthetic.seed;
          nactors = 3;
          nfields = 3;
          nstores = 2;
          nservices = 2;
          flows_per_service = 3;
        }
      in
      let diagram, policy = Mdp_scenario.Synthetic.model spec in
      let m = { P.diagram; policy; placement = None } in
      let text = Printer.to_string m in
      match P.parse text with
      | Error _ -> false
      | Ok m2 -> Printer.to_string m2 = text)

let deployed_model =
  minimal_model
  ^ {|
  node main region EU
  node edge region US
  place actor:Alice on main
  place actor:Bob on edge
  place store:D on main
  place store:AD on edge
  |}

let test_placement_parses_and_roundtrips () =
  let m = parse_ok deployed_model in
  (match m.P.placement with
  | None -> Alcotest.fail "placement missing"
  | Some p ->
    check int_ "two nodes" 2 (List.length p.nodes);
    check int_ "two actors placed" 2 (List.length p.actor_nodes);
    check int_ "two stores placed" 2 (List.length p.store_nodes));
  roundtrip "deployed" m

let test_placement_errors () =
  expect_parse_error ~substring:"undeclared node"
    "actor A\nplace actor:A on nowhere";
  expect_parse_error ~substring:"duplicate node"
    "node n region EU\nnode n region US";
  expect_parse_error ~substring:"not in the model"
    "actor A\nnode n region EU\nplace actor:Ghost on n"

let test_parsed_model_analyses () =
  (* A parsed model feeds the full pipeline. *)
  let m = parse_ok minimal_model in
  let u = Mdp_core.Universe.make m.P.diagram m.P.policy in
  let lts = Mdp_core.Generate.run u in
  check bool_ "pipeline runs on parsed model" true
    (Mdp_core.Plts.num_states lts > 1)

let () =
  Alcotest.run "dsl"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "strings/fields" `Quick test_lexer_strings_and_fields;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal model" `Quick test_parse_minimal;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "feeds pipeline" `Quick test_parsed_model_analyses;
          Alcotest.test_case "placement" `Quick test_placement_parses_and_roundtrips;
          Alcotest.test_case "placement errors" `Quick test_placement_errors;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "bundled scenarios" `Quick test_roundtrip_scenarios;
          QCheck_alcotest.to_alcotest prop_roundtrip_synthetic;
        ] );
    ]
