(* Tests for the paper's core: the variable universe, privacy states,
   action labels, LTS generation semantics (§II-B), user profiles, the
   risk matrix, disclosure-risk analysis (§III-A), pseudonymisation risk
   (§III-B) and the model/policy consistency check. *)

open Mdp_dataflow
module Core = Mdp_core
module H = Mdp_scenario.Healthcare
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let level_t = Alcotest.testable Core.Level.pp Core.Level.equal

let universe () = Core.Universe.make H.diagram H.policy

(* ------------------------------------------------------------------ *)
(* Level *)

let test_level_order () =
  check bool_ "ordering" true
    (Core.Level.compare Core.Level.None_ Core.Level.Low < 0
    && Core.Level.compare Core.Level.Low Core.Level.Medium < 0
    && Core.Level.compare Core.Level.Medium Core.Level.High < 0);
  check level_t "max" Core.Level.High (Core.Level.max Core.Level.Low Core.Level.High);
  List.iter
    (fun l ->
      check bool_ "string roundtrip" true
        (Core.Level.of_string (Core.Level.to_string l) = Some l))
    [ Core.Level.None_; Core.Level.Low; Core.Level.Medium; Core.Level.High ]

(* ------------------------------------------------------------------ *)
(* Universe *)

let test_universe_dimensions () =
  let u = universe () in
  check int_ "actors" 5 (Core.Universe.nactors u);
  (* 6 base + 4 anon variants *)
  check int_ "fields" 10 (Core.Universe.nfields u);
  check int_ "stores" 3 (Core.Universe.nstores u);
  check int_ "flows" 9 (Core.Universe.nflows u);
  check int_ "state variables (per has/could copy)" 50 (Core.Universe.nvars u)

let test_universe_indexing () =
  let u = universe () in
  let a = Core.Universe.actor_index u "Doctor" in
  check Alcotest.string "actor roundtrip" "Doctor" (Core.Universe.actor_name u a);
  let f = Core.Universe.field_index u H.diagnosis in
  check bool_ "field roundtrip" true
    (Field.equal H.diagnosis (Core.Universe.field_at u f));
  let v = Core.Universe.var u ~actor:a ~field:f in
  check int_ "var actor" a (Core.Universe.var_actor u v);
  check int_ "var field" f (Core.Universe.var_field u v);
  match Core.Universe.actor_index u "Nobody" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown actor resolved"

let test_universe_policy_caches () =
  let u = universe () in
  let ehr = Core.Universe.store_index u "EHR" in
  let diag = Core.Universe.field_index u H.diagnosis in
  let readers =
    List.map (Core.Universe.actor_name u)
      (Core.Universe.readers u ~store:ehr ~field:diag)
  in
  check (Alcotest.list Alcotest.string) "diagnosis readers"
    [ "Doctor"; "Administrator" ] readers;
  let deleters =
    List.map (Core.Universe.actor_name u) (Core.Universe.deleters u ~store:ehr)
  in
  check (Alcotest.list Alcotest.string) "EHR deleters" [ "Administrator" ] deleters;
  let nurse = Core.Universe.actor_index u "Nurse" in
  check int_ "nurse reads 2 EHR fields" 2
    (List.length (Core.Universe.readable_by u ~actor:nurse ~store:ehr))

let test_universe_with_policy () =
  let u = universe () in
  let u' = Core.Universe.with_policy u H.fixed_policy in
  let ehr = Core.Universe.store_index u' "EHR" in
  let diag = Core.Universe.field_index u' H.diagnosis in
  let readers =
    List.map (Core.Universe.actor_name u')
      (Core.Universe.readers u' ~store:ehr ~field:diag)
  in
  check (Alcotest.list Alcotest.string) "admin revoked" [ "Doctor" ] readers;
  check int_ "original untouched" 2
    (List.length (Core.Universe.readers u ~store:ehr ~field:diag))

let test_universe_rejects_bad_policy () =
  let bad =
    Mdp_policy.Policy.make
      [ Acl.allow (Acl.Actor_subject "Ghost") ~store:"EHR" [ Permission.Read ] ]
  in
  match Core.Universe.make H.diagram bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid policy accepted"

(* ------------------------------------------------------------------ *)
(* Privacy state *)

let test_privacy_state () =
  let u = universe () in
  let s = Core.Privacy_state.absolute u in
  check bool_ "absolute has none" true
    (Core.Privacy_state.identified_pairs u s = []);
  let s' = Core.Privacy_state.copy s in
  Mdp_prelude.Bitset.set s'.Core.Privacy_state.has
    (Core.Universe.var u
       ~actor:(Core.Universe.actor_index u "Doctor")
       ~field:(Core.Universe.field_index u H.diagnosis));
  check bool_ "copy isolated" false (Core.Privacy_state.equal s s');
  check bool_ "has query" true
    (Core.Privacy_state.has u s' ~actor:"Doctor" ~field:H.diagnosis);
  check bool_ "could untouched" false
    (Core.Privacy_state.could u s' ~actor:"Doctor" ~field:H.diagnosis);
  check
    (Alcotest.list
       (Alcotest.pair Alcotest.string (Alcotest.testable Field.pp Field.equal)))
    "identified pairs"
    [ ("Doctor", H.diagnosis) ]
    (Core.Privacy_state.identified_pairs u s');
  (* The Fig. 2 table renders header + rule + one row per actor. *)
  let rendered = Format.asprintf "%a" (Core.Privacy_state.pp_table u) s' in
  check int_ "table line count" 7
    (List.length (String.split_on_char '\n' rendered))


(* ------------------------------------------------------------------ *)
(* Action labels *)

let test_action_label () =
  let k = Alcotest.testable Core.Action.pp_kind ( = ) in
  check k "collect" Core.Action.Collect (Core.Action.kind_of_flow Flow.Collect);
  check k "disclose" Core.Action.Disclose (Core.Action.kind_of_flow Flow.Disclose);
  check k "create" Core.Action.Create (Core.Action.kind_of_flow Flow.Create);
  check k "anon" Core.Action.Anon (Core.Action.kind_of_flow Flow.Anon);
  check k "read" Core.Action.Read (Core.Action.kind_of_flow Flow.Read);
  let a =
    Core.Action.make ~schema:"HealthRecord" ~store:"EHR" ~purpose:"p"
      ~kind:Core.Action.Read ~fields:[ H.diagnosis ] ~actor:"Administrator"
      Core.Action.Potential
  in
  let printed = Format.asprintf "%a" Core.Action.pp a in
  let contains needle =
    let hn = String.length printed and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub printed i nn = needle || go (i + 1)) in
    go 0
  in
  check bool_ "prints kind" true (contains "read");
  check bool_ "prints schema" true (contains ":HealthRecord");
  check bool_ "prints provenance" true (contains "[potential]");
  check bool_ "prints purpose" true (contains "for \"p\"");
  (* risk annotation changes equality and printing *)
  let a' =
    Core.Action.with_risk a
      (Core.Action.Disclosure_risk
         { impact = Core.Level.High; likelihood = Core.Level.Low; level = Core.Level.Medium })
  in
  check bool_ "risk breaks equality" false (Core.Action.equal a a');
  check bool_ "risk printed" true
    (let p = Format.asprintf "%a" Core.Action.pp a' in
     String.length p > String.length printed);
  match Core.Action.make ~kind:Core.Action.Read ~fields:[] ~actor:"x" Core.Action.Potential with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty field list accepted"

(* ------------------------------------------------------------------ *)
(* Generation semantics *)

let run_lts ?(options = Core.Generate.default_options) () =
  let u = universe () in
  (u, Core.Generate.run ~options u)

let test_generation_initial_state () =
  let u, lts = run_lts () in
  let init = Core.Plts.state_data lts (Core.Plts.initial lts) in
  check bool_ "initial is absolute privacy" true
    (Core.Privacy_state.equal init.Core.Config.privacy
       (Core.Privacy_state.absolute u))

let test_generation_flow_only_medical () =
  (* Fig. 3: the Medical Service alone is a 7-state chain. *)
  let u = universe () in
  let lts =
    Core.Generate.run
      ~options:
        { Core.Generate.flow_only with services = Some [ H.medical_service ] }
      u
  in
  check int_ "states" 7 (Core.Plts.num_states lts);
  check int_ "transitions" 6 (Core.Plts.num_transitions lts);
  check bool_ "acyclic" true (Core.Plts.is_acyclic lts);
  check bool_ "deterministic" true (Core.Plts.is_deterministic lts)

let test_generation_strict_ordering () =
  let _, lts = run_lts ~options:Core.Generate.flow_only () in
  let init = Core.Plts.initial lts in
  List.iter
    (fun ((label : Core.Action.t), _) ->
      match label.provenance with
      | Core.Action.From_flow { order; _ } ->
        check int_ "only first flows enabled initially" 1 order
      | Core.Action.Potential | Core.Action.Inferred ->
        Alcotest.fail "flow_only should not emit potential actions")
    (Core.Plts.successors lts init)

let test_generation_data_driven_larger () =
  let u = universe () in
  let strict = Core.Generate.run ~options:Core.Generate.flow_only u in
  let dd =
    Core.Generate.run
      ~options:
        { Core.Generate.flow_only with ordering = Core.Generate.Data_driven }
      u
  in
  check bool_ "data-driven explores at least as many states" true
    (Core.Plts.num_states dd >= Core.Plts.num_states strict)

let test_generation_could_semantics () =
  (* After the Doctor creates the EHR record, every policy-permitted
     reader could identify the stored fields. *)
  let u, lts = run_lts ~options:Core.Generate.flow_only () in
  let created =
    Core.Plts.states_where lts (fun s ->
        let cfg = Core.Plts.state_data lts s in
        Core.Privacy_state.could u cfg.Core.Config.privacy
          ~actor:"Administrator" ~field:H.diagnosis)
  in
  check bool_ "admin could identify diagnosis somewhere" true (created <> []);
  List.iter
    (fun s ->
      let cfg = Core.Plts.state_data lts s in
      check bool_ "nurse could treatment" true
        (Core.Privacy_state.could u cfg.Core.Config.privacy ~actor:"Nurse"
           ~field:H.treatment);
      check bool_ "nurse could not diagnosis" false
        (Core.Privacy_state.could u cfg.Core.Config.privacy ~actor:"Nurse"
           ~field:H.diagnosis))
    created

let test_generation_potential_reads_appear () =
  let _, lts = run_lts () in
  let has_potential = ref false in
  Core.Plts.iter_transitions lts (fun tr ->
      if tr.label.Core.Action.provenance = Core.Action.Potential then begin
        has_potential := true;
        check bool_ "potential actions are reads" true
          (tr.label.Core.Action.kind = Core.Action.Read)
      end);
  check bool_ "some potential read exists" true !has_potential

let test_generation_granular_vs_coarse () =
  let u = universe () in
  let coarse = Core.Generate.run u in
  let granular =
    Core.Generate.run
      ~options:{ Core.Generate.default_options with granular_reads = true }
      u
  in
  check bool_ "granular at least as many states" true
    (Core.Plts.num_states granular >= Core.Plts.num_states coarse);
  Core.Plts.iter_transitions granular (fun tr ->
      if tr.label.Core.Action.provenance = Core.Action.Potential then
        check int_ "one field per granular read" 1
          (List.length tr.label.Core.Action.fields))

let test_generation_enforcement () =
  (* Under the fixed policy no read by the Administrator delivers the
     Diagnosis. *)
  let u = Core.Universe.make H.diagram H.fixed_policy in
  let lts = Core.Generate.run u in
  Core.Plts.iter_transitions lts (fun tr ->
      let l = tr.label in
      if
        l.Core.Action.kind = Core.Action.Read
        && l.Core.Action.actor = "Administrator"
      then
        check bool_ "no diagnosis delivered to admin" false
          (List.exists (Field.equal H.diagnosis) l.Core.Action.fields))

let test_generation_deletes () =
  let u = universe () in
  let lts =
    Core.Generate.run
      ~options:{ Core.Generate.default_options with potential_deletes = true }
      u
  in
  let found = ref false in
  Core.Plts.iter_transitions lts (fun tr ->
      if tr.label.Core.Action.kind = Core.Action.Delete then begin
        found := true;
        check Alcotest.string "only the EHR deleter" "Administrator"
          tr.label.Core.Action.actor;
        let dst = Core.Plts.state_data lts tr.dst in
        let store =
          Core.Universe.store_index u (Option.get tr.label.Core.Action.store)
        in
        check bool_ "store emptied" true
          (Mdp_prelude.Bitset.is_empty dst.Core.Config.stores.(store))
      end);
  check bool_ "a delete transition exists" true !found

let test_generation_determinism () =
  let _, a = run_lts () in
  let _, b = run_lts () in
  check int_ "same states" (Core.Plts.num_states a) (Core.Plts.num_states b);
  check int_ "same transitions" (Core.Plts.num_transitions a)
    (Core.Plts.num_transitions b)

let prop_generation_synthetic_bounded =
  QCheck.Test.make ~name:"synthetic models generate acyclic LTSs" ~count:15
    QCheck.(int_range 1 100)
    (fun seed ->
      let spec =
        {
          Mdp_scenario.Synthetic.seed;
          nactors = 3;
          nfields = 4;
          nstores = 2;
          nservices = 2;
          flows_per_service = 3;
        }
      in
      let diagram, policy = Mdp_scenario.Synthetic.model spec in
      let u = Core.Universe.make diagram policy in
      let lts = Core.Generate.run u in
      Core.Plts.num_states lts >= 1 && Core.Plts.is_acyclic lts)


let prop_strict_subset_of_data_driven =
  (* Relaxing the ordering can only add behaviour: every configuration
     reachable under Strict is reachable under Data_driven. *)
  QCheck.Test.make ~name:"strict-reachable subset of data-driven" ~count:10
    QCheck.(int_range 1 200)
    (fun seed ->
      let spec =
        {
          Mdp_scenario.Synthetic.seed;
          nactors = 3;
          nfields = 3;
          nstores = 2;
          nservices = 2;
          flows_per_service = 3;
        }
      in
      let diagram, policy = Mdp_scenario.Synthetic.model spec in
      let u = Core.Universe.make diagram policy in
      let strict = Core.Generate.run ~options:Core.Generate.flow_only u in
      let dd =
        Core.Generate.run
          ~options:
            { Core.Generate.flow_only with ordering = Core.Generate.Data_driven }
          u
      in
      List.for_all
        (fun s -> Core.Plts.find_state dd (Core.Plts.state_data strict s) <> None)
        (Core.Plts.states strict))

let test_lts_render_smoke () =
  let u = universe () in
  let lts = Core.Generate.run u in
  ignore (Core.Disclosure_risk.analyse u lts H.profile_case_a);
  let dot = Core.Lts_render.to_dot ~verbose_states:true u lts in
  let contains needle =
    let hn = String.length dot and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub dot i nn = needle || go (i + 1)) in
    go 0
  in
  check bool_ "digraph" true (contains "digraph privacy_lts");
  check bool_ "dashed potential" true (contains "style=dashed");
  check bool_ "risk colour" true (contains "color=orange");
  check bool_ "verbose state labels" true (contains "(has)");
  let summary = Core.Lts_render.summary u lts in
  check bool_ "summary mentions counts" true
    (String.length summary > 10 && contains "digraph" = contains "digraph")

(* ------------------------------------------------------------------ *)
(* User profile *)

let test_profile_basics () =
  let p = H.profile_case_a in
  check bool_ "agrees medical" true
    (Core.User_profile.agrees_to p H.medical_service);
  check bool_ "not research" false
    (Core.User_profile.agrees_to p H.research_service);
  check (Alcotest.float 1e-9) "diagnosis sigma" 0.9
    (Core.User_profile.sensitivity p H.diagnosis);
  check (Alcotest.float 1e-9) "unlisted field" 0.0
    (Core.User_profile.sensitivity p H.treatment);
  check (Alcotest.float 1e-9) "anon not inherited" 0.0
    (Core.User_profile.sensitivity p (Field.anon_of H.diagnosis))

let test_profile_allowed_actors () =
  let p = H.profile_case_a in
  check (Alcotest.list Alcotest.string) "allowed"
    [ "Receptionist"; "Doctor"; "Nurse" ]
    (Core.User_profile.allowed_actors p H.diagram);
  check (Alcotest.list Alcotest.string) "non-allowed"
    [ "Administrator"; "Researcher" ]
    (Core.User_profile.non_allowed_actors p H.diagram);
  check (Alcotest.float 1e-9) "sigma allowed actor" 0.0
    (Core.User_profile.sigma p H.diagram ~actor:"Doctor" H.diagnosis);
  check (Alcotest.float 1e-9) "sigma non-allowed actor" 0.9
    (Core.User_profile.sigma p H.diagram ~actor:"Administrator" H.diagnosis)

let test_profile_invalid () =
  (match
     Core.User_profile.make
       ~sensitivities:[ (H.diagnosis, 1.5) ]
       ~agreed_services:[] ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sensitivity > 1 accepted");
  match
    Core.User_profile.make
      ~sensitivities:[ (H.diagnosis, 0.5); (H.diagnosis, 0.6) ]
      ~agreed_services:[] ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate field accepted"

(* ------------------------------------------------------------------ *)
(* Risk matrix *)

let test_risk_matrix_default () =
  let m = Core.Risk_matrix.default in
  check level_t "zero impact" Core.Level.None_ (Core.Risk_matrix.impact_level m 0.0);
  check level_t "low impact" Core.Level.Low (Core.Risk_matrix.impact_level m 0.2);
  check level_t "medium impact" Core.Level.Medium (Core.Risk_matrix.impact_level m 0.5);
  check level_t "high impact" Core.Level.High (Core.Risk_matrix.impact_level m 0.9);
  check level_t "low likelihood" Core.Level.Low
    (Core.Risk_matrix.likelihood_level m 0.05);
  check level_t "H x L = Medium" Core.Level.Medium
    (Core.Risk_matrix.level m ~impact:Core.Level.High ~likelihood:Core.Level.Low);
  check level_t "L x L = Low" Core.Level.Low
    (Core.Risk_matrix.level m ~impact:Core.Level.Low ~likelihood:Core.Level.Low);
  check level_t "H x H = High" Core.Level.High
    (Core.Risk_matrix.level m ~impact:Core.Level.High ~likelihood:Core.Level.High);
  check level_t "None collapses" Core.Level.None_
    (Core.Risk_matrix.level m ~impact:Core.Level.None_ ~likelihood:Core.Level.High)

let test_risk_matrix_custom () =
  (match Core.Risk_matrix.make ~impact_thresholds:(0.7, 0.4) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing thresholds accepted");
  let strict_table =
    [|
      [| Core.Level.Medium; Core.Level.High; Core.Level.High |];
      [| Core.Level.High; Core.Level.High; Core.Level.High |];
      [| Core.Level.High; Core.Level.High; Core.Level.High |];
    |]
  in
  let m = Core.Risk_matrix.make ~table:strict_table () in
  check level_t "custom table" Core.Level.Medium
    (Core.Risk_matrix.level m ~impact:Core.Level.Low ~likelihood:Core.Level.Low)


let prop_risk_matrix_monotone =
  (* Raising either dimension never lowers the resulting level. *)
  QCheck.Test.make ~name:"risk matrix monotone in both dimensions" ~count:200
    QCheck.(pair (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
              (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun ((i1, l1), (i2, l2)) ->
      let m = Core.Risk_matrix.default in
      let level i l =
        Core.Risk_matrix.level m
          ~impact:(Core.Risk_matrix.impact_level m i)
          ~likelihood:(Core.Risk_matrix.likelihood_level m l)
      in
      let lo_i = Float.min i1 i2 and hi_i = Float.max i1 i2 in
      let lo_l = Float.min l1 l2 and hi_l = Float.max l1 l2 in
      Core.Level.compare (level hi_i lo_l) (level lo_i lo_l) >= 0
      && Core.Level.compare (level lo_i hi_l) (level lo_i lo_l) >= 0)

(* ------------------------------------------------------------------ *)
(* Disclosure risk (§III-A / §IV-A) *)

let case_a () =
  let u = universe () in
  let lts = Core.Generate.run u in
  let report = Core.Disclosure_risk.analyse u lts H.profile_case_a in
  (u, lts, report)

let test_case_a_non_allowed () =
  let _, _, report = case_a () in
  check (Alcotest.list Alcotest.string) "non-allowed"
    [ "Administrator"; "Researcher" ] report.non_allowed

let test_case_a_medium () =
  let _, _, report = case_a () in
  check level_t "admin/EHR/Diagnosis is Medium" Core.Level.Medium
    (Core.Disclosure_risk.level_for report ~actor:"Administrator" ~store:"EHR"
       ~field:H.diagnosis);
  check level_t "max is Medium" Core.Level.Medium
    (Core.Disclosure_risk.max_level report)

let test_case_a_no_researcher_findings () =
  let _, _, report = case_a () in
  check int_ "researcher has no findings (anon data only)" 0
    (List.length (Core.Disclosure_risk.findings_for report ~actor:"Researcher"))

let test_case_a_witnesses_reach_src () =
  let _, lts, report = case_a () in
  List.iter
    (fun (f : Core.Disclosure_risk.finding) ->
      (* Replaying the witness labels from the initial state must land on
         the finding's source state (modulo risk annotations added after
         the witness was captured). *)
      let state = ref (Core.Plts.initial lts) in
      List.iter
        (fun (a : Core.Action.t) ->
          match
            List.find_opt
              (fun ((l : Core.Action.t), _) ->
                Core.Action.equal { l with risk = None } { a with risk = None })
              (Core.Plts.successors lts !state)
          with
          | Some (_, next) -> state := next
          | None -> Alcotest.fail "witness step not found")
        f.witness;
      check int_ "witness reaches finding source" f.src !state)
    (Mdp_prelude.Listx.take 5 report.findings)

let test_case_a_fix_reduces_to_low () =
  let u, _, _ = case_a () in
  let u' = Core.Universe.with_policy u H.fixed_policy in
  let lts' = Core.Generate.run u' in
  let report' = Core.Disclosure_risk.analyse u' lts' H.profile_case_a in
  check level_t "after fix: Low" Core.Level.Low
    (Core.Disclosure_risk.max_level report');
  check level_t "diagnosis event gone" Core.Level.None_
    (Core.Disclosure_risk.level_for report' ~actor:"Administrator" ~store:"EHR"
       ~field:H.diagnosis)

let test_annotation_in_place () =
  let _, lts, _ = case_a () in
  let annotated = ref 0 in
  Core.Plts.iter_transitions lts (fun tr ->
      if tr.label.Core.Action.kind = Core.Action.Read then begin
        match tr.label.Core.Action.risk with
        | Some (Core.Action.Disclosure_risk _) -> incr annotated
        | Some (Core.Action.Value_risk _) | None ->
          Alcotest.fail "read transition left unannotated"
      end);
  check bool_ "reads annotated" true (!annotated > 0)

let test_exposures_reported () =
  let _, _, report = case_a () in
  check bool_ "create exposure present" true
    (List.exists
       (fun (f : Core.Disclosure_risk.finding) ->
         f.action.Core.Action.kind = Core.Action.Create
         && List.exists (Field.equal H.diagnosis) f.action.Core.Action.fields)
       report.exposures)

let test_likelihood_scenarios () =
  let u = universe () in
  let model = Core.Disclosure_risk.default_likelihood in
  (* Potential read by the Administrator: accidental (0.05) + maintenance
     (0.02, it may Delete) + rogue service (0.01, the research service
     reads the EHR into it). *)
  let action =
    Core.Action.make ~store:"EHR" ~kind:Core.Action.Read
      ~fields:[ H.diagnosis ] ~actor:"Administrator" Core.Action.Potential
  in
  check (Alcotest.float 1e-9) "admin potential likelihood" 0.08
    (Core.Disclosure_risk.transition_likelihood u H.profile_case_a model action);
  let agreed_flow =
    Core.Action.make ~store:"EHR" ~kind:Core.Action.Read
      ~fields:[ H.treatment ] ~actor:"Nurse"
      (Core.Action.From_flow { service = H.medical_service; order = 6 })
  in
  check (Alcotest.float 1e-9) "agreed flow likelihood" 0.0
    (Core.Disclosure_risk.transition_likelihood u H.profile_case_a model
       agreed_flow);
  let create =
    Core.Action.make ~store:"EHR" ~kind:Core.Action.Create
      ~fields:[ H.diagnosis ] ~actor:"Doctor"
      (Core.Action.From_flow { service = H.medical_service; order = 5 })
  in
  check (Alcotest.float 1e-9) "create likelihood" 0.0
    (Core.Disclosure_risk.transition_likelihood u H.profile_case_a model create)

let test_impact_computation () =
  let u = universe () in
  let read =
    Core.Action.make ~store:"EHR" ~kind:Core.Action.Read
      ~fields:[ H.diagnosis; H.treatment ]
      ~actor:"Administrator" Core.Action.Potential
  in
  check (Alcotest.float 1e-9) "read impact = max sigma" 0.9
    (Core.Disclosure_risk.transition_impact u H.profile_case_a read);
  let allowed_read = { read with Core.Action.actor = "Doctor" } in
  check (Alcotest.float 1e-9) "allowed actor impact 0" 0.0
    (Core.Disclosure_risk.transition_impact u H.profile_case_a allowed_read);
  let create =
    Core.Action.make ~store:"EHR" ~kind:Core.Action.Create
      ~fields:[ H.diagnosis ] ~actor:"Doctor"
      (Core.Action.From_flow { service = H.medical_service; order = 5 })
  in
  check (Alcotest.float 1e-9) "create impact via admin reader" 0.9
    (Core.Disclosure_risk.transition_impact u H.profile_case_a create)


let test_disclosure_preserves_value_risk_annotations () =
  (* Running the disclosure pass AFTER the pseudonymisation pass must not
     clobber the Value_risk annotations on inferred transitions. *)
  let u = Core.Universe.make H.study_diagram H.study_policy in
  let lts =
    Core.Generate.run
      ~options:{ Core.Generate.default_options with granular_reads = true }
      u
  in
  let rts = Core.Pseudonym_risk.analyse u lts H.study_binding in
  check bool_ "risk transitions exist" true (rts <> []);
  let profile =
    Core.User_profile.make
      ~sensitivities:[ (H.weight, 0.9) ]
      ~agreed_services:[ "DataCollection" ] ()
  in
  let report = Core.Disclosure_risk.analyse u lts profile in
  (* Inferred transitions keep their Value_risk... *)
  Core.Plts.iter_transitions lts (fun tr ->
      if tr.label.Core.Action.provenance = Core.Action.Inferred then
        match tr.label.Core.Action.risk with
        | Some (Core.Action.Value_risk _) -> ()
        | _ -> Alcotest.fail "value-risk annotation clobbered");
  (* ...and never appear among the disclosure findings. *)
  List.iter
    (fun (f : Core.Disclosure_risk.finding) ->
      check bool_ "no inferred disclosure findings" true
        (f.action.Core.Action.provenance <> Core.Action.Inferred))
    report.findings

let prop_fix_never_raises_risk =
  QCheck.Test.make ~name:"revocation monotone on max level" ~count:10
    QCheck.(int_bound 4)
    (fun actor_i ->
      let u = universe () in
      let lts = Core.Generate.run u in
      let before =
        Core.Disclosure_risk.max_level
          (Core.Disclosure_risk.analyse u lts H.profile_case_a)
      in
      let actor = Core.Universe.actor_name u actor_i in
      let policy' =
        Mdp_policy.Policy.revoke H.policy ~subject:(Acl.Actor_subject actor)
          ~store:"EHR" [ Permission.Read ]
      in
      let u' = Core.Universe.with_policy u policy' in
      let lts' = Core.Generate.run u' in
      let after =
        Core.Disclosure_risk.max_level
          (Core.Disclosure_risk.analyse u' lts' H.profile_case_a)
      in
      Core.Level.compare after before <= 0)

(* ------------------------------------------------------------------ *)
(* Pseudonymisation risk (§III-B / §IV-B / Fig. 4) *)

let study () =
  let options = { Core.Generate.default_options with granular_reads = true } in
  Core.Analysis.run ~options ~bindings:[ H.study_binding ] H.study_diagram
    H.study_policy

let test_study_risk_transitions_exist () =
  let a = study () in
  check bool_ "risk transitions found" true (a.pseudonym <> []);
  List.iter
    (fun (rt : Core.Pseudonym_risk.risk_transition) ->
      check Alcotest.string "researcher is the at-risk actor" "Researcher"
        rt.actor;
      check bool_ "field is Weight" true (Field.equal rt.field H.weight))
    a.pseudonym

let test_study_violation_counts () =
  let a = study () in
  let by_fields =
    List.map
      (fun (rt : Core.Pseudonym_risk.risk_transition) ->
        ( List.sort String.compare (List.map Field.name rt.fields_read),
          rt.report.Mdp_anon.Value_risk.violations ))
      a.pseudonym
    |> Mdp_prelude.Listx.dedup
    |> List.sort compare
  in
  (* Fig. 4's labels: reading nothing or Height alone -> 0 violations;
     Age -> 2; Age+Height -> 4. *)
  check
    (Alcotest.list (Alcotest.pair (Alcotest.list Alcotest.string) int_))
    "violations by fields read"
    [
      ([], 0);
      ([ "Age~anon" ], 2);
      ([ "Age~anon"; "Height~anon" ], 4);
      ([ "Height~anon" ], 0);
    ]
    by_fields

let test_study_risk_transitions_annotated () =
  let a = study () in
  let inferred = ref 0 in
  Core.Plts.iter_transitions a.lts (fun tr ->
      if tr.label.Core.Action.provenance = Core.Action.Inferred then begin
        incr inferred;
        match tr.label.Core.Action.risk with
        | Some (Core.Action.Value_risk { total = 6; _ }) -> ()
        | _ -> Alcotest.fail "inferred transition lacks value-risk annotation"
      end);
  check int_ "annotated = reported" (List.length a.pseudonym) !inferred

let test_study_gate () =
  let a = study () in
  (match Core.Pseudonym_risk.check ~max_violation_ratio:0.5 a.pseudonym with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "4/6 violations should trip a 50% gate");
  match Core.Pseudonym_risk.check ~max_violation_ratio:0.7 a.pseudonym with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_no_risk_when_raw_access_allowed () =
  let policy' =
    Mdp_policy.Policy.grant H.study_policy
      (Acl.allow (Acl.Actor_subject "Researcher") ~store:"StudyRecords"
         ~fields:[ H.weight ] [ Permission.Read ])
  in
  let options = { Core.Generate.default_options with granular_reads = true } in
  let a =
    Core.Analysis.run ~options ~bindings:[ H.study_binding ] H.study_diagram
      policy'
  in
  check int_ "no inferred transitions" 0 (List.length a.pseudonym)

let test_binding_validation () =
  (match
     Core.Pseudonym_risk.make_binding ~store:"AnonStudy"
       ~dataset:H.table1_released
       ~attr_fields:[ ("Age", H.age) ]
       ~policy:H.value_policy
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unbound sensitive accepted");
  match
    Core.Pseudonym_risk.make_binding ~store:"AnonStudy"
      ~dataset:H.table1_released
      ~attr_fields:
        [
          ("Age", H.age);
          ("Height", H.height);
          ("Weight", H.weight);
          ("Ghost", H.name);
        ]
      ~policy:H.value_policy
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign attribute accepted"

(* ------------------------------------------------------------------ *)
(* Consistency *)

let test_consistency_clean () =
  let u = universe () in
  check int_ "healthcare policy covers all flows" 0
    (List.length (Core.Consistency.check u))

let test_consistency_gap_after_fix () =
  let u = Core.Universe.make H.diagram H.fixed_policy in
  match Core.Consistency.check u with
  | [ gap ] ->
    check Alcotest.string "actor" "Administrator" gap.actor;
    check Alcotest.string "store" "EHR" gap.store;
    check bool_ "missing read" true (gap.missing = Permission.Read);
    check (Alcotest.list Alcotest.string) "field" [ "Diagnosis" ]
      (List.map Field.name gap.fields)
  | gaps -> Alcotest.failf "expected exactly one gap, got %d" (List.length gaps)

let test_consistency_write_gap () =
  let policy' =
    Mdp_policy.Policy.revoke H.policy ~subject:(Acl.Actor_subject "Doctor")
      ~store:"EHR" [ Permission.Write ]
  in
  let u = Core.Universe.make H.diagram policy' in
  check bool_ "write gap reported" true
    (List.exists
       (fun (g : Core.Consistency.gap) ->
         g.actor = "Doctor" && g.missing = Permission.Write)
       (Core.Consistency.check u))

(* ------------------------------------------------------------------ *)
(* Analysis façade *)

let test_analysis_facade () =
  let a = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy in
  check bool_ "disclosure present" true (a.disclosure <> None);
  check int_ "no gaps" 0 (List.length a.consistency);
  let a' = Core.Analysis.rerun_with_policy a H.fixed_policy in
  check level_t "rerun reduces" Core.Level.Low
    (Core.Disclosure_risk.max_level (Option.get a'.disclosure));
  check bool_ "profile kept across rerun" true (a'.params.profile <> None)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core"
    [
      ("level", [ Alcotest.test_case "ordering" `Quick test_level_order ]);
      ( "universe",
        [
          Alcotest.test_case "dimensions" `Quick test_universe_dimensions;
          Alcotest.test_case "indexing" `Quick test_universe_indexing;
          Alcotest.test_case "policy caches" `Quick test_universe_policy_caches;
          Alcotest.test_case "with_policy" `Quick test_universe_with_policy;
          Alcotest.test_case "rejects bad policy" `Quick
            test_universe_rejects_bad_policy;
        ] );
      ("action", [ Alcotest.test_case "labels" `Quick test_action_label ]);
      ( "privacy state",
        [ Alcotest.test_case "queries/table" `Quick test_privacy_state ] );
      ( "generation",
        [
          Alcotest.test_case "initial state" `Quick test_generation_initial_state;
          Alcotest.test_case "Fig 3 medical service" `Quick
            test_generation_flow_only_medical;
          Alcotest.test_case "strict ordering" `Quick test_generation_strict_ordering;
          Alcotest.test_case "data-driven wider" `Quick
            test_generation_data_driven_larger;
          Alcotest.test_case "could semantics" `Quick test_generation_could_semantics;
          Alcotest.test_case "potential reads" `Quick
            test_generation_potential_reads_appear;
          Alcotest.test_case "granular reads" `Quick test_generation_granular_vs_coarse;
          Alcotest.test_case "enforcement" `Quick test_generation_enforcement;
          Alcotest.test_case "deletes" `Quick test_generation_deletes;
          Alcotest.test_case "determinism" `Quick test_generation_determinism;
          qtest prop_generation_synthetic_bounded;
          qtest prop_strict_subset_of_data_driven;
          Alcotest.test_case "render smoke" `Quick test_lts_render_smoke;
        ] );
      ( "profile",
        [
          Alcotest.test_case "basics" `Quick test_profile_basics;
          Alcotest.test_case "allowed actors" `Quick test_profile_allowed_actors;
          Alcotest.test_case "invalid" `Quick test_profile_invalid;
        ] );
      ( "risk matrix",
        [
          Alcotest.test_case "default" `Quick test_risk_matrix_default;
          Alcotest.test_case "custom" `Quick test_risk_matrix_custom;
          qtest prop_risk_matrix_monotone;
        ] );
      ( "disclosure risk (section IV-A)",
        [
          Alcotest.test_case "non-allowed actors" `Quick test_case_a_non_allowed;
          Alcotest.test_case "Medium before fix" `Quick test_case_a_medium;
          Alcotest.test_case "researcher clean" `Quick
            test_case_a_no_researcher_findings;
          Alcotest.test_case "witness paths" `Quick test_case_a_witnesses_reach_src;
          Alcotest.test_case "Low after fix" `Quick test_case_a_fix_reduces_to_low;
          Alcotest.test_case "labels annotated" `Quick test_annotation_in_place;
          Alcotest.test_case "exposures" `Quick test_exposures_reported;
          Alcotest.test_case "likelihood scenarios" `Quick test_likelihood_scenarios;
          Alcotest.test_case "impact computation" `Quick test_impact_computation;
          qtest prop_fix_never_raises_risk;
          Alcotest.test_case "pseudonym annotations survive" `Quick
            test_disclosure_preserves_value_risk_annotations;
        ] );
      ( "pseudonym risk (section IV-B)",
        [
          Alcotest.test_case "risk transitions" `Quick
            test_study_risk_transitions_exist;
          Alcotest.test_case "violation counts (Fig 4)" `Quick
            test_study_violation_counts;
          Alcotest.test_case "annotations" `Quick
            test_study_risk_transitions_annotated;
          Alcotest.test_case "design gate" `Quick test_study_gate;
          Alcotest.test_case "raw access removes risk" `Quick
            test_no_risk_when_raw_access_allowed;
          Alcotest.test_case "binding validation" `Quick test_binding_validation;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "clean" `Quick test_consistency_clean;
          Alcotest.test_case "gap after fix" `Quick test_consistency_gap_after_fix;
          Alcotest.test_case "write gap" `Quick test_consistency_write_gap;
        ] );
      ("analysis", [ Alcotest.test_case "facade" `Quick test_analysis_facade ]);
    ]
