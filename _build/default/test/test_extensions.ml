(* Tests for the extension modules: declarative requirements checking,
   questionnaire-based profiles, population-level aggregation and
   t-closeness. *)

open Mdp_dataflow
module Core = Mdp_core
module A = Mdp_anon
module H = Mdp_scenario.Healthcare
module V = A.Value

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let level_t = Alcotest.testable Core.Level.pp Core.Level.equal

let setup () =
  let u = Core.Universe.make H.diagram H.policy in
  let lts = Core.Generate.run u in
  (u, lts)

(* ------------------------------------------------------------------ *)
(* Requirements *)

let test_requirement_never_identifies () =
  let u, lts = setup () in
  (* The Administrator does identify the Diagnosis (via its EHR read):
     requirement violated, with a witness ending in that acquisition. *)
  let req =
    Core.Requirement.Never_identifies { actor = "Administrator"; field = H.diagnosis }
  in
  (match Core.Requirement.check u lts [ req ] with
  | [ v ] ->
    check bool_ "witness non-empty" true (v.witness <> []);
    let last = List.nth v.witness (List.length v.witness - 1) in
    check Alcotest.string "acquired by the administrator" "Administrator"
      last.Core.Action.actor
  | _ -> Alcotest.fail "expected exactly one violation");
  (* The Receptionist never sees the Diagnosis. *)
  check bool_ "receptionist clean" true
    (Core.Requirement.holds u lts
       (Core.Requirement.Never_identifies
          { actor = "Receptionist"; field = H.diagnosis }))

let test_requirement_could_stronger_than_has () =
  let u = Core.Universe.make H.diagram H.fixed_policy in
  let lts = Core.Generate.run u in
  (* After the fix the Administrator never identifies the Diagnosis... *)
  check bool_ "has-requirement holds after fix" true
    (Core.Requirement.holds u lts
       (Core.Requirement.Never_identifies
          { actor = "Administrator"; field = H.diagnosis }));
  (* ...and could-never holds as well (the deny removed read access). *)
  check bool_ "could-requirement also holds" true
    (Core.Requirement.holds u lts
       (Core.Requirement.Never_could_identify
          { actor = "Administrator"; field = H.diagnosis }))

let test_requirement_purposes () =
  let u, lts = setup () in
  (* Diagnosis flows for recording and research preparation; potential
     reads carry no purpose, so a strict purpose requirement fails. *)
  let strict =
    Core.Requirement.Only_for_purposes
      { field = H.diagnosis; purposes = [ "record diagnosis and treatment" ] }
  in
  check bool_ "strict purposes violated" false (Core.Requirement.holds u lts strict);
  (* Appointment data flows only within the medical service's purposes. *)
  let appointment_req =
    Core.Requirement.Only_for_purposes
      {
        field = H.appointment;
        purposes = [ "schedule appointment"; "prepare consultation" ];
      }
  in
  (* Violated too: the Nurse's potential read of Appointments has no
     purpose. The flow-only model satisfies it. *)
  check bool_ "violated with potential reads" false
    (Core.Requirement.holds u lts appointment_req);
  let flow_lts = Core.Generate.run ~options:Core.Generate.flow_only u in
  check bool_ "holds on flows only" true
    (Core.Requirement.holds u flow_lts appointment_req)

let test_requirement_no_action () =
  let u, lts = setup () in
  check bool_ "researcher never creates" true
    (Core.Requirement.holds u lts
       (Core.Requirement.No_action_by { actor = "Researcher"; kind = Core.Action.Create }));
  check bool_ "administrator anonymises" false
    (Core.Requirement.holds u lts
       (Core.Requirement.No_action_by
          { actor = "Administrator"; kind = Core.Action.Anon }))

let test_requirement_max_risk () =
  let u, lts = setup () in
  ignore (Core.Disclosure_risk.analyse u lts H.profile_case_a);
  check bool_ "medium exceeds low cap" false
    (Core.Requirement.holds u lts (Core.Requirement.Max_disclosure_risk Core.Level.Low));
  check bool_ "medium within medium cap" true
    (Core.Requirement.holds u lts
       (Core.Requirement.Max_disclosure_risk Core.Level.Medium))

let test_requirement_witness_replays () =
  let u, lts = setup () in
  match
    Core.Requirement.check u lts
      [ Core.Requirement.Never_identifies { actor = "Researcher"; field = Field.anon_of H.diagnosis } ]
  with
  | [ v ] ->
    (* Walk the witness through the LTS. *)
    let state = ref (Core.Plts.initial lts) in
    List.iter
      (fun (a : Core.Action.t) ->
        match
          List.find_opt
            (fun ((l : Core.Action.t), _) -> Core.Action.equal l a)
            (Core.Plts.successors lts !state)
        with
        | Some (_, next) -> state := next
        | None -> Alcotest.fail "witness step missing")
      v.witness;
    let cfg = Core.Plts.state_data lts !state in
    check bool_ "witness end state shows the identification" true
      (Core.Privacy_state.has u cfg.Core.Config.privacy ~actor:"Researcher"
         ~field:(Field.anon_of H.diagnosis))
  | _ -> Alcotest.fail "expected one violation"


let test_requirement_spec_roundtrip () =
  let reqs =
    [
      Core.Requirement.Never_identifies
        { actor = "Administrator"; field = H.diagnosis };
      Core.Requirement.Never_could_identify
        { actor = "Researcher"; field = Field.anon_of H.diagnosis };
      Core.Requirement.No_action_by
        { actor = "Researcher"; kind = Core.Action.Create };
      Core.Requirement.Only_for_purposes
        { field = H.appointment; purposes = [ "a"; "b" ] };
      Core.Requirement.Max_disclosure_risk Core.Level.Low;
    ]
  in
  List.iter
    (fun r ->
      match Core.Requirement.of_spec (Core.Requirement.to_spec r) with
      | Ok r' -> check bool_ "spec roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  List.iter
    (fun bad ->
      match Core.Requirement.of_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ "never"; "never=A"; "noaction=A:fly"; "maxrisk=Extreme"; "frobnicate=1" ]

(* ------------------------------------------------------------------ *)
(* Questionnaire *)

let test_questionnaire_baselines () =
  let q = Core.Questionnaire.profile H.diagram Core.Questionnaire.Fundamentalist
      ~agreed_services:[ H.medical_service ] ~answers:[] in
  check (Alcotest.float 1e-9) "fundamentalist baseline" 0.8
    (Core.User_profile.sensitivity q H.treatment);
  check (Alcotest.float 1e-9) "anon variant stays 0" 0.0
    (Core.User_profile.sensitivity q (Field.anon_of H.treatment));
  let u = Core.Questionnaire.profile H.diagram Core.Questionnaire.Unconcerned
      ~agreed_services:[] ~answers:[] in
  check (Alcotest.float 1e-9) "unconcerned baseline" 0.15
    (Core.User_profile.sensitivity u H.treatment)

let test_questionnaire_overrides () =
  let q =
    Core.Questionnaire.profile H.diagram Core.Questionnaire.Unconcerned
      ~agreed_services:[ H.medical_service ]
      ~answers:
        [
          { field = H.diagnosis; concern = Core.Questionnaire.Very_concerned };
          {
            field = Field.anon_of H.diagnosis;
            concern = Core.Questionnaire.Somewhat_concerned;
          };
        ]
  in
  check (Alcotest.float 1e-9) "override wins" 0.9
    (Core.User_profile.sensitivity q H.diagnosis);
  check (Alcotest.float 1e-9) "anon override honoured" 0.5
    (Core.User_profile.sensitivity q (Field.anon_of H.diagnosis));
  check (Alcotest.float 1e-9) "others keep baseline" 0.15
    (Core.User_profile.sensitivity q H.name)

(* ------------------------------------------------------------------ *)
(* Population *)

let spec size =
  {
    Core.Population.seed = 7;
    size;
    westin_mix = Core.Population.default_mix;
    agree_probability = 0.7;
  }

let test_population_simulate_deterministic () =
  let a = Core.Population.simulate (spec 40) H.diagram in
  let b = Core.Population.simulate (spec 40) H.diagram in
  check int_ "size" 40 (List.length a);
  check bool_ "deterministic" true
    (List.for_all2
       (fun p q ->
         Core.User_profile.agreed_services p = Core.User_profile.agreed_services q)
       a b)

let test_population_aggregate () =
  let u, lts = setup () in
  let profiles = Core.Population.simulate (spec 60) H.diagram in
  let agg = Core.Population.analyse u lts profiles in
  check int_ "total" 60 agg.total;
  check int_ "level counts sum to total" 60
    (Mdp_prelude.Listx.sum_by snd agg.by_level);
  (* Fundamentalists who skipped the research service must push some
     users above None. *)
  check bool_ "some users at risk" true
    (List.exists (fun (l, c) -> l <> Core.Level.None_ && c > 0) agg.by_level);
  (* The administrator EHR access should be the top hotspot. *)
  match agg.hotspots with
  | top :: _ ->
    check Alcotest.string "top hotspot actor" "Administrator" top.actor;
    check bool_ "top hotspot store" true (top.store = Some "EHR")
  | [] -> Alcotest.fail "expected hotspots"

let test_population_fix_improves () =
  let u, lts = setup () in
  let profiles = Core.Population.simulate (spec 60) H.diagram in
  let before = Core.Population.analyse u lts profiles in
  let u' = Core.Universe.with_policy u H.fixed_policy in
  let lts' = Core.Generate.run u' in
  let after = Core.Population.analyse u' lts' profiles in
  let count level agg =
    Option.value (List.assoc_opt level agg.Core.Population.by_level) ~default:0
  in
  check bool_ "fewer or equal high-risk users after fix" true
    (count Core.Level.High after <= count Core.Level.High before
    && count Core.Level.Medium after <= count Core.Level.Medium before)

(* ------------------------------------------------------------------ *)
(* t-closeness *)

let test_tcloseness_table1 () =
  match A.Tcloseness.numeric_emd H.table1_released ~sensitive:"Weight" with
  | Some emd ->
    (* Table I's classes are heavily skewed: far from the global
       distribution. *)
    check bool_ "positive distance" true (emd > 0.3);
    check bool_ "not 0.1-close" false
      (A.Tcloseness.is_t_close ~t:0.1 H.table1_released ~sensitive:"Weight");
    check bool_ "1.0-close trivially" true
      (A.Tcloseness.is_t_close ~t:1.0 H.table1_released ~sensitive:"Weight")
  | None -> Alcotest.fail "weight is numeric"

let test_tcloseness_uniform_is_zero () =
  (* One class = the whole table: EMD 0. *)
  let ds =
    A.Dataset.make
      ~attrs:
        [
          A.Attribute.make ~name:"Q" ~kind:A.Attribute.Quasi;
          A.Attribute.make ~name:"S" ~kind:A.Attribute.Sensitive;
        ]
      ~rows:[ [ V.Int 1; V.Int 10 ]; [ V.Int 1; V.Int 20 ]; [ V.Int 1; V.Int 30 ] ]
  in
  (match A.Tcloseness.numeric_emd ds ~sensitive:"S" with
  | Some emd -> check (Alcotest.float 1e-9) "zero distance" 0.0 emd
  | None -> Alcotest.fail "numeric expected");
  check bool_ "0-close" true (A.Tcloseness.is_t_close ~t:0.0 ds ~sensitive:"S")

let test_tcloseness_categorical () =
  let ds =
    A.Dataset.make
      ~attrs:
        [
          A.Attribute.make ~name:"Q" ~kind:A.Attribute.Quasi;
          A.Attribute.make ~name:"S" ~kind:A.Attribute.Sensitive;
        ]
      ~rows:
        [
          [ V.Int 1; V.Str "flu" ];
          [ V.Int 1; V.Str "flu" ];
          [ V.Int 2; V.Str "cancer" ];
          [ V.Int 2; V.Str "cancer" ];
        ]
  in
  match A.Tcloseness.categorical_distance ds ~sensitive:"S" with
  | Some d ->
    (* Each class shows one value with global probability 1/2: TV = 1/2. *)
    check (Alcotest.float 1e-9) "total variation" 0.5 d
  | None -> Alcotest.fail "categorical expected"

let prop_tcloseness_bounds =
  QCheck.Test.make ~name:"numeric EMD lies in [0,1]" ~count:30
    QCheck.(int_range 10 60)
    (fun rows ->
      let ds = Mdp_scenario.Synthetic.dataset ~seed:rows ~rows ~quasi:2 in
      let gen =
        A.Kanon.apply ds
          (Mdp_scenario.Synthetic.scheme_for ~quasi:2)
          [ ("Q0", 1); ("Q1", 1) ]
      in
      match A.Tcloseness.numeric_emd gen ~sensitive:"S" with
      | Some d -> d >= 0.0 && d <= 1.0 +. 1e-9
      | None -> false)

let () =
  ignore level_t;
  Alcotest.run "extensions"
    [
      ( "requirements",
        [
          Alcotest.test_case "never identifies" `Quick test_requirement_never_identifies;
          Alcotest.test_case "could vs has" `Quick test_requirement_could_stronger_than_has;
          Alcotest.test_case "purposes" `Quick test_requirement_purposes;
          Alcotest.test_case "no action by" `Quick test_requirement_no_action;
          Alcotest.test_case "max risk" `Quick test_requirement_max_risk;
          Alcotest.test_case "witness replays" `Quick test_requirement_witness_replays;
          Alcotest.test_case "spec roundtrip" `Quick test_requirement_spec_roundtrip;
        ] );
      ( "questionnaire",
        [
          Alcotest.test_case "baselines" `Quick test_questionnaire_baselines;
          Alcotest.test_case "overrides" `Quick test_questionnaire_overrides;
        ] );
      ( "population",
        [
          Alcotest.test_case "simulate deterministic" `Quick
            test_population_simulate_deterministic;
          Alcotest.test_case "aggregate" `Quick test_population_aggregate;
          Alcotest.test_case "fix improves" `Quick test_population_fix_improves;
        ] );
      ( "t-closeness",
        [
          Alcotest.test_case "table1 skew" `Quick test_tcloseness_table1;
          Alcotest.test_case "single class" `Quick test_tcloseness_uniform_is_zero;
          Alcotest.test_case "categorical" `Quick test_tcloseness_categorical;
          QCheck_alcotest.to_alcotest prop_tcloseness_bounds;
        ] );
    ]
