(* docs/TUTORIAL.md, executable: builds the ride-sharing model exactly as
   the tutorial does and asserts every outcome the prose claims. If this
   suite fails, the tutorial is lying. *)

open Mdp_dataflow
module Core = Mdp_core
module Policy = Mdp_policy.Policy
module Acl = Mdp_policy.Acl
module Permission = Mdp_policy.Permission

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let level_t = Alcotest.testable Core.Level.pp Core.Level.equal

let field = Field.make

let diagram =
  let b = Builder.create () in
  Builder.actor b "Dispatcher";
  Builder.actor b "Driver";
  Builder.actor b "Support";
  Builder.actor b "DataScience";
  Builder.plain_store b "Trips"
    ~schemas:
      [ ("TripRecord", [ "Name"; "Phone"; "Pickup"; "Dropoff"; "Route"; "Fare" ]) ];
  Builder.anon_store b "AnonTrips"
    ~schemas:[ ("AnonTripRecord", [ "Pickup~anon"; "Dropoff~anon"; "Fare~anon" ]) ];
  Builder.flow b ~service:"Rides" ~src:"User" ~dst:"Dispatcher"
    [ "Name"; "Phone"; "Pickup"; "Dropoff" ] ~purpose:"book trip";
  Builder.flow b ~service:"Rides" ~src:"Dispatcher" ~dst:"Trips"
    [ "Name"; "Phone"; "Pickup"; "Dropoff"; "Route"; "Fare" ]
    ~purpose:"record trip";
  Builder.flow b ~service:"Rides" ~src:"Trips" ~dst:"Driver"
    [ "Name"; "Pickup"; "Dropoff" ] ~purpose:"assign trip";
  Builder.flow b ~service:"Pricing" ~src:"Trips" ~dst:"DataScience"
    [ "Pickup"; "Dropoff"; "Fare" ] ~purpose:"extract trips";
  Builder.flow b ~service:"Pricing" ~src:"DataScience" ~dst:"AnonTrips"
    [ "Pickup"; "Dropoff"; "Fare" ] ~purpose:"pseudonymise";
  Builder.build_exn b

let policy =
  Policy.make
    [
      Acl.allow (Acl.Actor_subject "Dispatcher") ~store:"Trips"
        [ Permission.Read; Permission.Write ];
      Acl.allow (Acl.Actor_subject "Driver") ~store:"Trips"
        ~fields:[ field "Name"; field "Pickup"; field "Dropoff" ]
        [ Permission.Read ];
      Acl.allow (Acl.Actor_subject "Support") ~store:"Trips" [ Permission.Read ];
      Acl.allow (Acl.Actor_subject "DataScience") ~store:"Trips"
        ~fields:[ field "Pickup"; field "Dropoff"; field "Fare" ]
        [ Permission.Read ];
      Acl.allow (Acl.Actor_subject "DataScience") ~store:"AnonTrips"
        [ Permission.Read; Permission.Write ];
    ]

let profile =
  Core.User_profile.make
    ~sensitivities:
      [
        (field "Route", Core.User_profile.of_category `High);
        (field "Pickup", Core.User_profile.of_category `Medium);
        (field "Dropoff", Core.User_profile.of_category `Medium);
      ]
    ~agreed_services:[ "Rides" ] ()

let fixed =
  Policy.revoke policy ~subject:(Acl.Actor_subject "Support") ~store:"Trips"
    ~fields:[ field "Pickup"; field "Dropoff"; field "Route" ]
    [ Permission.Read ]

let analysis () = Core.Analysis.run ~profile diagram policy

let test_non_allowed () =
  let a = analysis () in
  let report = Option.get a.disclosure in
  check (Alcotest.list Alcotest.string) "Support and DataScience non-allowed"
    [ "Support"; "DataScience" ] report.non_allowed

let test_support_medium () =
  let a = analysis () in
  let report = Option.get a.disclosure in
  check level_t "Support read of Route is Medium" Core.Level.Medium
    (Core.Disclosure_risk.level_for report ~actor:"Support" ~store:"Trips"
       ~field:(field "Route"));
  (* The DataScience raw read is flagged too. *)
  check bool_ "DataScience findings exist" true
    (Core.Disclosure_risk.findings_for report ~actor:"DataScience" <> []);
  (* The allowed actors come out clean. *)
  check int_ "Driver clean" 0
    (List.length (Core.Disclosure_risk.findings_for report ~actor:"Driver"))

let test_fix_works () =
  let a = analysis () in
  let a' = Core.Analysis.rerun_with_policy a fixed in
  let report' = Option.get a'.disclosure in
  check level_t "Support Route risk gone" Core.Level.None_
    (Core.Disclosure_risk.level_for report' ~actor:"Support" ~store:"Trips"
       ~field:(field "Route"));
  (* No modelled flow broke: Support appears in no flow. *)
  check int_ "no consistency gaps" 0 (List.length a'.consistency);
  (* The diff confirms improvement. *)
  let d =
    Core.Risk_diff.diff ~before:(Option.get a.disclosure) ~after:report'
  in
  check bool_ "diff shows improvement" true (Core.Risk_diff.improved d)

let test_requirements_after_fix () =
  let a = analysis () in
  let a' = Core.Analysis.rerun_with_policy a fixed in
  check bool_ "Support never identifies Route" true
    (Core.Requirement.holds a'.universe a'.lts
       (Core.Requirement.Never_identifies
          { actor = "Support"; field = field "Route" }));
  (* Both tutorial requirements hold after the fix: the remaining
     DataScience reads of Pickup/Dropoff are Medium impact at Low
     likelihood, which the default matrix maps to Low. *)
  check bool_ "maxrisk Low holds after the fix" true
    (Core.Requirement.holds a'.universe a'.lts
       (Core.Requirement.Max_disclosure_risk Core.Level.Low));
  (* Before the fix it was violated by the Support read. *)
  check bool_ "maxrisk Low violated before the fix" false
    (Core.Requirement.holds a.universe a.lts
       (Core.Requirement.Max_disclosure_risk Core.Level.Low))

let test_dsl_variant_matches () =
  (* The file version at the end of the tutorial describes the same
     system. *)
  let text =
    Mdp_dsl.Printer.to_string { Mdp_dsl.Parser.diagram; policy; placement = None }
  in
  match Mdp_dsl.Parser.parse text with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let a = Core.Analysis.run ~profile m.diagram m.policy in
    let direct = analysis () in
    check int_ "same LTS" (Core.Plts.num_states direct.lts)
      (Core.Plts.num_states a.lts)

let () =
  Alcotest.run "tutorial"
    [
      ( "ride-sharing walkthrough",
        [
          Alcotest.test_case "non-allowed actors" `Quick test_non_allowed;
          Alcotest.test_case "Support risk Medium" `Quick test_support_medium;
          Alcotest.test_case "least-privilege fix" `Quick test_fix_works;
          Alcotest.test_case "requirements after fix" `Quick
            test_requirements_after_fix;
          Alcotest.test_case "DSL variant" `Quick test_dsl_variant_matches;
        ] );
    ]
