test/test_dataflow.mli:
