test/test_serialization.mli:
