test/test_core.ml: Alcotest Array Field Float Flow Format List Mdp_anon Mdp_core Mdp_dataflow Mdp_policy Mdp_prelude Mdp_scenario Option QCheck QCheck_alcotest String
