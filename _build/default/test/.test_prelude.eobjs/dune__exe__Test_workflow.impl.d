test/test_workflow.ml: Alcotest List Mdp_core Mdp_dataflow Mdp_prelude Mdp_runtime Mdp_scenario Option QCheck QCheck_alcotest
