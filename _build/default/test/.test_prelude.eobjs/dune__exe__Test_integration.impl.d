test/test_integration.ml: Alcotest Diagram Field Format Fun Int List Mdp_anon Mdp_core Mdp_dataflow Mdp_dsl Mdp_prelude Mdp_runtime Mdp_scenario Option
