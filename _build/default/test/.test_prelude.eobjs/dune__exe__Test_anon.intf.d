test/test_anon.mli:
