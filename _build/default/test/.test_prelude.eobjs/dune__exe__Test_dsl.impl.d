test/test_dsl.ml: Alcotest List Mdp_core Mdp_dataflow Mdp_dsl Mdp_policy Mdp_scenario QCheck QCheck_alcotest String
