test/test_dataflow.ml: Actor Alcotest Builder Datastore Diagram Dot Field Flow List Mdp_dataflow Mdp_scenario Option Schema Service String
