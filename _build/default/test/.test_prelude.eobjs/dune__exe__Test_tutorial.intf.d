test/test_tutorial.mli:
