test/test_distributed.ml: Alcotest Field List Mdp_core Mdp_dataflow Mdp_runtime Mdp_scenario String
