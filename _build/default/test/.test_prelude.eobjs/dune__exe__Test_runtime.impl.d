test/test_runtime.ml: Alcotest Field List Mdp_anon Mdp_core Mdp_dataflow Mdp_runtime Mdp_scenario Option Printf String
