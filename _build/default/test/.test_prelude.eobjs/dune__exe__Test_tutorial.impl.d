test/test_tutorial.ml: Alcotest Builder Field List Mdp_core Mdp_dataflow Mdp_dsl Mdp_policy Option
