test/test_prelude.ml: Alcotest Bitset Float Frac Fun Int Interner List Listx Mdp_prelude Prng QCheck QCheck_alcotest String Texttable Validate
