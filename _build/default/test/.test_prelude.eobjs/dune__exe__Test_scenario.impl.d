test/test_scenario.ml: Alcotest List Mdp_anon Mdp_core Mdp_dataflow Mdp_policy Mdp_scenario Option
