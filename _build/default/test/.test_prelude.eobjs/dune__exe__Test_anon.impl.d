test/test_anon.ml: Alcotest List Mdp_anon Mdp_prelude Mdp_scenario QCheck QCheck_alcotest String
