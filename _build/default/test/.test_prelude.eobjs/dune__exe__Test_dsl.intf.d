test/test_dsl.mli:
