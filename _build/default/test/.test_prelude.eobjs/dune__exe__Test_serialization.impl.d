test/test_serialization.ml: Alcotest List Mdp_core Mdp_dataflow Mdp_prelude Mdp_runtime Mdp_scenario Option
