test/test_scenario.mli:
