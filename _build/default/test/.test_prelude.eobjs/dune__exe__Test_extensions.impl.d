test/test_extensions.ml: Alcotest Field List Mdp_anon Mdp_core Mdp_dataflow Mdp_prelude Mdp_scenario Option QCheck QCheck_alcotest
