test/test_policy.ml: Actor Alcotest Datastore Diagram Field Flow List Mdp_dataflow Mdp_policy Option QCheck QCheck_alcotest Schema Service String
