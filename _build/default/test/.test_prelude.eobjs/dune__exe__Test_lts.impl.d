test/test_lts.ml: Alcotest Format Hashtbl Int List Mdp_lts Printf QCheck QCheck_alcotest String
