test/test_lts.mli:
