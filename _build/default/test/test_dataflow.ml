(* Tests for the data-flow modelling layer: fields (anon variants),
   schemas, actors, datastores, flows (classification rules), services,
   whole-diagram validation, the builder and DOT export. *)

open Mdp_dataflow

let check = Alcotest.check
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let field_t = Alcotest.testable Field.pp Field.equal

(* ------------------------------------------------------------------ *)
(* Field *)

let test_field_basics () =
  let f = Field.make "Diagnosis" in
  check string_ "name" "Diagnosis" (Field.name f);
  check bool_ "not anon" false (Field.is_anon f);
  let a = Field.anon_of f in
  check string_ "anon name" "Diagnosis~anon" (Field.name a);
  check bool_ "anon flag" true (Field.is_anon a);
  check field_t "anon idempotent" a (Field.anon_of a);
  check field_t "base_of inverts" f (Field.base_of a);
  check field_t "of_name base" f (Field.of_name "Diagnosis");
  check field_t "of_name anon" a (Field.of_name "Diagnosis~anon")

let test_field_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Field.make: invalid field name \"\"")
    (fun () -> ignore (Field.make ""));
  Alcotest.check_raises "whitespace"
    (Invalid_argument "Field.make: invalid field name \"a b\"") (fun () ->
      ignore (Field.make "a b"))

let test_field_ordering () =
  let f = Field.make "A" in
  check bool_ "base < anon" true (Field.compare f (Field.anon_of f) < 0);
  check bool_ "name order" true
    (Field.compare (Field.make "A") (Field.make "B") < 0)

(* ------------------------------------------------------------------ *)
(* Schema / Datastore *)

let test_schema () =
  let s = Schema.make ~id:"S" ~fields:[ Field.make "A"; Field.make "B" ] in
  check bool_ "mem" true (Schema.mem s (Field.make "A"));
  check bool_ "mem anon no" false (Schema.mem s (Field.anon_of (Field.make "A")));
  Alcotest.check_raises "duplicate field"
    (Invalid_argument "Schema.make: duplicate field A") (fun () ->
      ignore (Schema.make ~id:"S" ~fields:[ Field.make "A"; Field.make "A" ]));
  Alcotest.check_raises "no fields" (Invalid_argument "Schema.make: no fields")
    (fun () -> ignore (Schema.make ~id:"S" ~fields:[]))

let test_datastore () =
  let s1 = Schema.make ~id:"S1" ~fields:[ Field.make "A"; Field.make "B" ] in
  let s2 = Schema.make ~id:"S2" ~fields:[ Field.make "B"; Field.make "C" ] in
  let d = Datastore.make ~id:"D" ~schemas:[ s1; s2 ] () in
  check Alcotest.(list field_t) "fields dedup"
    [ Field.make "A"; Field.make "B"; Field.make "C" ]
    (Datastore.fields d);
  check string_ "schema_of_field first wins" "S1"
    (Option.get (Datastore.schema_of_field d (Field.make "B"))).Schema.id;
  check bool_ "default kind" true (d.kind = Datastore.Plain)

(* ------------------------------------------------------------------ *)
(* Flow classification *)

let plain_kind = fun _ -> Datastore.Plain
let anon_kind = fun _ -> Datastore.Anonymised

let test_flow_classification () =
  let f = Field.make "X" in
  let mk src dst =
    Flow.make ~order:1 ~src ~dst ~fields:[ f ] ~purpose:"p"
  in
  let k = Alcotest.testable Flow.pp_action_kind ( = ) in
  check k "user->actor collect" Flow.Collect
    (Flow.classify ~store_kind:plain_kind (mk Flow.User (Flow.Actor "a")));
  check k "actor->actor disclose" Flow.Disclose
    (Flow.classify ~store_kind:plain_kind (mk (Flow.Actor "a") (Flow.Actor "b")));
  check k "actor->plain-store create" Flow.Create
    (Flow.classify ~store_kind:plain_kind (mk (Flow.Actor "a") (Flow.Store "s")));
  check k "actor->anon-store anon" Flow.Anon
    (Flow.classify ~store_kind:anon_kind (mk (Flow.Actor "a") (Flow.Store "s")));
  check k "store->actor read" Flow.Read
    (Flow.classify ~store_kind:plain_kind (mk (Flow.Store "s") (Flow.Actor "a")))

let test_flow_invalid_endpoints () =
  let f = Field.make "X" in
  let expect_invalid src dst =
    match Flow.make ~order:1 ~src ~dst ~fields:[ f ] ~purpose:"p" with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "endpoint pattern should be rejected"
  in
  expect_invalid Flow.User Flow.User;
  expect_invalid Flow.User (Flow.Store "s");
  expect_invalid (Flow.Store "s") (Flow.Store "t");
  expect_invalid (Flow.Actor "a") Flow.User;
  expect_invalid (Flow.Actor "a") (Flow.Actor "a");
  expect_invalid (Flow.Store "s") (Flow.Store "s")

(* ------------------------------------------------------------------ *)
(* Service *)

let test_service_ordering () =
  let f = Field.make "X" in
  let fl o = Flow.make ~order:o ~src:Flow.User ~dst:(Flow.Actor "a") ~fields:[ f ] ~purpose:"p" in
  let s = Service.make ~id:"S" ~flows:[ fl 3; fl 1; fl 2 ] in
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3 ]
    (List.map (fun (x : Flow.t) -> x.order) s.flows);
  Alcotest.check_raises "duplicate order"
    (Invalid_argument "Service.make: duplicate flow order 1") (fun () ->
      ignore (Service.make ~id:"S" ~flows:[ fl 1; fl 1 ]))

let test_service_queries () =
  let s = Option.get (Diagram.find_service Mdp_scenario.Healthcare.diagram "MedicalService") in
  check (Alcotest.list string_) "actors"
    [ "Receptionist"; "Doctor"; "Nurse" ]
    (Service.actors s);
  check (Alcotest.list string_) "stores" [ "Appointments"; "EHR" ]
    (Service.stores s);
  check bool_ "flow_with_order" true (Service.flow_with_order s 4 <> None);
  check bool_ "flow_with_order missing" true (Service.flow_with_order s 99 = None)

(* ------------------------------------------------------------------ *)
(* Diagram validation *)

let mini_store () =
  Datastore.make ~id:"S"
    ~schemas:[ Schema.make ~id:"Sch" ~fields:[ Field.make "A" ] ]
    ()

let expect_errors ~expect_substring actors datastores services =
  match Diagram.make ~actors ~datastores ~services with
  | Ok _ -> Alcotest.fail "expected validation failure"
  | Error msgs ->
    let all = String.concat "\n" msgs in
    let contains hay needle =
      let hn = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    if not (contains all expect_substring) then
      Alcotest.failf "errors %S lack %S" all expect_substring

let test_diagram_unknown_refs () =
  let flow =
    Flow.make ~order:1 ~src:Flow.User ~dst:(Flow.Actor "ghost")
      ~fields:[ Field.make "A" ] ~purpose:"p"
  in
  expect_errors ~expect_substring:"unknown actor ghost" []
    [ mini_store () ]
    [ Service.make ~id:"Svc" ~flows:[ flow ] ]

let test_diagram_schema_mismatch () =
  let actor = Actor.make "A1" in
  let flow =
    Flow.make ~order:1 ~src:(Flow.Actor "A1") ~dst:(Flow.Store "S")
      ~fields:[ Field.make "NotInSchema" ] ~purpose:"p"
  in
  expect_errors ~expect_substring:"not in the schemas" [ actor ]
    [ mini_store () ]
    [ Service.make ~id:"Svc" ~flows:[ flow ] ]

let test_diagram_anon_rules () =
  let actor = Actor.make "A1" in
  let anon_store =
    Datastore.make ~kind:Datastore.Anonymised ~id:"AS"
      ~schemas:
        [ Schema.make ~id:"Sch" ~fields:[ Field.anon_of (Field.make "A") ] ]
      ()
  in
  (* anon flow carrying an anon field is rejected *)
  let bad =
    Flow.make ~order:1 ~src:(Flow.Actor "A1") ~dst:(Flow.Store "AS")
      ~fields:[ Field.anon_of (Field.make "A") ]
      ~purpose:"p"
  in
  expect_errors ~expect_substring:"anon flow must carry base fields" [ actor ]
    [ anon_store ]
    [ Service.make ~id:"Svc" ~flows:[ bad ] ];
  (* read from an anon store must carry anon fields *)
  let bad_read =
    Flow.make ~order:1 ~src:(Flow.Store "AS") ~dst:(Flow.Actor "A1")
      ~fields:[ Field.make "A" ] ~purpose:"p"
  in
  expect_errors ~expect_substring:"must carry anon fields" [ actor ]
    [ anon_store ]
    [ Service.make ~id:"Svc" ~flows:[ bad_read ] ]

let test_diagram_reserved_and_collisions () =
  expect_errors ~expect_substring:"reserved"
    [ Actor.make "User" ]
    [ mini_store () ] [];
  expect_errors ~expect_substring:"names both an actor and a datastore"
    [ Actor.make "S" ]
    [ mini_store () ] []

let test_all_fields_includes_anon_variants () =
  let fields = Diagram.all_fields Mdp_scenario.Healthcare.diagram in
  check bool_ "has base" true
    (List.exists (Field.equal (Field.make "Diagnosis")) fields);
  check bool_ "has anon variant" true
    (List.exists (Field.equal (Field.of_name "Diagnosis~anon")) fields);
  (* 6 base + 4 anon *)
  check Alcotest.int "universe size" 10 (List.length fields)

let test_services_of_actor () =
  let svcs =
    Diagram.services_of_actor Mdp_scenario.Healthcare.diagram "Administrator"
  in
  check (Alcotest.list string_) "admin services" [ "MedicalResearchService" ]
    (List.map (fun (s : Service.t) -> s.id) svcs)

(* ------------------------------------------------------------------ *)
(* Builder *)

let test_builder () =
  let b = Builder.create () in
  Builder.actor b "A1" ~roles:[ "r" ];
  Builder.plain_store b "St" ~schemas:[ ("Sch", [ "F1"; "F2" ]) ];
  Builder.flow b ~service:"Svc" ~src:"User" ~dst:"A1" [ "F1" ];
  Builder.flow b ~service:"Svc" ~src:"A1" ~dst:"St" [ "F1"; "F2" ];
  let d = Builder.build_exn b in
  let svc = Option.get (Diagram.find_service d "Svc") in
  check (Alcotest.list Alcotest.int) "auto order" [ 1; 2 ]
    (List.map (fun (f : Flow.t) -> f.order) svc.flows);
  let f2 = List.nth svc.flows 1 in
  check bool_ "store resolved" true (Flow.equal_node f2.dst (Flow.Store "St"));
  check string_ "default purpose" "Svc" f2.purpose

let test_builder_explicit_order_conflict () =
  let b = Builder.create () in
  Builder.actor b "A1";
  Builder.flow b ~service:"Svc" ~order:2 ~src:"User" ~dst:"A1" [ "F" ];
  Builder.flow b ~service:"Svc" ~order:2 ~src:"User" ~dst:"A1" [ "G" ];
  match Builder.build b with
  | Ok _ -> Alcotest.fail "expected duplicate order failure"
  | Error _ -> ()
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* DOT *)

let test_dot_output () =
  let dot = Dot.to_string Mdp_scenario.Healthcare.diagram in
  let contains needle =
    let hn = String.length dot and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub dot i nn = needle || go (i + 1)) in
    go 0
  in
  check bool_ "digraph" true (contains "digraph dataflow");
  check bool_ "user node" true (contains "user [label=\"User\"");
  check bool_ "actor oval" true (contains "actor_Doctor");
  check bool_ "store box" true (contains "store_EHR");
  check bool_ "anon store dashed" true (contains "style=dashed");
  check bool_ "flow arrow" true (contains "user -> actor_Receptionist")

let () =
  Alcotest.run "dataflow"
    [
      ( "field",
        [
          Alcotest.test_case "basics" `Quick test_field_basics;
          Alcotest.test_case "invalid" `Quick test_field_invalid;
          Alcotest.test_case "ordering" `Quick test_field_ordering;
        ] );
      ( "schema/datastore",
        [
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "datastore" `Quick test_datastore;
        ] );
      ( "flow",
        [
          Alcotest.test_case "classification" `Quick test_flow_classification;
          Alcotest.test_case "invalid endpoints" `Quick test_flow_invalid_endpoints;
        ] );
      ( "service",
        [
          Alcotest.test_case "ordering" `Quick test_service_ordering;
          Alcotest.test_case "queries" `Quick test_service_queries;
        ] );
      ( "diagram",
        [
          Alcotest.test_case "unknown refs" `Quick test_diagram_unknown_refs;
          Alcotest.test_case "schema mismatch" `Quick test_diagram_schema_mismatch;
          Alcotest.test_case "anon rules" `Quick test_diagram_anon_rules;
          Alcotest.test_case "reserved ids" `Quick test_diagram_reserved_and_collisions;
          Alcotest.test_case "field universe" `Quick test_all_fields_includes_anon_variants;
          Alcotest.test_case "services_of_actor" `Quick test_services_of_actor;
        ] );
      ( "builder",
        [
          Alcotest.test_case "assembly" `Quick test_builder;
          Alcotest.test_case "order conflict" `Quick test_builder_explicit_order_conflict;
        ] );
      ("dot", [ Alcotest.test_case "rendering" `Quick test_dot_output ]);
    ]
