(* Benchmark and reproduction harness.

   Part 1 regenerates every evaluation artefact of the paper (Fig. 1-4,
   Table I, the §IV-A risk levels) plus the ablations DESIGN.md calls
   out; part 2 runs Bechamel micro-benchmarks characterising the cost of
   generation and analysis. `dune exec bench/main.exe` prints both. *)

open Mdp_scenario
module Core = Mdp_core
module A = Mdp_anon
module H = Healthcare
module Frac = Mdp_prelude.Frac

let section title =
  Printf.printf "\n================ %s ================\n" title

(* Monotonic seconds for [f ()]: [warmup] discarded runs, then the
   median of [runs] timed ones — single samples are too noisy to
   compare engines with. All bench timing goes through Mdp_obs.Clock
   (CLOCK_MONOTONIC): an NTP step mid-run cannot corrupt BENCH_*.json
   the way the old Unix.gettimeofday sampling could. *)
let time_median ?(warmup = 1) ?(runs = 5) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let samples =
    List.init runs (fun _ ->
        snd (Mdp_obs.Clock.time (fun () -> ignore (f ()))))
  in
  match List.sort Float.compare samples with
  | [] -> 0.
  | sorted -> List.nth sorted (runs / 2)

(* Totals of the spans recorded since [since] (a Clock.now_ns reading),
   keyed by span name in first-appearance order — the per-phase
   breakdown embedded in each BENCH_*.json. *)
let span_totals_json ~since () =
  let module J = Mdp_prelude.Json in
  let module M = Mdp_obs.Metrics in
  let snap = M.snapshot () in
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (sp : M.span_record) ->
      if sp.sp_start_ns >= since then
        match Hashtbl.find_opt tbl sp.sp_name with
        | Some (n, tot) -> Hashtbl.replace tbl sp.sp_name (n + 1, tot + sp.sp_dur_ns)
        | None ->
          Hashtbl.add tbl sp.sp_name (1, sp.sp_dur_ns);
          order := sp.sp_name :: !order)
    snap.M.spans;
  J.Obj
    (List.rev_map
       (fun name ->
         let n, tot = Hashtbl.find tbl name in
         ( name,
           J.Obj
             [ ("count", J.int n);
               ("seconds", J.Num (Mdp_obs.Clock.ns_to_s tot)) ] ))
       !order)

(* Everything recorded over the whole bench run, for CI artifacts: the
   raw span trace as JSONL and a Prometheus text dump. *)
let write_observability_artifacts () =
  let module M = Mdp_obs.Metrics in
  let snap = M.snapshot () in
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  write "BENCH_SPANS.jsonl" (M.spans_to_jsonl snap);
  write "BENCH_METRICS.prom" (M.to_prometheus snap)

(* ------------------------------------------------------------------ *)
(* Fig. 1: the healthcare data-flow model *)

let fig1 () =
  section "[fig1] Data-flow diagrams for the healthcare service";
  Format.printf "%a@." Mdp_dataflow.Diagram.pp H.diagram;
  Printf.printf "(DOT available via: mdpriv dot models/healthcare.mdp)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 2: the state-variable table of a privacy state *)

let fig2 () =
  section "[fig2] State-based model of user privacy";
  let u = Core.Universe.make H.diagram H.policy in
  let base_fields =
    List.filter
      (fun f -> not (Mdp_dataflow.Field.is_anon f))
      (Mdp_dataflow.Diagram.all_fields H.diagram)
  in
  Printf.printf
    "state variables: 2 * %d actors * %d fields = %d Booleans (paper: 60)\n\n"
    (Core.Universe.nactors u)
    (List.length base_fields)
    (2 * Core.Universe.nactors u * List.length base_fields);
  (* Show the table after the first two medical-service flows. *)
  let lts =
    Core.Generate.run
      ~options:
        { Core.Generate.flow_only with services = Some [ H.medical_service ] }
      u
  in
  let two_steps =
    match Core.Plts.successors lts (Core.Plts.initial lts) with
    | (_, s1) :: _ -> (
      match Core.Plts.successors lts s1 with (_, s2) :: _ -> s2 | [] -> s1)
    | [] -> Core.Plts.initial lts
  in
  Printf.printf "privacy state after the first two flows (s%d):\n" two_steps;
  Format.printf "%a@."
    (Core.Privacy_state.pp_table u)
    (Core.Plts.state_data lts two_steps).Core.Config.privacy

(* ------------------------------------------------------------------ *)
(* Fig. 3: the Medical Service LTS *)

let fig3 () =
  section "[fig3] LTS of the Medical Service process";
  let u = Core.Universe.make H.diagram H.policy in
  let lts =
    Core.Generate.run
      ~options:
        { Core.Generate.flow_only with services = Some [ H.medical_service ] }
      u
  in
  Printf.printf "%s\n\n" (Core.Lts_render.summary u lts);
  Core.Plts.iter_transitions lts (fun tr ->
      Format.printf "  s%d --%a--> s%d@." tr.src Core.Action.pp tr.label tr.dst)

(* ------------------------------------------------------------------ *)
(* §IV-A: unwanted disclosure case study *)

let case_a () =
  section "[case-a] Identifying unwanted disclosure (paper IV-A)";
  let a = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy in
  let report = Option.get a.disclosure in
  Printf.printf "non-allowed actors: %s   (paper: Administrator, Researcher)\n"
    (String.concat ", " report.non_allowed);
  let level =
    Core.Disclosure_risk.level_for report ~actor:"Administrator" ~store:"EHR"
      ~field:H.diagnosis
  in
  Format.printf
    "Administrator read of EHR after Medical Service use: %a   (paper: Medium)@."
    Core.Level.pp level;
  let a' = Core.Analysis.rerun_with_policy a H.fixed_policy in
  Format.printf "after revoking the Diagnosis read: max level %a   (paper: Low)@."
    Core.Level.pp
    (Core.Disclosure_risk.max_level (Option.get a'.disclosure))

(* ------------------------------------------------------------------ *)
(* Table I *)

let table1 () =
  section "[table1] Risk values for 2-anonymisation data records";
  let reports =
    List.map
      (fun fr -> A.Value_risk.assess H.table1_released ~fields_read:fr H.value_policy)
      [ [ "Height" ]; [ "Age" ]; [ "Age"; "Height" ] ]
  in
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "Age"; "Height (cm)"; "Weight (kg)"; "Height risk"; "Age risk";
          "Age Height risk" ]
  in
  List.iteri
    (fun i row ->
      Mdp_prelude.Texttable.add_row table
        (List.map A.Value.to_string row
        @ List.map
            (fun (r : A.Value_risk.report) ->
              Frac.to_string (List.nth r.scores i).A.Value_risk.risk)
            reports))
    (A.Dataset.rows H.table1_released);
  Mdp_prelude.Texttable.add_row table
    ([ "Violations:"; ""; "" ]
    @ List.map
        (fun (r : A.Value_risk.report) -> string_of_int r.violations)
        reports);
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;
  Printf.printf "(paper violations row: 0 / 2 / 4)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 4 *)

let fig4 () =
  section "[fig4] Pseudonymisation risk analysis output";
  let options = { Core.Generate.default_options with granular_reads = true } in
  let a =
    Core.Analysis.run ~options ~bindings:[ H.study_binding ] H.study_diagram
      H.study_policy
  in
  Printf.printf "study LTS: %s\n" (Core.Lts_render.summary a.universe a.lts);
  Printf.printf "risk-transitions (dotted in the figure):\n";
  List.iter
    (fun (rt : Core.Pseudonym_risk.risk_transition) ->
      Format.printf "  %a@." Core.Pseudonym_risk.pp_risk_transition rt)
    a.pseudonym;
  (match Core.Pseudonym_risk.check ~max_violation_ratio:0.5 a.pseudonym with
  | Ok () -> Printf.printf "50%% violation gate: accepted\n"
  | Error msg -> Printf.printf "50%% violation gate: REJECTED (%s)\n" msg);
  Printf.printf "(paper: violation scores 0, 2 and 4; >50%% is rejected)\n"

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation_generation () =
  section "[ablation] Generation options on the healthcare model";
  let u = Core.Universe.make H.diagram H.policy in
  let cases =
    [
      ("flows only, strict", Core.Generate.flow_only);
      ( "flows only, data-driven",
        { Core.Generate.flow_only with ordering = Core.Generate.Data_driven } );
      ("with potential reads (default)", Core.Generate.default_options);
      ( "potential reads, granular",
        { Core.Generate.default_options with granular_reads = true } );
      ( "with potential deletes",
        { Core.Generate.default_options with potential_deletes = true } );
      ( "no enforcement",
        { Core.Generate.default_options with enforce_policy = false } );
    ]
  in
  let table =
    Mdp_prelude.Texttable.create
      ~header:[ "options"; "states"; "transitions"; "depth"; "interleavings" ]
  in
  let opt_int = function Some v -> string_of_int v | None -> "-" in
  List.iter
    (fun (name, options) ->
      let lts = Core.Generate.run ~options u in
      Mdp_prelude.Texttable.add_row table
        [
          name;
          string_of_int (Core.Plts.num_states lts);
          string_of_int (Core.Plts.num_transitions lts);
          opt_int (Core.Plts.longest_path lts);
          opt_int (Core.Plts.count_maximal_paths lts);
        ])
    cases;
  Format.printf "%a@." Mdp_prelude.Texttable.pp table

let ablation_anonymisers () =
  section "[ablation] Anonymiser quality on a synthetic 500-record table";
  let ds = Synthetic.dataset ~seed:11 ~rows:500 ~quasi:2 in
  let scheme = Synthetic.scheme_for ~quasi:2 in
  let policy = { A.Value_risk.sensitive = "S"; closeness = 5.0; confidence = 0.9 } in
  let describe name release =
    let worst =
      List.fold_left
        (fun acc (r : A.Value_risk.report) -> max acc r.violations)
        0
        (A.Value_risk.sweep release policy)
    in
    Printf.sprintf "%s: min class %d, discernibility %d, avg |class| %.1f, mean drift %.2f, worst violations %d"
      name
      (A.Kanon.min_class_size release)
      (A.Utility.discernibility release)
      (A.Utility.avg_class_size release)
      (Option.value (A.Utility.mean_drift ~original:ds ~release "Q0") ~default:nan)
      worst
  in
  (match A.Kanon.datafly ~k:5 ~max_suppression:0.05 ds scheme with
  | Ok (release, levels, suppressed) ->
    Printf.printf "%s (levels %s, %d suppressed)\n"
      (describe "datafly  k=5" release)
      (String.concat ","
         (List.map (fun (a, l) -> Printf.sprintf "%s=%d" a l) levels))
      suppressed
  | Error e -> Printf.printf "datafly failed: %s\n" e);
  (match A.Kanon.optimal ~k:5 ds scheme with
  | Some (release, levels) ->
    Printf.printf "%s (levels %s)\n"
      (describe "optimal  k=5" release)
      (String.concat ","
         (List.map (fun (a, l) -> Printf.sprintf "%s=%d" a l) levels))
  | None -> Printf.printf "optimal: no lattice point\n");
  (match A.Mondrian.anonymise ~k:5 ds with
  | Ok release -> Printf.printf "%s\n" (describe "mondrian k=5" release)
  | Error e -> Printf.printf "mondrian failed: %s\n" e);
  let post name release =
    Printf.printf "  %s: distinct-l %d, worst-class EMD %.3f (t-closeness)\n" name
      (A.Ldiv.distinct release ~sensitive:"S")
      (Option.value (A.Tcloseness.numeric_emd release ~sensitive:"S") ~default:nan)
  in
  Printf.printf "post-release checks (paper III-B: l-diversity removes the value risk):\n";
  (match A.Kanon.datafly ~k:5 ~max_suppression:0.05 ds scheme with
  | Ok (release, _, _) -> post "datafly " release
  | Error _ -> ());
  (match A.Mondrian.anonymise ~k:5 ds with
  | Ok release -> post "mondrian" release
  | Error _ -> ())

let synthetic_spec (na, nf, fps) =
  {
    Synthetic.seed = 42;
    nactors = na;
    nfields = nf;
    nstores = 2;
    nservices = 2;
    flows_per_service = fps;
  }

let scaling_generation ~jobs () =
  section "[scaling] LTS generation on synthetic models";
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "actors"; "fields"; "flows/svc"; "states"; "transitions";
          "ms (median)"; Printf.sprintf "ms (%d jobs)" jobs ]
  in
  List.iter
    (fun dims ->
      let na, nf, fps = dims in
      let diagram, policy = Synthetic.model (synthetic_spec dims) in
      let u = Core.Universe.make diagram policy in
      let lts = Core.Generate.run u in
      let seq = time_median ~runs:3 (fun () -> Core.Generate.run u) in
      let par = time_median ~runs:3 (fun () -> Core.Generate.run ~jobs u) in
      Mdp_prelude.Texttable.add_row table
        [
          string_of_int na; string_of_int nf; string_of_int fps;
          string_of_int (Core.Plts.num_states lts);
          string_of_int (Core.Plts.num_transitions lts);
          Printf.sprintf "%.1f" (1000.0 *. seq);
          Printf.sprintf "%.1f" (1000.0 *. par);
        ])
    [ (2, 4, 3); (4, 6, 4); (6, 8, 5); (8, 10, 6); (10, 12, 7) ];
  Format.printf "%a@." Mdp_prelude.Texttable.pp table


(* ------------------------------------------------------------------ *)
(* Population-level analysis (paper III: one instance per user) *)

let population () =
  section "[population] Aggregate disclosure risk over simulated users";
  let u = Core.Universe.make H.diagram H.policy in
  let lts = Core.Generate.run u in
  let spec =
    {
      Core.Population.seed = 2026;
      size = 500;
      westin_mix = Core.Population.default_mix;
      agree_probability = 0.6;
    }
  in
  let profiles = Core.Population.simulate spec H.diagram in
  Format.printf "%a@." Core.Population.pp_aggregate
    (Core.Population.analyse u lts profiles)

(* ------------------------------------------------------------------ *)
(* Requirements audit *)

let requirements () =
  section "[requirements] Compliance queries on the generated LTS";
  let u = Core.Universe.make H.diagram H.policy in
  let lts = Core.Generate.run u in
  ignore (Core.Disclosure_risk.analyse u lts H.profile_case_a);
  List.iter
    (fun req ->
      Format.printf "  %s %a@."
        (if Core.Requirement.holds u lts req then "ok      " else "VIOLATED")
        Core.Requirement.pp req)
    [
      Core.Requirement.Never_identifies
        { actor = "Receptionist"; field = H.diagnosis };
      Core.Requirement.Never_identifies
        { actor = "Administrator"; field = H.diagnosis };
      Core.Requirement.Never_could_identify
        { actor = "Researcher"; field = H.diagnosis };
      Core.Requirement.Max_disclosure_risk Core.Level.Low;
    ]


let scaling_anonymisation () =
  section "[scaling] Anonymisation and value risk in record count";
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "records"; "datafly ms"; "mondrian ms"; "value-risk ms"; "emd ms" ]
  in
  let time f = Printf.sprintf "%.1f" (1000.0 *. time_median ~runs:3 f) in
  List.iter
    (fun rows ->
      let ds = Synthetic.dataset ~seed:rows ~rows ~quasi:2 in
      let scheme = Synthetic.scheme_for ~quasi:2 in
      let policy =
        { A.Value_risk.sensitive = "S"; closeness = 5.0; confidence = 0.9 }
      in
      let release =
        match A.Mondrian.anonymise ~k:5 ds with Ok r -> r | Error _ -> ds
      in
      Mdp_prelude.Texttable.add_row table
        [
          string_of_int rows;
          time (fun () ->
              ignore (A.Kanon.datafly ~k:5 ~max_suppression:0.05 ds scheme));
          time (fun () -> ignore (A.Mondrian.anonymise ~k:5 ds));
          time (fun () ->
              ignore (A.Value_risk.assess release ~fields_read:[ "Q0" ] policy));
          time (fun () -> ignore (A.Tcloseness.numeric_emd release ~sensitive:"S"));
        ])
    [ 100; 500; 2000; 8000 ];
  Format.printf "%a@." Mdp_prelude.Texttable.pp table

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

(* ------------------------------------------------------------------ *)
(* Chaos: monitoring throughput and recovery under fault injection *)

let chaos_resilience () =
  section "[chaos] Fleet monitoring under fault injection";
  let module R = Mdp_runtime in
  let analysis = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy in
  let u = analysis.Core.Analysis.universe
  and lts = analysis.Core.Analysis.lts in
  let subjects = 40 and repeats = 50 and resync_depth = 8 in
  let traces =
    List.init subjects (fun i ->
        ( Printf.sprintf "s%02d" i,
          R.Sim.run_exn u
            {
              seed = 100 + (31 * i);
              services = [ H.medical_service; H.research_service ];
              snoopers = [];
            } ))
  in
  Printf.printf "  %d subjects, %d clean events, resync depth %d\n" subjects
    (Mdp_prelude.Listx.sum_by (fun (_, t) -> List.length t) traces)
    resync_depth;
  Printf.printf "  %-6s %9s %11s %8s %6s %6s %6s %6s\n" "rate" "events"
    "events/s" "resyncs" "late" "dup" "dead" "lost";
  List.iter
    (fun rate ->
      let profile = R.Faults.uniform rate in
      let stream =
        R.Trace.interleave
          (List.mapi
             (fun i (s, tr) ->
               (s, (R.Faults.inject ~seed:(7 + (131 * i)) profile tr).delivered))
             traces)
      in
      let feed () =
        let fleet = R.Fleet.create ~resync_depth u lts in
        List.iter
          (fun (s, e) -> ignore (R.Fleet.observe fleet ~subject:s e))
          stream;
        fleet
      in
      let t0 = Mdp_obs.Clock.now_ns () in
      for _ = 2 to repeats do
        ignore (feed ())
      done;
      let fleet = feed () in
      let dt = Mdp_obs.Clock.elapsed_s t0 /. float_of_int repeats in
      let resyncs, late, dup, dead =
        List.fold_left
          (fun (r, l, du, de) s ->
            match R.Fleet.monitor_stats fleet ~subject:s with
            | None -> (r, l, du, de)
            | Some st ->
              ( r + st.R.Monitor.resyncs,
                l + st.late,
                du + st.duplicates,
                de + st.dead ))
          (0, 0, 0, 0) (R.Fleet.subjects fleet)
      in
      let lost =
        Mdp_prelude.Listx.count
          (fun (_, h) -> h = R.Fleet.Lost)
          (R.Fleet.health_summary fleet)
      in
      Printf.printf "  %-6s %9d %11.0f %8d %6d %6d %6d %6d\n"
        (Printf.sprintf "%.0f%%" (100.0 *. rate))
        (List.length stream)
        (float_of_int (List.length stream) /. dt)
        resyncs late dup dead lost)
    [ 0.0; 0.01; 0.05; 0.20 ]

let perf () =
  section "[perf] Bechamel micro-benchmarks";
  let open Bechamel in
  let u = Core.Universe.make H.diagram H.policy in
  let study_u = Core.Universe.make H.study_diagram H.study_policy in
  let lts = Core.Generate.run u in
  ignore (Core.Disclosure_risk.analyse u lts H.profile_case_a);
  let ds1k = Synthetic.dataset ~seed:3 ~rows:1000 ~quasi:2 in
  let scheme = Synthetic.scheme_for ~quasi:2 in
  let vr_policy =
    { A.Value_risk.sensitive = "S"; closeness = 5.0; confidence = 0.9 }
  in
  let healthcare_text =
    Mdp_dsl.Printer.to_string
      { Mdp_dsl.Parser.diagram = H.diagram; policy = H.policy; placement = None }
  in
  let trace =
    Mdp_runtime.Sim.run_exn u
      {
        seed = 7;
        services = [ H.medical_service; H.research_service ];
        snoopers =
          [ { Mdp_runtime.Sim.actor = "Administrator"; store = "EHR"; probability = 0.5 } ];
      }
  in
  let tests =
    [
      Test.make ~name:"generate/healthcare-default"
        (Staged.stage (fun () -> ignore (Core.Generate.run u)));
      Test.make ~name:"generate/healthcare-granular"
        (Staged.stage (fun () ->
             ignore
               (Core.Generate.run
                  ~options:
                    { Core.Generate.default_options with granular_reads = true }
                  u)));
      Test.make ~name:"generate/study-granular"
        (Staged.stage (fun () ->
             ignore
               (Core.Generate.run
                  ~options:
                    { Core.Generate.default_options with granular_reads = true }
                  study_u)));
      Test.make ~name:"analyse/disclosure-healthcare"
        (Staged.stage (fun () ->
             let lts = Core.Generate.run u in
             ignore (Core.Disclosure_risk.analyse u lts H.profile_case_a)));
      Test.make ~name:"analyse/pseudonym-study"
        (Staged.stage (fun () ->
             let opts =
               { Core.Generate.default_options with granular_reads = true }
             in
             let lts = Core.Generate.run ~options:opts study_u in
             ignore (Core.Pseudonym_risk.analyse study_u lts H.study_binding)));
      Test.make ~name:"anon/datafly-1k"
        (Staged.stage (fun () ->
             ignore (A.Kanon.datafly ~k:5 ~max_suppression:0.05 ds1k scheme)));
      Test.make ~name:"anon/mondrian-1k"
        (Staged.stage (fun () -> ignore (A.Mondrian.anonymise ~k:5 ds1k)));
      Test.make ~name:"anon/value-risk-1k"
        (Staged.stage (fun () ->
             ignore (A.Value_risk.assess ds1k ~fields_read:[ "Q0" ] vr_policy)));
      Test.make ~name:"dsl/parse-healthcare"
        (Staged.stage (fun () -> ignore (Mdp_dsl.Parser.parse healthcare_text)));
      Test.make ~name:"runtime/monitor-replay"
        (Staged.stage (fun () ->
             let m = Mdp_runtime.Monitor.create u lts in
             ignore (Mdp_runtime.Monitor.run_trace m trace)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    let raw = Benchmark.all cfg [ instance ] test in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name result ->
        let name =
          if String.length name > 0 && name.[0] = '/' then
            String.sub name 1 (String.length name - 1)
          else name
        in
        match Analyze.OLS.estimates result with
        | Some [ ns ] ->
          if ns > 1_000_000.0 then
            Printf.printf "  %-34s %10.2f ms/run\n" name (ns /. 1e6)
          else Printf.printf "  %-34s %10.2f us/run\n" name (ns /. 1e3)
        | Some _ | None -> Printf.printf "  %-34s (no estimate)\n" name)
      results
  in
  List.iter (fun t -> benchmark (Test.make_grouped ~name:"" [ t ])) tests

(* ------------------------------------------------------------------ *)
(* PR 2 before/after: the retired seed engine (bench/baseline.ml)
   against the current one, sequential and parallel, on the workloads
   the optimisation targets. Emits machine-readable BENCH_PR2.json and
   fails if the engines disagree on the generated LTS. *)

let pr2_cases ~smoke =
  let synth dims = synthetic_spec dims in
  let u_of (d, p) = Core.Universe.make d p in
  let granular = { Core.Generate.default_options with granular_reads = true } in
  if smoke then
    [
      ( "synthetic-2-4-3",
        u_of (Synthetic.model (synth (2, 4, 3))),
        Core.Generate.default_options );
      ("healthcare-default", u_of (H.diagram, H.policy), Core.Generate.default_options);
    ]
  else
    [
      ("healthcare-granular", u_of (H.diagram, H.policy), granular);
      ("study-granular", u_of (H.study_diagram, H.study_policy), granular);
      ( "synthetic-8-10-6",
        u_of (Synthetic.model (synth (8, 10, 6))),
        Core.Generate.default_options );
      ( "synthetic-10-12-7",
        u_of (Synthetic.model (synth (10, 12, 7))),
        Core.Generate.default_options );
      (* The headline case: ~307k states / 2.1M transitions, large
         enough that the seed engine's hash-bucket clustering and
         linear duplicate scans dominate its runtime. *)
      ( "synthetic-11-14-8",
        u_of (Synthetic.model (synth (11, 14, 8))),
        { Core.Generate.default_options with max_states = 400_000 } );
    ]

let perf_pr2 ~jobs ~smoke () =
  section
    (Printf.sprintf "[pr2] generation engine before/after (jobs=%d)" jobs);
  let section_t0 = Mdp_obs.Clock.now_ns () in
  let runs = if smoke then 2 else 5 in
  let ok = ref true in
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "case"; "states"; "trans"; "before st/s"; "after st/s";
          Printf.sprintf "par(%d) st/s" jobs; "speedup"; "par speedup" ]
  in
  let json_cases =
    List.map
      (fun (name, u, options) ->
        (* Scoped so all three LTSs are collectable before timing —
           the largest case holds millions of transitions. *)
        let states, ntrans, agree =
          let seq = Core.Generate.run ~options u in
          let par = Core.Generate.run ~options ~jobs u in
          let base = Baseline.run ~options u in
          let states = Core.Plts.num_states seq in
          let agree =
            states = Core.Plts.num_states par
            && Core.Plts.num_transitions seq = Core.Plts.num_transitions par
            && states = Baseline.num_states base
            && Core.Plts.num_transitions seq = Baseline.num_transitions base
            && List.for_all
                 (fun i ->
                   Core.Config.equal
                     (Core.Plts.state_data seq i)
                     (Core.Plts.state_data par i))
                 (List.init states Fun.id)
          in
          if not agree then begin
            Printf.printf
              "  %s: ENGINES DISAGREE (seq %d/%d, par %d/%d, baseline %d/%d)\n"
              name states
              (Core.Plts.num_transitions seq)
              (Core.Plts.num_states par)
              (Core.Plts.num_transitions par)
              (Baseline.num_states base)
              (Baseline.num_transitions base);
            ok := false
          end;
          (states, Core.Plts.num_transitions seq, agree)
        in
        (* Fewer samples on the heavyweight cases: one seed-engine run
           there takes tens of seconds, and the gap being measured is
           far larger than run-to-run noise. *)
        let runs = if states > 50_000 then min runs 2 else runs in
        let t_before = time_median ~runs (fun () -> Baseline.run ~options u) in
        let t_after = time_median ~runs (fun () -> Core.Generate.run ~options u) in
        let t_par =
          time_median ~runs (fun () -> Core.Generate.run ~options ~jobs u)
        in
        let rate t = float_of_int states /. t in
        (* PR 3 regression gate: on small models the frontier threshold
           must route --jobs through the sequential path, so parallel
           generation may no longer lose to sequential (PR 2 shipped
           with speedup_par ~0.57x on the 1k-state cases). The margin
           absorbs timer noise on sub-millisecond runs. *)
        let small_model = states < 2048 in
        let par_small_ok =
          (not small_model) || t_par <= (t_after *. 1.5) +. 0.002
        in
        if not par_small_ok then begin
          Printf.printf
            "  %s: parallel regression on small model (par %.4fs vs seq %.4fs)\n"
            name t_par t_after;
          ok := false
        end;
        Mdp_prelude.Texttable.add_row table
          [
            name;
            string_of_int states;
            string_of_int ntrans;
            Printf.sprintf "%.0f" (rate t_before);
            Printf.sprintf "%.0f" (rate t_after);
            Printf.sprintf "%.0f" (rate t_par);
            Printf.sprintf "%.1fx" (t_before /. t_after);
            Printf.sprintf "%.1fx" (t_before /. t_par);
          ];
        let module J = Mdp_prelude.Json in
        J.Obj
          [
            ("name", J.Str name);
            ("states", J.int states);
            ("transitions", J.int ntrans);
            ("engines_agree", J.Bool agree);
            ( "before",
              J.Obj
                [ ("seconds", J.Num t_before);
                  ("states_per_sec", J.Num (rate t_before)) ] );
            ( "after_seq",
              J.Obj
                [ ("seconds", J.Num t_after);
                  ("states_per_sec", J.Num (rate t_after)) ] );
            ( "after_par",
              J.Obj
                [ ("seconds", J.Num t_par);
                  ("states_per_sec", J.Num (rate t_par)) ] );
            ("speedup_seq", J.Num (t_before /. t_after));
            ("speedup_par", J.Num (t_before /. t_par));
            ("small_model", J.Bool small_model);
            ("par_small_model_ok", J.Bool par_small_ok);
          ])
      (pr2_cases ~smoke)
  in
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;
  let module J = Mdp_prelude.Json in
  let json =
    J.Obj
      [
        ("bench", J.Str "pr2-lts-engine");
        ("jobs", J.int jobs);
        ("smoke", J.Bool smoke);
        ("runs_per_sample", J.int runs);
        ("phase_spans", span_totals_json ~since:section_t0 ());
        ("cases", J.List json_cases);
      ]
  in
  let oc = open_out "BENCH_PR2.json" in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR2.json\n";
  !ok

(* ------------------------------------------------------------------ *)
(* PR 3 before/after: naive per-profile population analysis (one full
   disclosure report per user) against the compiled engine (risk-plan
   compilation + profile equivalence classes + parallel streaming
   aggregation). Emits machine-readable BENCH_PR3.json and fails if the
   compiled aggregates differ from the naive ones — structurally or as
   rendered text — or, in smoke mode, if compiled is slower than naive. *)

let pr3_cases ~smoke =
  let granular = { Core.Generate.default_options with granular_reads = true } in
  if smoke then
    [ ("healthcare-2k", H.diagram, H.policy, Core.Generate.default_options, 2_000) ]
  else
    [
      ("healthcare-granular-1k", H.diagram, H.policy, granular, 1_000);
      ( "smart-home-20k",
        Smart_home.diagram,
        Smart_home.policy,
        Core.Generate.default_options,
        20_000 );
      (* The headline case: >=100k profiles. The naive engine re-walks
         the whole LTS per profile; the compiled engine analyses one
         representative per equivalence class and weights by class
         size, so its cost is bounded by the class count. *)
      ("healthcare-100k", H.diagram, H.policy, Core.Generate.default_options, 100_000);
    ]

let perf_pr3 ~jobs ~smoke () =
  section
    (Printf.sprintf "[pr3] population engine before/after (jobs=%d)" jobs);
  let section_t0 = Mdp_obs.Clock.now_ns () in
  let ok = ref true in
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "case"; "profiles"; "classes"; "naive s"; "compiled s";
          Printf.sprintf "par(%d) s" jobs; "speedup"; "par speedup" ]
  in
  let json_cases =
    List.map
      (fun (name, diagram, policy, options, size) ->
        let u = Core.Universe.make diagram policy in
        let lts = Core.Generate.run ~options u in
        let spec =
          {
            Core.Population.seed = 2026;
            size;
            westin_mix = Core.Population.default_mix;
            agree_probability = 0.6;
          }
        in
        let profiles = Core.Population.simulate spec diagram in
        let nclasses = List.length (Core.Population.classes u profiles) in
        let render agg =
          Format.asprintf "%a" Core.Population.pp_aggregate agg
        in
        let naive = Core.Population.analyse u lts profiles in
        let seq = Core.Population.analyse_compiled u lts profiles in
        let par = Core.Population.analyse_compiled ~jobs u lts profiles in
        let agree =
          naive = seq && naive = par
          && render naive = render seq
          && render naive = render par
        in
        if not agree then begin
          Printf.printf "  %s: ENGINES DISAGREE\n" name;
          ok := false
        end;
        (* One naive sample on the big cases: a single run is minutes
           long and the gap being measured is orders of magnitude. *)
        let naive_runs = if size >= 20_000 then 1 else if smoke then 2 else 3 in
        let t_naive =
          time_median ~warmup:(min 1 (naive_runs - 1)) ~runs:naive_runs
            (fun () -> Core.Population.analyse u lts profiles)
        in
        let t_seq =
          time_median ~runs:3 (fun () ->
              Core.Population.analyse_compiled u lts profiles)
        in
        let t_par =
          time_median ~runs:3 (fun () ->
              Core.Population.analyse_compiled ~jobs u lts profiles)
        in
        if smoke && t_seq > t_naive then begin
          Printf.printf
            "  %s: compiled engine slower than naive (%.3fs vs %.3fs)\n" name
            t_seq t_naive;
          ok := false
        end;
        Mdp_prelude.Texttable.add_row table
          [
            name;
            string_of_int size;
            string_of_int nclasses;
            Printf.sprintf "%.3f" t_naive;
            Printf.sprintf "%.3f" t_seq;
            Printf.sprintf "%.3f" t_par;
            Printf.sprintf "%.0fx" (t_naive /. t_seq);
            Printf.sprintf "%.0fx" (t_naive /. t_par);
          ];
        let module J = Mdp_prelude.Json in
        J.Obj
          [
            ("name", J.Str name);
            ("profiles", J.int size);
            ("classes", J.int nclasses);
            ("states", J.int (Core.Plts.num_states lts));
            ("transitions", J.int (Core.Plts.num_transitions lts));
            ("aggregates_agree", J.Bool agree);
            ( "naive",
              J.Obj
                [ ("seconds", J.Num t_naive);
                  ("profiles_per_sec", J.Num (float_of_int size /. t_naive)) ] );
            ( "compiled_seq",
              J.Obj
                [ ("seconds", J.Num t_seq);
                  ("profiles_per_sec", J.Num (float_of_int size /. t_seq)) ] );
            ( "compiled_par",
              J.Obj
                [ ("seconds", J.Num t_par);
                  ("profiles_per_sec", J.Num (float_of_int size /. t_par)) ] );
            ("speedup_seq", J.Num (t_naive /. t_seq));
            ("speedup_par", J.Num (t_naive /. t_par));
          ])
      (pr3_cases ~smoke)
  in
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;
  let module J = Mdp_prelude.Json in
  let json =
    J.Obj
      [
        ("bench", J.Str "pr3-population-engine");
        ("jobs", J.int jobs);
        ("smoke", J.Bool smoke);
        ("phase_spans", span_totals_json ~since:section_t0 ());
        ("cases", J.List json_cases);
      ]
  in
  let oc = open_out "BENCH_PR3.json" in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR3.json\n";
  !ok

(* ------------------------------------------------------------------ *)
(* PR 4 before/after: the naive row-at-a-time anonymisation modules
   against the columnar engine (typed column compilation + in-place
   parallel Mondrian + hashed equivalence classes). Emits
   machine-readable BENCH_PR4.json and fails if the engines disagree
   on any compared artefact — Mondrian releases everywhere, plus the
   full analysis surface (partitions, classes, k/l/t checks,
   re-identification and value-risk reports) on the cases small enough
   for the naive class analyses to run at all. *)

(* A dataset derived from simulated population profiles over the
   healthcare model: quasi columns are the profiles' field
   sensitivities, the sensitive column their agreed-service count.
   Profile sensitivities are a handful of discrete Westin baselines,
   which would exhaust Mondrian's ranges after a couple of splits, so
   a seeded gaussian jitter spreads each value — deterministic, and
   applied before either engine sees the data, so parity is
   unaffected. *)
let population_dataset ~rows =
  let profiles =
    Core.Population.simulate
      {
        Core.Population.seed = 2026;
        size = rows;
        westin_mix = Core.Population.default_mix;
        agree_probability = 0.6;
      }
      H.diagram
  in
  let fields =
    List.filteri (fun i _ -> i < 3) (Mdp_dataflow.Diagram.all_fields H.diagram)
  in
  let nquasi = List.length fields in
  let field = Array.of_list fields in
  let parr = Array.of_list profiles in
  let rng = Mdp_prelude.Prng.create ~seed:77 in
  let attrs =
    List.init nquasi (fun i ->
        A.Attribute.make ~name:(Printf.sprintf "Q%d" i) ~kind:A.Attribute.Quasi)
    @ [ A.Attribute.make ~name:"S" ~kind:A.Attribute.Sensitive ]
  in
  A.Dataset.init ~attrs ~nrows:rows ~f:(fun ~row ~col ->
      let p = parr.(row) in
      if col < nquasi then
        A.Value.Float
          (Mdp_prelude.Prng.gaussian rng
             ~mean:(100.0 *. Core.User_profile.sensitivity p field.(col))
             ~stddev:3.0)
      else
        A.Value.Float
          (Mdp_prelude.Prng.gaussian rng
             ~mean:
               (10.0
               *. float_of_int
                    (List.length (Core.User_profile.agreed_services p)))
             ~stddev:2.0))

let pr4_cases ~smoke =
  if smoke then [ ("synthetic-10k", `Synthetic (42, 10_000, 3), 25, true) ]
  else
    [
      (* Small enough for the whole analysis surface to be compared
         (the naive side of that comparison is O(n * classes)). *)
      ("synthetic-50k", `Synthetic (7, 50_000, 3), 50, true);
      (* The headline case. *)
      ("synthetic-1m", `Synthetic (1, 1_000_000, 4), 100, false);
      ("healthcare-pop-500k", `Population 500_000, 25, false);
    ]

let pr4_dataset = function
  | `Synthetic (seed, rows, quasi) -> Synthetic.dataset ~seed ~rows ~quasi
  | `Population rows -> population_dataset ~rows

let datasets_equal a b =
  A.Dataset.attrs a = A.Dataset.attrs b
  && A.Dataset.nrows a = A.Dataset.nrows b
  &&
  let rows = A.Dataset.nrows a and cols = A.Dataset.ncols a in
  let ok = ref true in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if A.Dataset.get a ~row:r ~col:c <> A.Dataset.get b ~row:r ~col:c then
        ok := false
    done
  done;
  !ok

let perf_pr4 ~jobs ~smoke () =
  section
    (Printf.sprintf "[pr4] anonymisation engine before/after (jobs=%d)" jobs);
  let section_t0 = Mdp_obs.Clock.now_ns () in
  let ok = ref true in
  let vr_policy =
    { A.Value_risk.sensitive = "S"; closeness = 5.0; confidence = 0.9 }
  in
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "case"; "rows"; "k"; "parts"; "naive s"; "columnar s";
          Printf.sprintf "par(%d) s" jobs; "speedup"; "par speedup" ]
  in
  let mond_table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "case (mondrian only)"; "seed s"; "fixed s"; "columnar s";
          Printf.sprintf "par(%d) s" jobs; "speedup" ]
  in
  let json_cases =
    List.map
      (fun (name, gen, k, full) ->
        let ds = pr4_dataset gen in
        let rows = A.Dataset.nrows ds in
        let plan = A.Columnar.compile ds in
        let fail msg = failwith (Printf.sprintf "pr4 %s: %s" name msg) in
        (* The timed unit is the §III-B serving-path pipeline: Mondrian
           anonymisation followed by the release gate verifying the
           claimed k-anonymity and l-diversity of the candidate
           release. The gate is where the naive engine's O(n * classes)
           group-by lives; Mondrian-only timings (including the seed
           engine preserved in bench/baseline_anon.ml) are reported
           separately below. *)
        let crit =
          { (A.Release_gate.default ~k) with A.Release_gate.l = Some 2 }
        in
        let big = rows > 20_000 in
        (* One timed run on a compacted heap.  Big-case numbers for
           every engine are a single run: a naive run is minutes long,
           the measured gap is orders of magnitude above noise, and
           repeated runs only charge whichever engine goes last for
           major-GC scans over the earlier engines' live releases. *)
        let time_once f =
          Gc.compact ();
          Mdp_obs.Clock.time f
        in
        (* Columnar pipeline: compile the input, anonymise, compile the
           release, gate it — the full cost a caller starting from a
           Dataset.t pays.  Timed first, while the heap holds nothing
           but the input. *)
        let col_pipeline jobs =
          let plan = A.Columnar.compile ds in
          match A.Columnar.mondrian_release ~jobs ~k plan with
          | Error e -> fail e
          | Ok rplan ->
            ( A.Columnar.source rplan,
              A.Columnar.evaluate_gate ~original:ds ~release:rplan crit )
        in
        let (col_rel, col_verdict), t_seq_once =
          time_once (fun () -> col_pipeline 1)
        in
        let (col_rel_par, col_verdict_par), t_par_once =
          time_once (fun () -> col_pipeline jobs)
        in
        let t_seq =
          if big then t_seq_once
          else time_median ~runs:3 (fun () -> col_pipeline 1)
        in
        let t_par =
          if big then t_par_once
          else time_median ~runs:3 (fun () -> col_pipeline jobs)
        in
        (* Mondrian-only columnar timings (compile included), for the
           before/after table against the seed engine. *)
        let col_m () =
          A.Columnar.mondrian_anonymise ~k (A.Columnar.compile ds)
        in
        let col_m_par () =
          A.Columnar.mondrian_anonymise ~jobs ~k (A.Columnar.compile ds)
        in
        let t_col_m =
          if big then snd (time_once col_m) else time_median ~runs:3 col_m
        in
        let t_col_m_par =
          if big then snd (time_once col_m_par)
          else time_median ~runs:3 col_m_par
        in
        (* Seed engine, Mondrian only: the one big-case run doubles as
           agreement input and timing sample. *)
        let seed_rel, t_seed_once =
          time_once (fun () ->
              match Baseline_anon.anonymise ~k ds with
              | Ok r -> r
              | Error e -> fail e)
        in
        let t_seed_m =
          if big then t_seed_once
          else time_median ~runs:3 (fun () -> Baseline_anon.anonymise ~k ds)
        in
        (* Naive pipeline, instrumented so the single big-case run
           yields the release, the verdict, and both timings. *)
        let () = Gc.compact () in
        let t0 = Mdp_obs.Clock.now_ns () in
        let naive_rel =
          match A.Mondrian.anonymise ~k ds with Ok r -> r | Error e -> fail e
        in
        let t_naive_m_once = Mdp_obs.Clock.elapsed_s t0 in
        let naive_verdict =
          A.Release_gate.evaluate ~original:ds ~release:naive_rel crit
        in
        let t_naive_once = Mdp_obs.Clock.elapsed_s t0 in
        let t_naive_m =
          if big then t_naive_m_once
          else time_median ~runs:3 (fun () -> A.Mondrian.anonymise ~k ds)
        in
        let t_naive =
          if big then t_naive_once
          else
            time_median ~runs:3 (fun () ->
                match A.Mondrian.anonymise ~k ds with
                | Ok rel -> A.Release_gate.evaluate ~original:ds ~release:rel crit
                | Error e -> fail e)
        in
        let nparts =
          match A.Columnar.mondrian_partitions ~k plan with
          | Ok parts -> List.length parts
          | Error e -> fail e
        in
        let release_agree =
          datasets_equal seed_rel naive_rel
          && datasets_equal naive_rel col_rel
          && datasets_equal col_rel col_rel_par
          && naive_verdict = col_verdict
          && col_verdict = col_verdict_par
        in
        (* The naive class analyses are O(rows * classes) — only
           feasible on the small cases; Mondrian releases (above) are
           compared everywhere. *)
        let full_agree =
          (not full)
          ||
          let cplan = A.Columnar.compile naive_rel in
          let fields = [ "Q0"; "Q1" ] in
          A.Mondrian.partitions ~k ds = A.Columnar.mondrian_partitions ~k plan
          && A.Mondrian.partitions ~k ds
             = A.Columnar.mondrian_partitions ~jobs ~k plan
          && A.Kanon.classes naive_rel = A.Columnar.classes cplan
          && A.Kanon.min_class_size naive_rel = A.Columnar.min_class_size cplan
          && A.Ldiv.distinct naive_rel ~sensitive:"S"
             = A.Columnar.ldiv_distinct cplan ~sensitive:"S"
          && A.Ldiv.entropy naive_rel ~sensitive:"S"
             = A.Columnar.ldiv_entropy cplan ~sensitive:"S"
          && A.Tcloseness.numeric_emd naive_rel ~sensitive:"S"
             = A.Columnar.tclose_numeric_emd cplan ~sensitive:"S"
          && A.Reident.prosecutor naive_rel = A.Columnar.reident_prosecutor cplan
          && A.Reident.marketer naive_rel = A.Columnar.reident_marketer cplan
          && A.Reident.journalist ~release:naive_rel ~population:ds
             = A.Columnar.reident_journalist ~release:cplan ~population:plan
          && A.Value_risk.assess naive_rel ~fields_read:fields vr_policy
             = A.Columnar.value_risk_assess cplan ~fields_read:fields vr_policy
        in
        let agree = release_agree && full_agree in
        if not agree then begin
          Printf.printf "  %s: ENGINES DISAGREE (release %b, analyses %b)\n"
            name release_agree full_agree;
          ok := false
        end;
        (* Large cases must not lose wall-clock by asking for domains;
           the margin absorbs domain-spawn cost and timer noise on a
           machine with fewer cores than jobs. *)
        let par_large_ok =
          rows < 100_000 || t_par <= (t_seq *. 1.25) +. 0.1
        in
        if not par_large_ok then begin
          Printf.printf
            "  %s: parallel regression on large case (par %.3fs vs seq %.3fs)\n"
            name t_par t_seq;
          ok := false
        end;
        if smoke && t_seq > t_naive then begin
          Printf.printf
            "  %s: columnar engine slower than naive (%.3fs vs %.3fs)\n" name
            t_seq t_naive;
          ok := false
        end;
        (* Class-analysis timing on the cases where naive runs at all:
           the hashed-equivalence-class path against the string-keyed
           group-by, on the released table. *)
        let analytics =
          if not full then []
          else begin
            let t_vr_naive =
              time_median ~runs:3 (fun () ->
                  A.Value_risk.assess naive_rel ~fields_read:[ "Q0"; "Q1" ]
                    vr_policy)
            in
            let t_vr_col =
              time_median ~runs:3 (fun () ->
                  A.Columnar.value_risk_assess
                    (A.Columnar.compile naive_rel)
                    ~fields_read:[ "Q0"; "Q1" ] vr_policy)
            in
            let module J = Mdp_prelude.Json in
            [
              ( "value_risk",
                J.Obj
                  [
                    ("naive_seconds", J.Num t_vr_naive);
                    ("columnar_seconds", J.Num t_vr_col);
                    ("speedup", J.Num (t_vr_naive /. t_vr_col));
                  ] );
            ]
          end
        in
        Mdp_prelude.Texttable.add_row table
          [
            name;
            string_of_int rows;
            string_of_int k;
            string_of_int nparts;
            Printf.sprintf "%.3f" t_naive;
            Printf.sprintf "%.3f" t_seq;
            Printf.sprintf "%.3f" t_par;
            Printf.sprintf "%.0fx" (t_naive /. t_seq);
            Printf.sprintf "%.0fx" (t_naive /. t_par);
          ];
        Mdp_prelude.Texttable.add_row mond_table
          [
            name;
            Printf.sprintf "%.3f" t_seed_m;
            Printf.sprintf "%.3f" t_naive_m;
            Printf.sprintf "%.3f" t_col_m;
            Printf.sprintf "%.3f" t_col_m_par;
            Printf.sprintf "%.0fx" (t_seed_m /. t_col_m);
          ];
        let module J = Mdp_prelude.Json in
        J.Obj
          ([
             ("name", J.Str name);
             ("rows", J.int rows);
             ("k", J.int k);
             ("partitions", J.int nparts);
             ("aggregates_agree", J.Bool agree);
             ("full_analysis_compared", J.Bool full);
             ( "naive",
               J.Obj
                 [ ("seconds", J.Num t_naive);
                   ("rows_per_sec", J.Num (float_of_int rows /. t_naive)) ] );
             ( "columnar_seq",
               J.Obj
                 [ ("seconds", J.Num t_seq);
                   ("rows_per_sec", J.Num (float_of_int rows /. t_seq)) ] );
             ( "columnar_par",
               J.Obj
                 [ ("seconds", J.Num t_par);
                   ("rows_per_sec", J.Num (float_of_int rows /. t_par)) ] );
             ("speedup_seq", J.Num (t_naive /. t_seq));
             ("speedup_par", J.Num (t_naive /. t_par));
             ("par_large_ok", J.Bool par_large_ok);
             ( "mondrian",
               J.Obj
                 [
                   ( "seed",
                     J.Obj
                       [ ("seconds", J.Num t_seed_m);
                         ("rows_per_sec", J.Num (float_of_int rows /. t_seed_m))
                       ] );
                   ( "naive_fixed",
                     J.Obj
                       [ ("seconds", J.Num t_naive_m);
                         ("speedup_vs_seed", J.Num (t_seed_m /. t_naive_m)) ] );
                   ("columnar_seq", J.Obj [ ("seconds", J.Num t_col_m) ]);
                   ("columnar_par", J.Obj [ ("seconds", J.Num t_col_m_par) ]);
                   ("speedup_seq", J.Num (t_seed_m /. t_col_m));
                   ("speedup_par", J.Num (t_seed_m /. t_col_m_par));
                 ] );
           ]
          @ analytics))
      (pr4_cases ~smoke)
  in
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;
  Format.printf "%a@." Mdp_prelude.Texttable.pp mond_table;
  let module J = Mdp_prelude.Json in
  let json =
    J.Obj
      [
        ("bench", J.Str "pr4-anonymisation-engine");
        ("jobs", J.int jobs);
        ("smoke", J.Bool smoke);
        ("phase_spans", span_totals_json ~since:section_t0 ());
        ("cases", J.List json_cases);
      ]
  in
  let oc = open_out "BENCH_PR4.json" in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR4.json\n";
  !ok

(* ------------------------------------------------------------------ *)
(* PR 6: the serve daemon's artifact/result caches, cold vs warm. A
   cold request pays DSL-or-synthetic model construction, LTS
   exploration and (for risk) risk-plan compilation; a warm repeat of
   the same request must come straight out of the result cache with a
   byte-identical body. Emits machine-readable BENCH_PR6.json and
   fails if a warm hit is not flagged cached, differs from the cold
   body, or is less than 100x faster on the headline case. *)

let pr6_cases ~smoke =
  if smoke then [ ("synthetic:6-8-5", 200_000) ]
  else [ ("synthetic:11-14-8", 400_000); ("synthetic:8-10-6", 200_000) ]

let perf_pr6 ~jobs ~smoke () =
  section
    (Printf.sprintf "[pr6] serve engine cold vs warm cache (jobs=%d)" jobs);
  let section_t0 = Mdp_obs.Clock.now_ns () in
  let module S = Mdp_serve in
  let module J = Mdp_prelude.Json in
  let ok = ref true in
  let risk_kind =
    S.Protocol.Risk
      { agreed = [ "Service0" ]; sensitivities = [ ("Field0", 0.9) ] }
  in
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "case"; "kind"; "cold s"; "warm us"; "speedup"; "identical" ]
  in
  let json_cases =
    List.concat_map
      (fun (model, max_states) ->
        List.map
          (fun (kname, kind) ->
            (* Fresh engine per kind: the artifact cache is shared
               across kinds, so reusing one would make the second
               kind's "cold" run warm. *)
            let engine =
              S.Engine.create
                ~config:{ S.Engine.default_config with jobs; max_states }
                ()
            in
            let req =
              {
                S.Protocol.req_id = Some (model ^ "/" ^ kname);
                cmd =
                  S.Protocol.Analyse
                    {
                      kind;
                      model = S.Protocol.Named model;
                      max_states = Some max_states;
                      deadline_ms = None;
                      allow_stale = false;
                    };
              }
            in
            let t0 = Mdp_obs.Clock.now_ns () in
            let cold = S.Engine.handle engine req in
            let t_cold = Mdp_obs.Clock.elapsed_s t0 in
            let warm = S.Engine.handle engine req in
            let t_warm =
              time_median ~runs:5 (fun () -> S.Engine.handle engine req)
            in
            let identical = J.to_string cold.body = J.to_string warm.body in
            let speedup = t_cold /. t_warm in
            let case_ok =
              cold.S.Protocol.status = S.Protocol.Ok_
              && (not cold.S.Protocol.cached)
              && warm.S.Protocol.cached && identical && speedup >= 100.0
            in
            if not case_ok then begin
              Printf.printf
                "  %s/%s: warm-cache contract FAILED (status %s, cached %b, \
                 identical %b, speedup %.0fx)\n"
                model kname
                (S.Protocol.status_string cold.S.Protocol.status)
                warm.S.Protocol.cached identical speedup;
              ok := false
            end;
            Mdp_prelude.Texttable.add_row table
              [
                model;
                kname;
                Printf.sprintf "%.3f" t_cold;
                Printf.sprintf "%.1f" (1e6 *. t_warm);
                Printf.sprintf "%.0fx" speedup;
                string_of_bool identical;
              ];
            J.Obj
              [
                ("model", J.Str model);
                ("kind", J.Str kname);
                ("max_states", J.int max_states);
                ("cold_seconds", J.Num t_cold);
                ("warm_seconds", J.Num t_warm);
                ("speedup", J.Num speedup);
                ("warm_cached", J.Bool warm.S.Protocol.cached);
                ("bodies_identical", J.Bool identical);
                ("ok", J.Bool case_ok);
              ])
          [ ("lts", S.Protocol.Lts_stats); ("risk", risk_kind) ])
      (pr6_cases ~smoke)
  in
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;
  let json =
    J.Obj
      [
        ("bench", J.Str "pr6-serve-cache");
        ("jobs", J.int jobs);
        ("smoke", J.Bool smoke);
        ("phase_spans", span_totals_json ~since:section_t0 ());
        ("cases", J.List json_cases);
      ]
  in
  let oc = open_out "BENCH_PR6.json" in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR6.json\n";
  !ok

(* ------------------------------------------------------------------ *)
(* PR 7: the packed LTS engine against the PR 2 boxed engine — retained
   bytes/state (Gc live delta around generation, both engines, plus the
   packed engine's own byte-exact mem_stats breakdown) and sequential
   throughput — with the numbering-determinism gate extended to the
   sharded dedup across job counts. Emits machine-readable
   BENCH_PR7.json and fails if packed retains more than 1/8 the
   bytes/state of boxed where both run, if sequential packed throughput
   drops below 0.9x boxed on the gated case, or if any job count
   produces different state numbering. *)

type pr7_case = {
  c7_name : string;
  c7_dims : int * int * int;  (* actors, fields, flows/service *)
  c7_services : int;
  c7_max_states : int;
  c7_gate_throughput : bool;  (* the 0.9x sequential-throughput gate *)
  c7_det_jobs : int list;  (* job counts for the determinism matrix *)
  c7_runs : int;  (* timing samples (median) *)
  c7_boxed : bool;  (* run the boxed engine for memory + timing *)
}

let pr7_cases ~smoke =
  if smoke then
    [
      (* The CI bench-smoke case: ~775k states under the workflow's
         ulimit memory cap. Packed retains ~40 MB here; the boxed
         comparison run is what needs most of the allowance. *)
      {
        c7_name = "synthetic:12-14-7";
        c7_dims = (12, 14, 7);
        c7_services = 2;
        c7_max_states = 1_000_000;
        c7_gate_throughput = true;
        c7_det_jobs = [ 1; 2; 4; 8 ];
        c7_runs = 1;
        c7_boxed = true;
      };
    ]
  else
    [
      (* PR 2's headline case gates throughput: the packed engine must
         keep >= 0.9x the boxed engine's sequential rate here. *)
      {
        c7_name = "synthetic:11-14-8";
        c7_dims = (11, 14, 8);
        c7_services = 2;
        c7_max_states = 400_000;
        c7_gate_throughput = true;
        c7_det_jobs = [ 1; 2; 4; 8 ];
        c7_runs = 3;
        c7_boxed = true;
      };
      (* The headroom case the packed engine exists for: millions of
         states in RAM. Timed once per engine — the gap being measured
         is memory, and a boxed run here is minutes. *)
      {
        c7_name = "synthetic:8-14-8x3";
        c7_dims = (8, 14, 8);
        c7_services = 3;
        c7_max_states = 25_000_000;
        c7_gate_throughput = false;
        c7_det_jobs = [ 4 ];
        c7_runs = 1;
        c7_boxed = true;
      };
    ]

let perf_pr7 ~jobs ~smoke () =
  section
    (Printf.sprintf "[pr7] packed LTS engine vs boxed (jobs=%d)" jobs);
  let section_t0 = Mdp_obs.Clock.now_ns () in
  let module J = Mdp_prelude.Json in
  let module MS = Mdp_lts.Lts in
  let ok = ref true in
  let live_bytes () =
    Gc.compact ();
    (Gc.stat ()).Gc.live_words * 8
  in
  let same_lts a b =
    Core.Plts.num_states a = Core.Plts.num_states b
    && Core.Plts.num_transitions a = Core.Plts.num_transitions b
    &&
    let n = Core.Plts.num_states a in
    let rec go i =
      i >= n
      || Core.Config.equal (Core.Plts.state_data a i) (Core.Plts.state_data b i)
         && go (i + 1)
    in
    go 0
  in
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "case"; "states"; "trans"; "boxed B/st"; "packed B/st"; "ratio";
          "boxed st/s"; "packed st/s"; "det" ]
  in
  let json_cases =
    List.map
      (fun c ->
        let na, nf, fps = c.c7_dims in
        let spec =
          {
            Synthetic.seed = 42;
            nactors = na;
            nfields = nf;
            nstores = 2;
            nservices = c.c7_services;
            flows_per_service = fps;
          }
        in
        let diagram, policy = Synthetic.model spec in
        let u = Core.Universe.make diagram policy in
        let popts =
          { Core.Generate.default_options with max_states = c.c7_max_states }
        in
        let bopts = { popts with packed = false } in
        (* Retained memory: one held run per engine, measured as the
           Gc live delta across generation (after compaction). *)
        let before = live_bytes () in
        let t0 = Mdp_obs.Clock.now_ns () in
        let plts = Core.Generate.run ~options:popts u in
        let t_packed_first = Mdp_obs.Clock.elapsed_s t0 in
        let packed_live = live_bytes () - before in
        let states = Core.Plts.num_states plts in
        let ntrans = Core.Plts.num_transitions plts in
        let pms = Option.get (Core.Plts.mem_stats plts) in
        let fstates = float_of_int states in
        (* Numbering determinism: every job count must reproduce the
           sequential run byte-for-byte (state order and count). *)
        let t_par = ref None in
        let det =
          List.for_all
            (fun j ->
              let t0 = Mdp_obs.Clock.now_ns () in
              let l = Core.Generate.run ~options:popts ~jobs:j u in
              if j = jobs then t_par := Some (Mdp_obs.Clock.elapsed_s t0);
              let same = same_lts plts l in
              if not same then
                Printf.printf "  %s: NUMBERING DIVERGES at jobs=%d\n" c.c7_name
                  j;
              same)
            c.c7_det_jobs
        in
        if not det then ok := false;
        (* Boxed comparison: retained bytes and sequential time. *)
        let boxed =
          if not c.c7_boxed then None
          else begin
            let before = live_bytes () in
            let t0 = Mdp_obs.Clock.now_ns () in
            let blts = Core.Generate.run ~options:bopts u in
            let t_first = Mdp_obs.Clock.elapsed_s t0 in
            let boxed_live = live_bytes () - before in
            let agree = same_lts plts blts in
            if not agree then begin
              Printf.printf "  %s: ENGINES DISAGREE (packed %d/%d, boxed %d/%d)\n"
                c.c7_name states ntrans
                (Core.Plts.num_states blts)
                (Core.Plts.num_transitions blts);
              ok := false
            end;
            let t_boxed =
              if c.c7_runs <= 1 then t_first
              else
                time_median ~runs:c.c7_runs (fun () ->
                    Core.Generate.run ~options:bopts u)
            in
            Some (boxed_live, t_boxed, agree)
          end
        in
        let t_packed =
          if c.c7_runs <= 1 then t_packed_first
          else
            time_median ~runs:c.c7_runs (fun () ->
                Core.Generate.run ~options:popts u)
        in
        let packed_bps = pms.MS.ms_bytes_per_state in
        (* Exported via BENCH_METRICS.prom; the last (largest) case
           wins, matching the headline number. *)
        Mdp_obs.Metrics.set_gauge "lts/packed_bytes_per_state"
          (int_of_float (packed_bps +. 0.5));
        let boxed_bps =
          Option.map (fun (lv, _, _) -> float_of_int lv /. fstates) boxed
        in
        let ratio = Option.map (fun b -> packed_bps /. b) boxed_bps in
        let ratio_ok =
          match ratio with None -> true | Some r -> r <= 0.125
        in
        if not ratio_ok then begin
          Printf.printf "  %s: MEMORY RATIO GATE FAILED (packed/boxed = %.3f)\n"
            c.c7_name
            (Option.get ratio);
          ok := false
        end;
        let rel =
          Option.map (fun (_, tb, _) -> tb /. t_packed) boxed
        in
        let throughput_ok =
          (not c.c7_gate_throughput)
          || (match rel with None -> true | Some r -> r >= 0.9)
        in
        if not throughput_ok then begin
          Printf.printf
            "  %s: THROUGHPUT GATE FAILED (packed %.2fx boxed, need >= 0.9x)\n"
            c.c7_name (Option.get rel);
          ok := false
        end;
        let fmt_opt f = function None -> "-" | Some v -> Printf.sprintf f v in
        Mdp_prelude.Texttable.add_row table
          [
            c.c7_name;
            string_of_int states;
            string_of_int ntrans;
            fmt_opt "%.0f" boxed_bps;
            Printf.sprintf "%.1f" packed_bps;
            fmt_opt "%.3f" ratio;
            fmt_opt "%.0f"
              (Option.map (fun (_, tb, _) -> fstates /. tb) boxed);
            Printf.sprintf "%.0f" (fstates /. t_packed);
            string_of_bool det;
          ];
        let delta_hit_rate =
          float_of_int pms.MS.ms_delta_states
          /. float_of_int (max 1 (pms.MS.ms_full_states + pms.MS.ms_delta_states))
        in
        J.Obj
          ([
             ("name", J.Str c.c7_name);
             ("states", J.int states);
             ("transitions", J.int ntrans);
             ( "packed",
               J.Obj
                 [
                   ("seconds_seq", J.Num t_packed);
                   ("states_per_sec", J.Num (fstates /. t_packed));
                   ( "seconds_par",
                     match !t_par with None -> J.Null | Some t -> J.Num t );
                   ("live_bytes", J.int packed_live);
                   ("bytes_per_state", J.Num packed_bps);
                   ( "mem",
                     J.Obj
                       [
                         ("state_bytes", J.int pms.MS.ms_state_bytes);
                         ("edge_bytes", J.int pms.MS.ms_edge_bytes);
                         ("index_bytes", J.int pms.MS.ms_index_bytes);
                         ("dedup_bytes", J.int pms.MS.ms_dedup_bytes);
                         ("full_states", J.int pms.MS.ms_full_states);
                         ("delta_states", J.int pms.MS.ms_delta_states);
                         ("delta_hit_rate", J.Num delta_hit_rate);
                         ("labels", J.int pms.MS.ms_labels);
                         ("total_bytes", J.int pms.MS.ms_total_bytes);
                       ] );
                 ] );
             ( "determinism",
               J.Obj
                 [
                   ("jobs", J.List (List.map J.int c.c7_det_jobs));
                   ("ok", J.Bool det);
                 ] );
             ("memory_ratio_ok", J.Bool ratio_ok);
             ("throughput_gated", J.Bool c.c7_gate_throughput);
             ("throughput_ok", J.Bool throughput_ok);
           ]
          @ (match boxed with
            | None -> []
            | Some (lv, tb, agree) ->
              [
                ( "boxed",
                  J.Obj
                    [
                      ("seconds_seq", J.Num tb);
                      ("states_per_sec", J.Num (fstates /. tb));
                      ("live_bytes", J.int lv);
                      ("bytes_per_state", J.Num (Option.get boxed_bps));
                    ] );
                ("engines_agree", J.Bool agree);
                ("memory_ratio", J.Num (Option.get ratio));
                ("throughput_rel", J.Num (Option.get rel));
              ])))
      (pr7_cases ~smoke)
  in
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;
  (* Peak memory and the packed layout gauges for the Prometheus
     artifact; the shard-occupancy histogram accumulates one sample per
     shard per packed exploration in this section. *)
  Mdp_obs.Metrics.sample_memory ();
  let snap = Mdp_obs.Metrics.snapshot () in
  let gauge name =
    Option.value ~default:0
      (List.assoc_opt name snap.Mdp_obs.Metrics.gauges)
  in
  let shard_json =
    match List.assoc_opt "lts/shard_occupancy" snap.Mdp_obs.Metrics.histograms with
    | None -> J.Null
    | Some h ->
      J.Obj
        [
          ("samples", J.int h.Mdp_obs.Metrics.h_count);
          ("min", J.int h.Mdp_obs.Metrics.h_min);
          ("max", J.int h.Mdp_obs.Metrics.h_max);
          ( "mean",
            J.Num
              (float_of_int h.Mdp_obs.Metrics.h_sum
              /. float_of_int (max 1 h.Mdp_obs.Metrics.h_count)) );
        ]
  in
  let json =
    J.Obj
      [
        ("bench", J.Str "pr7-packed-lts");
        ("jobs", J.int jobs);
        ("smoke", J.Bool smoke);
        ("rss_bytes", J.int (gauge "mem/rss_bytes"));
        ("shard_occupancy", shard_json);
        ("phase_spans", span_totals_json ~since:section_t0 ());
        ("cases", J.List json_cases);
      ]
  in
  let oc = open_out "BENCH_PR7.json" in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR7.json\n";
  !ok

(* ------------------------------------------------------------------ *)
(* PR 8: the incremental what-if engine. One cold analysis, then the
   §IV-A edit loop against it: a single Delete revocation recomputed
   incrementally (LTS reused, plan repatched), and the batched
   single-ACL sweep over every concrete grant. Emits machine-readable
   BENCH_PR8.json and fails if any checked per-candidate incremental
   result differs from its cold counterpart (rendered bytes on the
   small model, structural report equality on the large one), if the
   sweep is not >= 50x faster than the estimated N cold runs, or if
   the median per-candidate sweep latency reaches 10 ms. *)

let pr8_render (t : Core.Analysis.t) =
  Core.Report.to_string t ^ "\n----\n"
  ^ Format.asprintf "%a" Core.Analysis.pp_summary t

let pr8_cases ~smoke =
  (* (model, max_states, equivalence sample (0 = every candidate),
     gate the >= 50x sweep speedup, compare rendered bytes).

     The speedup gate only binds on the headline 11-14-8 case: on a
     model whose cold run is milliseconds, the sweep's fixed
     per-candidate classification cost cannot be 50x cheaper than the
     cold run, and pretending otherwise would gate on noise.

     The rendered-bytes flag picks the equivalence oracle. On the small
     case every candidate's full render (JSON report + summary) is
     compared byte-for-byte — same oracle as test/test_whatif.ml. On
     11-14-8 the rendered JSON is ~2.6 GB per analysis (248k findings,
     each with a witness path), minutes to build; comparing the
     underlying report/gap/pseudonym values with structural equality
     asserts the same identity without materialising gigabyte
     strings. *)
  if smoke then [ ("synthetic:6-8-5", 200_000, 12, false, true) ]
  else
    [
      ("synthetic:6-8-5", 200_000, 0, false, true);
      ("synthetic:11-14-8", 1_000_000, 5, true, false);
    ]

let perf_pr8 ~jobs ~smoke () =
  section
    (Printf.sprintf "[pr8] incremental what-if engine vs cold reruns (jobs=%d)"
       jobs);
  let section_t0 = Mdp_obs.Clock.now_ns () in
  let module J = Mdp_prelude.Json in
  let module W = Core.Whatif in
  let ok = ref true in
  (* The default likelihood weights sum to at most 0.08, below the
     default 0.1 Medium threshold, so a Delete revocation can never move
     a level bucket and every sweep score would be honestly zero. The
     tuned matrix puts the maintenance-exposure band astride a boundary;
     the cold comparison runs use the same matrix, so the byte-identity
     gate is unaffected. *)
  let matrix = Core.Risk_matrix.make ~likelihood_thresholds:(0.07, 0.5) () in
  let profile =
    Core.User_profile.make
      ~sensitivities:[ (Mdp_dataflow.Field.of_name "Field0", 0.9) ]
      ~agreed_services:[ "Service0" ] ()
  in
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "case"; "cold s"; "incr ms"; "cand"; "cand/s"; "p50 us";
          "speedup"; "identical" ]
  in
  let json_cases =
    List.map
      (fun (model_name, max_states, sample, gate_speedup, compare_rendered) ->
        let spec =
          match Mdp_scenario.Synthetic.spec_of_string model_name with
          | Some (Ok s) -> s
          | _ -> failwith ("bad synthetic spec " ^ model_name)
        in
        let diagram, policy = Mdp_scenario.Synthetic.model spec in
        let options = { Core.Generate.default_options with max_states } in
        let cold_of (inputs : Core.Edit.inputs) =
          match
            Core.Analysis.run_checked ~options ~matrix
              ?profile:inputs.Core.Edit.profile
              ~bindings:inputs.Core.Edit.bindings ~jobs
              inputs.Core.Edit.diagram inputs.Core.Edit.policy
          with
          | Ok t -> t
          | Error f -> failwith (Core.Analysis.failure_message f)
        in
        let t0 = Mdp_obs.Clock.now_ns () in
        let base =
          cold_of
            { Core.Edit.diagram; policy; profile = Some profile; bindings = [] }
        in
        let t_cold = Mdp_obs.Clock.elapsed_s t0 in
        let b =
          match W.prepare base with Ok b -> b | Error e -> failwith e
        in
        let candidates = W.acl_candidates b in
        let n = List.length candidates in
        (* Headline single-edit loop: the store-level Delete revocation
           every synthetic model carries — plan repatch + re-evaluation
           over the reused LTS, no re-exploration. *)
        let delete_edit =
          List.find
            (function
              | Core.Edit.Revoke { perms = [ Mdp_policy.Permission.Delete ]; _ }
                ->
                true
              | _ -> false)
            candidates
        in
        let t_incr =
          time_median ~runs:(if smoke then 3 else 5) (fun () ->
              Core.Analysis.run_incremental ~jobs ~previous:base
                [ delete_edit ])
        in
        let t_sweep =
          time_median ~runs:(if smoke then 2 else 3) (fun () ->
              W.sweep ~jobs b candidates)
        in
        let ranked = W.sweep ~jobs b candidates in
        let census =
          List.fold_left
            (fun acc ({ W.outcome; _ } : W.ranked) ->
              let k = W.classification_to_string outcome.W.classification in
              let cur =
                Option.value (List.assoc_opt k acc) ~default:0
              in
              (k, cur + 1) :: List.remove_assoc k acc)
            [] ranked
        in
        (* Per-candidate latency distribution of the sweep's own path
           (classification + delta where computed, no ~exact). *)
        let latencies =
          List.sort Float.compare
            (List.map
               (fun e -> snd (Mdp_obs.Clock.time (fun () -> W.eval_edit b e)))
               candidates)
        in
        let p50 = List.nth latencies (n / 2) in
        let p95 = List.nth latencies (min (n - 1) (n * 95 / 100)) in
        let speedup = float_of_int n *. t_cold /. t_sweep in
        (* Equivalence gate: the incremental engine's result for a
           candidate must match a cold run on the edited model — every
           candidate on the small model compared on rendered bytes, an
           evenly spaced sample on the large one compared structurally
           (a cold run there costs seconds and its render, gigabytes). *)
        let sampled =
          if sample <= 0 || sample >= n then candidates
          else
            let step = n / sample in
            List.filteri (fun i _ -> i mod step = 0) candidates
            |> List.filteri (fun i _ -> i < sample)
        in
        let worst_of (t : Core.Analysis.t) =
          match t.Core.Analysis.disclosure with
          | Some r -> Core.Disclosure_risk.max_level r
          | None -> Core.Level.None_
        in
        let outcome_by_edit =
          List.map
            (fun ({ W.outcome; _ } : W.ranked) ->
              (Core.Edit.to_string outcome.W.edit, outcome))
            ranked
        in
        let checked = List.length sampled in
        let identical =
          List.fold_left
            (fun acc edit ->
              let incr =
                Core.Analysis.run_incremental ~jobs ~previous:base [ edit ]
              in
              let after_inputs =
                match
                  Core.Edit.apply_all (Core.Analysis.inputs_of base) [ edit ]
                with
                | Ok i -> i
                | Error e -> failwith e
              in
              let cold = cold_of after_inputs in
              let same =
                if compare_rendered then pr8_render incr = pr8_render cold
                else
                  incr.Core.Analysis.disclosure = cold.Core.Analysis.disclosure
                  && incr.Core.Analysis.consistency
                     = cold.Core.Analysis.consistency
                  && incr.Core.Analysis.pseudonym = cold.Core.Analysis.pseudonym
              in
              if not same then begin
                Printf.printf
                  "  %s: incremental report DIFFERS from cold for %s\n"
                  model_name (Core.Edit.to_string edit);
                ok := false
              end;
              (* The sweep's cheap path must agree with the ground truth
                 it stands in for. *)
              (match
                 List.assoc_opt (Core.Edit.to_string edit) outcome_by_edit
               with
              | Some { W.worst_after = Some w; _ }
                when not (Core.Level.equal w (worst_of cold)) ->
                Printf.printf
                  "  %s: sweep worst_after disagrees with cold for %s\n"
                  model_name (Core.Edit.to_string edit);
                ok := false
              | _ -> ());
              if same then acc + 1 else acc)
            0 sampled
        in
        let all_identical = identical = checked in
        let case_ok =
          all_identical && ((not gate_speedup) || speedup >= 50.0) && p50 < 0.010
        in
        if not case_ok then begin
          Printf.printf
            "  %s: what-if contract FAILED (identical %d/%d, speedup %.0fx, \
             p50 %.1f us)\n"
            model_name identical checked speedup (1e6 *. p50);
          ok := false
        end;
        Mdp_prelude.Texttable.add_row table
          [
            model_name;
            Printf.sprintf "%.3f" t_cold;
            Printf.sprintf "%.2f" (1e3 *. t_incr);
            string_of_int n;
            Printf.sprintf "%.0f" (float_of_int n /. t_sweep);
            Printf.sprintf "%.1f" (1e6 *. p50);
            Printf.sprintf "%.0fx" speedup;
            Printf.sprintf "%d/%d" identical checked;
          ];
        J.Obj
          [
            ("model", J.Str model_name);
            ("max_states", J.int max_states);
            ("cold_seconds", J.Num t_cold);
            ("incremental_delete_seconds", J.Num t_incr);
            ("candidates", J.int n);
            ( "classification_census",
              J.Obj (List.map (fun (k, v) -> (k, J.int v)) census) );
            ("sweep_seconds", J.Num t_sweep);
            ("candidates_per_second", J.Num (float_of_int n /. t_sweep));
            ("p50_candidate_seconds", J.Num p50);
            ("p95_candidate_seconds", J.Num p95);
            ( "est_cold_sweep_seconds",
              J.Num (float_of_int n *. t_cold) );
            ("speedup_vs_cold", J.Num speedup);
            ("speedup_gated", J.Bool gate_speedup);
            ( "equivalence",
              J.Obj
                [
                  ("checked", J.int checked);
                  ("identical", J.int identical);
                  ("exhaustive", J.Bool (checked = n));
                  ( "compared",
                    J.Str (if compare_rendered then "rendered" else "structural")
                  );
                ] );
            ("ok", J.Bool case_ok);
          ])
      (pr8_cases ~smoke)
  in
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;
  let json =
    J.Obj
      [
        ("bench", J.Str "pr8-incremental-whatif");
        ("jobs", J.int jobs);
        ("smoke", J.Bool smoke);
        ("phase_spans", span_totals_json ~since:section_t0 ());
        ("cases", J.List json_cases);
      ]
  in
  let oc = open_out "BENCH_PR8.json" in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR8.json\n";
  !ok

(* ------------------------------------------------------------------ *)
(* PR 9: external-memory exploration. An unspilled packed run fixes the
   resident peak; the same model is then re-explored under a
   [--mem-budget] well below that peak, so sealed arena chunks and
   sealed dedup generations must go to disk for the run to complete.
   Gates: the spilled run finishes with resident bytes within the
   budget, actually used both disk tiers, reproduces the unspilled
   numbering byte-for-byte at every job count, and costs at most 2.5x
   the unspilled wall time. The CI workflow additionally runs this
   section under a [ulimit -v] below the boxed engine's footprint, so
   completion itself proves the bound is disk, not RAM. Emits
   BENCH_PR9.json. *)

type pr9_case = {
  c9_name : string;
  c9_dims : int * int * int;  (* actors, fields, flows/service *)
  c9_services : int;
  c9_max_states : int;
  c9_budget_pct : int;  (* --mem-budget as a % of the unspilled peak *)
  c9_det_jobs : int list;  (* job counts for the determinism matrix *)
  c9_gate : bool;  (* apply the residency + overhead gates *)
  c9_cap_kb : int;
      (* [ulimit -v] for the disk-bounded A/B in child processes: the
         budgeted packed run must complete under this address-space
         cap, the boxed engine must not. 0 skips the A/B. *)
}

let pr9_cases ~smoke =
  if smoke then
    [
      (* Same model as the pr7 smoke case: ~40 MB packed peak, of which
         ~29 MB (edges + successor index) is unevictable. A 75% budget
         sits just above that floor, so completing within it requires
         evicting essentially every sealed chunk and dedup table. *)
      {
        c9_name = "synthetic:12-14-7";
        c9_dims = (12, 14, 7);
        c9_services = 2;
        c9_max_states = 1_000_000;
        c9_budget_pct = 75;
        c9_det_jobs = [ 1; 4 ];
        c9_gate = true;
        (* 560 MiB: probed ~65 MiB above what the budgeted jobs=1 run
           needs end to end and ~100 MiB below where the boxed engine
           first survives. *)
        c9_cap_kb = 573_440;
      };
    ]
  else
    [
      {
        c9_name = "synthetic:11-14-8";
        c9_dims = (11, 14, 8);
        c9_services = 2;
        c9_max_states = 400_000;
        c9_budget_pct = 75;
        c9_det_jobs = [ 1; 4 ];
        c9_gate = true;
        c9_cap_kb = 393_216;  (* 384 MiB, between ~348 (spilled) and ~420 (boxed) *)
      };
      (* The headroom case: millions of states with most of the arena
         and dedup structure on disk. Ungated and uncapped — the point
         is that it completes at all under a fraction of its in-RAM
         peak, and a boxed counterpart would take minutes to die. *)
      {
        c9_name = "synthetic:8-14-8x3";
        c9_dims = (8, 14, 8);
        c9_services = 3;
        c9_max_states = 25_000_000;
        c9_budget_pct = 75;
        c9_det_jobs = [ 4 ];
        c9_gate = false;
        c9_cap_kb = 0;
      };
    ]

(* A deterministic fingerprint of the whole LTS — state payloads in id
   order plus every transition — so child processes can prove their
   numbering against the parent's with one integer. *)
let pr9_digest lts =
  let h = ref 0 in
  for i = 0 to Core.Plts.num_states lts - 1 do
    h := (!h * 1000003) lxor Core.Config.hash (Core.Plts.state_data lts i);
    List.iter
      (fun (label, dst) -> h := (!h * 31) lxor (Hashtbl.hash label lxor dst))
      (Core.Plts.successors lts i)
  done;
  !h land max_int

let pr9_spec (na, nf, fps) services =
  {
    Synthetic.seed = 42;
    nactors = na;
    nfields = nf;
    nstores = 2;
    nservices = services;
    flows_per_service = fps;
  }

(* One exploration in a child process (dispatched on [--pr9-child]
   before anything else in main): explores the given synthetic model
   with the requested engine and prints one machine-readable line.
   The parent launches it under `ulimit -v`, so completing at all is
   the property being tested. *)
let pr9_child args =
  match args with
  | [ mode; budget; max_states; na; nf; fps; services; jobs ] ->
    let i = int_of_string in
    let spec = pr9_spec (i na, i nf, i fps) (i services) in
    let diagram, policy = Synthetic.model spec in
    let u = Core.Universe.make diagram policy in
    let options =
      {
        Core.Generate.default_options with
        max_states = i max_states;
        packed = mode <> "boxed";
        mem_budget = (if mode = "spilled" then Some (i budget) else None);
      }
    in
    let t0 = Mdp_obs.Clock.now_ns () in
    let lts = Core.Generate.run ~options ~jobs:(i jobs) u in
    let secs = Mdp_obs.Clock.elapsed_s t0 in
    let digest = pr9_digest lts in
    let resident, spill, chunks, tables, faults =
      match (Core.Plts.mem_stats lts, Core.Plts.spill_stats lts) with
      | Some ms, Some sp ->
        ( ms.Mdp_lts.Lts.ms_resident_bytes,
          sp.Mdp_lts.Lts.sp_bytes,
          sp.Mdp_lts.Lts.sp_chunks,
          sp.Mdp_lts.Lts.sp_tables,
          sp.Mdp_lts.Lts.sp_faults )
      | Some ms, None -> (ms.Mdp_lts.Lts.ms_resident_bytes, 0, 0, 0, 0)
      | None, _ -> (0, 0, 0, 0, 0)
    in
    Core.Plts.drop_spill lts;
    Printf.printf "PR9CHILD states=%d trans=%d digest=%d secs=%f resident=%d spill=%d chunks=%d tables=%d faults=%d\n"
      (Core.Plts.num_states lts)
      (Core.Plts.num_transitions lts)
      digest secs resident spill chunks tables faults;
    exit 0
  | _ ->
    prerr_endline "bad --pr9-child arguments";
    exit 2

(* Launch one child exploration under an address-space cap. Returns the
   exit status and the parsed stats line, if the child produced one.
   [quiet] drops the child's stderr — used for the boxed run, whose
   fatal out-of-memory cry is this gate's success condition. *)
let pr9_run_child ?(quiet = false) ~cap_kb ~mode ~budget c ~jobs () =
  let na, nf, fps = c.c9_dims in
  let cmd =
    Printf.sprintf
      "ulimit -v %d 2>/dev/null; exec %s --pr9-child %s %d %d %d %d %d %d %d%s"
      cap_kb
      (Filename.quote Sys.executable_name)
      mode budget c.c9_max_states na nf fps c.c9_services jobs
      (if quiet then " 2>/dev/null" else "")
  in
  let ic = Unix.open_process_in cmd in
  let line = ref None in
  (try
     while true do
       let l = input_line ic in
       if String.length l >= 9 && String.sub l 0 9 = "PR9CHILD " then
         line := Some l
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, !line)

let pr9_field line key =
  (* "PR9CHILD k=v k=v ..." *)
  let prefix = key ^ "=" in
  let toks = String.split_on_char ' ' line in
  List.find_map
    (fun t ->
      if String.length t > String.length prefix
         && String.sub t 0 (String.length prefix) = prefix
      then
        int_of_string_opt
          (String.sub t (String.length prefix)
             (String.length t - String.length prefix))
      else None)
    toks

let perf_pr9 ~jobs ~smoke () =
  section
    (Printf.sprintf "[pr9] external-memory spill vs in-RAM packed (jobs=%d)"
       jobs);
  let section_t0 = Mdp_obs.Clock.now_ns () in
  let module J = Mdp_prelude.Json in
  let module MS = Mdp_lts.Lts in
  let ok = ref true in
  let same_lts a b =
    Core.Plts.num_states a = Core.Plts.num_states b
    && Core.Plts.num_transitions a = Core.Plts.num_transitions b
    &&
    let n = Core.Plts.num_states a in
    let rec go i =
      i >= n
      || Core.Config.equal (Core.Plts.state_data a i) (Core.Plts.state_data b i)
         && go (i + 1)
    in
    go 0
  in
  let mb bytes = float_of_int bytes /. 1048576.0 in
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "case"; "states"; "peak MB"; "budget MB"; "resident MB";
          "spill MB"; "chunks"; "tables"; "faults"; "overhead"; "det" ]
  in
  let json_cases =
    List.map
      (fun c ->
        let na, nf, fps = c.c9_dims in
        let spec =
          {
            Synthetic.seed = 42;
            nactors = na;
            nfields = nf;
            nstores = 2;
            nservices = c.c9_services;
            flows_per_service = fps;
          }
        in
        let diagram, policy = Synthetic.model spec in
        let u = Core.Universe.make diagram policy in
        let popts =
          { Core.Generate.default_options with max_states = c.c9_max_states }
        in
        (* Unspilled reference: fixes the numbering, the timing base
           and the resident peak the budget is derived from. *)
        let t0 = Mdp_obs.Clock.now_ns () in
        let base = Core.Generate.run ~options:popts u in
        let t_base = Mdp_obs.Clock.elapsed_s t0 in
        let states = Core.Plts.num_states base in
        let ntrans = Core.Plts.num_transitions base in
        let peak = (Option.get (Core.Plts.mem_stats base)).MS.ms_total_bytes in
        let base_digest = pr9_digest base in
        if Core.Plts.spill_stats base <> None then begin
          Printf.printf "  %s: BASELINE SPILLED (no budget was set)\n"
            c.c9_name;
          ok := false
        end;
        let budget = peak * c.c9_budget_pct / 100 in
        let sopts = { popts with mem_budget = Some budget } in
        (* Determinism matrix: every job count under the budget must
           reproduce the unspilled numbering byte-for-byte. The jobs=1
           run is kept for stats and timing. *)
        let t_spill = ref 0.0 in
        let kept = ref None in
        let det =
          List.for_all
            (fun j ->
              let t0 = Mdp_obs.Clock.now_ns () in
              let l = Core.Generate.run ~options:sopts ~jobs:j u in
              let t = Mdp_obs.Clock.elapsed_s t0 in
              let same = same_lts base l in
              if not same then
                Printf.printf
                  "  %s: NUMBERING DIVERGES under budget at jobs=%d\n"
                  c.c9_name j;
              if j = 1 then begin
                t_spill := t;
                kept := Some l
              end
              else Core.Plts.drop_spill l;
              same)
            c.c9_det_jobs
        in
        if not det then ok := false;
        let slts = Option.get !kept in
        let sms = Option.get (Core.Plts.mem_stats slts) in
        (* Both disk tiers must actually have carried weight: sealed
           arena chunks and sealed dedup generations on disk, and reads
           served back off them. *)
        let spill_ok, sp =
          match Core.Plts.spill_stats slts with
          | None ->
            Printf.printf "  %s: SPILL GATE FAILED (budget %d never spilled)\n"
              c.c9_name budget;
            (false, None)
          | Some sp ->
            let tiers =
              sp.MS.sp_bytes > 0 && sp.MS.sp_chunks > 0 && sp.MS.sp_tables > 0
              && sp.MS.sp_faults > 0
            in
            if not tiers then
              Printf.printf
                "  %s: SPILL GATE FAILED (chunks=%d tables=%d faults=%d)\n"
                c.c9_name sp.MS.sp_chunks sp.MS.sp_tables sp.MS.sp_faults;
            (tiers, Some sp)
        in
        if not spill_ok then ok := false;
        (* Residency: the run must end within its budget. Only the
           edges and the successor index are pinned by design, and the
           budgets here sit above that floor. *)
        let resident_ok =
          (not c.c9_gate) || sms.MS.ms_resident_bytes <= budget
        in
        if not resident_ok then begin
          Printf.printf
            "  %s: RESIDENCY GATE FAILED (resident %d > budget %d)\n"
            c.c9_name sms.MS.ms_resident_bytes budget;
          ok := false
        end;
        let overhead = !t_spill /. t_base in
        let overhead_ok = (not c.c9_gate) || overhead <= 2.5 in
        if not overhead_ok then begin
          Printf.printf
            "  %s: OVERHEAD GATE FAILED (spilled %.2fx unspilled, max 2.5x)\n"
            c.c9_name overhead;
          ok := false
        end;
        (* Decode back through the disk tier before dropping it: spot
           states across the id range must still round-trip. *)
        let reread_ok =
          let step = max 1 (states / 64) in
          let rec go i =
            i >= states
            || Core.Config.equal
                 (Core.Plts.state_data base i)
                 (Core.Plts.state_data slts i)
               && go (i + step)
          in
          go 0
        in
        if not reread_ok then begin
          Printf.printf "  %s: REREAD GATE FAILED (decode diverges)\n"
            c.c9_name;
          ok := false
        end;
        (* Disk-bounded A/B in child processes under the same
           `ulimit -v`: the budgeted packed engine must complete (its
           evicted working set lives on disk), the boxed engine must
           die (the cap sits below its in-RAM footprint). Children are
           the same binary re-invoked in a one-exploration mode, so the
           cap covers exactly one engine run each. *)
        let cap_ok, cap_json =
          if (not c.c9_gate) || c.c9_cap_kb = 0 then (true, [])
          else begin
            let tmp = Filename.get_temp_dir_name () in
            let spill_dirs () =
              List.filter
                (fun n ->
                  String.length n >= 12 && String.sub n 0 12 = "mdpriv-spill")
                (Array.to_list (Sys.readdir tmp))
            in
            let seen_before = spill_dirs () in
            let st_sp, line_sp =
              pr9_run_child ~cap_kb:c.c9_cap_kb ~mode:"spilled" ~budget c
                ~jobs:1 ()
            in
            let sp_done = st_sp = Unix.WEXITED 0 in
            let sp_match =
              Option.bind line_sp (fun l -> pr9_field l "digest")
              = Some base_digest
            in
            if not sp_done then
              Printf.printf
                "  %s: CAP GATE FAILED (budgeted run died under %d kB cap)\n"
                c.c9_name c.c9_cap_kb
            else if not sp_match then
              Printf.printf
                "  %s: CAP GATE FAILED (capped run's digest diverges)\n"
                c.c9_name;
            let st_bx, _ =
              pr9_run_child ~quiet:true ~cap_kb:c.c9_cap_kb ~mode:"boxed"
                ~budget c ~jobs:1 ()
            in
            let bx_died = st_bx <> Unix.WEXITED 0 in
            if not bx_died then
              Printf.printf
                "  %s: CAP GATE FAILED (boxed engine completed under %d kB \
                 cap — cap is not below its footprint)\n"
                c.c9_name c.c9_cap_kb;
            (* Children tear their spill directories down via the exit
               sweep even when a gate fails; anything left behind is a
               teardown bug. *)
            let leftovers =
              List.filter
                (fun d -> not (List.mem d seen_before))
                (spill_dirs ())
            in
            if leftovers <> [] then
              Printf.printf "  %s: CAP GATE FAILED (leftover spill dirs: %s)\n"
                c.c9_name
                (String.concat ", " leftovers);
            Printf.printf
              "  cap %d kB: budgeted packed %s, boxed %s\n"
              c.c9_cap_kb
              (if sp_done && sp_match then "completed (digest ok)"
               else "FAILED")
              (if bx_died then "died (as required)" else "COMPLETED");
            ( sp_done && sp_match && bx_died && leftovers = [],
              [
                ("cap_kb", J.int c.c9_cap_kb);
                ("cap_spilled_completed", J.Bool sp_done);
                ("cap_digest_ok", J.Bool sp_match);
                ("cap_boxed_died", J.Bool bx_died);
                ("cap_teardown_ok", J.Bool (leftovers = []));
              ] )
          end
        in
        if not cap_ok then ok := false;
        let floor = sms.MS.ms_edge_bytes + sms.MS.ms_index_bytes in
        let chunks, tables, faults, spill_bytes =
          match sp with
          | None -> (0, 0, 0, 0)
          | Some sp ->
            (sp.MS.sp_chunks, sp.MS.sp_tables, sp.MS.sp_faults, sp.MS.sp_bytes)
        in
        Core.Plts.drop_spill slts;
        Mdp_prelude.Texttable.add_row table
          [
            c.c9_name;
            string_of_int states;
            Printf.sprintf "%.1f" (mb peak);
            Printf.sprintf "%.1f" (mb budget);
            Printf.sprintf "%.1f" (mb sms.MS.ms_resident_bytes);
            Printf.sprintf "%.1f" (mb spill_bytes);
            string_of_int chunks;
            string_of_int tables;
            string_of_int faults;
            Printf.sprintf "%.2fx" overhead;
            string_of_bool det;
          ];
        J.Obj
          ([
            ("name", J.Str c.c9_name);
            ("states", J.int states);
            ("transitions", J.int ntrans);
            ("peak_bytes", J.int peak);
            ("budget_pct", J.int c.c9_budget_pct);
            ("budget_bytes", J.int budget);
            ("unevictable_floor_bytes", J.int floor);
            ("seconds_unspilled", J.Num t_base);
            ("seconds_spilled", J.Num !t_spill);
            ("overhead", J.Num overhead);
            ( "spill",
              J.Obj
                [
                  ("bytes", J.int spill_bytes);
                  ("chunks", J.int chunks);
                  ("tables", J.int tables);
                  ("faults", J.int faults);
                  ("resident_bytes", J.int sms.MS.ms_resident_bytes);
                  ("total_bytes", J.int sms.MS.ms_total_bytes);
                ] );
            ( "determinism",
              J.Obj
                [
                  ("jobs", J.List (List.map J.int c.c9_det_jobs));
                  ("ok", J.Bool det);
                ] );
            ("gated", J.Bool c.c9_gate);
            ("spill_ok", J.Bool spill_ok);
            ("resident_ok", J.Bool resident_ok);
            ("overhead_ok", J.Bool overhead_ok);
            ("reread_ok", J.Bool reread_ok);
          ]
          @ cap_json))
      (pr9_cases ~smoke)
  in
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;
  (* Every kept LTS was dropped above; sweep anyway so a gate failure
     in this section can never leave run directories behind for the
     exit path to clean up late. *)
  Mdp_lts.Spill.remove_all ();
  Mdp_obs.Metrics.sample_memory ();
  let snap = Mdp_obs.Metrics.snapshot () in
  let gauge name =
    Option.value ~default:0 (List.assoc_opt name snap.Mdp_obs.Metrics.gauges)
  in
  let json =
    J.Obj
      [
        ("bench", J.Str "pr9-external-memory");
        ("jobs", J.int jobs);
        ("smoke", J.Bool smoke);
        ("rss_bytes", J.int (gauge "mem/rss_bytes"));
        ("phase_spans", span_totals_json ~since:section_t0 ());
        ("cases", J.List json_cases);
      ]
  in
  let oc = open_out "BENCH_PR9.json" in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR9.json\n";
  !ok

(* ------------------------------------------------------------------ *)
(* PR 10: cone-scoped what-if invalidation. Before it, every Read/Write
   ACL revocation in the sweep invalidated the LTS and was left
   uncomputed ([Full_rerun]); now the candidates whose effect is
   confined to recorded store cones are answered by an incremental
   reachability walk, and an [Analysis.run_incremental] over such an
   edit re-explores only the cone fragment. Gates: at least half of the
   invalidating ACL-sweep candidates are answered via the cone path;
   their per-candidate p50 is >= 10x faster than a cold run (headline
   case only — on millisecond models the walk's fixed costs cannot be
   10x below the cold run and the gate would bind on noise); and every
   sampled cone candidate's incremental result is identical to a cold
   run of the edited model at jobs 1 and 4, with and without a
   [--mem-budget]. Emits BENCH_PR10.json. *)

let pr10_cases ~smoke =
  (* (model, max_states, identity sample, gate the 10x p50 speedup) *)
  if smoke then [ ("synthetic:6-8-5", 200_000, 6, false) ]
  else [ ("synthetic:11-14-8", 1_000_000, 4, true) ]

let perf_pr10 ~jobs ~smoke () =
  section
    (Printf.sprintf "[pr10] cone-scoped what-if re-exploration (jobs=%d)" jobs);
  let section_t0 = Mdp_obs.Clock.now_ns () in
  let module J = Mdp_prelude.Json in
  let module W = Core.Whatif in
  let ok = ref true in
  (* Same tuned matrix and profile as the pr8 section, so the cold
     baselines are comparable across the two artifacts. *)
  let matrix = Core.Risk_matrix.make ~likelihood_thresholds:(0.07, 0.5) () in
  let profile =
    Core.User_profile.make
      ~sensitivities:[ (Mdp_dataflow.Field.of_name "Field0", 0.9) ]
      ~agreed_services:[ "Service0" ] ()
  in
  let table =
    Mdp_prelude.Texttable.create
      ~header:
        [ "case"; "cold s"; "cand"; "cone"; "full"; "cone p50 ms";
          "speedup p50"; "identical" ]
  in
  let json_cases =
    List.map
      (fun (model_name, max_states, sample, gate_speedup) ->
        let spec =
          match Mdp_scenario.Synthetic.spec_of_string model_name with
          | Some (Ok s) -> s
          | _ -> failwith ("bad synthetic spec " ^ model_name)
        in
        let diagram, policy = Mdp_scenario.Synthetic.model spec in
        let options = { Core.Generate.default_options with max_states } in
        let cold_of ?(options = options) ~jobs (inputs : Core.Edit.inputs) =
          match
            Core.Analysis.run_checked ~options ~matrix
              ?profile:inputs.Core.Edit.profile
              ~bindings:inputs.Core.Edit.bindings ~jobs
              inputs.Core.Edit.diagram inputs.Core.Edit.policy
          with
          | Ok t -> t
          | Error f -> failwith (Core.Analysis.failure_message f)
        in
        let base_inputs =
          { Core.Edit.diagram; policy; profile = Some profile; bindings = [] }
        in
        let t0 = Mdp_obs.Clock.now_ns () in
        let base = cold_of ~jobs base_inputs in
        let t_cold = Mdp_obs.Clock.elapsed_s t0 in
        let b =
          match W.prepare base with Ok b -> b | Error e -> failwith e
        in
        let candidates = W.acl_candidates b in
        let n = List.length candidates in
        (* One timed eval per candidate: census + the cone latency
           distribution in a single pass (eval_edit without [~exact] is
           read-only on the base, so this is the sweep's own path). *)
        let evaluated =
          List.map
            (fun e ->
              let o, dt = Mdp_obs.Clock.time (fun () -> W.eval_edit b e) in
              match o with
              | Ok o -> (e, o, dt)
              | Error err -> failwith err)
            candidates
        in
        let census =
          List.fold_left
            (fun acc (_, (o : W.outcome), _) ->
              let k = W.classification_to_string o.W.classification in
              let cur = Option.value (List.assoc_opt k acc) ~default:0 in
              (k, cur + 1) :: List.remove_assoc k acc)
            [] evaluated
        in
        let of_class c =
          List.filter (fun (_, (o : W.outcome), _) -> o.W.classification = c)
            evaluated
        in
        let cone = of_class W.Cone and full = of_class W.Full_rerun in
        let n_cone = List.length cone and n_full = List.length full in
        (* Gate (a): the former full-rerun population (everything that
           invalidates the LTS) is now mostly answered via the cone. *)
        let fraction_ok = 2 * n_cone >= n_cone + n_full in
        if not fraction_ok then begin
          Printf.printf
            "  %s: only %d/%d invalidating candidates on the cone path\n"
            model_name n_cone (n_cone + n_full);
          ok := false
        end;
        (* Gate (b): cone candidates answer >= 10x faster than cold at
           the median. *)
        let cone_lat =
          List.sort Float.compare (List.map (fun (_, _, dt) -> dt) cone)
        in
        let p50 =
          if cone_lat = [] then infinity
          else List.nth cone_lat (List.length cone_lat / 2)
        in
        let p95 =
          if cone_lat = [] then infinity
          else
            List.nth cone_lat
              (min (List.length cone_lat - 1) (List.length cone_lat * 95 / 100))
        in
        let speedup_p50 = t_cold /. p50 in
        let speedup_ok = (not gate_speedup) || speedup_p50 >= 10.0 in
        if not speedup_ok then begin
          Printf.printf "  %s: cone p50 %.3fs is only %.1fx the %.3fs cold run\n"
            model_name p50 speedup_p50 t_cold;
          ok := false
        end;
        (* Identity: an evenly spaced sample of cone candidates, each
           run incrementally and cold at jobs 1 and 4. On the headline
           model the comparison is structural (its render is gigabytes);
           the smoke case compares rendered bytes. The sweep outcome
           must also agree with the cold ground truth: worst level, and
           the diff as signature-sorted sets. *)
        let sampled =
          if sample <= 0 || sample >= n_cone then cone
          else
            let step = n_cone / sample in
            List.filteri (fun i _ -> i mod step = 0) cone
            |> List.filteri (fun i _ -> i < sample)
        in
        let before_report = Option.get base.Core.Analysis.disclosure in
        let normalize (d : Core.Risk_diff.t) =
          {
            d with
            Core.Risk_diff.removed = List.sort compare d.removed;
            added = List.sort compare d.added;
            changed = List.sort compare d.changed;
          }
        in
        let check_one ?options ~jobs:run_jobs label edit (o : W.outcome) =
          let incr =
            Core.Analysis.run_incremental ~jobs:run_jobs ~previous:base [ edit ]
          in
          let cold =
            cold_of ?options ~jobs:run_jobs (Core.Analysis.inputs_of incr)
          in
          let same =
            if smoke then pr8_render incr = pr8_render cold
            else
              incr.Core.Analysis.disclosure = cold.Core.Analysis.disclosure
              && incr.Core.Analysis.consistency = cold.Core.Analysis.consistency
              && incr.Core.Analysis.pseudonym = cold.Core.Analysis.pseudonym
          in
          if not same then begin
            Printf.printf "  %s: %s incremental DIFFERS from cold for %s\n"
              model_name label (Core.Edit.to_string edit);
            ok := false
          end;
          let cold_report = Option.get cold.Core.Analysis.disclosure in
          let truth =
            Core.Risk_diff.diff ~before:before_report ~after:cold_report
          in
          let outcome_same =
            Option.map normalize o.W.diff = Some (normalize truth)
            && o.W.worst_after
               = Some (Core.Disclosure_risk.max_level cold_report)
          in
          if not outcome_same then begin
            Printf.printf "  %s: %s cone outcome DIFFERS from truth for %s\n"
              model_name label (Core.Edit.to_string edit);
            ok := false
          end;
          same && outcome_same
        in
        let checked = ref 0 and identical = ref 0 in
        List.iter
          (fun (edit, o, _) ->
            List.iter
              (fun j ->
                incr checked;
                if check_one ~jobs:j (Printf.sprintf "jobs=%d" j) edit o then
                  incr identical)
              [ 1; 4 ])
          sampled;
        (* The same identity under a spill budget: rebuild the base at
           75% of its packed resident peak and re-check the first
           sampled candidate at jobs 1 and 4. Both sides of the
           comparison run under the budget, so the cone rebuild must
           reproduce the spilling run's numbering too. *)
        (match
           (Core.Plts.mem_stats base.Core.Analysis.lts, sampled)
         with
        | Some ms, (edit, o, _) :: _ ->
          let budgeted =
            { options with
              Core.Generate.mem_budget =
                Some (3 * ms.Mdp_lts.Lts.ms_total_bytes / 4) }
          in
          let base_b = cold_of ~options:budgeted ~jobs base_inputs in
          let b_b =
            match W.prepare base_b with Ok b -> b | Error e -> failwith e
          in
          let o_b =
            match W.eval_edit b_b edit with
            | Ok o -> o
            | Error e -> failwith e
          in
          ignore o;
          List.iter
            (fun j ->
              incr checked;
              let incr_t =
                Core.Analysis.run_incremental ~jobs:j ~previous:base_b [ edit ]
              in
              let cold_t =
                cold_of ~options:budgeted ~jobs:j
                  (Core.Analysis.inputs_of incr_t)
              in
              let same =
                if smoke then pr8_render incr_t = pr8_render cold_t
                else
                  incr_t.Core.Analysis.disclosure
                  = cold_t.Core.Analysis.disclosure
                  && incr_t.Core.Analysis.consistency
                     = cold_t.Core.Analysis.consistency
                  && incr_t.Core.Analysis.pseudonym
                     = cold_t.Core.Analysis.pseudonym
                  && o_b.W.classification = W.Cone
              in
              if same then incr identical
              else begin
                Printf.printf
                  "  %s: budgeted incremental DIFFERS from cold (jobs=%d) \
                   for %s\n"
                  model_name j (Core.Edit.to_string edit);
                ok := false
              end)
            [ 1; 4 ]
        | _ -> ());
        let identity_ok = !identical = !checked in
        let case_ok = fraction_ok && speedup_ok && identity_ok in
        if not case_ok then ok := false;
        Mdp_prelude.Texttable.add_row table
          [
            model_name;
            Printf.sprintf "%.3f" t_cold;
            string_of_int n;
            string_of_int n_cone;
            string_of_int n_full;
            Printf.sprintf "%.2f" (1e3 *. p50);
            Printf.sprintf "%.0fx" speedup_p50;
            Printf.sprintf "%d/%d" !identical !checked;
          ];
        J.Obj
          [
            ("model", J.Str model_name);
            ("max_states", J.int max_states);
            ("cold_seconds", J.Num t_cold);
            ("candidates", J.int n);
            ( "classification_census",
              J.Obj (List.map (fun (k, v) -> (k, J.int v)) census) );
            ( "cone_fraction_of_invalidating",
              J.Num
                (if n_cone + n_full = 0 then 1.0
                 else float_of_int n_cone /. float_of_int (n_cone + n_full)) );
            ("p50_cone_seconds", J.Num p50);
            ("p95_cone_seconds", J.Num p95);
            ("speedup_p50_vs_cold", J.Num speedup_p50);
            ("speedup_gated", J.Bool gate_speedup);
            ( "equivalence",
              J.Obj
                [
                  ("checked", J.int !checked);
                  ("identical", J.int !identical);
                  ( "compared",
                    J.Str (if smoke then "rendered" else "structural") );
                ] );
            ("ok", J.Bool case_ok);
          ])
      (pr10_cases ~smoke)
  in
  Format.printf "%a@." Mdp_prelude.Texttable.pp table;
  let json =
    J.Obj
      [
        ("bench", J.Str "pr10-cone-whatif");
        ("jobs", J.int jobs);
        ("smoke", J.Bool smoke);
        ("phase_spans", span_totals_json ~since:section_t0 ());
        ("cases", J.List json_cases);
      ]
  in
  let oc = open_out "BENCH_PR10.json" in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR10.json\n";
  !ok

let () =
  (* Child mode first: one exploration, one stats line, exit. *)
  (match Array.to_list Sys.argv with
  | _ :: "--pr9-child" :: rest -> pr9_child rest
  | _ -> ());
  (* Spans feed the per-section phase breakdowns in BENCH_*.json and
     the BENCH_SPANS.jsonl / BENCH_METRICS.prom artifacts. *)
  Mdp_obs.Metrics.set_enabled true;
  let argv = Array.to_list Sys.argv in
  let smoke = List.mem "--smoke" argv in
  let pr2_only = List.mem "--pr2" argv in
  let pr3_only = List.mem "--pr3" argv in
  let pr4_only = List.mem "--pr4" argv in
  let pr6_only = List.mem "--pr6" argv in
  let pr7_only = List.mem "--pr7" argv in
  let pr8_only = List.mem "--pr8" argv in
  let pr9_only = List.mem "--pr9" argv in
  let pr10_only = List.mem "--pr10" argv in
  let jobs =
    let rec find = function
      | "--jobs" :: v :: _ -> ( match int_of_string_opt v with Some j when j >= 1 -> j | _ -> 4)
      | _ :: rest -> find rest
      | [] -> 4
    in
    find argv
  in
  if
    smoke
    && not
         (pr2_only || pr3_only || pr4_only || pr6_only || pr7_only || pr8_only
        || pr9_only || pr10_only)
  then begin
    let pr2_ok = perf_pr2 ~jobs ~smoke () in
    let pr3_ok = perf_pr3 ~jobs ~smoke () in
    let pr4_ok = perf_pr4 ~jobs ~smoke () in
    let pr6_ok = perf_pr6 ~jobs ~smoke () in
    let pr7_ok = perf_pr7 ~jobs ~smoke () in
    let pr8_ok = perf_pr8 ~jobs ~smoke () in
    let pr9_ok = perf_pr9 ~jobs ~smoke () in
    let pr10_ok = perf_pr10 ~jobs ~smoke () in
    write_observability_artifacts ();
    exit
      (if
         pr2_ok && pr3_ok && pr4_ok && pr6_ok && pr7_ok && pr8_ok && pr9_ok
         && pr10_ok
       then 0
       else 1)
  end;
  if pr2_only then exit (if perf_pr2 ~jobs ~smoke () then 0 else 1);
  if pr3_only then exit (if perf_pr3 ~jobs ~smoke () then 0 else 1);
  if pr4_only then exit (if perf_pr4 ~jobs ~smoke () then 0 else 1);
  if pr6_only then exit (if perf_pr6 ~jobs ~smoke () then 0 else 1);
  if pr7_only then begin
    let ok = perf_pr7 ~jobs ~smoke () in
    write_observability_artifacts ();
    exit (if ok then 0 else 1)
  end;
  if pr8_only then begin
    let ok = perf_pr8 ~jobs ~smoke () in
    write_observability_artifacts ();
    exit (if ok then 0 else 1)
  end;
  if pr9_only then begin
    let ok = perf_pr9 ~jobs ~smoke () in
    write_observability_artifacts ();
    exit (if ok then 0 else 1)
  end;
  if pr10_only then begin
    let ok = perf_pr10 ~jobs ~smoke () in
    write_observability_artifacts ();
    exit (if ok then 0 else 1)
  end;
  fig1 ();
  fig2 ();
  fig3 ();
  case_a ();
  table1 ();
  fig4 ();
  ablation_generation ();
  ablation_anonymisers ();
  population ();
  requirements ();
  scaling_generation ~jobs ();
  scaling_anonymisation ();
  chaos_resilience ();
  let pr2_ok = perf_pr2 ~jobs ~smoke:false () in
  let pr3_ok = perf_pr3 ~jobs ~smoke:false () in
  let pr4_ok = perf_pr4 ~jobs ~smoke:false () in
  let pr6_ok = perf_pr6 ~jobs ~smoke:false () in
  let pr7_ok = perf_pr7 ~jobs ~smoke:false () in
  let pr8_ok = perf_pr8 ~jobs ~smoke:false () in
  let pr9_ok = perf_pr9 ~jobs ~smoke:false () in
  let pr10_ok = perf_pr10 ~jobs ~smoke:false () in
  perf ();
  write_observability_artifacts ();
  Printf.printf "\ndone.\n";
  if
    not
      (pr2_ok && pr3_ok && pr4_ok && pr6_ok && pr7_ok && pr8_ok && pr9_ok
     && pr10_ok)
  then exit 1
