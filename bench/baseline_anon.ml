(* The pre-PR-4 Mondrian anonymiser, kept verbatim as the before side
   of BENCH_PR4.json: every partition step re-decodes each quasi cell
   through [Value.numeric] (three full passes per tried column — range,
   sort, partition), takes the median with [List.sort compare] +
   [List.nth] over a freshly boxed value list, and materialises the
   release through a per-cell (row, col) replacement hashtable. Only
   used by the benchmark — the fixed list engine is in
   lib/anon/mondrian.ml and the columnar engine in
   lib/anon/columnar.ml. *)

open Mdp_anon

let numeric_cell ds ~row ~col =
  match Value.numeric (Dataset.get ds ~row ~col) with
  | Some x -> Ok x
  | None ->
    Error
      (Printf.sprintf "mondrian: non-numeric quasi value at row %d col %d" row
         col)

let check_numeric ds =
  let quasi = Dataset.quasi_indices ds in
  let rec go rows =
    match rows with
    | [] -> Ok quasi
    | r :: rest ->
      let rec cols = function
        | [] -> go rest
        | c :: cs -> (
          match numeric_cell ds ~row:r ~col:c with
          | Ok _ -> cols cs
          | Error e -> Error e)
      in
      cols quasi
  in
  go (List.init (Dataset.nrows ds) Fun.id)

let range ds rows col =
  let values =
    List.map (fun r -> Result.get_ok (numeric_cell ds ~row:r ~col)) rows
  in
  let lo = List.fold_left Float.min Float.infinity values in
  let hi = List.fold_left Float.max Float.neg_infinity values in
  (lo, hi)

(* Split at the median of the chosen attribute; strictly-less goes left so
   ties never produce an empty side. *)
let split ds rows col =
  let values =
    List.sort compare
      (List.map (fun r -> Result.get_ok (numeric_cell ds ~row:r ~col)) rows)
  in
  let median = List.nth values (List.length values / 2) in
  let left, right =
    List.partition
      (fun r -> Result.get_ok (numeric_cell ds ~row:r ~col) < median)
      rows
  in
  (left, right)

let partitions_rows ~k ds quasi =
  let rec go rows =
    if List.length rows < 2 * k then [ rows ]
    else
      (* Widest normalised range first (classic Mondrian choice). *)
      let ranked =
        List.sort
          (fun (_, w1) (_, w2) -> Float.compare w2 w1)
          (List.map
             (fun c ->
               let lo, hi = range ds rows c in
               (c, hi -. lo))
             quasi)
      in
      let rec try_cols = function
        | [] -> [ rows ]
        | (c, width) :: rest ->
          if width <= 0.0 then [ rows ]
          else
            let left, right = split ds rows c in
            if List.length left >= k && List.length right >= k then
              go left @ go right
            else try_cols rest
      in
      try_cols ranked
  in
  go (List.init (Dataset.nrows ds) Fun.id)

let partitions ~k ds =
  if Dataset.nrows ds < k then Error "mondrian: fewer rows than k"
  else
    match check_numeric ds with
    | Error e -> Error e
    | Ok quasi -> Ok (partitions_rows ~k ds quasi)

let anonymise ~k ds =
  match partitions ~k ds with
  | Error e -> Error e
  | Ok parts ->
    let quasi = Dataset.quasi_indices ds in
    let replacement = Hashtbl.create 16 in
    List.iter
      (fun rows ->
        List.iter
          (fun c ->
            let lo, hi = range ds rows c in
            let v =
              if Float.equal lo hi then Dataset.get ds ~row:(List.hd rows) ~col:c
              else Value.interval lo (hi +. 1.0)
              (* +1: intervals are [lo, hi) and must cover hi itself. *)
            in
            List.iter (fun r -> Hashtbl.replace replacement (r, c) v) rows)
          quasi)
      parts;
    let rows =
      List.init (Dataset.nrows ds) (fun r ->
          List.mapi
            (fun c v ->
              match Hashtbl.find_opt replacement (r, c) with
              | Some v' -> v'
              | None -> v)
            (Dataset.row ds r))
    in
    Ok (Dataset.make ~attrs:(Dataset.attrs ds) ~rows)
