(* The pre-PR-2 generation engine, kept verbatim (modulo specialisation
   to Config/Action) as the before side of BENCH_PR2.json: a cons-list
   LTS with linear duplicate scans, full-config copies per successor, and
   per-state [Policy.allows] queries. Only used by the benchmark — the
   library engine is in lib/core/generate.ml. *)

open Mdp_dataflow
open Mdp_prelude
module Core = Mdp_core
module Universe = Core.Universe
module Config = Core.Config
module Action = Core.Action
module Privacy_state = Core.Privacy_state
module Generate = Core.Generate

(* ----- the seed's list-based LTS, specialised to configs ----- *)

module Tbl = Hashtbl.Make (struct
  type t = Config.t

  let equal = Config.equal

  (* The seed's hash, without the avalanche finaliser Config.hash has
     since grown — kept verbatim so the baseline measures the engine as
     it shipped. *)
  let hash (t : Config.t) =
    let h = ref (Core.Privacy_state.hash t.privacy) in
    Array.iter
      (fun s -> h := (!h * 65599) lxor Mdp_prelude.Bitset.hash s)
      t.stores;
    (!h * 65599) lxor Mdp_prelude.Bitset.hash t.executed
end)

type lts = {
  ids : int Tbl.t;
  mutable data : Config.t array;
  mutable n : int;
  mutable out : (Action.t * int) list array; (* reversed insertion order *)
  mutable ntrans : int;
}

let create () = { ids = Tbl.create 64; data = [||]; n = 0; out = [||]; ntrans = 0 }

let grow t =
  if t.n >= Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let data = Array.make cap t.data.(0) in
    Array.blit t.data 0 data 0 t.n;
    t.data <- data;
    let out = Array.make cap [] in
    Array.blit t.out 0 out 0 t.n;
    t.out <- out
  end

let add_state t s =
  match Tbl.find_opt t.ids s with
  | Some id -> id
  | None ->
    let id = t.n in
    if id = 0 then begin
      t.data <- Array.make 16 s;
      t.out <- Array.make 16 []
    end
    else grow t;
    t.data.(id) <- s;
    t.out.(id) <- [];
    t.n <- id + 1;
    Tbl.add t.ids s id;
    id

let add_transition t ~src ~label ~dst =
  let dup =
    List.exists (fun (l, d) -> d = dst && Action.equal l label) t.out.(src)
  in
  if not dup then begin
    t.out.(src) <- (label, dst) :: t.out.(src);
    t.ntrans <- t.ntrans + 1
  end

let explore ~max_states ~init ~step =
  let t = create () in
  let q = Queue.create () in
  Queue.push (add_state t init) q;
  while not (Queue.is_empty q) do
    let src = Queue.pop q in
    let src_data = t.data.(src) in
    List.iter
      (fun (label, dst_data) ->
        let before = t.n in
        let dst = add_state t dst_data in
        if t.n > max_states then failwith "Baseline.explore: too many states";
        add_transition t ~src ~label ~dst;
        if t.n > before then Queue.push dst q)
      (step src_data)
  done;
  t

(* ----- the seed's per-state successor function ----- *)

let schema_label (store : Datastore.t) fields =
  let schemas =
    Listx.dedup
      (List.filter_map
         (fun f ->
           Option.map (fun (s : Schema.t) -> s.id) (Datastore.schema_of_field store f))
         fields)
  in
  match schemas with [ s ] -> Some s | [] | _ :: _ -> Some store.id

let field_indices u fields = List.map (Universe.field_index u) fields

let set_has u (privacy : Privacy_state.t) ~actor fields =
  List.iter
    (fun f -> Bitset.set privacy.has (Universe.var u ~actor ~field:f))
    fields

let recompute_could u (cfg : Config.t) =
  Bitset.clear_all cfg.privacy.could;
  Array.iteri
    (fun s contents ->
      Bitset.iter
        (fun f ->
          List.iter
            (fun a ->
              Bitset.set cfg.privacy.could (Universe.var u ~actor:a ~field:f))
            (Universe.readers u ~store:s ~field:f))
        contents)
    cfg.stores

let set_could_for_creation u (cfg : Config.t) ~store fields =
  List.iter
    (fun f ->
      List.iter
        (fun a -> Bitset.set cfg.privacy.could (Universe.var u ~actor:a ~field:f))
        (Universe.readers u ~store ~field:f))
    fields

type flow_info = {
  index : int;
  service : Service.t;
  flow : Flow.t;
  kind : Flow.action_kind;
  prereqs : int list;
}

let flows_in_scope u (options : Generate.options) =
  let in_scope (svc : Service.t) =
    match options.services with
    | None -> true
    | Some ids -> List.mem svc.id ids
  in
  let all = List.init (Universe.nflows u) (fun i -> (i, Universe.flow_at u i)) in
  List.filter_map
    (fun (index, ((svc : Service.t), (flow : Flow.t))) ->
      if not (in_scope svc) then None
      else
        let prereqs =
          List.filter_map
            (fun (j, ((svc' : Service.t), (flow' : Flow.t))) ->
              if svc'.id = svc.id && flow'.order < flow.order then Some j
              else None)
            all
        in
        Some
          {
            index;
            service = svc;
            flow;
            kind = Diagram.classify (Universe.diagram u) flow;
            prereqs;
          })
    all

let source_holds u (cfg : Config.t) kind (flow : Flow.t) =
  match flow.src with
  | Flow.User -> true
  | Flow.Actor _ when kind = Flow.Create -> true
  | Flow.Actor a ->
    let ai = Universe.actor_index u a in
    List.for_all
      (fun f -> Bitset.get cfg.privacy.has (Universe.var u ~actor:ai ~field:f))
      (field_indices u flow.fields)
  | Flow.Store s ->
    let si = Universe.store_index u s in
    List.for_all
      (fun f -> Config.store_has cfg ~store:si ~field:f)
      (field_indices u flow.fields)

let flow_enabled (options : Generate.options) (cfg : Config.t) info =
  (not (Config.executed cfg ~flow:info.index))
  && (match options.ordering with
     | Generate.Data_driven -> true
     | Generate.Strict ->
       List.for_all (fun j -> Config.executed cfg ~flow:j) info.prereqs)

let effective_fields u (options : Generate.options) info =
  if not options.enforce_policy then info.flow.Flow.fields
  else
    let diagram = Universe.diagram u and policy = Universe.policy u in
    match info.kind with
    | Flow.Collect | Flow.Disclose -> info.flow.Flow.fields
    | Flow.Read ->
      let store = Flow.node_name info.flow.Flow.src
      and actor = Flow.node_name info.flow.Flow.dst in
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor
            Mdp_policy.Permission.Read ~store f)
        info.flow.Flow.fields
    | Flow.Create ->
      let store = Flow.node_name info.flow.Flow.dst
      and actor = Flow.node_name info.flow.Flow.src in
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor
            Mdp_policy.Permission.Write ~store f)
        info.flow.Flow.fields
    | Flow.Anon ->
      let store = Flow.node_name info.flow.Flow.dst
      and actor = Flow.node_name info.flow.Flow.src in
      List.filter
        (fun f ->
          Mdp_policy.Policy.allows policy ~diagram ~actor
            Mdp_policy.Permission.Write ~store (Field.anon_of f))
        info.flow.Flow.fields

let apply_flow u (cfg : Config.t) info eff_fields =
  let cfg' = Config.copy cfg in
  Bitset.set cfg'.executed info.index;
  let flow = { info.flow with Flow.fields = eff_fields } in
  let provenance =
    Action.From_flow { service = info.service.id; order = flow.order }
  in
  let action =
    match info.kind with
    | Flow.Collect ->
      let actor = Flow.node_name flow.dst in
      set_has u cfg'.privacy ~actor:(Universe.actor_index u actor)
        (field_indices u flow.fields);
      Action.make ~purpose:flow.purpose ~kind:Action.Collect
        ~fields:flow.fields ~actor provenance
    | Flow.Disclose ->
      let src = Flow.node_name flow.src and dst = Flow.node_name flow.dst in
      set_has u cfg'.privacy ~actor:(Universe.actor_index u dst)
        (field_indices u flow.fields);
      Action.make ~purpose:flow.purpose ~kind:Action.Disclose
        ~fields:flow.fields ~actor:src provenance
    | Flow.Create ->
      let actor = Flow.node_name flow.src in
      let si = Universe.store_index u (Flow.node_name flow.dst) in
      let fis = field_indices u flow.fields in
      set_has u cfg'.privacy ~actor:(Universe.actor_index u actor) fis;
      List.iter (Bitset.set cfg'.stores.(si)) fis;
      set_could_for_creation u cfg' ~store:si fis;
      let store = Universe.store_at u si in
      Action.make ?schema:(schema_label store flow.fields) ~store:store.id
        ~purpose:flow.purpose ~kind:Action.Create ~fields:flow.fields ~actor
        provenance
    | Flow.Anon ->
      let actor = Flow.node_name flow.src in
      let si = Universe.store_index u (Flow.node_name flow.dst) in
      let anon_fields = List.map Field.anon_of flow.fields in
      let fis = field_indices u anon_fields in
      List.iter (Bitset.set cfg'.stores.(si)) fis;
      set_could_for_creation u cfg' ~store:si fis;
      let store = Universe.store_at u si in
      Action.make ?schema:(schema_label store anon_fields) ~store:store.id
        ~purpose:flow.purpose ~kind:Action.Anon ~fields:flow.fields ~actor
        provenance
    | Flow.Read ->
      let actor = Flow.node_name flow.dst in
      let si = Universe.store_index u (Flow.node_name flow.src) in
      set_has u cfg'.privacy ~actor:(Universe.actor_index u actor)
        (field_indices u flow.fields);
      let store = Universe.store_at u si in
      Action.make ?schema:(schema_label store flow.fields) ~store:store.id
        ~purpose:flow.purpose ~kind:Action.Read ~fields:flow.fields ~actor
        provenance
  in
  (action, cfg')

let potential_reads u (options : Generate.options) (cfg : Config.t) =
  let transitions = ref [] in
  for a = 0 to Universe.nactors u - 1 do
    for s = 0 to Universe.nstores u - 1 do
      let fresh =
        List.filter
          (fun f ->
            Config.store_has cfg ~store:s ~field:f
            && not (Bitset.get cfg.privacy.has (Universe.var u ~actor:a ~field:f)))
          (Universe.readable_by u ~actor:a ~store:s)
      in
      let emit fis =
        let cfg' = Config.copy cfg in
        set_has u cfg'.privacy ~actor:a fis;
        let store = Universe.store_at u s in
        let fields = List.map (Universe.field_at u) fis in
        let action =
          Action.make ?schema:(schema_label store fields) ~store:store.id
            ~kind:Action.Read ~fields ~actor:(Universe.actor_name u a)
            Action.Potential
        in
        transitions := (action, cfg') :: !transitions
      in
      if fresh <> [] then
        if options.granular_reads then List.iter (fun f -> emit [ f ]) fresh
        else emit fresh
    done
  done;
  !transitions

let potential_deletes u (cfg : Config.t) =
  let transitions = ref [] in
  for s = 0 to Universe.nstores u - 1 do
    if not (Bitset.is_empty cfg.stores.(s)) then
      List.iter
        (fun a ->
          let cfg' = Config.copy cfg in
          let fields =
            List.map (Universe.field_at u) (Bitset.to_list cfg.stores.(s))
          in
          Bitset.clear_all cfg'.stores.(s);
          recompute_could u cfg';
          let store = Universe.store_at u s in
          let action =
            Action.make ?schema:(schema_label store fields) ~store:store.id
              ~kind:Action.Delete ~fields ~actor:(Universe.actor_name u a)
              Action.Potential
          in
          transitions := (action, cfg') :: !transitions)
        (Universe.deleters u ~store:s)
  done;
  !transitions

let run ?(options = Generate.default_options) u =
  let infos = flows_in_scope u options in
  let step cfg =
    let from_flows =
      List.filter_map
        (fun info ->
          if not (flow_enabled options cfg info) then None
          else
            match effective_fields u options info with
            | [] -> None
            | eff ->
              if source_holds u cfg info.kind { info.flow with Flow.fields = eff }
              then Some (apply_flow u cfg info eff)
              else None)
        infos
    in
    let reads =
      if options.potential_reads then potential_reads u options cfg else []
    in
    let deletes =
      if options.potential_deletes then potential_deletes u cfg else []
    in
    from_flows @ reads @ deletes
  in
  explore ~max_states:options.max_states ~init:(Config.initial u) ~step

let num_states t = t.n
let num_transitions t = t.ntrans
