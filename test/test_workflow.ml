(* Tests for the workflow helpers: report diffing across policy edits and
   multi-subject monitoring fleets. *)

module Core = Mdp_core
module R = Mdp_runtime
module H = Mdp_scenario.Healthcare

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let reports () =
  let u = Core.Universe.make H.diagram H.policy in
  let lts = Core.Generate.run u in
  let before = Core.Disclosure_risk.analyse u lts H.profile_case_a in
  let u' = Core.Universe.with_policy u H.fixed_policy in
  let lts' = Core.Generate.run u' in
  let after = Core.Disclosure_risk.analyse u' lts' H.profile_case_a in
  (before, after)

(* ------------------------------------------------------------------ *)
(* Risk_diff *)

let test_diff_fix () =
  let before, after = reports () in
  let d = Core.Risk_diff.diff ~before ~after in
  (* The fix removes Diagnosis from the Administrator's reads: the old
     5-field signature disappears and a 4-field one appears at a lower
     level, so the diff shows removals and additions but improvement in
     the worst level. *)
  check bool_ "something changed" true
    (d.removed <> [] || d.changed <> []);
  let worst changes =
    List.fold_left (fun acc c -> Core.Level.max acc c.Core.Risk_diff.after)
      Core.Level.None_ changes
  in
  check bool_ "no new access at Medium or above" true
    (Core.Level.compare (worst d.added) Core.Level.Low <= 0);
  (* Every removed signature carried Diagnosis or was the admin's. *)
  List.iter
    (fun (c : Core.Risk_diff.change) ->
      check bool_ "removed signatures mention Diagnosis" true
        (List.mem "Diagnosis" c.signature.fields))
    d.removed

let test_diff_identity () =
  let before, _ = reports () in
  let d = Core.Risk_diff.diff ~before ~after:before in
  check int_ "no removals" 0 (List.length d.removed);
  check int_ "no additions" 0 (List.length d.added);
  check int_ "no level changes" 0 (List.length d.changed);
  check bool_ "identity improves trivially" true (Core.Risk_diff.improved d);
  check bool_ "unchanged counted" true (d.unchanged > 0)

let test_diff_regression_detected () =
  let before, after = reports () in
  (* Swapping the arguments turns the fix into a regression. *)
  let d = Core.Risk_diff.diff ~before:after ~after:before in
  check bool_ "regression is not an improvement" false (Core.Risk_diff.improved d)

(* ------------------------------------------------------------------ *)
(* Fleet *)

let fleet_setup () =
  let a = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy in
  (a, R.Fleet.create a.universe a.lts)

let trace_for a seed =
  R.Sim.run_exn a.Core.Analysis.universe
    {
      seed;
      services = [ H.medical_service ];
      snoopers =
        [ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 1.0 } ];
    }

let test_fleet_isolates_subjects () =
  let a, fleet = fleet_setup () in
  let t1 = trace_for a 1 and t2 = trace_for a 2 in
  (* Interleave two subjects' traces event by event. *)
  let rec interleave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.map (fun e -> ("bob", e)) rest
    | x :: xs, y :: ys ->
      ("alice", x) :: ("bob", y) :: interleave xs ys
  in
  List.iter
    (fun (subject, event) -> ignore (R.Fleet.observe fleet ~subject event))
    (interleave t1 t2);
  check (Alcotest.list Alcotest.string) "subjects in first-seen order"
    [ "alice"; "bob" ] (R.Fleet.subjects fleet);
  (* Both subjects completed their medical service + snoop: same final
     state, independently tracked. *)
  let s1 = Option.get (R.Fleet.state_of fleet ~subject:"alice") in
  let s2 = Option.get (R.Fleet.state_of fleet ~subject:"bob") in
  check int_ "same journey, same state" s1 s2;
  check bool_ "unknown subject" true (R.Fleet.state_of fleet ~subject:"eve" = None);
  (* Each subject's snoop raised its own risky alert. *)
  let risky subject =
    Mdp_prelude.Listx.count
      (function R.Monitor.Risky _ -> true | _ -> false)
      (R.Fleet.alerts_for fleet ~subject)
  in
  check int_ "alice risky alerts" 1 (risky "alice");
  check int_ "bob risky alerts" 1 (risky "bob");
  check int_ "total alerts" 2 (R.Fleet.alert_count fleet)

let test_fleet_interleaving_no_crosstalk () =
  (* A subject's events never advance another subject's monitor: bob's
     trace replayed under alice must leave bob's state untouched. *)
  let a, fleet = fleet_setup () in
  let t = trace_for a 3 in
  List.iter (fun e -> ignore (R.Fleet.observe fleet ~subject:"alice" e)) t;
  let alice_state = Option.get (R.Fleet.state_of fleet ~subject:"alice") in
  (* bob has seen nothing yet *)
  check bool_ "bob unseen" true (R.Fleet.state_of fleet ~subject:"bob" = None);
  ignore (R.Fleet.observe fleet ~subject:"bob" (List.hd t));
  let bob_state = Option.get (R.Fleet.state_of fleet ~subject:"bob") in
  check bool_ "bob at step one, alice at the end" true (bob_state <> alice_state)


(* ------------------------------------------------------------------ *)
(* Sim/monitor agreement on synthetic models *)

let prop_sim_stays_on_model =
  (* For any synthetic model, a simulated full-service trace (no
     snoopers) replays through the monitor without off-model or denied
     alerts: the simulator, the enforcement point and the generator agree
     on the semantics. *)
  QCheck.Test.make ~name:"simulated traces stay on-model" ~count:25
    QCheck.(pair (int_range 1 300) (int_range 1 50))
    (fun (model_seed, sim_seed) ->
      let spec =
        {
          Mdp_scenario.Synthetic.seed = model_seed;
          nactors = 3;
          nfields = 4;
          nstores = 2;
          nservices = 2;
          flows_per_service = 4;
        }
      in
      let diagram, policy = Mdp_scenario.Synthetic.model spec in
      let u = Core.Universe.make diagram policy in
      let lts = Core.Generate.run u in
      let services =
        List.map
          (fun (s : Mdp_dataflow.Service.t) -> s.id)
          diagram.Mdp_dataflow.Diagram.services
      in
      let trace = R.Sim.run_exn u { seed = sim_seed; services; snoopers = [] } in
      let monitor = R.Monitor.create u lts in
      List.for_all
        (function
          | R.Monitor.Off_model _ | R.Monitor.Denied _
          | R.Monitor.Resynced _ -> false
          | R.Monitor.Risky _ -> true)
        (R.Monitor.run_trace monitor trace))

let () =
  Alcotest.run "workflow"
    [
      ( "risk diff",
        [
          Alcotest.test_case "the IV-A fix" `Quick test_diff_fix;
          Alcotest.test_case "identity" `Quick test_diff_identity;
          Alcotest.test_case "regression detected" `Quick test_diff_regression_detected;
        ] );
      ( "sim/monitor agreement",
        [ QCheck_alcotest.to_alcotest prop_sim_stays_on_model ] );
      ( "fleet",
        [
          Alcotest.test_case "isolates subjects" `Quick test_fleet_isolates_subjects;
          Alcotest.test_case "no crosstalk" `Quick test_fleet_interleaving_no_crosstalk;
        ] );
    ]
