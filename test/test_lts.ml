(* Tests for the generic LTS library: hash-consing, exploration,
   reachability, witness paths, EF/AG queries, acyclicity, determinism,
   bisimulation minimisation and DOT export. *)

module IntState = struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
  let pp = Format.pp_print_int
end

module StrLabel = struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
  let pp = Format.pp_print_string
end

module L = Mdp_lts.Lts.Make (IntState) (StrLabel)

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* A diamond: 0 -a-> 1 -c-> 3, 0 -b-> 2 -c-> 3. *)
let diamond () =
  let t = L.create () in
  let s0 = L.add_state t 0 in
  let s1 = L.add_state t 1 in
  let s2 = L.add_state t 2 in
  let s3 = L.add_state t 3 in
  ignore (L.add_transition t ~src:s0 ~label:"a" ~dst:s1 : bool);
  ignore (L.add_transition t ~src:s0 ~label:"b" ~dst:s2 : bool);
  ignore (L.add_transition t ~src:s1 ~label:"c" ~dst:s3 : bool);
  ignore (L.add_transition t ~src:s2 ~label:"c" ~dst:s3 : bool);
  (t, s0, s1, s2, s3)

let test_hash_consing () =
  let t = L.create () in
  let a = L.add_state t 42 in
  let b = L.add_state t 42 in
  check int_ "same id" a b;
  check int_ "one state" 1 (L.num_states t);
  check Alcotest.(option int_) "find_state" (Some a) (L.find_state t 42);
  check Alcotest.(option int_) "find_state missing" None (L.find_state t 7)

let test_duplicate_transitions () =
  let t = L.create () in
  let a = L.add_state t 0 and b = L.add_state t 1 in
  check bool_ "first insert" true (L.add_transition t ~src:a ~label:"x" ~dst:b);
  check bool_ "duplicate" false (L.add_transition t ~src:a ~label:"x" ~dst:b);
  check bool_ "different label" true (L.add_transition t ~src:a ~label:"y" ~dst:b);
  check int_ "two transitions" 2 (L.num_transitions t)

let test_initial () =
  let t = L.create () in
  Alcotest.check_raises "empty initial" (Invalid_argument "Lts.initial: empty LTS")
    (fun () -> ignore (L.initial t));
  let a = L.add_state t 0 in
  check int_ "first state is initial" a (L.initial t);
  let b = L.add_state t 1 in
  L.set_initial t b;
  check int_ "set_initial" b (L.initial t)

let test_successors_predecessors () =
  let t, s0, s1, s2, s3 = diamond () in
  check int_ "out degree of s0" 2 (List.length (L.successors t s0));
  check (Alcotest.list (Alcotest.pair Alcotest.string int_)) "succ order"
    [ ("a", s1); ("b", s2) ] (L.successors t s0);
  check int_ "in degree of s3" 2 (List.length (L.predecessors t s3));
  check (Alcotest.list (Alcotest.pair int_ Alcotest.string)) "preds"
    [ (s1, "c"); (s2, "c") ] (L.predecessors t s3)

let test_reachability_and_paths () =
  let t, s0, _, _, s3 = diamond () in
  let orphan = L.add_state t 99 in
  check int_ "reachable excludes orphan" 4 (List.length (L.reachable t));
  check bool_ "EF goal" true (L.exists_finally t (fun s -> s = s3));
  check bool_ "EF orphan" false (L.exists_finally t (fun s -> s = orphan));
  check bool_ "AG on reachable only" true
    (L.always_globally t (fun s -> s <> orphan));
  (match L.path_to t (fun s -> s = s3) with
  | Some steps ->
    check int_ "shortest path length" 2 (List.length steps);
    check int_ "path ends at goal" s3 (snd (List.nth steps 1))
  | None -> Alcotest.fail "expected a path");
  check bool_ "path to initial is empty" true (L.path_to t (fun s -> s = s0) = Some [])

let test_acyclic_and_deterministic () =
  let t, s0, s1, _, _ = diamond () in
  check bool_ "diamond acyclic" true (L.is_acyclic t);
  check bool_ "diamond deterministic" true (L.is_deterministic t);
  ignore (L.add_transition t ~src:s1 ~label:"back" ~dst:s0 : bool);
  check bool_ "cycle detected" false (L.is_acyclic t);
  ignore (L.add_transition t ~src:s0 ~label:"a" ~dst:s0 : bool);
  check bool_ "nondeterminism detected" false (L.is_deterministic t)

let test_explore () =
  (* Count to 5 with two labels; states are hash-consed ints. *)
  let t =
    L.explore ~init:0
      ~step:(fun s -> if s >= 5 then [] else [ ("inc", s + 1); ("двa", min 5 (s + 2)) ])
      ()
  in
  check int_ "state count" 6 (L.num_states t);
  check bool_ "reaches 5" true (L.exists_finally t (fun s -> L.state_data t s = 5))

let test_explore_max_states () =
  match
    L.explore ~max_states:10 ~init:0 ~step:(fun s -> [ ("i", s + 1) ]) ()
  with
  | exception Mdp_lts.Lts.Too_many_states n -> check int_ "carries the limit" 10 n
  | _ -> Alcotest.fail "expected Too_many_states"

let test_map_labels () =
  let t, s0, s1, _, _ = diamond () in
  L.map_labels t (fun { L.label; _ } -> String.uppercase_ascii label);
  check (Alcotest.list (Alcotest.pair Alcotest.string int_)) "rewritten"
    [ ("A", s1) ]
    (List.filter (fun (_, d) -> d = s1) (L.successors t s0))

let test_quotient_merges_bisimilar () =
  (* Two branches with identical continuations collapse. *)
  let t = L.create () in
  let s0 = L.add_state t 0 in
  let s1 = L.add_state t 1 in
  let s2 = L.add_state t 2 in
  let s3 = L.add_state t 3 in
  let s4 = L.add_state t 4 in
  ignore (L.add_transition t ~src:s0 ~label:"a" ~dst:s1 : bool);
  ignore (L.add_transition t ~src:s0 ~label:"a" ~dst:s2 : bool);
  ignore (L.add_transition t ~src:s1 ~label:"b" ~dst:s3 : bool);
  ignore (L.add_transition t ~src:s2 ~label:"b" ~dst:s4 : bool);
  (* s3 and s4 are both deadlocked, s1 and s2 behave identically. *)
  let q, map = L.quotient t ~init_key:(fun _ -> "same") in
  check int_ "quotient states" 3 (L.num_states q);
  check int_ "s1 s2 merged" (map s1) (map s2);
  check int_ "s3 s4 merged" (map s3) (map s4);
  check bool_ "initial preserved" true (L.initial q = map s0);
  (* Distinguishing initial keys keeps states apart. *)
  let q2, _ = L.quotient t ~init_key:string_of_int in
  check int_ "fully distinguished" 5 (L.num_states q2)

let test_quotient_respects_labels () =
  let t = L.create () in
  let s0 = L.add_state t 0 in
  let s1 = L.add_state t 1 in
  let s2 = L.add_state t 2 in
  ignore (L.add_transition t ~src:s0 ~label:"a" ~dst:s1 : bool);
  ignore (L.add_transition t ~src:s0 ~label:"b" ~dst:s2 : bool);
  (* s1/s2 are both deadlocked hence bisimilar; s0 is not. *)
  let q, map = L.quotient t ~init_key:(fun _ -> "same") in
  check int_ "two classes" 2 (L.num_states q);
  check bool_ "deadlocks merged" true (map s1 = map s2);
  check bool_ "root separate" true (map s0 <> map s1)

let test_dag_statistics () =
  let t, _, _, _, _ = diamond () in
  check Alcotest.(option int_) "diamond longest path" (Some 2) (L.longest_path t);
  check Alcotest.(option int_) "diamond has two maximal paths" (Some 2)
    (L.count_maximal_paths t);
  (* A chain has one path. *)
  let chain = L.create () in
  let a = L.add_state chain 0 and b = L.add_state chain 1 and c = L.add_state chain 2 in
  ignore (L.add_transition chain ~src:a ~label:"x" ~dst:b : bool);
  ignore (L.add_transition chain ~src:b ~label:"y" ~dst:c : bool);
  check Alcotest.(option int_) "chain depth" (Some 2) (L.longest_path chain);
  check Alcotest.(option int_) "chain paths" (Some 1) (L.count_maximal_paths chain);
  (* Single state: depth 0, one (empty) path. *)
  let single = L.create () in
  ignore (L.add_state single 7);
  check Alcotest.(option int_) "single depth" (Some 0) (L.longest_path single);
  check Alcotest.(option int_) "single path" (Some 1) (L.count_maximal_paths single);
  (* Cyclic: None. *)
  let cyc = L.create () in
  let x = L.add_state cyc 0 and y = L.add_state cyc 1 in
  ignore (L.add_transition cyc ~src:x ~label:"a" ~dst:y : bool);
  ignore (L.add_transition cyc ~src:y ~label:"b" ~dst:x : bool);
  check Alcotest.(option int_) "cycle longest" None (L.longest_path cyc);
  check Alcotest.(option int_) "cycle paths" None (L.count_maximal_paths cyc)

let test_dot () =
  let t, _, _, _, _ = diamond () in
  let dot =
    L.to_dot ~graph_name:"g" ~state_label:(fun s -> Printf.sprintf "S%d" s)
      ~transition_style:(fun { L.label; _ } -> if label = "a" then "color=red" else "")
      t
  in
  let contains needle =
    let hn = String.length dot and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub dot i nn = needle || go (i + 1)) in
    go 0
  in
  check bool_ "graph name" true (contains "digraph g");
  check bool_ "state label" true (contains "S0");
  check bool_ "styled edge" true (contains "color=red");
  check bool_ "initial bold" true (contains "penwidth=2")

let prop_explore_deterministic =
  QCheck.Test.make ~name:"explore is deterministic" ~count:50
    QCheck.(int_bound 20)
    (fun n ->
      let build () =
        L.explore ~init:0
          ~step:(fun s ->
            if s >= n then []
            else [ ("a", (s + 1) mod (n + 1)); ("b", (s * 2) mod (n + 1)) ])
          ()
      in
      let a = build () and b = build () in
      L.num_states a = L.num_states b && L.num_transitions a = L.num_transitions b)

let () =
  Alcotest.run "lts"
    [
      ( "construction",
        [
          Alcotest.test_case "hash-consing" `Quick test_hash_consing;
          Alcotest.test_case "duplicate transitions" `Quick test_duplicate_transitions;
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "successors/predecessors" `Quick test_successors_predecessors;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "reachability/paths" `Quick test_reachability_and_paths;
          Alcotest.test_case "acyclic/deterministic" `Quick test_acyclic_and_deterministic;
          Alcotest.test_case "map_labels" `Quick test_map_labels;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "fixed point" `Quick test_explore;
          Alcotest.test_case "max states guard" `Quick test_explore_max_states;
          QCheck_alcotest.to_alcotest prop_explore_deterministic;
        ] );
      ( "minimisation",
        [
          Alcotest.test_case "merges bisimilar" `Quick test_quotient_merges_bisimilar;
          Alcotest.test_case "respects labels" `Quick test_quotient_respects_labels;
        ] );
      ( "statistics",
        [ Alcotest.test_case "dag depth/paths" `Quick test_dag_statistics ] );
      ("output", [ Alcotest.test_case "dot" `Quick test_dot ]);
    ]
