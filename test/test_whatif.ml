(* The incremental what-if engine against cold runs: after any edit
   sequence, [Analysis.run_incremental] must produce output
   byte-identical to a cold [Analysis.run] on the edited inputs — for
   reuse paths (vacuous, preserving, maintenance-repatch, profile
   re-evaluation) and full-fallback paths (flow edits) alike. Plus the
   sweep's delta evaluator against ground truth diffs, and the edit
   spec parser round-trip. *)

module Core = Mdp_core
module H = Mdp_scenario.Healthcare
module Synth = Mdp_scenario.Synthetic
open Mdp_dataflow
open Mdp_policy

let check = Alcotest.check
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* Reports and summaries rendered to one string: the byte-identity
   vehicle (findings with state ids, witnesses, gaps, pseudonym
   transitions, LTS counts). *)
let render t =
  Core.Report.to_string t ^ "\n----\n"
  ^ Format.asprintf "%a" Core.Analysis.pp_summary t

let cold ?jobs (params : Core.Analysis.params) (inputs : Core.Edit.inputs) =
  match
    Core.Analysis.run_checked ~options:params.Core.Analysis.options
      ~matrix:params.matrix ~model:params.model
      ?profile:inputs.Core.Edit.profile ~bindings:inputs.Core.Edit.bindings
      ?jobs inputs.Core.Edit.diagram inputs.Core.Edit.policy
  with
  | Ok t -> t
  | Error f -> Alcotest.fail (Core.Analysis.failure_message f)

(* Apply [edits] one at a time, chaining incrementally, and assert
   byte-identity with a cold run after every step. *)
let check_chain name ~jobs base edits =
  let rec go prev step = function
    | [] -> ()
    | edit :: rest ->
      let incr = Core.Analysis.run_incremental ~jobs ~previous:prev [ edit ] in
      let c = cold ~jobs incr.Core.Analysis.params (Core.Analysis.inputs_of incr) in
      check string_
        (Printf.sprintf "%s step %d (jobs=%d) byte-identical" name step jobs)
        (render c) (render incr);
      go incr (step + 1) rest
  in
  go base 1 edits

let revoke ?fields actor perm store =
  Core.Edit.Revoke
    { subject = Acl.Actor_subject actor; store; fields; perms = [ perm ] }

(* ------------------------------------------------------------------ *)
(* Healthcare: the §IV-A loop and every reuse class. *)

(* Under the default matrix the maintenance-exposure term (0.02 on top
   of accidental 0.05 + rogue 0.01) never crosses the 0.1 likelihood
   threshold, so Delete revocations are level-invisible. A 0.07
   threshold puts the flip on a bucket boundary, making the repatch
   path observable in report bytes and sweep scores. *)
let flip_matrix = Core.Risk_matrix.make ~likelihood_thresholds:(0.07, 0.5) ()

let healthcare_base ?profile () =
  Core.Analysis.run ~matrix:flip_matrix ?profile H.diagram H.policy

let healthcare_edits =
  [
    (* Vacuous: Researcher holds nothing on EHR. *)
    revoke "Researcher" Permission.Write "EHR";
    (* Maintenance repatch: drop the §IV-A Delete grant. *)
    revoke "Administrator" Permission.Delete "EHR";
    (* Profile-only re-evaluation. *)
    Core.Edit.Set_sensitivity (H.treatment, 0.7);
    Core.Edit.Set_agreement { service = H.research_service; agreed = true };
    (* The §IV-A fix itself: Read on a writable field — full fallback. *)
    revoke ~fields:[ H.diagnosis ] "Administrator" Permission.Read "EHR";
    (* Diagram edit: full fallback. *)
    Core.Edit.Remove_flow { service = H.research_service; order = 1 };
  ]

let test_healthcare_chain () =
  List.iter
    (fun jobs ->
      check_chain "healthcare" ~jobs
        (healthcare_base ~profile:H.profile_case_a ())
        healthcare_edits)
    [ 1; 4 ]

let test_healthcare_no_profile_chain () =
  check_chain "healthcare-noprofile" ~jobs:1 (healthcare_base ())
    [
      revoke "Administrator" Permission.Delete "EHR";
      revoke ~fields:[ H.diagnosis ] "Administrator" Permission.Read "EHR";
    ]

let test_batched_edits () =
  (* Several edits in one run_incremental call. *)
  let base = healthcare_base ~profile:H.profile_case_a () in
  let edits =
    [
      revoke "Administrator" Permission.Delete "EHR";
      Core.Edit.Set_sensitivity (H.medical_issues, 0.9);
    ]
  in
  let incr = Core.Analysis.run_incremental ~previous:base edits in
  let c = cold incr.Core.Analysis.params (Core.Analysis.inputs_of incr) in
  check string_ "batched edits byte-identical" (render c) (render incr)

(* The §IV-A acceptance fact itself, through the incremental engine:
   revoking the Administrator's Delete lowers their EHR read risk. *)
let test_case_a_improvement () =
  let base = healthcare_base ~profile:H.profile_case_a () in
  let incr =
    Core.Analysis.run_incremental ~previous:base
      [ revoke "Administrator" Permission.Delete "EHR" ]
  in
  let before = Option.get base.Core.Analysis.disclosure in
  let after = Option.get incr.Core.Analysis.disclosure in
  let diff = Core.Risk_diff.diff ~before ~after in
  check bool_ "risk only improves" true (Core.Risk_diff.improved diff);
  check bool_ "something improved" true
    (diff.Core.Risk_diff.changed <> [] || diff.Core.Risk_diff.removed <> [])

(* ------------------------------------------------------------------ *)
(* Pseudonym bindings: reuse and invalidation around the §III-B pass. *)

let study_base ?bindings () =
  let options =
    { Core.Generate.default_options with granular_reads = true }
  in
  let profile =
    Core.User_profile.make
      ~sensitivities:[ (H.weight, 0.8) ]
      ~agreed_services:[ "DataCollection" ] ()
  in
  Core.Analysis.run ~options ~profile ?bindings H.study_diagram H.study_policy

let test_bindings_chain () =
  (* Adding bindings to a binding-free run reuses the LTS; profile
     edits on a binding-bearing run reuse the pass; policy edits under
     bindings fall back to a full run. *)
  check_chain "study" ~jobs:1
    (study_base ())
    [
      Core.Edit.Set_bindings [ H.study_binding ];
      Core.Edit.Set_sensitivity (H.weight, 0.3);
      revoke "Administrator" Permission.Delete "StudyRecords";
    ]

(* ------------------------------------------------------------------ *)
(* Synthetic models: deterministic chain + randomized sequences. *)

let synth_model name =
  match Synth.spec_of_string name with
  | Some (Ok spec) ->
    let diagram, policy = Synth.model spec in
    (spec, diagram, policy)
  | _ -> Alcotest.fail ("bad spec " ^ name)

let synth_base ?(jobs = 1) name =
  let spec, diagram, policy = synth_model name in
  let profile = Synth.profile spec diagram in
  match
    Core.Analysis.run_checked ~profile ~jobs diagram policy
  with
  | Ok t -> t
  | Error f -> Alcotest.fail (Core.Analysis.failure_message f)

let test_synthetic_chain () =
  List.iter
    (fun jobs ->
      let base = synth_base ~jobs "synthetic:4-6-3@1" in
      let inputs = Core.Analysis.inputs_of base in
      let grants =
        Policy.concrete_grants inputs.Core.Edit.policy
          inputs.Core.Edit.diagram
      in
      let of_perm p =
        List.filter (fun (g : Policy.grant_tuple) -> g.perm = p) grants
      in
      let candidate p =
        match of_perm p with
        | g :: _ -> [ revoke ~fields:[ g.field ] g.actor g.perm g.store ]
        | [] -> []
      in
      check_chain "synthetic:4-6-3@1" ~jobs base
        (candidate Permission.Delete
        @ candidate Permission.Read
        @ candidate Permission.Write
        @ [
            Core.Edit.Set_sensitivity (Field.make "Field2", 1.0);
            Core.Edit.Set_agreement { service = "Service1"; agreed = false };
          ]))
    [ 1; 4 ]

(* Randomized edit sequences, byte-identity after every step. *)
let edit_vocabulary (inputs : Core.Edit.inputs) =
  let diagram = inputs.Core.Edit.diagram in
  let grants = Policy.concrete_grants inputs.Core.Edit.policy diagram in
  let revokes =
    List.map
      (fun (g : Policy.grant_tuple) ->
        revoke ~fields:[ g.field ] g.actor g.perm g.store)
      grants
  in
  let actors = List.map (fun (a : Actor.t) -> a.id) diagram.Diagram.actors in
  let stores =
    List.map (fun (d : Datastore.t) -> d.id) diagram.Diagram.datastores
  in
  let fields = Diagram.all_fields diagram in
  let new_grants =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun s ->
            List.map
              (fun p -> Core.Edit.Grant (Acl.allow (Acl.Actor_subject a) ~store:s [ p ]))
              [ Permission.Read; Permission.Delete ])
          stores)
      actors
  in
  let sens =
    List.concat_map
      (fun f ->
        [
          Core.Edit.Set_sensitivity (f, 0.0);
          Core.Edit.Set_sensitivity (f, 0.45);
          Core.Edit.Set_sensitivity (f, 0.95);
        ])
      fields
  in
  let agreements =
    List.concat_map
      (fun (s : Service.t) ->
        [
          Core.Edit.Set_agreement { service = s.id; agreed = true };
          Core.Edit.Set_agreement { service = s.id; agreed = false };
        ])
      diagram.Diagram.services
  in
  let flow_removals =
    List.map
      (fun ((s : Service.t), (f : Flow.t)) ->
        Core.Edit.Remove_flow { service = s.id; order = f.order })
      (Diagram.all_flows diagram)
  in
  Array.of_list
    (revokes @ new_grants @ sens @ agreements @ flow_removals)

let test_random_sequences =
  QCheck.Test.make ~count:12 ~name:"random edit sequences stay byte-identical"
    QCheck.(
      pair (list_of_size Gen.(1 -- 3) (int_bound 10_000)) (int_bound 1))
    (fun (picks, jobs_pick) ->
      let jobs = if jobs_pick = 0 then 1 else 4 in
      let base = synth_base ~jobs "synthetic:3-5-2@5" in
      let rec go prev = function
        | [] -> true
        | pick :: rest ->
          let vocab = edit_vocabulary (Core.Analysis.inputs_of prev) in
          let edit = vocab.(pick mod Array.length vocab) in
          (match
             Core.Edit.apply (Core.Analysis.inputs_of prev) edit
           with
          | Error _ -> go prev rest (* inapplicable against current model *)
          | Ok _ ->
            let incr =
              Core.Analysis.run_incremental ~jobs ~previous:prev [ edit ]
            in
            let c =
              cold ~jobs incr.Core.Analysis.params
                (Core.Analysis.inputs_of incr)
            in
            if render c <> render incr then
              QCheck.Test.fail_reportf "divergence after %s (jobs=%d)"
                (Core.Edit.to_string edit) jobs
            else go incr rest)
      in
      go base picks)

(* ------------------------------------------------------------------ *)
(* Sweep: the delta evaluator against ground-truth diffs. *)

let normalize (d : Core.Risk_diff.t) =
  let key (c : Core.Risk_diff.change) = c in
  {
    d with
    Core.Risk_diff.removed = List.sort compare (List.map key d.removed);
    added = List.sort compare (List.map key d.added);
    changed = List.sort compare (List.map key d.changed);
  }

let check_sweep_against_truth name analysis =
  let base =
    match Core.Whatif.prepare analysis with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let before = Option.get analysis.Core.Analysis.disclosure in
  List.iter
    (fun edit ->
      match Core.Whatif.eval_edit base edit with
      | Error e -> Alcotest.fail e
      | Ok o -> (
        match (o.Core.Whatif.classification, o.diff) with
        | (Core.Whatif.Replay | Core.Whatif.Full_rerun), _ -> ()
        | _, None ->
          Alcotest.failf "%s: %s classified %s but carries no diff" name
            (Core.Edit.to_string edit)
            (Core.Whatif.classification_to_string o.classification)
        | _, Some diff ->
          let t =
            Core.Analysis.run_incremental ~previous:analysis [ edit ]
          in
          let after = Option.get t.Core.Analysis.disclosure in
          let truth = Core.Risk_diff.diff ~before ~after in
          check bool_
            (Printf.sprintf "%s: %s diff matches truth" name
               (Core.Edit.to_string edit))
            true
            (normalize diff = normalize truth);
          check bool_
            (Printf.sprintf "%s: %s worst level matches" name
               (Core.Edit.to_string edit))
            true
            (o.worst_after = Some (Core.Disclosure_risk.max_level after))))
    (Core.Whatif.acl_candidates base
    @ [
        Core.Edit.Set_sensitivity (H.diagnosis, 0.2);
        Core.Edit.Set_sensitivity (Field.make "Field0", 0.99);
      ])

let test_sweep_truth_healthcare () =
  check_sweep_against_truth "healthcare"
    (healthcare_base ~profile:H.profile_case_a ())

let test_sweep_truth_synthetic () =
  check_sweep_against_truth "synthetic:3-5-2@5"
    (synth_base "synthetic:3-5-2@5")

let test_sweep_ranking () =
  let analysis = healthcare_base ~profile:H.profile_case_a () in
  let base =
    match Core.Whatif.prepare analysis with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let ranked = Core.Whatif.sweep base (Core.Whatif.acl_candidates base) in
  check bool_ "sweep covers all candidates" true
    (List.length ranked
    = List.length (Core.Whatif.acl_candidates base));
  (* Scores are descending, computed candidates before unknown ones. *)
  let rec desc = function
    | a :: (b :: _ as rest) ->
      a.Core.Whatif.score >= b.Core.Whatif.score && desc rest
    | _ -> true
  in
  check bool_ "ranking is descending" true (desc ranked);
  (* The §IV-A Delete revocation must rank with a positive score. *)
  check bool_ "delete revocation reduces risk" true
    (List.exists
       (fun r ->
         r.Core.Whatif.score > 0
         && r.outcome.Core.Whatif.classification = Core.Whatif.Delta)
       ranked)

(* ------------------------------------------------------------------ *)
(* Edit spec parser round-trip. *)

let test_parse_roundtrip () =
  List.iter
    (fun spec ->
      match Core.Edit.parse spec with
      | Error e -> Alcotest.failf "parse %s: %s" spec e
      | Ok e ->
        check string_ ("roundtrip " ^ spec) spec (Core.Edit.to_string e))
    [
      "grant:Administrator:read,delete:EHR";
      "grant:role.clinician:read:EHR:Diagnosis,Treatment";
      "revoke:Administrator:delete:EHR";
      "revoke:Nurse:read:EHR:Name";
      "flow-:MedicalService:3";
      "flow+:ResearchStudy:9:store.EHR>actor.Researcher:Diagnosis:audit";
      "agree:+ResearchStudy";
      "agree:-MedicalService";
    ];
  (match Core.Edit.parse "sensitivity:Diagnosis=0.7" with
  | Ok (Core.Edit.Set_sensitivity (f, v)) ->
    check bool_ "sensitivity parse" true (Field.name f = "Diagnosis" && v = 0.7)
  | _ -> Alcotest.fail "sensitivity spec did not parse");
  List.iter
    (fun bad ->
      match Core.Edit.parse bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %s" bad
      | Error _ -> ())
    [ "revoke:Administrator:fly:EHR"; "nonsense"; "sensitivity:X=1.5" ]

(* Quoted identifiers: deterministic canonical-form cases... *)
let test_parse_roundtrip_quoted () =
  List.iter
    (fun spec ->
      match Core.Edit.parse spec with
      | Error e -> Alcotest.failf "parse %s: %s" spec e
      | Ok e ->
        check string_ ("roundtrip " ^ spec) spec (Core.Edit.to_string e))
    [
      {|grant:"my admin":read:"my store"|};
      {|revoke:"role.trick":read:EHR|};
      {|revoke:role."read,write":write:"a:b":"k=v","s>t"|};
      {|flow-:"Svc One":3|};
      {|flow+:"S,vc":2:store."my store">actor."Dr. Who":"q\"uote":"with space"|};
      "sensitivity:\"a,b\"=0.5";
      {|agree:+"Svc One"|};
    ];
  (* ...and malformed quoting is rejected, not mangled. *)
  List.iter
    (fun bad ->
      match Core.Edit.parse bad with
      | Ok e ->
        Alcotest.failf "accepted bad quoting %s as %s" bad
          (Core.Edit.to_string e)
      | Error _ -> ())
    [ {|revoke:"unterminated:read:EHR|}; {|revoke:mid"quote:read:EHR|} ]

(* ...and the qcheck property over nasty identifiers: every printable
   edit (all but Set_bindings and deny-effect Grants, which have no
   spec syntax) satisfies [parse (to_string e) = Ok e]. *)
let test_quoting_roundtrip =
  let open QCheck in
  (* Actor/store/service/purpose names may contain anything. *)
  let ids =
    [
      "plain"; "my store"; "a,b"; "k=v"; "x:y"; "s>t"; "q\"uote";
      {|back\slash|}; "role.trick"; "two  spaces"; "trailing ";
    ]
  in
  (* Field names: no whitespace (Field.make's invariant), everything
     else goes. *)
  let fnames =
    [ "Field0"; "a,b"; "k=v"; "x:y"; "s>t"; "q\"uote"; {|back\slash|}; "dot.ted" ]
  in
  let gen =
    Gen.(
      let id = oneofl ids in
      let field = map Field.make (oneofl fnames) in
      let fields =
        oneof
          [
            map (fun f -> [ f ]) field;
            map2
              (fun a b -> if Field.equal a b then [ a ] else [ a; b ])
              field field;
          ]
      in
      let subject =
        oneof
          [
            map (fun a -> Acl.Actor_subject a) id;
            (* an actor literally named like a role spec *)
            map (fun a -> Acl.Actor_subject ("role." ^ a)) id;
            map (fun r -> Acl.Role_subject r) id;
          ]
      in
      let perms =
        oneofl
          [
            [ Permission.Read ];
            [ Permission.Write ];
            [ Permission.Delete ];
            [ Permission.Read; Permission.Write ];
          ]
      in
      let grant =
        map2
          (fun (subject, store, perms) fields ->
            match fields with
            | None -> Core.Edit.Grant (Acl.allow subject ~store perms)
            | Some fields ->
              Core.Edit.Grant (Acl.allow subject ~store ~fields perms))
          (triple subject id perms) (opt fields)
      in
      let revoke =
        map2
          (fun (subject, store, perms) fields ->
            Core.Edit.Revoke { subject; store; fields; perms })
          (triple subject id perms) (opt fields)
      in
      let node_pair =
        oneof
          [
            map (fun a -> (Flow.User, Flow.Actor a)) id;
            map2 (fun a s -> (Flow.Actor a, Flow.Store s)) id id;
            map2 (fun s a -> (Flow.Store s, Flow.Actor a)) id id;
          ]
      in
      let add_flow =
        map2
          (fun (service, (src, dst), order) (fields, purpose) ->
            Core.Edit.Add_flow
              { service; flow = Flow.make ~order ~src ~dst ~fields ~purpose })
          (triple id node_pair (int_bound 20))
          (pair fields id)
      in
      let remove_flow =
        map2
          (fun service order -> Core.Edit.Remove_flow { service; order })
          id (int_bound 20)
      in
      let sensitivity =
        map2
          (fun f v -> Core.Edit.Set_sensitivity (f, v))
          field
          (oneof [ float_bound_inclusive 1.0; oneofl [ 0.0; 0.5; 1.0 ] ])
      in
      let agreement =
        map2
          (fun service agreed -> Core.Edit.Set_agreement { service; agreed })
          id bool
      in
      oneof [ grant; revoke; add_flow; remove_flow; sensitivity; agreement ])
  in
  QCheck.Test.make ~count:500 ~name:"quoted specs roundtrip"
    (QCheck.make ~print:Core.Edit.to_string gen)
    (fun e ->
      match Core.Edit.parse (Core.Edit.to_string e) with
      | Ok e' -> e' = e
      | Error msg ->
        QCheck.Test.fail_reportf "parse %S failed: %s" (Core.Edit.to_string e)
          msg)

let () =
  Alcotest.run "whatif"
    [
      ( "incremental",
        [
          Alcotest.test_case "healthcare chain" `Quick test_healthcare_chain;
          Alcotest.test_case "healthcare chain (no profile)" `Quick
            test_healthcare_no_profile_chain;
          Alcotest.test_case "batched edits" `Quick test_batched_edits;
          Alcotest.test_case "§IV-A improvement" `Quick test_case_a_improvement;
          Alcotest.test_case "bindings chain" `Quick test_bindings_chain;
          Alcotest.test_case "synthetic chain" `Quick test_synthetic_chain;
          QCheck_alcotest.to_alcotest test_random_sequences;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "delta matches truth (healthcare)" `Quick
            test_sweep_truth_healthcare;
          Alcotest.test_case "delta matches truth (synthetic)" `Quick
            test_sweep_truth_synthetic;
          Alcotest.test_case "ranking" `Quick test_sweep_ranking;
        ] );
      ( "specs",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse roundtrip (quoted)" `Quick
            test_parse_roundtrip_quoted;
          QCheck_alcotest.to_alcotest test_quoting_roundtrip;
        ] );
    ]
