(* Unit and property tests for mdp_prelude: bitsets, interning,
   validation, fractions, PRNG, list helpers, text tables. *)

open Mdp_prelude

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check bool_ "fresh is empty" true (Bitset.is_empty b);
  check int_ "fresh cardinal" 0 (Bitset.cardinal b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 64;
  Bitset.set b 99;
  check bool_ "get 0" true (Bitset.get b 0);
  check bool_ "get 63" true (Bitset.get b 63);
  check bool_ "get 64" true (Bitset.get b 64);
  check bool_ "get 99" true (Bitset.get b 99);
  check bool_ "get 1" false (Bitset.get b 1);
  check int_ "cardinal" 4 (Bitset.cardinal b);
  Bitset.clear b 63;
  check bool_ "cleared" false (Bitset.get b 63);
  check int_ "cardinal after clear" 3 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Bitset: index out of bounds") (fun () ->
      ignore (Bitset.get b 10));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Bitset: index out of bounds") (fun () -> Bitset.set b (-1));
  Alcotest.check_raises "negative capacity" (Invalid_argument "Bitset.create")
    (fun () -> ignore (Bitset.create (-1)))

let test_bitset_set_ops () =
  let a = Bitset.of_list 50 [ 1; 2; 3; 40 ] in
  let b = Bitset.of_list 50 [ 3; 4; 40; 49 ] in
  check (Alcotest.list int_) "union" [ 1; 2; 3; 4; 40; 49 ]
    (Bitset.to_list (Bitset.union a b));
  check (Alcotest.list int_) "inter" [ 3; 40 ] (Bitset.to_list (Bitset.inter a b));
  check (Alcotest.list int_) "diff" [ 1; 2 ] (Bitset.to_list (Bitset.diff a b));
  check bool_ "subset no" false (Bitset.subset a b);
  check bool_ "subset yes" true (Bitset.subset (Bitset.inter a b) a);
  let c = Bitset.copy a in
  Bitset.union_into ~dst:c b;
  check bool_ "union_into equals union" true (Bitset.equal c (Bitset.union a b))

let test_bitset_length_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: length mismatch")
    (fun () -> ignore (Bitset.union a b))

let test_bitset_zero_length () =
  let b = Bitset.create 0 in
  check bool_ "empty" true (Bitset.is_empty b);
  check bool_ "equal to copy" true (Bitset.equal b (Bitset.copy b))

let test_bitset_words () =
  let b = Bitset.of_list 130 [ 0; 5; 62; 63; 64; 100; 129 ] in
  check int_ "extract low word" ((1 lsl 0) lor (1 lsl 5) lor (1 lsl 62))
    (Bitset.extract b ~pos:0 ~len:63);
  (* A slice crossing the 63-bit word boundary. *)
  check int_ "extract straddling" ((1 lsl 2) lor (1 lsl 3) lor (1 lsl 4))
    (Bitset.extract b ~pos:60 ~len:10);
  check int_ "extract empty slice" 0 (Bitset.extract b ~pos:65 ~len:30);
  check int_ "extract zero len" 0 (Bitset.extract b ~pos:10 ~len:0);
  Alcotest.check_raises "extract out of range"
    (Invalid_argument "Bitset: word range out of bounds") (fun () ->
      ignore (Bitset.extract b ~pos:100 ~len:40));
  let c = Bitset.create 130 in
  Bitset.set_word c ~pos:60 ~len:10 ((1 lsl 2) lor (1 lsl 9));
  check (Alcotest.list int_) "set_word straddling" [ 62; 69 ] (Bitset.to_list c);
  Bitset.set_word c ~pos:0 ~len:63 (1 lsl 62);
  check (Alcotest.list int_) "set_word keeps existing" [ 62; 69 ]
    (Bitset.to_list c)

let prop_bitset_extract_roundtrip =
  QCheck.Test.make ~name:"set_word then extract roundtrips" ~count:200
    QCheck.(pair (int_bound 80) (small_list (int_bound 40)))
    (fun (pos, xs) ->
      let len = 41 in
      let bits =
        List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 xs
      in
      let b = Bitset.create (pos + len) in
      Bitset.set_word b ~pos ~len bits;
      Bitset.extract b ~pos ~len = bits
      && Bitset.to_list b = List.map (( + ) pos) (List.sort_uniq Int.compare xs))

let bitset_of_gen_list l = Bitset.of_list 64 l

let prop_bitset_union_commutes =
  QCheck.Test.make ~name:"bitset union commutes" ~count:200
    QCheck.(pair (small_list (int_bound 63)) (small_list (int_bound 63)))
    (fun (xs, ys) ->
      let a = bitset_of_gen_list xs and b = bitset_of_gen_list ys in
      Bitset.equal (Bitset.union a b) (Bitset.union b a))

let prop_bitset_demorgan =
  QCheck.Test.make ~name:"bitset diff = inter with complement semantics"
    ~count:200
    QCheck.(pair (small_list (int_bound 63)) (small_list (int_bound 63)))
    (fun (xs, ys) ->
      let a = bitset_of_gen_list xs and b = bitset_of_gen_list ys in
      (* (a \ b) ∪ (a ∩ b) = a *)
      Bitset.equal (Bitset.union (Bitset.diff a b) (Bitset.inter a b)) a)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset to_list/of_list roundtrip" ~count:200
    QCheck.(small_list (int_bound 63))
    (fun xs ->
      let sorted = List.sort_uniq Int.compare xs in
      Bitset.to_list (bitset_of_gen_list xs) = sorted)

let prop_bitset_hash_equal =
  QCheck.Test.make ~name:"equal bitsets hash equally" ~count:200
    QCheck.(small_list (int_bound 63))
    (fun xs ->
      let a = bitset_of_gen_list xs and b = bitset_of_gen_list (List.rev xs) in
      Bitset.equal a b && Bitset.hash a = Bitset.hash b)

(* ------------------------------------------------------------------ *)
(* Interner *)

let test_interner () =
  let t = Interner.create () in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  check int_ "first id" 0 a;
  check int_ "second id" 1 b;
  check int_ "re-intern" a (Interner.intern t "alpha");
  check int_ "size" 2 (Interner.size t);
  check Alcotest.(option int_) "find" (Some 1) (Interner.find t "beta");
  check Alcotest.(option int_) "find missing" None (Interner.find t "gamma");
  check Alcotest.string "name" "beta" (Interner.name t 1);
  check (Alcotest.list Alcotest.string) "names" [ "alpha"; "beta" ]
    (Interner.names t);
  Alcotest.check_raises "bad id" (Invalid_argument "Interner.name") (fun () ->
      ignore (Interner.name t 5))

let test_interner_growth () =
  let t = Interner.create () in
  let ids = List.init 100 (fun i -> Interner.intern t (string_of_int i)) in
  check (Alcotest.list int_) "dense ids" (List.init 100 Fun.id) ids;
  check int_ "size" 100 (Interner.size t)

(* ------------------------------------------------------------------ *)
(* Validate *)

let test_validate () =
  let ctx = Validate.create () in
  check bool_ "ok result" true (Validate.result ctx 42 = Ok 42);
  Validate.errorf ctx "first %d" 1;
  Validate.require ctx false "second %s" "two";
  Validate.require ctx true "not recorded";
  check (Alcotest.list Alcotest.string) "errors in order"
    [ "first 1"; "second two" ] (Validate.errors ctx);
  check bool_ "error result" true
    (Validate.result ctx 42 = Error [ "first 1"; "second two" ])

(* ------------------------------------------------------------------ *)
(* Frac *)

let test_frac () =
  let f = Frac.make 2 4 in
  check Alcotest.string "unreduced" "2/4" (Frac.to_string f);
  check bool_ "structural" false (Frac.equal f (Frac.make 1 2));
  check bool_ "value equal" true (Frac.equal_value f (Frac.make 1 2));
  check bool_ "reduce" true (Frac.equal (Frac.reduce f) (Frac.make 1 2));
  check bool_ "ge 0.5" true (Frac.ge f 0.5);
  check bool_ "not ge 0.51" false (Frac.ge f 0.51);
  check bool_ "2/2 >= 0.9" true (Frac.ge (Frac.make 2 2) 0.9);
  check bool_ "3/4 < 0.9" false (Frac.ge (Frac.make 3 4) 0.9);
  check bool_ "reduce zero" true (Frac.equal (Frac.reduce (Frac.make 0 7)) (Frac.make 0 1));
  Alcotest.check_raises "zero denominator"
    (Invalid_argument "Frac.make: non-positive denominator") (fun () ->
      ignore (Frac.make 1 0))

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  check (Alcotest.list int_) "same seed, same stream" xs ys;
  let c = Prng.create ~seed:8 in
  let zs = List.init 20 (fun _ -> Prng.int c 1000) in
  check bool_ "different seed differs" true (xs <> zs)

let test_prng_bounds () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 500 do
    let v = Prng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    let f = Prng.float rng 2.0 in
    if f < 0.0 || f >= 2.0 then Alcotest.fail "float out of bounds";
    let r = Prng.range rng 5 9 in
    if r < 5 || r > 9 then Alcotest.fail "range out of bounds"
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create ~seed:11 in
  let l = List.init 30 Fun.id in
  let s = Prng.shuffle rng l in
  check (Alcotest.list int_) "same elements" l (List.sort Int.compare s)

let test_prng_gaussian_moments () =
  let rng = Prng.create ~seed:5 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Prng.gaussian rng ~mean:10.0 ~stddev:2.0) in
  let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
  check bool_ "mean approx 10" true (Float.abs (mean -. 10.0) < 0.1)

(* ------------------------------------------------------------------ *)
(* Listx *)

let test_listx () =
  check
    (Alcotest.list (Alcotest.pair int_ (Alcotest.list int_)))
    "group_by"
    [ (0, [ 0; 2; 4 ]); (1, [ 1; 3 ]) ]
    (Listx.group_by ~key:(fun x -> x mod 2) [ 0; 1; 2; 3; 4 ]);
  check (Alcotest.list int_) "dedup keeps first" [ 3; 1; 2 ]
    (Listx.dedup [ 3; 1; 3; 2; 1 ]);
  check int_ "cartesian size" 6 (List.length (Listx.cartesian [ 1; 2 ] [ 3; 4; 5 ]));
  check int_ "sum_by" 6 (Listx.sum_by Fun.id [ 1; 2; 3 ]);
  check int_ "count" 2 (Listx.count (fun x -> x > 1) [ 1; 2; 3 ]);
  check (Alcotest.list int_) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  check (Alcotest.list int_) "take more than len" [ 1 ] (Listx.take 5 [ 1 ]);
  check Alcotest.(option int_) "index_of" (Some 1)
    (Listx.index_of (( = ) 5) [ 4; 5; 6 ]);
  check Alcotest.(option int_) "find_duplicate none" None
    (Listx.find_duplicate Fun.id [ 1; 2; 3 ]);
  check Alcotest.(option int_) "find_duplicate" (Some 2)
    (Listx.find_duplicate Fun.id [ 1; 2; 3; 2 ]);
  check (Alcotest.float 1e-9) "max_byf empty" 0.0 (Listx.max_byf Fun.id [])

(* ------------------------------------------------------------------ *)
(* Texttable *)

let test_texttable () =
  let t = Texttable.create ~header:[ "a"; "bb" ] in
  Texttable.add_row t [ "xxx" ];
  Texttable.add_row t [ "y"; "z" ];
  let rendered = Texttable.render t in
  check bool_ "contains header" true
    (String.length rendered > 0
    && String.sub rendered 0 1 = "a");
  check int_ "line count" 4
    (List.length (String.split_on_char '\n' rendered));
  Alcotest.check_raises "too wide"
    (Invalid_argument "Texttable.add_row: row longer than header") (fun () ->
      Texttable.add_row t [ "1"; "2"; "3" ])

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "prelude"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "set ops" `Quick test_bitset_set_ops;
          Alcotest.test_case "length mismatch" `Quick test_bitset_length_mismatch;
          Alcotest.test_case "zero length" `Quick test_bitset_zero_length;
          Alcotest.test_case "word extract/set" `Quick test_bitset_words;
        ] );
      qsuite "bitset properties"
        [
          prop_bitset_union_commutes;
          prop_bitset_demorgan;
          prop_bitset_roundtrip;
          prop_bitset_hash_equal;
          prop_bitset_extract_roundtrip;
        ];
      ( "interner",
        [
          Alcotest.test_case "basic" `Quick test_interner;
          Alcotest.test_case "growth" `Quick test_interner_growth;
        ] );
      ("validate", [ Alcotest.test_case "accumulation" `Quick test_validate ]);
      ("frac", [ Alcotest.test_case "fractions" `Quick test_frac ]);
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        ] );
      ("listx", [ Alcotest.test_case "helpers" `Quick test_listx ]);
      ("texttable", [ Alcotest.test_case "render" `Quick test_texttable ]);
    ]
