(* Regression tests for the fast-path LTS engine (PR 2): parallel frontier
   exploration must produce the exact LTS of the sequential run — state
   numbering, transition order, analysis output — and the integer-keyed
   bisimulation must compute the same partition as the seed's
   string-signature refinement. *)

module Core = Mdp_core
module H = Mdp_scenario.Healthcare
module SH = Mdp_scenario.Smart_home
module Synthetic = Mdp_scenario.Synthetic

let check = Alcotest.check
let int_ = Alcotest.int

let transition_triples lts =
  List.map
    (fun (tr : Core.Plts.transition) ->
      (tr.src, Format.asprintf "%a" Core.Action.pp tr.label, tr.dst))
    (Core.Plts.transitions lts)

let triple = Alcotest.(triple int string int)

(* Sequential vs parallel: the LTSs must be indistinguishable. The raw
   transition list is captured before any analysis — [analyse] annotates
   labels in place. [par_threshold:0] forces the parallel machinery even
   on these small models, which the default threshold would (correctly)
   route through the sequential path. *)
let check_engines name ?profile u options =
  let seq = Core.Generate.run ~options ~jobs:1 u in
  let seq_triples = transition_triples seq in
  let report lts profile =
    Format.asprintf "%a" Core.Disclosure_risk.pp_report
      (Core.Disclosure_risk.analyse u lts profile)
  in
  let seq_report = Option.map (report seq) profile in
  List.iter
    (fun jobs ->
      let ctx fmt = Printf.sprintf ("%s jobs=%d " ^^ fmt) name jobs in
      let par = Core.Generate.run ~options ~jobs ~par_threshold:0 u in
      check int_ (ctx "states") (Core.Plts.num_states seq)
        (Core.Plts.num_states par);
      check int_ (ctx "transitions")
        (Core.Plts.num_transitions seq)
        (Core.Plts.num_transitions par);
      for i = 0 to Core.Plts.num_states seq - 1 do
        if
          not
            (Core.Config.equal
               (Core.Plts.state_data seq i)
               (Core.Plts.state_data par i))
        then Alcotest.failf "%s: state %d differs" (ctx "") i
      done;
      check (Alcotest.list triple) (ctx "transition list") seq_triples
        (transition_triples par);
      match (profile, seq_report) with
      | Some profile, Some expected ->
        check Alcotest.string (ctx "disclosure report") expected
          (report par profile)
      | _ -> ())
    [ 2; 3; 4 ]

let test_healthcare_default () =
  let u = Core.Universe.make H.diagram H.policy in
  check_engines "healthcare" ~profile:H.profile_case_a u
    Core.Generate.default_options

let test_healthcare_granular () =
  let u = Core.Universe.make H.diagram H.policy in
  check_engines "healthcare-granular" ~profile:H.profile_case_a u
    { Core.Generate.default_options with granular_reads = true }

let test_healthcare_deletes () =
  let u = Core.Universe.make H.diagram H.policy in
  check_engines "healthcare-deletes" u
    { Core.Generate.default_options with potential_deletes = true }

let test_smart_home () =
  let u = Core.Universe.make SH.diagram SH.policy in
  check_engines "smart-home" ~profile:SH.profile u
    Core.Generate.default_options

let synthetic_spec (na, nf, fps) =
  {
    Synthetic.seed = 42;
    nactors = na;
    nfields = nf;
    nstores = 2;
    nservices = 2;
    flows_per_service = fps;
  }

let test_synthetic () =
  List.iter
    (fun dims ->
      let spec = synthetic_spec dims in
      let diagram, policy = Synthetic.model spec in
      let u = Core.Universe.make diagram policy in
      let profile = Synthetic.profile spec diagram in
      let na, nf, fps = dims in
      check_engines
        (Printf.sprintf "synthetic-%d-%d-%d" na nf fps)
        ~profile u Core.Generate.default_options)
    [ (2, 4, 3); (4, 6, 4); (6, 8, 5) ]

let test_too_many_states () =
  let u = Core.Universe.make H.diagram H.policy in
  let options = { Core.Generate.default_options with max_states = 5 } in
  List.iter
    (fun jobs ->
      match Core.Generate.run ~options ~jobs ~par_threshold:0 u with
      | exception Mdp_lts.Lts.Too_many_states n ->
        check int_ "limit carried" 5 n
      | _ -> Alcotest.fail "expected Too_many_states")
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Bisimulation: the integer-keyed refinement must compute the partition
   of the seed's string-signature algorithm, reproduced here verbatim. *)

let seed_bisimulation_classes lts ~init_key =
  let n = Core.Plts.num_states lts in
  if n = 0 then []
  else begin
    let label_key l = Format.asprintf "%a" Core.Action.pp l in
    let block = Array.make n 0 in
    let assign keyed =
      let tbl = Hashtbl.create 16 in
      let next = ref 0 in
      for s = 0 to n - 1 do
        let k = keyed s in
        match Hashtbl.find_opt tbl k with
        | Some b -> block.(s) <- b
        | None ->
          Hashtbl.add tbl k !next;
          block.(s) <- !next;
          incr next
      done;
      !next
    in
    let nblocks = ref (assign init_key) in
    let changed = ref true in
    while !changed do
      let signature s =
        let sigs =
          List.map
            (fun (l, d) -> Printf.sprintf "%s>%d" (label_key l) block.(d))
            (Core.Plts.successors lts s)
        in
        Printf.sprintf "%d|%s" block.(s)
          (String.concat ";" (List.sort_uniq String.compare sigs))
      in
      let n' = assign signature in
      changed := n' <> !nblocks;
      nblocks := n'
    done;
    let buckets = Array.make !nblocks [] in
    for s = n - 1 downto 0 do
      buckets.(block.(s)) <- s :: buckets.(block.(s))
    done;
    Array.to_list buckets
  end

let check_bisim name lts ~init_key =
  let classes = Alcotest.(list (list int)) in
  check classes name
    (seed_bisimulation_classes lts ~init_key)
    (Core.Plts.bisimulation_classes lts ~init_key)

let test_bisim_healthcare () =
  let u = Core.Universe.make H.diagram H.policy in
  let lts = Core.Generate.run u in
  check_bisim "trivial key" lts ~init_key:(fun _ -> "");
  check_bisim "out-degree key" lts ~init_key:(fun s ->
      string_of_int (List.length (Core.Plts.successors lts s)))

let test_bisim_synthetic () =
  let diagram, policy = Synthetic.model (synthetic_spec (4, 6, 4)) in
  let u = Core.Universe.make diagram policy in
  let lts = Core.Generate.run u in
  check_bisim "synthetic trivial key" lts ~init_key:(fun _ -> "");
  let q, _ = Core.Plts.quotient lts ~init_key:(fun _ -> "") in
  check int_ "quotient classes"
    (List.length (seed_bisimulation_classes lts ~init_key:(fun _ -> "")))
    (Core.Plts.num_states q)

let () =
  Alcotest.run "perf-engine"
    [
      ( "seq-par equivalence",
        [
          Alcotest.test_case "healthcare default" `Quick test_healthcare_default;
          Alcotest.test_case "healthcare granular" `Quick test_healthcare_granular;
          Alcotest.test_case "healthcare deletes" `Quick test_healthcare_deletes;
          Alcotest.test_case "smart home" `Quick test_smart_home;
          Alcotest.test_case "synthetic" `Quick test_synthetic;
          Alcotest.test_case "max-states guard" `Quick test_too_many_states;
        ] );
      ( "bisimulation",
        [
          Alcotest.test_case "healthcare vs seed" `Quick test_bisim_healthcare;
          Alcotest.test_case "synthetic vs seed" `Quick test_bisim_synthetic;
        ] );
    ]
