(* Tests for the external-memory spill tier (PR 9): under a resident
   byte budget the packed engine evicts sealed arena chunks and sealed
   dedup generations to disk and completes the exploration bounded by
   disk instead of RAM — with byte-identical state numbering for every
   budget and every job count, and with the spill directory torn down
   on every exit path (success via [drop_spill]/GC, [Too_many_states],
   cancellation).

   The models here are synthetic int graphs driven through [Lts.Make]
   directly: a heap-shaped successor function covers all [n] states in
   wide frontiers at near-zero step cost, so the tests can afford state
   counts that overflow shard tables (generation spill needs thousands
   of entries per shard) without the expense of real privacy-model
   steps. *)

module Lts = Mdp_lts.Lts

module IntState = struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
  let pp = Format.pp_print_int
end

module IntLabel = struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
  let pp = Format.pp_print_int
end

module L = Lts.Make (IntState) (IntLabel)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

(* One-word packer: the state is its own payload. *)
let packer1 =
  {
    Lts.pk_words = 1;
    pk_blit = (fun v dst off -> dst.(off) <- v);
    pk_decode = (fun src off -> src.(off));
  }

(* Eight-word packer deriving seven junk words from the state: same
   dedup semantics, but records are several dozen bytes, so even small
   models fill arena chunks — the qcheck property uses it to reach the
   eviction paths with a few thousand states. *)
let packer8 =
  let mixers = [| 1; 2654435761; 40503; 2246822519; 3266489917; 668265263; 374761393; 2654435789 |] in
  {
    Lts.pk_words = 8;
    pk_blit =
      (fun v dst off ->
        for j = 0 to 7 do
          dst.(off + j) <- v * mixers.(j) land max_int
        done);
    pk_decode = (fun src off -> src.(off));
  }

(* Heap numbering mod n: from 0, successors (2i+1, 2i+2) mod n reach
   every state in log-depth, wide frontiers. Label 0/1 picks the
   branch; both of each state's edges are emitted twice so duplicate
   suppression runs on every expansion. *)
let step n i =
  let a = (2 * i) + 1 and b = (2 * i) + 2 in
  [ (0, a mod n); (1, b mod n); (0, a mod n) ]

let explore ?mem_budget ?spill_dir ?label_class ~packing ~jobs n =
  L.explore ~max_states:(n + 10) ~jobs ~par_threshold:0 ~packing ?mem_budget
    ?spill_dir ?label_class ~init:0 ~step:(step n) ()

let same_lts ctx a b =
  check int_ (ctx ^ " states") (L.num_states a) (L.num_states b);
  check int_ (ctx ^ " transitions") (L.num_transitions a)
    (L.num_transitions b);
  for i = 0 to L.num_states a - 1 do
    if L.state_data a i <> L.state_data b i then
      Alcotest.failf "%s: state %d differs" ctx i;
    if L.successors a i <> L.successors b i then
      Alcotest.failf "%s: successors of %d differ" ctx i
  done

(* ------------------------------------------------------------------ *)
(* Budget determinism: the tentpole gate. *)

(* Big enough that shards hold > 4096 entries each, so a tight budget
   forces dedup-generation spill as well as arena-chunk eviction. *)
let big_n = 280_000

let test_budget_determinism () =
  let baseline = explore ~packing:packer1 ~jobs:1 big_n in
  check int_ "covers the whole graph" big_n (L.num_states baseline);
  let peak =
    match L.mem_stats baseline with
    | Some ms -> ms.Lts.ms_total_bytes
    | None -> Alcotest.fail "expected packed backend"
  in
  check bool_ "baseline did not spill" true
    (L.spill_stats baseline = None);
  List.iter
    (fun (frac, budget) ->
      List.iter
        (fun jobs ->
          let ctx = Printf.sprintf "budget=%s jobs=%d" frac jobs in
          let lts = explore ~packing:packer1 ~mem_budget:budget ~jobs big_n in
          same_lts ctx baseline lts;
          L.drop_spill lts)
        [ 1; 4 ])
    [ ("75%", 3 * peak / 4); ("25%", peak / 4) ];
  (* The tight budget must actually have used the disk tier — both
     tiers of it. *)
  let lts = explore ~packing:packer1 ~mem_budget:(peak / 4) ~jobs:1 big_n in
  (match L.spill_stats lts with
  | None -> Alcotest.fail "25% budget did not spill"
  | Some sp ->
    check bool_ "spilled bytes" true (sp.Lts.sp_bytes > 0);
    check bool_ "spilled arena chunks" true (sp.Lts.sp_chunks > 0);
    check bool_ "spilled dedup generations" true (sp.Lts.sp_tables > 0);
    check bool_ "served faults" true (sp.Lts.sp_faults > 0);
    check int_ "budget recorded" (peak / 4) sp.Lts.sp_budget);
  (match L.mem_stats lts with
  | None -> Alcotest.fail "expected packed backend"
  | Some ms ->
    check int_ "resident = total - spilled"
      (ms.Lts.ms_total_bytes - ms.Lts.ms_spill_bytes)
      ms.Lts.ms_resident_bytes;
    check bool_ "budget in mem stats" true
      (ms.Lts.ms_mem_budget = Some (peak / 4)));
  (* Decodes must keep working against the disk tier after sealing. *)
  same_lts "post-compact reread" baseline lts;
  L.drop_spill lts

(* ------------------------------------------------------------------ *)
(* Teardown *)

let fresh_base =
  let k = ref 0 in
  fun () ->
    incr k;
    let base =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mdpriv-spill-test-%d-%d" (Unix.getpid ()) !k)
    in
    Unix.mkdir base 0o700;
    base

let entries base = Array.length (Sys.readdir base)

let rmdir_base base = try Unix.rmdir base with Unix.Unix_error _ -> ()

let test_teardown_success () =
  let base = fresh_base () in
  let n = 100_000 in
  let lts = explore ~packing:packer1 ~mem_budget:65536 ~spill_dir:base ~jobs:1 n in
  check int_ "one spill run under the base" 1 (entries base);
  check bool_ "spilled" true (L.spill_stats lts <> None);
  (* Reads still come off the disk tier before the drop. *)
  check int_ "decode across spilled chunks" 12345 (L.state_data lts 12345);
  L.drop_spill lts;
  check int_ "spill dir removed by drop_spill" 0 (entries base);
  rmdir_base base

let test_teardown_too_many_states () =
  let base = fresh_base () in
  let n = 100_000 in
  (match
     L.explore ~max_states:60_000 ~jobs:1 ~packing:packer1 ~mem_budget:65536
       ~spill_dir:base ~init:0 ~step:(step n) ()
   with
  | exception Lts.Too_many_states limit -> (
    check int_ "limit carried" 60_000 limit;
    check int_ "spill dir removed on abort" 0 (entries base);
    match Lts.last_abort_stats () with
    | None -> Alcotest.fail "no abort stats recorded"
    | Some st ->
      check bool_ "abort budget recorded" true
        (st.Lts.ab_mem_budget = Some 65536);
      check bool_ "abort spill occupancy" true (st.Lts.ab_spill_bytes > 0);
      check bool_ "abort resident bytes" true
        (match st.Lts.ab_resident_bytes with
        | Some rb -> rb > 0
        | None -> false))
  | (_ : L.t) -> Alcotest.fail "expected Too_many_states");
  rmdir_base base

let test_teardown_cancelled () =
  let base = fresh_base () in
  let n = 100_000 in
  let tok = Mdp_obs.Cancel.create () in
  let calls = ref 0 in
  let step i =
    incr calls;
    (* Fire mid-run, well after the first evictions at this budget. *)
    if !calls = 50_000 then Mdp_obs.Cancel.cancel tok;
    step n i
  in
  (match
     L.explore ~max_states:(n + 10) ~jobs:1 ~packing:packer1 ~cancel:tok
       ~mem_budget:65536 ~spill_dir:base ~init:0 ~step ()
   with
  | exception Mdp_obs.Cancel.Cancelled _ ->
    check int_ "spill dir removed on cancel" 0 (entries base)
  | (_ : L.t) -> Alcotest.fail "expected Cancelled");
  rmdir_base base

(* ------------------------------------------------------------------ *)
(* Per-store reachability cones (satellite of PR 9) *)

(* Classes: label 0 -> class 0, label 1 -> class 1, label 2 -> -1 (no
   store). The extra label-2 self-loop checks that unclassified labels
   are counted nowhere. *)
let cone_step n i =
  (2, i) :: step n i

let cone_class l = if l = 2 then -1 else l

let test_cone_stats () =
  let n = 5_000 in
  let run ?packing jobs =
    L.explore ~max_states:(n + 10) ~jobs ~par_threshold:0 ?packing
      ~label_class:cone_class ~init:0 ~step:(cone_step n) ()
  in
  let boxed = run 1 in
  let cones lts =
    match L.store_cone_stats lts with
    | Some c -> c
    | None -> Alcotest.fail "expected cone stats"
  in
  let expected = cones boxed in
  check int_ "two classes" 2 (Array.length expected);
  Array.iteri
    (fun cls (states, trans) ->
      check bool_ (Printf.sprintf "class %d has states" cls) true (states > 0);
      check bool_ (Printf.sprintf "class %d has transitions" cls) true
        (trans > 0);
      check bool_ (Printf.sprintf "class %d states bounded" cls) true
        (states <= L.num_states boxed))
    expected;
  (* Classed transitions + the unclassified self-loops account for the
     whole LTS: duplicate emissions were suppressed from both. *)
  check int_ "classes + selfloops = transitions"
    (L.num_transitions boxed)
    (Array.fold_left (fun acc (_, tr) -> acc + tr) 0 expected
    + L.num_states boxed);
  List.iter
    (fun (name, lts) ->
      check
        Alcotest.(array (pair int_ int_))
        (name ^ " matches boxed") expected (cones lts))
    [
      ("boxed jobs=4", run 4);
      ("packed jobs=1", run ~packing:packer1 1);
      ("packed jobs=4", run ~packing:packer1 4);
    ];
  check bool_ "no classifier, no cones" true
    (L.store_cone_stats (explore ~packing:packer1 ~jobs:1 100) = None)

(* ------------------------------------------------------------------ *)
(* Random budgets stay byte-identical (qcheck) *)

let prop_random_budget =
  QCheck.Test.make ~name:"random budget/jobs byte-identical" ~count:12
    QCheck.(
      triple (int_range 500 6_000) (int_range 0 (256 * 1024)) (int_range 1 4))
    (fun (n, budget, jobs) ->
      let baseline = explore ~packing:packer8 ~jobs:1 n in
      let lts = explore ~packing:packer8 ~mem_budget:budget ~jobs n in
      let ok = ref (L.num_states baseline = L.num_states lts) in
      for i = 0 to L.num_states baseline - 1 do
        ok :=
          !ok
          && L.state_data baseline i = L.state_data lts i
          && L.successors baseline i = L.successors lts i
      done;
      L.drop_spill lts;
      !ok)

let () =
  Alcotest.run "spill"
    [
      ( "external-memory",
        [
          Alcotest.test_case "budget determinism" `Quick
            test_budget_determinism;
          Alcotest.test_case "teardown on success" `Quick
            test_teardown_success;
          Alcotest.test_case "teardown on state limit" `Quick
            test_teardown_too_many_states;
          Alcotest.test_case "teardown on cancel" `Quick
            test_teardown_cancelled;
          QCheck_alcotest.to_alcotest prop_random_budget;
        ] );
      ("cones", [ Alcotest.test_case "store cones" `Quick test_cone_stats ]);
    ]
