(* Cone-scoped incremental re-exploration (PR 10): a Read/Write ACL
   revocation confined to one store re-explores only the affected
   store-class fragment — seeded from the cone sources recorded during
   the previous exploration — and merges back with stable numbering.

   The gates here: the recorded cone summaries are identical across
   backends, job counts and spill budgets; an incremental run over a
   cone-eligible edit is byte-identical (report, summary and cone
   summaries) to a cold run of the edited model under every one of
   those configurations; and the what-if [Cone] outcome matches the
   exact diff as sorted sets. *)

module Core = Mdp_core
module Synth = Mdp_scenario.Synthetic
module Lts = Mdp_lts.Lts

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

(* Small enough to cold-run dozens of times, big enough that store
   cones are proper sub-regions of the LTS. *)
let spec_name = "synthetic:6-8-4@2"

let synth_model name =
  match Synth.spec_of_string name with
  | Some (Ok spec) ->
    let diagram, policy = Synth.model spec in
    (spec, diagram, policy)
  | _ -> Alcotest.fail ("bad spec " ^ name)

let base ?(options = Core.Generate.default_options) ?(jobs = 1) name =
  let spec, diagram, policy = synth_model name in
  let profile = Synth.profile spec diagram in
  match Core.Analysis.run_checked ~options ~profile ~jobs diagram policy with
  | Ok t -> t
  | Error f -> Alcotest.fail (Core.Analysis.failure_message f)

let render t =
  Core.Report.to_string t ^ "\n----\n"
  ^ Format.asprintf "%a" Core.Analysis.pp_summary t

let cold ?jobs (params : Core.Analysis.params) (inputs : Core.Edit.inputs) =
  match
    Core.Analysis.run_checked ~options:params.Core.Analysis.options
      ~matrix:params.matrix ~model:params.model
      ?profile:inputs.Core.Edit.profile ~bindings:inputs.Core.Edit.bindings
      ?jobs inputs.Core.Edit.diagram inputs.Core.Edit.policy
  with
  | Ok t -> t
  | Error f -> Alcotest.fail (Core.Analysis.failure_message f)

let cone_stats lts =
  match Core.Plts.store_cone_stats lts with
  | Some a -> Array.to_list a
  | None -> Alcotest.fail "exploration recorded no store cones"

let packed_peak lts =
  match Core.Plts.mem_stats lts with
  | Some ms -> ms.Lts.ms_total_bytes
  | None -> Alcotest.fail "expected the packed backend"

(* The backend/budget matrix of satellite 4. [peak] is the packed
   baseline's resident size; 75% of it forces the spill tier on. *)
let configs peak =
  [
    ("packed", Core.Generate.default_options);
    ("boxed", { Core.Generate.default_options with packed = false });
    ( "spill75",
      { Core.Generate.default_options with mem_budget = Some (3 * peak / 4) }
    );
  ]

let whatif_base analysis =
  match Core.Whatif.prepare analysis with
  | Ok b -> b
  | Error e -> Alcotest.fail e

(* The ACL-sweep candidates the classifier answers via the cone walk. *)
let census analysis =
  let b = whatif_base analysis in
  let outcomes =
    List.map
      (fun e ->
        match Core.Whatif.eval_edit b e with
        | Ok o -> o
        | Error err -> Alcotest.fail err)
      (Core.Whatif.acl_candidates b)
  in
  let count c =
    List.length
      (List.filter (fun o -> o.Core.Whatif.classification = c) outcomes)
  in
  (outcomes, count)

(* ------------------------------------------------------------------ *)
(* Cone summaries are backend/jobs/budget-independent. *)

let test_cone_stats_equivalence () =
  let baseline = base spec_name in
  let expected = cone_stats baseline.Core.Analysis.lts in
  check bool_ "cones are non-trivial" true
    (List.exists (fun (s, _) -> s > 0) expected);
  let peak = packed_peak baseline.Core.Analysis.lts in
  List.iter
    (fun (cname, options) ->
      List.iter
        (fun jobs ->
          let t = base ~options ~jobs spec_name in
          check bool_
            (Printf.sprintf "%s jobs=%d cone stats identical" cname jobs)
            true
            (cone_stats t.Core.Analysis.lts = expected))
        [ 1; 4 ])
    (configs peak)

(* ------------------------------------------------------------------ *)
(* The sweep census: most former full-rerun ACL candidates are now
   answered through the cone walk (the PR 10 acceptance shape). *)

let test_census () =
  let outcomes, count = census (base spec_name) in
  let cone = count Core.Whatif.Cone
  and full = count Core.Whatif.Full_rerun in
  check bool_ "cone candidates exist" true (cone > 0);
  check bool_ "at least half of invalidating candidates use the cone path"
    true
    (2 * cone >= cone + full);
  (* Every cone outcome is computed: it carries a diff and a worst
     level even though the sweep ran without [~exact]. *)
  List.iter
    (fun o ->
      if o.Core.Whatif.classification = Core.Whatif.Cone then (
        check bool_ "cone outcome carries a diff" true (o.Core.Whatif.diff <> None);
        check bool_ "cone outcome carries worst_after" true
          (o.Core.Whatif.worst_after <> None)))
    outcomes

(* ------------------------------------------------------------------ *)
(* Byte-identity of incremental runs over cone-eligible edits, across
   the full backend/jobs/budget matrix, plus diff-vs-truth for the
   what-if outcome. *)

let normalize (d : Core.Risk_diff.t) =
  {
    d with
    Core.Risk_diff.removed = List.sort compare d.removed;
    added = List.sort compare d.added;
    changed = List.sort compare d.changed;
  }

let check_candidates ctx analysis candidates =
  let b = whatif_base analysis in
  let before = Option.get analysis.Core.Analysis.disclosure in
  List.iter
    (fun edit ->
      let o =
        match Core.Whatif.eval_edit b edit with
        | Ok o -> o
        | Error e -> Alcotest.fail e
      in
      let name = Core.Edit.to_string edit in
      check bool_
        (Printf.sprintf "%s: %s classified cone" ctx name)
        true
        (o.Core.Whatif.classification = Core.Whatif.Cone);
      let incr = Core.Analysis.run_incremental ~previous:analysis [ edit ] in
      let c = cold incr.Core.Analysis.params (Core.Analysis.inputs_of incr) in
      check string_
        (Printf.sprintf "%s: %s byte-identical to cold" ctx name)
        (render c) (render incr);
      check bool_
        (Printf.sprintf "%s: %s cone stats match cold" ctx name)
        true
        (cone_stats incr.Core.Analysis.lts = cone_stats c.Core.Analysis.lts);
      let after = Option.get incr.Core.Analysis.disclosure in
      let truth = Core.Risk_diff.diff ~before ~after in
      check bool_
        (Printf.sprintf "%s: %s diff matches truth" ctx name)
        true
        (Option.map normalize o.Core.Whatif.diff = Some (normalize truth));
      check bool_
        (Printf.sprintf "%s: %s worst level matches" ctx name)
        true
        (o.Core.Whatif.worst_after
        = Some (Core.Disclosure_risk.max_level after)))
    candidates

let cone_candidates analysis =
  let outcomes, _ = census analysis in
  List.filter_map
    (fun o ->
      if o.Core.Whatif.classification = Core.Whatif.Cone then
        Some o.Core.Whatif.edit
      else None)
    outcomes

(* ------------------------------------------------------------------ *)
(* The timed walk has two implementations: the arithmetic pair walk
   (packed fast path — successors derived from the old edge rows by
   integer ops) and the generic exact-stepping walk it falls back to.
   Every candidate outcome must be identical between them; the
   [MDPRIV_REGEN_GENERIC] escape hatch forces the generic walk. *)

let eval_both b edit =
  let fast =
    match Core.Whatif.eval_edit b edit with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Unix.putenv "MDPRIV_REGEN_GENERIC" "1";
  let slow =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "MDPRIV_REGEN_GENERIC" "")
      (fun () ->
        match Core.Whatif.eval_edit b edit with
        | Ok o -> o
        | Error e -> Alcotest.fail e)
  in
  (fast, slow)

let test_walks_agree () =
  List.iter
    (fun (ctx, options) ->
      let analysis = base ~options spec_name in
      let b = whatif_base analysis in
      List.iter
        (fun edit ->
          let fast, slow = eval_both b edit in
          let name = Printf.sprintf "%s %s" ctx (Core.Edit.to_string edit) in
          check bool_
            (Printf.sprintf "%s: classification agrees" name)
            true
            (fast.Core.Whatif.classification = slow.Core.Whatif.classification);
          check bool_
            (Printf.sprintf "%s: diff agrees" name)
            true
            (Option.map normalize fast.Core.Whatif.diff
            = Option.map normalize slow.Core.Whatif.diff);
          check bool_
            (Printf.sprintf "%s: worst level agrees" name)
            true
            (fast.Core.Whatif.worst_after = slow.Core.Whatif.worst_after))
        (Core.Whatif.acl_candidates b))
    [
      ("coarse", Core.Generate.default_options);
      ( "granular",
        { Core.Generate.default_options with granular_reads = true } );
    ]

(* Every cone candidate, default configuration. *)
let test_byte_identity_default () =
  let analysis = base spec_name in
  let candidates = cone_candidates analysis in
  check bool_ "enough candidates to be meaningful" true
    (List.length candidates >= 10);
  check_candidates "packed jobs=1" analysis candidates

(* A slice of the candidates across the rest of the matrix — each
   configuration re-bases so the previous LTS being patched was itself
   built under that backend/budget. *)
let test_byte_identity_matrix () =
  let baseline = base spec_name in
  let peak = packed_peak baseline.Core.Analysis.lts in
  let slice =
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    take 4 (cone_candidates baseline)
  in
  check int_ "slice size" 4 (List.length slice);
  List.iter
    (fun (cname, options) ->
      List.iter
        (fun jobs ->
          let analysis = base ~options ~jobs spec_name in
          check_candidates
            (Printf.sprintf "%s jobs=%d" cname jobs)
            analysis slice)
        [ 1; 4 ])
    (configs peak)

let () =
  Alcotest.run "cone"
    [
      ( "cones",
        [
          Alcotest.test_case "cone stats backend/jobs/budget-independent"
            `Quick test_cone_stats_equivalence;
          Alcotest.test_case "sweep census favours the cone path" `Quick
            test_census;
          Alcotest.test_case "arithmetic and exact-stepping walks agree"
            `Quick test_walks_agree;
        ] );
      ( "identity",
        [
          Alcotest.test_case "all cone candidates byte-identical (default)"
            `Quick test_byte_identity_default;
          Alcotest.test_case "backend/jobs/budget matrix" `Quick
            test_byte_identity_matrix;
        ] );
    ]
