(* The observability layer: deterministic shard merging for any job
   count, disabled-mode as a true no-op (recording entry points leave
   no trace AND analysis output is byte-identical with metrics on or
   off), and exporter round-trips. *)

module Core = Mdp_core
module H = Mdp_scenario.Healthcare
module Metrics = Mdp_obs.Metrics
module Clock = Mdp_obs.Clock
module Json = Mdp_prelude.Json

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* Run [f] with metrics forced to [on], restoring the previous switch
   (tests in one binary share the global). *)
let with_metrics on f =
  let before = Metrics.enabled () in
  Metrics.set_enabled on;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled before) f

let test_clock_monotonic () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  check bool_ "clock never goes backwards" true (b >= a);
  let (), dt = Clock.time (fun () -> ignore (Sys.opaque_identity (List.init 1000 Fun.id))) in
  check bool_ "elapsed time is non-negative" true (dt >= 0.)

(* Counters and histograms merge to the same snapshot no matter how
   the work is sharded across domains. *)
let test_merge_deterministic () =
  with_metrics true @@ fun () ->
  let n = 10_000 in
  let run jobs =
    Metrics.reset ();
    Mdp_prelude.Parallel.iter_chunks ~jobs n (fun lo hi ->
        for i = lo to hi - 1 do
          Metrics.incr "t/events";
          Metrics.add "t/sum" i;
          Metrics.observe "t/width" (i mod 257)
        done);
    Metrics.snapshot ()
  in
  let base = run 1 in
  check int_ "baseline counter" n (List.assoc "t/events" base.Metrics.counters);
  check int_ "baseline sum" (n * (n - 1) / 2)
    (List.assoc "t/sum" base.Metrics.counters);
  List.iter
    (fun jobs ->
      let s = run jobs in
      check bool_
        (Printf.sprintf "jobs=%d counters match jobs=1" jobs)
        true (s.Metrics.counters = base.Metrics.counters);
      check bool_
        (Printf.sprintf "jobs=%d histograms match jobs=1" jobs)
        true (s.Metrics.histograms = base.Metrics.histograms))
    [ 2; 3; 4; 8 ];
  Metrics.reset ()

(* With the switch off, every recording entry point is a no-op: the
   snapshot stays empty. *)
let test_disabled_no_op () =
  with_metrics false @@ fun () ->
  Metrics.reset ();
  Metrics.incr "off/c";
  Metrics.add "off/c" 41;
  Metrics.observe "off/h" 9;
  let r = Metrics.span "off/span" (fun () -> 17) in
  check int_ "span still returns the result" 17 r;
  let s = Metrics.snapshot () in
  check bool_ "no counters recorded" true (s.Metrics.counters = []);
  check bool_ "no histograms recorded" true (s.Metrics.histograms = []);
  check bool_ "no spans recorded" true (s.Metrics.spans = [])

(* Flipping the metrics switch must not change a single byte of
   analysis output: same LTS, same rendered disclosure report. *)
let test_analysis_byte_identical () =
  let render () =
    let u = Core.Universe.make H.diagram H.policy in
    let lts = Core.Generate.run u in
    let report = Core.Disclosure_risk.analyse u lts H.profile_case_a in
    Format.asprintf "%d/%d %a"
      (Core.Plts.num_states lts) (Core.Plts.num_transitions lts)
      Core.Disclosure_risk.pp_report report
  in
  let off = with_metrics false render in
  let on = with_metrics true (fun () -> Metrics.reset (); render ()) in
  check Alcotest.string "metrics on/off output" off on;
  (* and the instrumented run actually recorded something *)
  let s = with_metrics true Metrics.snapshot in
  check bool_ "instrumented run recorded counters" true
    (List.mem_assoc "lts/states" s.Metrics.counters);
  Metrics.reset ()

let test_jsonl_round_trip () =
  with_metrics true @@ fun () ->
  Metrics.reset ();
  ignore (Metrics.span "rt/alpha" (fun () -> 1));
  ignore (Metrics.span "rt/beta" (fun () -> 2));
  let s = Metrics.snapshot () in
  let lines =
    Metrics.spans_to_jsonl s |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check int_ "one line per span" (List.length s.Metrics.spans)
    (List.length lines);
  List.iter2
    (fun line (sp : Metrics.span_record) ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "unparsable JSONL line %S: %s" line e
      | Ok j ->
          let str k = Option.bind (Json.member k j) Json.to_str_opt in
          let num k = Option.bind (Json.member k j) Json.to_int_opt in
          check (Alcotest.option Alcotest.string) "name"
            (Some sp.Metrics.sp_name) (str "name");
          check (Alcotest.option int_) "start_ns"
            (Some sp.Metrics.sp_start_ns) (num "start_ns");
          check (Alcotest.option int_) "dur_ns"
            (Some sp.Metrics.sp_dur_ns) (num "dur_ns");
          check (Alcotest.option int_) "domain"
            (Some sp.Metrics.sp_domain) (num "domain"))
    lines s.Metrics.spans;
  Metrics.reset ()

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_prometheus_export () =
  with_metrics true @@ fun () ->
  Metrics.reset ();
  Metrics.add "prom/events" 42;
  Metrics.observe "prom/width" 5;
  Metrics.observe "prom/width" 300;
  let s = Metrics.snapshot () in
  let text = Metrics.to_prometheus s in
  check bool_ "counter series present" true
    (contains ~needle:"mdpriv_prom_events_total 42" text);
  check bool_ "histogram count present" true
    (contains ~needle:"mdpriv_prom_width_count 2" text);
  check bool_ "histogram sum present" true
    (contains ~needle:"mdpriv_prom_width_sum 305" text);
  check bool_ "+Inf bucket present" true
    (contains ~needle:"le=\"+Inf\"} 2" text);
  Metrics.reset ()

let test_phase_table () =
  with_metrics true @@ fun () ->
  Metrics.reset ();
  ignore (Metrics.span "phase/explore" (fun () -> Sys.opaque_identity 1));
  ignore (Metrics.span "phase/analyse" (fun () -> Sys.opaque_identity 2));
  ignore (Metrics.span "other/span" (fun () -> Sys.opaque_identity 3));
  let s = Metrics.snapshot () in
  let rows = Metrics.phase_table ~wall_s:1.0 s in
  check int_ "two phase rows" 2 (List.length rows);
  check bool_ "execution order preserved" true
    (List.map (fun (n, _, _) -> n) rows = [ "explore"; "analyse" ]);
  List.iter
    (fun (_, secs, frac) ->
      check bool_ "seconds non-negative" true (secs >= 0.);
      check bool_ "fraction = secs / wall" true
        (Float.abs (frac -. secs) < 1e-9))
    rows;
  Metrics.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "metrics",
        [
          Alcotest.test_case "merge deterministic across jobs" `Quick
            test_merge_deterministic;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_no_op;
          Alcotest.test_case "analysis output byte-identical" `Quick
            test_analysis_byte_identical;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "prometheus text" `Quick test_prometheus_export;
          Alcotest.test_case "phase table" `Quick test_phase_table;
        ] );
    ]
