(* Tests for the resilient serve daemon: wire protocol, LRU cache,
   circuit breaker, cooperative cancellation through the exploration
   and population engines (including DLS hygiene across cancelled
   runs), engine-level caching byte-identity, admission control, and a
   soak smoke run. *)

module Core = Mdp_core
module S = Mdp_serve
module Json = Mdp_prelude.Json
module Cancel = Mdp_obs.Cancel
module Synthetic = Mdp_scenario.Synthetic

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let spec_exn name =
  match Synthetic.spec_of_string name with
  | Some (Ok spec) -> spec
  | _ -> Alcotest.fail ("bad synthetic spec: " ^ name)

let universe_of name =
  let diagram, policy = Synthetic.model (spec_exn name) in
  Core.Universe.make diagram policy

(* A model whose full exploration takes far longer than the deadline
   budgets used below, so cancellation always lands mid-run. *)
let big_model = "synthetic:9-11-6"
let small_model = "synthetic:4-6-3"

(* ------------------------------------------------------------------ *)
(* Synthetic spec parsing (shared CLI/daemon model naming) *)

let test_spec_of_string () =
  let s = spec_exn "synthetic:5-8-4" in
  check int_ "actors" 5 s.Synthetic.nactors;
  check int_ "fields" 8 s.Synthetic.nfields;
  check int_ "flows" 4 s.Synthetic.flows_per_service;
  check int_ "default seed" 42 s.Synthetic.seed;
  check int_ "seeded" 9 (spec_exn "synthetic:5-8-4@9").Synthetic.seed;
  check int_ "dash form" 3 (spec_exn "synthetic-3-4-2").Synthetic.nactors;
  check bool_ "file names pass through" true
    (Synthetic.spec_of_string "models/healthcare.mdp" = None);
  match Synthetic.spec_of_string "synthetic:5-8" with
  | Some (Error msg) ->
    check bool_ "error names the expected shape" true (contains msg "NACTORS")
  | _ -> Alcotest.fail "malformed spec must be Some (Error _)"

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_parse_request () =
  let line =
    {|{"id":"r1","cmd":"risk","model":"synthetic:4-6-3","agree":["Service0"],|}
    ^ {|"sensitivity":{"Field0":0.9},"deadline_ms":250,"max_states":5000,|}
    ^ {|"allow_stale":true}|}
  in
  match S.Protocol.parse_request line with
  | Ok { req_id = Some "r1"; cmd = S.Protocol.Analyse a } ->
    (match a.kind with
    | S.Protocol.Risk p ->
      check bool_ "agree" true (p.agreed = [ "Service0" ]);
      check bool_ "sensitivity" true (p.sensitivities = [ ("Field0", 0.9) ])
    | _ -> Alcotest.fail "expected risk kind");
    check bool_ "deadline" true (a.deadline_ms = Some 250);
    check bool_ "max states" true (a.max_states = Some 5000);
    check bool_ "allow stale" true a.allow_stale
  | _ -> Alcotest.fail "request did not parse"

let test_parse_errors_keep_id () =
  (match S.Protocol.parse_request {|{"id":"x7","cmd":"frobnicate"}|} with
  | Error (Some "x7", msg) ->
    check bool_ "mentions the cmd" true (contains msg "frobnicate")
  | _ -> Alcotest.fail "unknown cmd must keep the id");
  (match S.Protocol.parse_request {|{"id":12,"cmd":"risk"}|} with
  | Error (Some "12", _) -> ()
  | _ -> Alcotest.fail "numeric id must be recovered");
  (match S.Protocol.parse_request "[1,2]" with
  | Error (None, _) -> ()
  | _ -> Alcotest.fail "non-object must fail without id");
  match S.Protocol.parse_request "{nope" with
  | Error (None, _) -> ()
  | _ -> Alcotest.fail "broken JSON must fail"

let test_parse_whatif () =
  let line =
    {|{"id":"w1","cmd":"whatif","model":"synthetic:4-6-3","agree":["Service0"],|}
    ^ {|"sensitivity":{"Field0":0.4},"edits":["revoke:Actor0:delete:Store0"],|}
    ^ {|"diff":true}|}
  in
  (match S.Protocol.parse_request line with
  | Ok { req_id = Some "w1"; cmd = S.Protocol.Analyse a } -> (
    match a.kind with
    | S.Protocol.Whatif w ->
      check bool_ "edits" true (w.wedits = [ "revoke:Actor0:delete:Store0" ]);
      check bool_ "diff" true w.wdiff;
      check bool_ "profile agree" true (w.wprofile.agreed = [ "Service0" ]);
      check bool_ "no size, no wpop" true (w.wpop = None)
    | _ -> Alcotest.fail "expected whatif kind")
  | _ -> Alcotest.fail "whatif request did not parse");
  (let line =
     {|{"id":"w3","cmd":"whatif","model":"synthetic:4-6-3",|}
     ^ {|"edits":["sensitivity:Field0=0.9"],"size":500,"pop_seed":9}|}
   in
   match S.Protocol.parse_request line with
   | Ok { cmd = S.Protocol.Analyse { kind = S.Protocol.Whatif w; _ }; _ } ->
     check bool_ "size opts into wpop" true
       (w.wpop
       = Some { S.Protocol.psize = 500; pseed = 9; pagree = 0.5 })
   | _ -> Alcotest.fail "whatif+size request did not parse");
  (match
     S.Protocol.parse_request
       ({|{"id":"w4","cmd":"whatif","model":"synthetic:4-6-3",|}
       ^ {|"edits":["sensitivity:Field0=0.9"],"size":0}|})
   with
  | Error (Some "w4", msg) ->
    check bool_ "bad size rejected" true (contains msg "size")
  | _ -> Alcotest.fail "non-positive size must be rejected");
  match
    S.Protocol.parse_request
      {|{"id":"w2","cmd":"whatif","model":"synthetic:4-6-3","edits":[]}|}
  with
  | Error (Some "w2", msg) ->
    check bool_ "empty edits rejected" true (contains msg "edits")
  | _ -> Alcotest.fail "empty edits must be rejected"

let test_response_roundtrip () =
  let r =
    S.Protocol.response ~id:(Some "q1") ~cached:true ~elapsed_ms:12.5
      ~body:(Json.Obj [ ("x", Json.int 3) ])
      (S.Protocol.Cancelled `Deadline)
  in
  let line = S.Protocol.response_to_line r in
  check bool_ "single line" true (not (String.contains line '\n'));
  match S.Protocol.response_of_line line with
  | Ok r' ->
    check bool_ "id" true (r'.resp_id = Some "q1");
    check bool_ "deadline reason survives" true
      (r'.status = S.Protocol.Cancelled `Deadline);
    check bool_ "cached" true r'.cached;
    check bool_ "body" true (r'.body = Json.Obj [ ("x", Json.Num 3.0) ])
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* LRU cache *)

let test_cache_lru_eviction () =
  let c = S.Cache.create ~name:"t/lru" ~cap:2 ~stale_cap:2 () in
  S.Cache.put c "a" 1;
  S.Cache.put c "b" 2;
  check bool_ "a hit refreshes recency" true (S.Cache.find c "a" = Some 1);
  S.Cache.put c "c" 3;
  check bool_ "b was the LRU victim" true (S.Cache.find c "b" = None);
  check bool_ "a survived" true (S.Cache.find c "a" = Some 1);
  check bool_ "c present" true (S.Cache.find c "c" = Some 3);
  check bool_ "evicted b still served stale" true
    (S.Cache.find_stale c "b" = Some 2);
  let s = S.Cache.stats c in
  check int_ "len" 2 s.S.Cache.len;
  check int_ "evictions" 1 s.S.Cache.evictions;
  check int_ "stale len" 1 s.S.Cache.stale_len;
  (* Second-chance answers are accounted separately from plain hits:
     the "b" stale serve above must not inflate the hit count. *)
  check int_ "stale hit counted" 1 s.S.Cache.stale_hits;
  let hits_before = s.S.Cache.hits in
  check bool_ "live find_stale answers" true (S.Cache.find_stale c "a" = Some 1);
  let s' = S.Cache.stats c in
  check int_ "live find_stale is a plain hit" (hits_before + 1) s'.S.Cache.hits;
  check int_ "no extra stale hit" 1 s'.S.Cache.stale_hits;
  check bool_ "unknown key is a miss" true (S.Cache.find_stale c "zz" = None)

let test_cache_bounded_under_churn () =
  let c = S.Cache.create ~name:"t/churn" ~cap:4 ~stale_cap:3 () in
  for i = 0 to 499 do
    S.Cache.put c (string_of_int (i mod 37)) i;
    (* Read-heavy phases must not grow internal bookkeeping without
       bound either; [stats] reflects the live table only. *)
    ignore (S.Cache.find c (string_of_int (i mod 11)))
  done;
  let s = S.Cache.stats c in
  check bool_ "len bounded" true (s.S.Cache.len <= 4);
  check bool_ "stale bounded" true (s.S.Cache.stale_len <= 3);
  check bool_ "evictions happened" true (s.S.Cache.evictions > 0);
  (* Updating an existing key must not evict. *)
  let c2 = S.Cache.create ~name:"t/upd" ~cap:2 () in
  S.Cache.put c2 "k" 1;
  S.Cache.put c2 "k" 2;
  check bool_ "update in place" true (S.Cache.find c2 "k" = Some 2);
  check int_ "no eviction on update" 0 (S.Cache.stats c2).S.Cache.evictions

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let test_breaker_trips_and_recovers () =
  let b = S.Breaker.create ~threshold:2 ~cooldown_ms:40 () in
  check bool_ "starts closed" true (S.Breaker.admit b "m" = S.Breaker.Proceed);
  S.Breaker.failure b "m";
  check bool_ "one failure stays closed" true
    (S.Breaker.admit b "m" = S.Breaker.Proceed);
  S.Breaker.failure b "m";
  (match S.Breaker.admit b "m" with
  | S.Breaker.Fast_fail _ -> ()
  | S.Breaker.Proceed -> Alcotest.fail "threshold failures must open");
  check int_ "one trip" 1 (S.Breaker.trips b);
  check int_ "counted open" 1 (S.Breaker.open_count b);
  check bool_ "other keys unaffected" true
    (S.Breaker.admit b "other" = S.Breaker.Proceed);
  Unix.sleepf 0.06;
  (* Cooldown over: exactly one probe is admitted. *)
  check bool_ "probe admitted" true (S.Breaker.admit b "m" = S.Breaker.Proceed);
  (match S.Breaker.admit b "m" with
  | S.Breaker.Fast_fail _ -> ()
  | S.Breaker.Proceed -> Alcotest.fail "second concurrent probe must fast-fail");
  S.Breaker.success b "m";
  check bool_ "probe success closes" true
    (S.Breaker.admit b "m" = S.Breaker.Proceed);
  check int_ "nothing open" 0 (S.Breaker.open_count b)

let test_breaker_failed_probe_reopens () =
  let b = S.Breaker.create ~threshold:1 ~cooldown_ms:40 () in
  S.Breaker.failure b "m";
  (match S.Breaker.admit b "m" with
  | S.Breaker.Fast_fail _ -> ()
  | S.Breaker.Proceed -> Alcotest.fail "threshold 1 must open immediately");
  Unix.sleepf 0.06;
  check bool_ "probe admitted" true (S.Breaker.admit b "m" = S.Breaker.Proceed);
  S.Breaker.failure b "m";
  match S.Breaker.admit b "m" with
  | S.Breaker.Fast_fail _ -> check int_ "re-trip counted" 2 (S.Breaker.trips b)
  | S.Breaker.Proceed -> Alcotest.fail "failed probe must reopen"

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation through the exploration engine *)

let dot_of u lts = Core.Lts_render.to_dot u lts

(* A cancelled run must leave no residue: the same universe explored
   again (un-cancelled) must match a run on a fresh universe byte for
   byte — this is what guards the Domain.DLS read-memo hygiene. *)
let cancelled_then_clean ~jobs ~cancel model =
  let u = universe_of model in
  (match Core.Generate.run ~jobs ~cancel u with
  | _ -> Alcotest.fail "expected cancellation"
  | exception Cancel.Cancelled _ -> ());
  let again = Core.Generate.run ~jobs u in
  let fresh = Core.Generate.run ~jobs (universe_of model) in
  check string_
    (Printf.sprintf "jobs=%d: post-cancel run byte-identical to fresh" jobs)
    (dot_of (universe_of model) fresh)
    (dot_of u again)

let test_cancel_pre_fired_token () =
  List.iter
    (fun jobs ->
      let c = Cancel.create () in
      Cancel.cancel c;
      cancelled_then_clean ~jobs ~cancel:c small_model)
    [ 1; 4 ]

let test_cancel_mid_run_deadline () =
  List.iter
    (fun jobs ->
      let u = universe_of big_model in
      let options =
        { Core.Generate.default_options with max_states = 1_000_000 }
      in
      let cancel = Cancel.with_budget_ms 5 in
      let t0 = Mdp_obs.Clock.now_ns () in
      (match Core.Generate.run ~options ~jobs ~cancel u with
      | _ -> Alcotest.fail "expected mid-run deadline cancellation"
      | exception Cancel.Cancelled Cancel.Deadline -> ());
      let elapsed_ms =
        float_of_int (Mdp_obs.Clock.now_ns () - t0) /. 1.e6
      in
      check bool_
        (Printf.sprintf "jobs=%d: stopped within budget + slack (%.0fms)" jobs
           elapsed_ms)
        true (elapsed_ms < 2000.0);
      (* The universe stays usable for further (bounded) runs. *)
      let small = universe_of small_model in
      ignore (Core.Generate.run ~jobs small))
    [ 1; 4 ]

let test_population_cancel () =
  let u = universe_of small_model in
  let lts = Core.Generate.run u in
  let spec =
    {
      Core.Population.seed = 3;
      size = 400;
      westin_mix = Core.Population.default_mix;
      agree_probability = 0.5;
    }
  in
  let profiles = Core.Population.simulate spec (Core.Universe.diagram u) in
  let fired = Cancel.create () in
  Cancel.cancel fired;
  List.iter
    (fun jobs ->
      match Core.Population.analyse_compiled ~jobs ~cancel:fired u lts profiles with
      | _ -> Alcotest.fail "expected population cancellation"
      | exception Cancel.Cancelled _ -> ())
    [ 1; 4 ];
  (* The LTS and a fresh pass are unaffected by the aborted one. *)
  let a = Core.Population.analyse_compiled u lts profiles in
  let b = Core.Population.analyse u lts profiles in
  check bool_ "post-cancel aggregate matches naive" true (a = b)

let test_run_checked_failures () =
  let diagram, policy = Synthetic.model (spec_exn small_model) in
  (match
     Core.Analysis.run_checked
       ~options:{ Core.Generate.default_options with max_states = 5 }
       diagram policy
   with
  | Error (Core.Analysis.State_limit { limit; hint }) ->
    check int_ "limit carried" 5 limit;
    check bool_ "hint present" true (contains hint "max-states")
  | _ -> Alcotest.fail "expected structured state-limit failure");
  let fired = Cancel.create () in
  Cancel.cancel fired;
  match Core.Analysis.run_checked ~cancel:fired diagram policy with
  | Error (Core.Analysis.Cancelled { deadline = false; _ }) -> ()
  | _ -> Alcotest.fail "expected structured cancellation failure"

(* ------------------------------------------------------------------ *)
(* Engine *)

let analyse ?(model = small_model) ?max_states ?deadline_ms ?(allow_stale = false)
    ?(kind = S.Protocol.Lts_stats) id =
  {
    S.Protocol.req_id = Some id;
    cmd =
      S.Protocol.Analyse
        { kind; model = S.Protocol.Named model; max_states; deadline_ms; allow_stale };
  }

let risk_kind =
  S.Protocol.Risk
    { agreed = [ "Service0" ]; sensitivities = [ ("Field0", 0.9) ] }

let pop_kind = S.Protocol.Population { psize = 150; pseed = 3; pagree = 0.5 }

let body_string (r : S.Protocol.response) = Json.to_string r.body

let test_engine_warm_cache_byte_identical () =
  let e = S.Engine.create () in
  List.iter
    (fun kind ->
      let req = analyse ~kind "a" in
      let cold = S.Engine.handle e req in
      let warm = S.Engine.handle e req in
      check bool_ "cold ok" true (cold.status = S.Protocol.Ok_);
      check bool_ "cold not cached" false cold.cached;
      check bool_ "warm cached" true warm.cached;
      check string_ "warm body byte-identical" (body_string cold)
        (body_string warm))
    [ S.Protocol.Lts_stats; risk_kind; pop_kind ]

let test_engine_deadline_cancel () =
  let e = S.Engine.create () in
  let req = analyse ~model:big_model ~max_states:1_000_000 ~deadline_ms:5 "d" in
  (* The server derives the token from the request's budget; do the
     same here ([handle] itself only polls the token it is given). *)
  let budget =
    match req.S.Protocol.cmd with
    | S.Protocol.Analyse a -> S.Engine.deadline_ms_for e a
    | _ -> None
  in
  check bool_ "budget comes from the request" true (budget = Some 5);
  let resp =
    S.Engine.handle e ~cancel:(Cancel.with_budget_ms (Option.get budget)) req
  in
  check bool_ "deadline cancelled" true
    (resp.status = S.Protocol.Cancelled `Deadline);
  (* The engine remains fully usable afterwards. *)
  let ok = S.Engine.handle e (analyse "ok") in
  check bool_ "engine reusable" true (ok.status = S.Protocol.Ok_)

let test_engine_client_cancel_mid_flight () =
  let e = S.Engine.create () in
  let token = Cancel.create () in
  let req = analyse ~model:big_model ~max_states:1_000_000 "c" in
  let worker = Domain.spawn (fun () -> S.Engine.handle e ~cancel:token req) in
  Unix.sleepf 0.01;
  Cancel.cancel token;
  let resp = Domain.join worker in
  check bool_ "client cancelled" true
    (resp.status = S.Protocol.Cancelled `Client)

let test_engine_state_limit_and_breaker () =
  let config =
    { S.Engine.default_config with breaker_threshold = 2; breaker_cooldown_ms = 10_000 }
  in
  let e = S.Engine.create ~config () in
  let req id = analyse ~model:big_model ~max_states:300 id in
  let r1 = S.Engine.handle e (req "x1") in
  check bool_ "structured state limit" true (r1.status = S.Protocol.State_limit);
  (match Json.member "limit" r1.body with
  | Some l -> check bool_ "limit in body" true (Json.to_int_opt l = Some 300)
  | None -> Alcotest.fail "state_limit body must carry the limit");
  (match Json.member "hint" r1.body with
  | Some (Json.Str h) -> check bool_ "hint in body" true (contains h "max-states")
  | _ -> Alcotest.fail "state_limit body must carry a hint");
  let r2 = S.Engine.handle e (req "x2") in
  check bool_ "second trip still structured" true
    (r2.status = S.Protocol.State_limit);
  let r3 = S.Engine.handle e (req "x3") in
  check bool_ "breaker now fast-fails" true (r3.status = S.Protocol.Breaker_open);
  (* Other models keep working while one breaker is open. *)
  let ok = S.Engine.handle e (analyse "ok") in
  check bool_ "other models unaffected" true (ok.status = S.Protocol.Ok_)

let test_engine_stale_degradation () =
  let config =
    { S.Engine.default_config with result_cap = 1; stale_cap = 4 }
  in
  let e = S.Engine.create ~config () in
  let req_a = analyse ~allow_stale:true "a" in
  let cold = S.Engine.handle e req_a in
  check bool_ "cold ok" true (cold.status = S.Protocol.Ok_);
  (* Evict model A's result with a different model's. *)
  ignore (S.Engine.handle e (analyse ~model:"synthetic:3-5-2" "b"));
  match S.Engine.stale_response e req_a with
  | Some resp ->
    check bool_ "flagged stale" true resp.stale;
    check bool_ "flagged cached" true resp.cached;
    check string_ "stale body identical to original" (body_string cold)
      (body_string resp)
  | None -> Alcotest.fail "evicted result must be servable as stale"

let whatif_kind ?(diff = false) ?pop edits =
  S.Protocol.Whatif
    {
      wprofile = { agreed = [ "Service0" ]; sensitivities = [ ("Field0", 0.4) ] };
      wedits = edits;
      wdiff = diff;
      wpop = pop;
    }

let test_engine_whatif () =
  let e = S.Engine.create () in
  (* Profile-only edit: the incremental path must reuse the cached
     artifact, and the resulting report must agree with a direct risk
     request under the edited profile. *)
  let resp =
    S.Engine.handle e
      (analyse ~kind:(whatif_kind ~diff:true [ "sensitivity:Field0=0.9" ]) "w1")
  in
  check bool_ "whatif ok" true (resp.status = S.Protocol.Ok_);
  check bool_ "profile edit is incremental" true
    (Json.member "incremental" resp.body = Some (Json.Bool true));
  check bool_ "diff present when requested" true
    (Json.member "diff" resp.body <> None);
  let risk_direct = S.Engine.handle e (analyse ~kind:risk_kind "w2") in
  let findings_after =
    Option.bind (Json.member "findings_after" resp.body) Json.to_int_opt
  in
  let direct_count =
    match Json.member "findings" risk_direct.body with
    | Some (Json.List l) -> Some (List.length l)
    | _ -> None
  in
  check bool_ "whatif agrees with a direct risk query" true
    (findings_after <> None && findings_after = direct_count);
  (* Warm repeat: served from the result cache. *)
  let warm =
    S.Engine.handle e
      (analyse ~kind:(whatif_kind ~diff:true [ "sensitivity:Field0=0.9" ]) "w3")
  in
  check bool_ "warm whatif cached" true warm.cached;
  check string_ "warm whatif byte-identical" (body_string resp)
    (body_string warm);
  (* A flow edit may change the reachable structure: full fallback. *)
  let full =
    S.Engine.handle e (analyse ~kind:(whatif_kind [ "flow-:Service0:1" ]) "w4")
  in
  check bool_ "flow edit ok" true (full.status = S.Protocol.Ok_);
  check bool_ "flow edit is a full rerun" true
    (Json.member "incremental" full.body = Some (Json.Bool false));
  (* Unparseable and inapplicable edits are structured errors. *)
  let bad =
    S.Engine.handle e (analyse ~kind:(whatif_kind [ "revoke:Actor0:fly:X" ]) "w5")
  in
  check bool_ "bad edit is an error" true (bad.status = S.Protocol.Error_)

(* Result-cache keys canonicalise the edit batch: a semantically equal
   permutation of independent edits hits the same entry, while a batch
   extended with a (semantically vacuous) extra edit keys separately —
   and must come back correct, not poisoned by the near-miss. *)
let test_engine_whatif_canonical_key () =
  let e = S.Engine.create () in
  let batch = [ "revoke:Actor0:delete:Store0"; "revoke:Actor1:delete:Store1" ] in
  let permuted = List.rev batch in
  let cold = S.Engine.handle e (analyse ~kind:(whatif_kind ~diff:true batch) "k1") in
  check bool_ "cold ok" true (cold.status = S.Protocol.Ok_);
  check bool_ "cold not cached" false cold.cached;
  let warm =
    S.Engine.handle e (analyse ~kind:(whatif_kind ~diff:true permuted) "k2")
  in
  check bool_ "permuted batch is a cache hit" true warm.cached;
  check string_ "permuted batch byte-identical" (body_string cold)
    (body_string warm);
  (* Researcher-style vacuous revocation: Actor3 holds nothing on
     Store0 beyond the store-level grants the synthetic model hands
     out, so revoking a Write it still makes the batch a distinct
     request. *)
  let extended = batch @ [ "revoke:Actor3:write:Store0" ] in
  let distinct =
    S.Engine.handle e (analyse ~kind:(whatif_kind ~diff:true extended) "k3")
  in
  check bool_ "extended batch ok" true (distinct.status = S.Protocol.Ok_);
  check bool_ "extended batch is a distinct key" false distinct.cached;
  (* The vacuous edit changes nothing about the outcome itself. *)
  let field name body = Json.to_string (Option.get (Json.member name body)) in
  List.iter
    (fun f ->
      check string_ ("extended batch agrees on " ^ f) (field f cold.body)
        (field f distinct.body))
    [ "findings_after"; "worst_before"; "worst_after"; "diff" ]

(* A what-if carrying a population size reports the aggregate before
   and after; a σ-only edit is answered by class-delta reaggregation
   with reuse accounting. *)
let test_engine_whatif_population () =
  let e = S.Engine.create () in
  let pop = { S.Protocol.psize = 200; pseed = 3; pagree = 0.5 } in
  let resp =
    S.Engine.handle e
      (analyse
         ~kind:(whatif_kind ~pop [ "sensitivity:Field0=0.5" ])
         "wp1")
  in
  check bool_ "whatif+population ok" true (resp.status = S.Protocol.Ok_);
  let popj =
    match Json.member "population" resp.body with
    | Some j -> j
    | None -> Alcotest.fail "population member missing"
  in
  let int_field name =
    match Option.bind (Json.member name popj) Json.to_int_opt with
    | Some n -> n
    | None -> Alcotest.fail ("population." ^ name ^ " missing")
  in
  check bool_ "before aggregate present" true
    (Json.member "before" popj <> None);
  check bool_ "after aggregate present" true (Json.member "after" popj <> None);
  let reused = int_field "classes_reused"
  and reeval = int_field "classes_reevaluated" in
  check bool_ "σ edit reuses classes" true (reused > 0);
  check bool_ "σ edit re-evaluates something" true (reeval > 0);
  (* An ACL edit goes through the full population recompute: no reuse
     is claimed, and the population member is still present. *)
  let acl =
    S.Engine.handle e
      (analyse ~kind:(whatif_kind ~pop [ "revoke:Actor0:delete:Store0" ]) "wp2")
  in
  check bool_ "acl whatif+population ok" true (acl.status = S.Protocol.Ok_);
  (match Json.member "population" acl.body with
  | Some j ->
    check bool_ "acl path claims no reuse" true
      (Option.bind (Json.member "classes_reused" j) Json.to_int_opt = Some 0)
  | None -> Alcotest.fail "population member missing on acl path");
  (* Without a size, no population is computed. *)
  let plain =
    S.Engine.handle e
      (analyse ~kind:(whatif_kind [ "sensitivity:Field0=0.9" ]) "wp3")
  in
  check bool_ "no size, no population" true
    (Json.member "population" plain.body = None)

let test_engine_malformed_model () =
  let e = S.Engine.create () in
  let bad = S.Engine.handle e (analyse ~model:"synthetic:nope" "m1") in
  check bool_ "bad spec is an error" true (bad.status = S.Protocol.Error_);
  let missing = S.Engine.handle e (analyse ~model:"/no/such/file.mdp" "m2") in
  check bool_ "missing file is an error" true (missing.status = S.Protocol.Error_);
  let inline_bad =
    S.Engine.handle e
      {
        S.Protocol.req_id = Some "m3";
        cmd =
          S.Protocol.Analyse
            {
              kind = S.Protocol.Lts_stats;
              model = S.Protocol.Inline "actor{{{";
              max_states = None;
              deadline_ms = None;
              allow_stale = false;
            };
      }
  in
  check bool_ "inline parse error is an error" true
    (inline_bad.status = S.Protocol.Error_)

(* ------------------------------------------------------------------ *)
(* Server *)

let collecting_server ?(workers = 1) ?(queue_cap = 1) engine =
  let lines = ref [] in
  let mu = Mutex.create () in
  let respond l =
    Mutex.lock mu;
    lines := l :: !lines;
    Mutex.unlock mu
  in
  let server = S.Server.create ~workers ~queue_cap ~respond engine in
  (server, lines)

let statuses lines =
  List.filter_map
    (fun l ->
      match S.Protocol.response_of_line l with
      | Ok r -> Some (S.Protocol.status_string r.status)
      | Error _ -> None)
    lines

let test_server_overload_and_accounting () =
  let server, lines = collecting_server (S.Engine.create ()) in
  let req i =
    Printf.sprintf
      {|{"id":"o%d","cmd":"lts","model":"synthetic:8-10-5@11","deadline_ms":40,"max_states":1000000}|}
      i
  in
  for i = 1 to 6 do
    S.Server.submit server (req i)
  done;
  S.Server.submit server {|{"id":"p","cmd":"ping"}|};
  S.Server.submit server "garbage";
  S.Server.shutdown server;
  let got = statuses !lines in
  check int_ "every line answered" 8 (List.length got);
  check bool_ "well-formed responses only" true
    (List.length !lines = List.length got);
  check bool_ "overload shed happened" true (List.mem "overloaded" got);
  check bool_ "ping answered inline" true (List.mem "ok" got);
  check bool_ "garbage answered" true (List.mem "error" got)

let test_server_shutdown_then_refuse () =
  let server, lines = collecting_server (S.Engine.create ()) in
  S.Server.submit server {|{"id":"s1","cmd":"shutdown"}|};
  S.Server.submit server {|{"id":"s2","cmd":"lts","model":"synthetic:4-6-3"}|};
  S.Server.shutdown server;
  let got = statuses !lines in
  check bool_ "shutdown acknowledged" true (List.mem "ok" got);
  check bool_ "post-shutdown submit refused" true
    (List.mem "shutting_down" got)

let test_server_cancel_unknown () =
  let server, lines = collecting_server (S.Engine.create ()) in
  S.Server.submit server {|{"id":"c1","cmd":"cancel","target":"ghost"}|};
  S.Server.shutdown server;
  match List.filter_map (fun l -> Result.to_option (S.Protocol.response_of_line l)) !lines with
  | [ r ] ->
    check bool_ "ok status" true (r.status = S.Protocol.Ok_);
    check bool_ "found=false" true
      (Json.member "found" r.body = Some (Json.Bool false))
  | _ -> Alcotest.fail "expected exactly one response"

(* ------------------------------------------------------------------ *)
(* Soak smoke *)

let test_soak_smoke () =
  let outcome =
    S.Soak.run { S.Soak.default_spec with requests = 150; seed = 3 }
  in
  check bool_ "contract held" true outcome.S.Soak.ok;
  check int_ "every delivered line answered" outcome.S.Soak.delivered
    outcome.S.Soak.answered;
  check int_ "no ill-formed responses" 0 outcome.S.Soak.ill_formed;
  check bool_ "some requests succeeded" true
    (match List.assoc_opt "ok" outcome.S.Soak.by_status with
    | Some n -> n > 0
    | None -> false)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "synthetic spec parsing" `Quick test_spec_of_string;
          Alcotest.test_case "request parsing" `Quick test_parse_request;
          Alcotest.test_case "errors keep the id" `Quick
            test_parse_errors_keep_id;
          Alcotest.test_case "whatif request parsing" `Quick test_parse_whatif;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction + stale store" `Quick
            test_cache_lru_eviction;
          Alcotest.test_case "bounded under churn" `Quick
            test_cache_bounded_under_churn;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips, cools down, recovers" `Quick
            test_breaker_trips_and_recovers;
          Alcotest.test_case "failed probe reopens" `Quick
            test_breaker_failed_probe_reopens;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "pre-fired token, clean rerun (jobs 1/4)" `Quick
            test_cancel_pre_fired_token;
          Alcotest.test_case "mid-run deadline (jobs 1/4)" `Quick
            test_cancel_mid_run_deadline;
          Alcotest.test_case "population sweep cancels" `Quick
            test_population_cancel;
          Alcotest.test_case "run_checked structured failures" `Quick
            test_run_checked_failures;
        ] );
      ( "engine",
        [
          Alcotest.test_case "warm cache byte-identical" `Quick
            test_engine_warm_cache_byte_identical;
          Alcotest.test_case "deadline cancellation" `Quick
            test_engine_deadline_cancel;
          Alcotest.test_case "client cancel mid-flight" `Quick
            test_engine_client_cancel_mid_flight;
          Alcotest.test_case "state limit trips breaker" `Quick
            test_engine_state_limit_and_breaker;
          Alcotest.test_case "stale degradation" `Quick
            test_engine_stale_degradation;
          Alcotest.test_case "whatif incremental + fallback" `Quick
            test_engine_whatif;
          Alcotest.test_case "whatif canonical cache keys" `Quick
            test_engine_whatif_canonical_key;
          Alcotest.test_case "whatif population deltas" `Quick
            test_engine_whatif_population;
          Alcotest.test_case "malformed models" `Quick
            test_engine_malformed_model;
        ] );
      ( "server",
        [
          Alcotest.test_case "overload shed + full accounting" `Quick
            test_server_overload_and_accounting;
          Alcotest.test_case "shutdown refuses new work" `Quick
            test_server_shutdown_then_refuse;
          Alcotest.test_case "cancel unknown id" `Quick
            test_server_cancel_unknown;
        ] );
      ( "soak",
        [ Alcotest.test_case "150-request chaos smoke" `Quick test_soak_smoke ] );
    ]
