(* Tests for the runtime substrate: events (serialisation), the
   policy-enforcement point, the trace simulator and the LTS monitor. *)

open Mdp_dataflow
module Core = Mdp_core
module R = Mdp_runtime
module H = Mdp_scenario.Healthcare

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let universe () = Core.Universe.make H.diagram H.policy

(* ------------------------------------------------------------------ *)
(* Event *)

let sample_event () =
  R.Event.make ~time:3 ~kind:Core.Action.Read ~actor:"Administrator"
    ~fields:[ H.name; H.diagnosis ] ~store:"EHR" ()

let test_event_line_roundtrip () =
  let variants =
    [
      sample_event ();
      R.Event.make ~time:1 ~kind:Core.Action.Collect ~actor:"Receptionist"
        ~fields:[ H.name ] ~service:"MedicalService" ();
      R.Event.make ~time:2 ~kind:Core.Action.Disclose ~actor:"Doctor"
        ~fields:[ H.treatment ] ~counterparty:"Nurse" ();
      R.Event.make ~time:4 ~kind:Core.Action.Anon ~actor:"Administrator"
        ~fields:[ H.diagnosis ] ~store:"AnonEHR" ~service:"MedicalResearchService" ();
    ]
  in
  List.iter
    (fun e ->
      match R.Event.of_line (R.Event.to_line e) with
      | Ok e' -> check bool_ "roundtrip equal" true (e = e')
      | Error msg -> Alcotest.fail msg)
    variants

let test_event_line_errors () =
  List.iter
    (fun line ->
      match R.Event.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [ ""; "x read A F - - -"; "1 teleport A F - - -"; "1 read A F" ]

let test_fields_equal () =
  check bool_ "set equality" true
    (R.Event.fields_equal [ H.name; H.diagnosis ] [ H.diagnosis; H.name ]);
  check bool_ "duplicates collapse" true
    (R.Event.fields_equal [ H.name; H.name ] [ H.name ]);
  check bool_ "different sets" false
    (R.Event.fields_equal [ H.name ] [ H.diagnosis ])

(* ------------------------------------------------------------------ *)
(* Enforcement *)

let test_enforce_allows_permitted_read () =
  let u = universe () in
  match R.Enforce.decide u (sample_event ()) with
  | R.Enforce.Allowed e ->
    check int_ "both fields delivered" 2 (List.length e.R.Event.fields)
  | R.Enforce.Denied r -> Alcotest.fail r

let test_enforce_narrows () =
  let u = universe () in
  let nurse_read =
    R.Event.make ~time:1 ~kind:Core.Action.Read ~actor:"Nurse"
      ~fields:[ H.name; H.diagnosis; H.treatment ]
      ~store:"EHR" ()
  in
  match R.Enforce.decide u nurse_read with
  | R.Enforce.Allowed e ->
    check (Alcotest.list Alcotest.string) "narrowed to permitted"
      [ "Name"; "Treatment" ]
      (List.map Field.name e.R.Event.fields)
  | R.Enforce.Denied r -> Alcotest.fail r

let test_enforce_denies () =
  let u = universe () in
  let researcher_raw =
    R.Event.make ~time:1 ~kind:Core.Action.Read ~actor:"Researcher"
      ~fields:[ H.diagnosis ] ~store:"EHR" ()
  in
  (match R.Enforce.decide u researcher_raw with
  | R.Enforce.Denied _ -> ()
  | R.Enforce.Allowed _ -> Alcotest.fail "researcher raw read allowed");
  let no_store =
    R.Event.make ~time:1 ~kind:Core.Action.Read ~actor:"Doctor"
      ~fields:[ H.name ] ()
  in
  match R.Enforce.decide u no_store with
  | R.Enforce.Denied _ -> ()
  | R.Enforce.Allowed _ -> Alcotest.fail "storeless read allowed"

let test_enforce_anon_checked_on_variants () =
  let u = universe () in
  (* The Administrator writes anon variants: permitted. *)
  let anon_ok =
    R.Event.make ~time:1 ~kind:Core.Action.Anon ~actor:"Administrator"
      ~fields:[ H.diagnosis ] ~store:"AnonEHR" ()
  in
  (match R.Enforce.decide u anon_ok with
  | R.Enforce.Allowed _ -> ()
  | R.Enforce.Denied r -> Alcotest.fail r);
  (* The Doctor has no write permission there. *)
  let anon_bad = { anon_ok with R.Event.actor = "Doctor" } in
  match R.Enforce.decide u anon_bad with
  | R.Enforce.Denied _ -> ()
  | R.Enforce.Allowed _ -> Alcotest.fail "doctor anon write allowed"

let test_enforce_collect_passthrough () =
  let u = universe () in
  let collect =
    R.Event.make ~time:1 ~kind:Core.Action.Collect ~actor:"Receptionist"
      ~fields:[ H.name ] ()
  in
  match R.Enforce.decide u collect with
  | R.Enforce.Allowed e -> check bool_ "unchanged" true (e = collect)
  | R.Enforce.Denied r -> Alcotest.fail r

(* ------------------------------------------------------------------ *)
(* Simulator *)

let sim_config ?(seed = 42) ?(snoopers = []) services =
  { R.Sim.seed; services; snoopers }

let test_sim_deterministic () =
  let u = universe () in
  let cfg = sim_config [ H.medical_service; H.research_service ] in
  let a = R.Sim.run_exn u cfg and b = R.Sim.run_exn u cfg in
  check bool_ "same trace" true (a = b);
  let c = R.Sim.run_exn u { cfg with seed = 43 } in
  check int_ "same length without snoopers" (List.length a) (List.length c)

let test_sim_covers_flows () =
  let u = universe () in
  let trace = R.Sim.run_exn u (sim_config [ H.medical_service ]) in
  check int_ "one event per flow" 6 (List.length trace);
  let times = List.map (fun e -> e.R.Event.time) trace in
  check (Alcotest.list int_) "strictly increasing times"
    (List.init 6 (fun i -> i + 1))
    times

let test_sim_respects_data_dependencies () =
  (* The research service's EHR read must come after the medical
     service's EHR create. *)
  let u = universe () in
  for seed = 1 to 20 do
    let trace =
      R.Sim.run_exn u (sim_config ~seed [ H.medical_service; H.research_service ])
    in
    let time_of pred =
      match List.find_opt pred trace with
      | Some e -> e.R.Event.time
      | None -> Alcotest.fail "expected event missing"
    in
    let created =
      time_of (fun e ->
          e.R.Event.kind = Core.Action.Create && e.R.Event.store = Some "EHR")
    in
    let research_read =
      time_of (fun e ->
          e.R.Event.kind = Core.Action.Read
          && e.R.Event.store = Some "EHR"
          && e.R.Event.service = Some H.research_service)
    in
    if research_read < created then
      Alcotest.failf "seed %d: research read before EHR created" seed
  done

let test_sim_snoopers_fire () =
  let u = universe () in
  let cfg =
    sim_config ~seed:42
      ~snoopers:[ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 1.0 } ]
      [ H.medical_service ]
  in
  let trace = R.Sim.run_exn u cfg in
  check bool_ "snoop read present" true
    (List.exists
       (fun e ->
         e.R.Event.actor = "Administrator"
         && e.R.Event.kind = Core.Action.Read
         && e.R.Event.service = None)
       trace);
  (* probability 0 never fires *)
  let quiet =
    R.Sim.run_exn u
      (sim_config ~seed:42
         ~snoopers:
           [ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 0.0 } ]
         [ H.medical_service ])
  in
  check int_ "no snoops at p=0" 6 (List.length quiet)

(* ------------------------------------------------------------------ *)
(* Monitor *)

let monitored ?profile () =
  let profile = Option.value profile ~default:H.profile_case_a in
  let a = Core.Analysis.run ~profile H.diagram H.policy in
  (a, R.Monitor.create a.universe a.lts)

let test_monitor_clean_medical_run () =
  let a, monitor = monitored () in
  let trace = R.Sim.run_exn a.universe (sim_config [ H.medical_service ]) in
  let alerts = R.Monitor.run_trace monitor trace in
  check int_ "no alerts on the agreed service" 0 (List.length alerts)

let test_monitor_flags_snoop_as_risky () =
  let a, monitor = monitored () in
  let trace =
    R.Sim.run_exn a.universe
      (sim_config ~seed:42
         ~snoopers:
           [ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 1.0 } ]
         [ H.medical_service ])
  in
  let alerts = R.Monitor.run_trace monitor trace in
  check bool_ "risky alert present" true
    (List.exists
       (function
         | R.Monitor.Risky (_, Core.Action.Disclosure_risk { level; _ }) ->
           Core.Level.equal level Core.Level.Medium
         | _ -> false)
       alerts)

let test_monitor_denied () =
  let _, monitor = monitored () in
  let bad =
    R.Event.make ~time:1 ~kind:Core.Action.Read ~actor:"Researcher"
      ~fields:[ H.diagnosis ] ~store:"EHR" ()
  in
  (* Blocked by the PEP and never predicted by the model: both facets
     are reported, most severe first. *)
  match R.Monitor.observe monitor bad with
  | [ R.Monitor.Denied (_, _); R.Monitor.Off_model _ ] -> ()
  | _ -> Alcotest.fail "expected Denied plus Off_model alerts"

let test_monitor_off_model () =
  let _, monitor = monitored () in
  (* A permitted read that the model does not predict at the initial
     state (store still empty). *)
  let early =
    R.Event.make ~time:1 ~kind:Core.Action.Read ~actor:"Doctor"
      ~fields:[ H.name ] ~store:"EHR" ()
  in
  (match R.Monitor.observe monitor early with
  | [ R.Monitor.Off_model _ ] -> ()
  | _ -> Alcotest.fail "expected Off_model");
  (* ... and the monitor state did not advance. *)
  let init_state = R.Monitor.current_state monitor in
  check int_ "state unchanged" init_state (R.Monitor.current_state monitor)

let test_monitor_min_level_filter () =
  let a = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy in
  let strict = R.Monitor.create ~min_level:Core.Level.High a.universe a.lts in
  let trace =
    R.Sim.run_exn a.universe
      (sim_config ~seed:42
         ~snoopers:
           [ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 1.0 } ]
         [ H.medical_service ])
  in
  let alerts = R.Monitor.run_trace strict trace in
  check bool_ "medium risk filtered at min_level High" true
    (List.for_all (function R.Monitor.Risky _ -> false | _ -> true) alerts)

let test_monitor_full_interleaving () =
  (* Both services plus a snooper: the whole trace stays on-model. *)
  let a, monitor = monitored () in
  for seed = 1 to 10 do
    let fresh = R.Monitor.create a.universe a.lts in
    ignore monitor;
    let trace =
      R.Sim.run_exn a.universe
        (sim_config ~seed
           ~snoopers:
             [ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 0.5 } ]
           [ H.medical_service; H.research_service ])
    in
    let alerts = R.Monitor.run_trace fresh trace in
    List.iter
      (function
        | R.Monitor.Off_model e ->
          Alcotest.failf "seed %d: off-model %s" seed (R.Event.to_line e)
        | R.Monitor.Resynced (e, _) ->
          Alcotest.failf "seed %d: resync on a clean trace %s" seed
            (R.Event.to_line e)
        | R.Monitor.Risky _ | R.Monitor.Denied _ -> ())
      alerts
  done


(* ------------------------------------------------------------------ *)
(* Store_sim *)

module V = Mdp_anon.Value

let study_sim () =
  let u = Core.Universe.make H.study_diagram H.study_policy in
  let sim = R.Store_sim.create ~seed:7 u in
  (u, sim)

let write_patient sim i =
  R.Store_sim.write sim ~actor:"Clinician" ~store:"StudyRecords"
    ~subject:(Printf.sprintf "s%d" i)
    [
      (H.name, V.Str (Printf.sprintf "n%d" i));
      (H.age, V.Int (20 + i));
      (H.height, V.Int (160 + i));
      (H.weight, V.Int (70 + i));
    ]

let test_store_write_read () =
  let _, sim = study_sim () in
  (match write_patient sim 1 with Ok () -> () | Error e -> Alcotest.fail e);
  (* Administrator may read. *)
  (match
     R.Store_sim.read sim ~actor:"Administrator" ~store:"StudyRecords"
       ~subject:"s1" [ H.age; H.weight ]
   with
  | Ok fields -> check int_ "both fields" 2 (List.length fields)
  | Error e -> Alcotest.fail e);
  (* Researcher may not. *)
  (match
     R.Store_sim.read sim ~actor:"Researcher" ~store:"StudyRecords"
       ~subject:"s1" [ H.age ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "researcher raw read allowed");
  (* Unknown subject. *)
  match
    R.Store_sim.read sim ~actor:"Administrator" ~store:"StudyRecords"
      ~subject:"ghost" [ H.age ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ghost subject read"

let test_store_write_enforced () =
  let _, sim = study_sim () in
  (* Researcher has no write permission anywhere. *)
  (match
     R.Store_sim.write sim ~actor:"Researcher" ~store:"StudyRecords"
       ~subject:"s1" [ (H.age, V.Int 30) ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unauthorised write accepted");
  (* Writing a field outside the schema fails. *)
  match
    R.Store_sim.write sim ~actor:"Clinician" ~store:"StudyRecords"
      ~subject:"s1" [ (Mdp_dataflow.Field.make "Shoe", V.Int 42) ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "foreign field accepted"

let test_store_upsert_and_delete () =
  let _, sim = study_sim () in
  ignore (write_patient sim 1);
  (match
     R.Store_sim.write sim ~actor:"Clinician" ~store:"StudyRecords"
       ~subject:"s1" [ (H.weight, V.Int 99) ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     R.Store_sim.read sim ~actor:"Administrator" ~store:"StudyRecords"
       ~subject:"s1" [ H.weight ]
   with
  | Ok [ (_, v) ] -> check bool_ "updated" true (V.equal v (V.Int 99))
  | Ok _ | Error _ -> Alcotest.fail "upsert failed");
  check int_ "one subject" 1
    (List.length (R.Store_sim.subjects sim ~store:"StudyRecords"));
  (* Clinician lacks Delete; Administrator has it. *)
  (match
     R.Store_sim.delete sim ~actor:"Clinician" ~store:"StudyRecords" ~subject:"s1"
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "clinician delete allowed");
  (match
     R.Store_sim.delete sim ~actor:"Administrator" ~store:"StudyRecords"
       ~subject:"s1"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check int_ "empty after delete" 0
    (List.length (R.Store_sim.subjects sim ~store:"StudyRecords"))

let test_store_pseudonymise_and_dataset () =
  let _, sim = study_sim () in
  for i = 1 to 6 do
    ignore (write_patient sim i)
  done;
  let h = Mdp_anon.Hierarchy.numeric ~widths:[ 10.0 ] () in
  (match
     R.Store_sim.pseudonymise sim ~actor:"Administrator"
       ~from_store:"StudyRecords" ~to_store:"AnonStudy"
       ~generalise:
         [
           (H.age, Mdp_anon.Hierarchy.generalise h ~level:1);
           (H.height, Mdp_anon.Hierarchy.generalise h ~level:1);
         ]
   with
  | Ok n -> check int_ "all records released" 6 n
  | Error e -> Alcotest.fail e);
  (* Pseudonyms hide subjects. *)
  List.iter
    (fun p ->
      check bool_ "opaque pseudonym" true
        (String.length p > 2 && String.sub p 0 2 = "p-"))
    (R.Store_sim.subjects sim ~store:"AnonStudy");
  (* Extract the live release and check its shape. *)
  match
    R.Store_sim.dataset sim ~store:"AnonStudy"
      ~kinds:
        [
          (Mdp_dataflow.Field.anon_of H.age, Mdp_anon.Attribute.Quasi);
          (Mdp_dataflow.Field.anon_of H.height, Mdp_anon.Attribute.Quasi);
          (Mdp_dataflow.Field.anon_of H.weight, Mdp_anon.Attribute.Sensitive);
        ]
  with
  | Error e -> Alcotest.fail e
  | Ok ds ->
    check int_ "rows" 6 (Mdp_anon.Dataset.nrows ds);
    check int_ "quasi columns" 2 (List.length (Mdp_anon.Dataset.quasi_indices ds));
    (* Ages were generalised to decades; weights stayed raw. *)
    (match Mdp_anon.Dataset.get ds ~row:0 ~col:(Mdp_anon.Dataset.col_index ds "Age") with
    | Mdp_anon.Value.Interval _ -> ()
    | v -> Alcotest.failf "age not generalised: %s" (V.to_string v));
    match Mdp_anon.Dataset.get ds ~row:0 ~col:(Mdp_anon.Dataset.col_index ds "Weight") with
    | Mdp_anon.Value.Int 71 -> ()
    | v -> Alcotest.failf "weight changed: %s" (V.to_string v)

let test_store_pseudonymise_enforced () =
  let _, sim = study_sim () in
  ignore (write_patient sim 1);
  (* The Researcher may neither read the raw store nor write the anon
     one. *)
  match
    R.Store_sim.pseudonymise sim ~actor:"Researcher"
      ~from_store:"StudyRecords" ~to_store:"AnonStudy" ~generalise:[]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unauthorised pseudonymisation accepted"

(* ------------------------------------------------------------------ *)
(* Trace.stats — single-pass summary, including the degenerate traces
   where the old multi-pass code indexed with List.nth. *)

let ev ?service ~time ~kind ~actor () =
  R.Event.make ~time ~kind ~actor ~fields:[ H.name ] ?service ()

let test_stats_empty () =
  let s = R.Trace.stats [] in
  check int_ "events" 0 s.R.Trace.events;
  check int_ "span" 0 s.R.Trace.span;
  check int_ "ad_hoc" 0 s.R.Trace.ad_hoc;
  check bool_ "no kinds" true (s.R.Trace.by_kind = []);
  check bool_ "no actors" true (s.R.Trace.by_actor = [])

let test_stats_singleton () =
  let s =
    R.Trace.stats [ ev ~time:7 ~kind:Core.Action.Read ~actor:"Doctor" () ]
  in
  check int_ "events" 1 s.R.Trace.events;
  check int_ "span of a single event" 0 s.R.Trace.span;
  check int_ "ad_hoc (no service context)" 1 s.R.Trace.ad_hoc;
  check bool_ "one kind" true
    (s.R.Trace.by_kind = [ (Core.Action.Read, 1) ]);
  check bool_ "one actor" true (s.R.Trace.by_actor = [ ("Doctor", 1) ])

let test_stats_pair () =
  let s =
    R.Trace.stats
      [
        ev ~time:3 ~kind:Core.Action.Collect ~actor:"Receptionist"
          ~service:"MedicalService" ();
        ev ~time:10 ~kind:Core.Action.Read ~actor:"Doctor" ();
      ]
  in
  check int_ "events" 2 s.R.Trace.events;
  check int_ "span is last minus first" 7 s.R.Trace.span;
  check int_ "ad_hoc counts only contextless events" 1 s.R.Trace.ad_hoc;
  check bool_ "kinds in first-appearance order" true
    (s.R.Trace.by_kind
    = [ (Core.Action.Collect, 1); (Core.Action.Read, 1) ]);
  check bool_ "actors in first-appearance order" true
    (s.R.Trace.by_actor = [ ("Receptionist", 1); ("Doctor", 1) ])

let test_stats_matches_sim () =
  let u = universe () in
  let trace = R.Sim.run_exn u (sim_config [ H.medical_service ]) in
  let s = R.Trace.stats trace in
  check int_ "events = trace length" (List.length trace) s.R.Trace.events;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 s.R.Trace.by_kind in
  check int_ "kind counts partition the trace" s.R.Trace.events total;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 s.R.Trace.by_actor in
  check int_ "actor counts partition the trace" s.R.Trace.events total

let () =
  Alcotest.run "runtime"
    [
      ( "event",
        [
          Alcotest.test_case "line roundtrip" `Quick test_event_line_roundtrip;
          Alcotest.test_case "line errors" `Quick test_event_line_errors;
          Alcotest.test_case "fields_equal" `Quick test_fields_equal;
        ] );
      ( "enforce",
        [
          Alcotest.test_case "allows permitted" `Quick test_enforce_allows_permitted_read;
          Alcotest.test_case "narrows" `Quick test_enforce_narrows;
          Alcotest.test_case "denies" `Quick test_enforce_denies;
          Alcotest.test_case "anon variants" `Quick test_enforce_anon_checked_on_variants;
          Alcotest.test_case "collect passthrough" `Quick test_enforce_collect_passthrough;
        ] );
      ( "sim",
        [
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "covers flows" `Quick test_sim_covers_flows;
          Alcotest.test_case "data dependencies" `Quick test_sim_respects_data_dependencies;
          Alcotest.test_case "snoopers" `Quick test_sim_snoopers_fire;
        ] );
      ( "store_sim",
        [
          Alcotest.test_case "write/read" `Quick test_store_write_read;
          Alcotest.test_case "write enforced" `Quick test_store_write_enforced;
          Alcotest.test_case "upsert/delete" `Quick test_store_upsert_and_delete;
          Alcotest.test_case "pseudonymise/dataset" `Quick
            test_store_pseudonymise_and_dataset;
          Alcotest.test_case "pseudonymise enforced" `Quick
            test_store_pseudonymise_enforced;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "clean run" `Quick test_monitor_clean_medical_run;
          Alcotest.test_case "risky snoop" `Quick test_monitor_flags_snoop_as_risky;
          Alcotest.test_case "denied" `Quick test_monitor_denied;
          Alcotest.test_case "off-model" `Quick test_monitor_off_model;
          Alcotest.test_case "min level filter" `Quick test_monitor_min_level_filter;
          Alcotest.test_case "full interleaving" `Quick test_monitor_full_interleaving;
        ] );
      ( "trace-stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "pair" `Quick test_stats_pair;
          Alcotest.test_case "simulated trace" `Quick test_stats_matches_sim;
        ] );
    ]
