(* Tests for the fault-injection harness and the self-healing monitor:
   injector determinism, resynchronisation across dropped events,
   duplicate absorption, reordering tolerance, fleet checkpoint/restore
   and bounded-backoff retries against a crashed node. *)

module Core = Mdp_core
module R = Mdp_runtime
module H = Mdp_scenario.Healthcare
module SH = Mdp_scenario.Smart_home
module L = Mdp_prelude.Listx

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let analysed () = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy

let medical_trace u ?(seed = 42) ?(snoopers = []) services =
  R.Sim.run_exn u { R.Sim.seed; services; snoopers }

let duplicate_only rate = { R.Faults.no_faults with duplicate = rate }
let reorder_only rate = { R.Faults.no_faults with reorder = rate }

(* ------------------------------------------------------------------ *)
(* Injector *)

let test_inject_deterministic () =
  let a = analysed () in
  let trace = medical_trace a.universe [ H.medical_service; H.research_service ] in
  let profile = R.Faults.uniform 0.2 in
  let i1 = R.Faults.inject ~seed:5 profile trace
  and i2 = R.Faults.inject ~seed:5 profile trace in
  check bool_ "same seed, same delivery" true (i1.delivered = i2.delivered);
  check bool_ "same seed, same faults" true (i1.faults = i2.faults);
  let differs =
    List.exists
      (fun seed ->
        let j = R.Faults.inject ~seed profile trace in
        j.delivered <> i1.delivered || j.faults <> i1.faults)
      [ 6; 7; 8; 9 ]
  in
  check bool_ "some other seed perturbs differently" true differs

let test_inject_zero_rate_is_identity () =
  let a = analysed () in
  let trace = medical_trace a.universe [ H.medical_service ] in
  let inj = R.Faults.inject ~seed:3 R.Faults.no_faults trace in
  check bool_ "identity delivery" true (inj.delivered = trace);
  check int_ "no faults" 0 (List.length inj.faults)

let test_inject_stats_match_faults () =
  let a = analysed () in
  let trace = medical_trace a.universe [ H.medical_service; H.research_service ] in
  let inj = R.Faults.inject ~seed:11 (R.Faults.uniform 0.3) trace in
  let s = R.Faults.stats inj.faults in
  let count p = L.count p inj.faults in
  check int_ "dropped" (count (function R.Faults.Dropped _ -> true | _ -> false)) s.dropped;
  check int_ "duplicated" (count (function R.Faults.Duplicated _ -> true | _ -> false)) s.duplicated;
  check int_ "reordered" (count (function R.Faults.Reordered _ -> true | _ -> false)) s.reordered;
  check int_ "delayed" (count (function R.Faults.Delayed _ -> true | _ -> false)) s.delayed;
  check int_ "dropped leave the stream"
    (List.length trace - s.dropped + s.duplicated)
    (List.length inj.delivered)

(* ------------------------------------------------------------------ *)
(* Monitor self-healing *)

let terminal_state u lts trace =
  let m = R.Monitor.create u lts in
  ignore (R.Monitor.run_trace m trace);
  R.Monitor.current_state m

let test_resync_bridges_dropped_event () =
  let a = analysed () in
  let u = a.universe and lts = a.lts in
  let trace = medical_trace u [ H.medical_service ] in
  let clean_end = terminal_state u lts trace in
  (* Drop one interior event: the monitor must bridge the gap with a
     Resynced alert and converge back to the clean terminal state. *)
  let dropped = List.filteri (fun i _ -> i <> 2) trace in
  let m = R.Monitor.create ~resync_depth:8 u lts in
  let alerts = R.Monitor.run_trace m dropped in
  let resyncs =
    L.count (function R.Monitor.Resynced _ -> true | _ -> false) alerts
  in
  check bool_ "at least one resync" true (resyncs >= 1);
  let st = R.Monitor.stats m in
  check int_ "nothing dead-lettered" 0 st.dead;
  check int_ "one transition skipped" 1 st.skipped;
  check int_ "converged to the clean terminal state" clean_end
    (R.Monitor.current_state m)

let test_resync_off_without_depth () =
  let a = analysed () in
  let u = a.universe and lts = a.lts in
  let trace = medical_trace u [ H.medical_service ] in
  let dropped = List.filteri (fun i _ -> i <> 2) trace in
  let m = R.Monitor.create u lts in
  (* resync_depth defaults to 0 *)
  ignore (R.Monitor.run_trace m dropped);
  check bool_ "legacy monitor dead-letters instead" true
    ((R.Monitor.stats m).dead >= 1)

let test_duplicates_raise_no_duplicate_alerts () =
  let a = analysed () in
  let u = a.universe and lts = a.lts in
  let trace =
    medical_trace u
      ~snoopers:[ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 0.5 } ]
      [ H.medical_service; H.research_service ]
  in
  let clean = R.Monitor.create ~resync_depth:8 u lts in
  let clean_alerts = R.Monitor.run_trace clean trace in
  check bool_ "clean run raises alerts to compare" true (clean_alerts <> []);
  let inj = R.Faults.inject ~seed:9 (duplicate_only 0.6) trace in
  check bool_ "injector duplicated something" true
    ((R.Faults.stats inj.faults).duplicated >= 1);
  let m = R.Monitor.create ~resync_depth:8 u lts in
  let alerts = R.Monitor.run_trace m inj.delivered in
  check bool_ "alert stream identical to the clean run" true
    (alerts = clean_alerts);
  check int_ "duplicates absorbed, counted"
    (R.Faults.stats inj.faults).duplicated (R.Monitor.stats m).duplicates

let test_reorder_converges () =
  let a = analysed () in
  let u = a.universe and lts = a.lts in
  let trace = medical_trace u [ H.medical_service; H.research_service ] in
  let clean_end = terminal_state u lts trace in
  let inj = R.Faults.inject ~seed:4 (reorder_only 0.5) trace in
  check bool_ "injector reordered something" true
    ((R.Faults.stats inj.faults).reordered >= 1);
  let m = R.Monitor.create ~resync_depth:8 u lts in
  ignore (R.Monitor.run_trace m inj.delivered);
  let st = R.Monitor.stats m in
  check int_ "nothing dead-lettered" 0 st.dead;
  check bool_ "stale arrivals absorbed as late" true (st.late >= 1);
  check int_ "converged to the clean terminal state" clean_end
    (R.Monitor.current_state m)

(* Losing the very first event strands a monitor that has resync off:
   every later event of the trace is unplaceable and dead-letters. *)
let beheaded_trace u = List.tl (medical_trace u [ H.medical_service ])

let test_dead_letter_cap_bounds_memory () =
  let a = analysed () in
  let u = a.universe and lts = a.lts in
  let beheaded = beheaded_trace u in
  let unbounded = R.Monitor.create u lts in
  ignore (R.Monitor.run_trace unbounded beheaded);
  let letters = R.Monitor.dead_letters unbounded in
  let total = List.length letters in
  check bool_ "several letters to work with" true (total >= 3);
  check int_ "default cap holds them all" total (R.Monitor.stats unbounded).dead;
  check int_ "nothing shed below the cap" 0
    (R.Monitor.stats unbounded).dead_dropped;
  let m = R.Monitor.create ~dead_letter_cap:2 u lts in
  ignore (R.Monitor.run_trace m beheaded);
  let st = R.Monitor.stats m in
  check int_ "held letters bounded by the cap" 2 st.dead;
  check int_ "overflow counted" (total - 2) st.dead_dropped;
  (* Oldest letters are shed: the newest evidence is what survives. *)
  check bool_ "newest letters kept" true
    (R.Monitor.dead_letters m = L.drop (total - 2) letters);
  let z = R.Monitor.create ~dead_letter_cap:0 u lts in
  ignore (R.Monitor.run_trace z beheaded);
  let sz = R.Monitor.stats z in
  check int_ "cap 0 keeps nothing" 0 sz.dead;
  check int_ "cap 0 still counts" total sz.dead_dropped;
  check bool_ "cap 0, empty queue" true (R.Monitor.dead_letters z = [])

let test_dead_letter_cap_checkpoints () =
  let a = analysed () in
  let u = a.universe and lts = a.lts in
  let m = R.Monitor.create ~dead_letter_cap:2 u lts in
  ignore (R.Monitor.run_trace m (beheaded_trace u));
  match R.Monitor.of_json u lts (R.Monitor.to_json m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    check bool_ "stats (incl. dead_dropped) survive the roundtrip" true
      (R.Monitor.stats m' = R.Monitor.stats m);
    check bool_ "dead letters survive the roundtrip" true
      (List.for_all2 R.Event.equal
         (R.Monitor.dead_letters m')
         (R.Monitor.dead_letters m))

(* ------------------------------------------------------------------ *)
(* Fleet checkpoint/restore *)

let faulty_stream a ~subjects ~seed ~rate ~services ~snoopers =
  let profile = R.Faults.uniform rate in
  let traces =
    List.init subjects (fun i ->
        ( Printf.sprintf "s%02d" i,
          medical_trace a.Core.Analysis.universe ~seed:(seed + (31 * i))
            ~snoopers services ))
  in
  R.Trace.interleave
    (List.mapi
       (fun i (s, tr) ->
         (s, (R.Faults.inject ~seed:(seed + (131 * i)) profile tr).delivered))
       traces)

let feed fleet stream =
  List.iter (fun (s, e) -> ignore (R.Fleet.observe fleet ~subject:s e)) stream

let test_checkpoint_restore_replays_identically () =
  let a = analysed () in
  let u = a.universe and lts = a.lts in
  let stream =
    faulty_stream a ~subjects:4 ~seed:7 ~rate:0.05
      ~services:[ H.medical_service; H.research_service ]
      ~snoopers:[ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 0.3 } ]
  in
  let reference = R.Fleet.create ~resync_depth:8 u lts in
  feed reference stream;
  let mid = List.length stream / 2 in
  let first = R.Fleet.create ~resync_depth:8 u lts in
  feed first (L.take mid stream);
  match R.Fleet.restore u lts (R.Fleet.checkpoint first) with
  | Error e -> Alcotest.fail e
  | Ok resumed ->
    feed resumed (L.drop mid stream);
    List.iter
      (fun s ->
        check bool_
          (Printf.sprintf "%s: suffix alert stream identical" s)
          true
          (R.Fleet.alerts_for reference ~subject:s
          = R.Fleet.alerts_for first ~subject:s
            @ R.Fleet.alerts_for resumed ~subject:s);
        check bool_
          (Printf.sprintf "%s: same final state" s)
          true
          (R.Fleet.state_of reference ~subject:s
          = R.Fleet.state_of resumed ~subject:s))
      (R.Fleet.subjects reference)

let test_checkpoint_rejects_garbage () =
  let a = analysed () in
  match R.Fleet.restore a.universe a.lts (Mdp_prelude.Json.Num 3.0) with
  | Ok _ -> Alcotest.fail "restored a fleet from a number"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Acceptance: multi-subject run under the 5% uniform profile *)

let acceptance_scenario name analysis services snoopers =
  let u = analysis.Core.Analysis.universe and lts = analysis.Core.Analysis.lts in
  let stream =
    faulty_stream analysis ~subjects:6 ~seed:7 ~rate:0.05 ~services ~snoopers
  in
  let fleet = R.Fleet.create ~resync_depth:8 u lts in
  feed fleet stream;
  List.iter
    (fun (s, h) ->
      check bool_
        (Printf.sprintf "%s/%s not lost" name s)
        true
        (match h with R.Fleet.Lost -> false | _ -> true))
    (R.Fleet.health_summary fleet);
  (* Every gap bridged: nothing the fleet could not place. *)
  List.iter
    (fun s ->
      match R.Fleet.monitor_stats fleet ~subject:s with
      | None -> Alcotest.fail "subject without stats"
      | Some st ->
        check int_ (Printf.sprintf "%s/%s dead letters" name s) 0 st.dead)
    (R.Fleet.subjects fleet)

let test_acceptance_healthcare_and_smart_home () =
  acceptance_scenario "healthcare" (analysed ())
    [ H.medical_service; H.research_service ]
    [ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 0.3 } ];
  acceptance_scenario "smart-home"
    (Core.Analysis.run ~profile:SH.profile SH.diagram SH.policy)
    [ SH.energy_service; SH.analytics_service ]
    [ { R.Sim.actor = "Marketing"; store = "Telemetry"; probability = 0.3 } ]

(* ------------------------------------------------------------------ *)
(* Chaos state and backoff *)

let deployment u =
  match
    R.Deployment.create
      ~nodes:
        [
          { R.Deployment.id = "surgery"; region = "UK" };
          { R.Deployment.id = "dc-eu"; region = "EU" };
          { R.Deployment.id = "research-cloud"; region = "US" };
        ]
      ~actors:
        [
          ("Receptionist", "surgery");
          ("Doctor", "surgery");
          ("Nurse", "surgery");
          ("Administrator", "dc-eu");
          ("Researcher", "research-cloud");
        ]
      ~stores:
        [ ("Appointments", "surgery"); ("EHR", "dc-eu"); ("AnonEHR", "research-cloud") ]
      u
  with
  | Ok d -> d
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)

let test_timed_crash_expires () =
  let a = analysed () in
  let chaos = R.Faults.chaos ~seed:1 (deployment a.universe) in
  R.Faults.crash_node ~for_ticks:3 chaos "dc-eu";
  check bool_ "down immediately" false (R.Faults.node_up chaos "dc-eu");
  check bool_ "store on it unavailable" false (R.Faults.store_available chaos "EHR");
  check bool_ "other store untouched" true
    (R.Faults.store_available chaos "Appointments");
  for _ = 1 to 3 do
    R.Faults.tick chaos
  done;
  check bool_ "healed after the outage" true (R.Faults.node_up chaos "dc-eu");
  R.Faults.partition ~for_ticks:2 chaos "UK" "EU";
  check bool_ "partitioned" false (R.Faults.regions_connected chaos "EU" "UK");
  R.Faults.tick chaos;
  R.Faults.tick chaos;
  check bool_ "partition healed" true (R.Faults.regions_connected chaos "UK" "EU")

let test_backoff_recovers_write () =
  let a = analysed () in
  let u = a.universe in
  let chaos = R.Faults.chaos ~seed:1 (deployment u) in
  let sim = R.Store_sim.create ~seed:1 u in
  R.Faults.crash_node ~for_ticks:4 chaos "dc-eu";
  let op () =
    R.Faults.sync_stores chaos sim;
    R.Store_sim.write sim ~actor:"Doctor" ~store:"EHR" ~subject:"p1"
      [ (H.diagnosis, Mdp_anon.Value.Str "flu") ]
  in
  let result, outcome = R.Faults.with_backoff chaos op in
  (match result with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("write never recovered: " ^ e));
  check bool_ "took several attempts" true (outcome.attempts > 1);
  check bool_ "waited through the outage" true (outcome.waited >= 4);
  (* A single-attempt policy gives up while the node is still down. *)
  R.Faults.crash_node ~for_ticks:4 chaos "dc-eu";
  let result, outcome =
    R.Faults.with_backoff
      ~policy:{ R.Faults.default_backoff with max_attempts = 1 }
      chaos op
  in
  check bool_ "single attempt fails" true (Result.is_error result);
  check int_ "exactly one attempt" 1 outcome.attempts

let test_inject_any_perturbs_strings () =
  let lines = List.init 40 (Printf.sprintf "req-%d") in
  let profile = R.Faults.uniform 0.3 in
  let i1 = R.Faults.inject_any ~seed:5 profile lines in
  let i2 = R.Faults.inject_any ~seed:5 profile lines in
  check bool_ "same seed, same delivery" true (i1.delivered = i2.delivered);
  check bool_ "same seed, same faults" true (i1.faults = i2.faults);
  let count p = L.count p i1.faults in
  let dropped = count (function R.Faults.Dropped _ -> true | _ -> false)
  and duplicated = count (function R.Faults.Duplicated _ -> true | _ -> false) in
  check bool_ "something was perturbed" true (i1.faults <> []);
  check int_ "length accounting"
    (List.length lines - dropped + duplicated)
    (List.length i1.delivered);
  check bool_ "no invented lines" true
    (List.for_all (fun l -> List.mem l lines) i1.delivered);
  let id = R.Faults.inject_any ~seed:5 R.Faults.no_faults lines in
  check bool_ "zero rate is identity" true (id.delivered = lines);
  check int_ "zero rate, no faults" 0 (List.length id.faults)

(* An op that always fails retriably: the loop runs the full schedule,
   so [waited] exposes the exact wait sequence. *)
let always_unavailable () = Error "unavailable: induced for backoff test"

(* default_backoff (base 1, cap 8, 6 attempts): waits 1+2+4+8+8 = 23. *)
let unjittered_total = 23

let test_backoff_default_schedule_unchanged () =
  let a = analysed () in
  let chaos = R.Faults.chaos ~seed:1 (deployment a.universe) in
  check bool_ "jitter off by default" false R.Faults.default_backoff.jitter;
  let result, outcome = R.Faults.with_backoff chaos always_unavailable in
  check bool_ "still failed" true (Result.is_error result);
  check int_ "all attempts used" 6 outcome.attempts;
  check int_ "exact exponential schedule" unjittered_total outcome.waited

let test_backoff_jitter_bounded_and_seeded () =
  let run seed =
    let a = analysed () in
    let chaos = R.Faults.chaos ~seed (deployment a.universe) in
    snd
      (R.Faults.with_backoff ~policy:R.Faults.jittered_backoff chaos
         always_unavailable)
  in
  let o1 = run 1 and o1' = run 1 in
  check int_ "same chaos seed, same waits" o1.R.Faults.waited o1'.R.Faults.waited;
  let outcomes = List.map run [ 1; 2; 3; 4; 5; 6 ] in
  List.iter
    (fun o ->
      check int_ "all attempts used" 6 o.R.Faults.attempts;
      (* Full jitter draws each wait from [1, ceiling]. *)
      check bool_ "never exceeds the exponential schedule" true
        (o.R.Faults.waited <= unjittered_total);
      check bool_ "waits at least one tick per retry" true
        (o.R.Faults.waited >= 5))
    outcomes;
  check bool_ "seeds spread the waits" true
    (List.exists (fun o -> o.R.Faults.waited <> o1.R.Faults.waited) outcomes)

let test_backoff_stops_on_permanent_error () =
  let a = analysed () in
  let chaos = R.Faults.chaos ~seed:1 (deployment a.universe) in
  let calls = ref 0 in
  let op () =
    incr calls;
    Error "permission denied"
  in
  let result, outcome = R.Faults.with_backoff chaos op in
  check bool_ "error surfaced" true (Result.is_error result);
  check int_ "not retried" 1 !calls;
  check int_ "one attempt recorded" 1 outcome.attempts

let () =
  Alcotest.run "faults"
    [
      ( "injector",
        [
          Alcotest.test_case "deterministic" `Quick test_inject_deterministic;
          Alcotest.test_case "zero rate" `Quick test_inject_zero_rate_is_identity;
          Alcotest.test_case "stats" `Quick test_inject_stats_match_faults;
          Alcotest.test_case "inject_any on request lines" `Quick
            test_inject_any_perturbs_strings;
        ] );
      ( "self-healing",
        [
          Alcotest.test_case "resync bridges drop" `Quick
            test_resync_bridges_dropped_event;
          Alcotest.test_case "no resync at depth 0" `Quick
            test_resync_off_without_depth;
          Alcotest.test_case "duplicates absorbed" `Quick
            test_duplicates_raise_no_duplicate_alerts;
          Alcotest.test_case "reorder converges" `Quick test_reorder_converges;
          Alcotest.test_case "dead-letter queue is bounded" `Quick
            test_dead_letter_cap_bounds_memory;
          Alcotest.test_case "dead-letter bounds checkpoint" `Quick
            test_dead_letter_cap_checkpoints;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "restore replays identically" `Quick
            test_checkpoint_restore_replays_identically;
          Alcotest.test_case "rejects garbage" `Quick
            test_checkpoint_rejects_garbage;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "5% profile, two scenarios" `Quick
            test_acceptance_healthcare_and_smart_home;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "timed outages expire" `Quick
            test_timed_crash_expires;
          Alcotest.test_case "backoff recovers write" `Quick
            test_backoff_recovers_write;
          Alcotest.test_case "permanent error not retried" `Quick
            test_backoff_stops_on_permanent_error;
          Alcotest.test_case "unjittered schedule unchanged" `Quick
            test_backoff_default_schedule_unchanged;
          Alcotest.test_case "full jitter bounded and seeded" `Quick
            test_backoff_jitter_bounded_and_seeded;
        ] );
    ]
