(* Tests for the transparency reports and the distributed-deployment
   transfer analysis. *)

open Mdp_dataflow
module Core = Mdp_core
module R = Mdp_runtime
module H = Mdp_scenario.Healthcare

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let setup () =
  let u = Core.Universe.make H.diagram H.policy in
  (u, Core.Generate.run u)

(* ------------------------------------------------------------------ *)
(* Transparency *)

let test_transparency_initial_empty () =
  let u, lts = setup () in
  check int_ "nothing exposed initially" 0
    (List.length (Core.Transparency.at_state u lts (Core.Plts.initial lts)))

let test_transparency_tracks_monitor () =
  let a = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy in
  let monitor = R.Monitor.create a.universe a.lts in
  let trace =
    R.Sim.run_exn a.universe
      { seed = 4; services = [ H.medical_service ]; snoopers = [] }
  in
  ignore (R.Monitor.run_trace monitor trace);
  let entries =
    Core.Transparency.at_state a.universe a.lts
      (R.Monitor.current_state monitor)
  in
  (* After the medical service: the Doctor has seen the Diagnosis... *)
  check bool_ "doctor has diagnosis" true
    (List.exists
       (fun (e : Core.Transparency.entry) ->
         e.actor = "Doctor" && Field.equal e.field H.diagnosis
         && e.status = Core.Transparency.Has)
       entries);
  (* ...the Administrator only *could* see it... *)
  check bool_ "admin could see diagnosis" true
    (List.exists
       (fun (e : Core.Transparency.entry) ->
         e.actor = "Administrator" && Field.equal e.field H.diagnosis
         && e.status = Core.Transparency.Could)
       entries);
  (* ...and the Researcher appears nowhere. *)
  check int_ "researcher absent" 0
    (List.length (Core.Transparency.for_actor entries "Researcher"));
  (* Every entry carries a non-empty explanation. *)
  List.iter
    (fun (e : Core.Transparency.entry) ->
      check bool_ "witness present" true (e.via <> []))
    entries

let test_transparency_worst_case_superset () =
  let u, lts = setup () in
  let worst = Core.Transparency.worst_case u lts in
  let somewhere = Core.Transparency.at_state u lts (Core.Plts.initial lts) in
  check bool_ "worst case covers any state" true
    (List.length worst >= List.length somewhere);
  (* Worst case includes the researcher's anon readings. *)
  check bool_ "researcher anon exposure in worst case" true
    (List.exists
       (fun (e : Core.Transparency.entry) ->
         e.actor = "Researcher" && Field.is_anon e.field)
       worst)

(* ------------------------------------------------------------------ *)
(* Deployment *)

let nodes =
  [
    { R.Deployment.id = "surgery"; region = "UK" };
    { R.Deployment.id = "dc-eu"; region = "EU" };
    { R.Deployment.id = "research-cloud"; region = "US" };
  ]

let placement u =
  R.Deployment.create ~nodes
    ~actors:
      [
        ("Receptionist", "surgery");
        ("Doctor", "surgery");
        ("Nurse", "surgery");
        ("Administrator", "dc-eu");
        ("Researcher", "research-cloud");
      ]
    ~stores:
      [
        ("Appointments", "surgery");
        ("EHR", "dc-eu");
        ("AnonEHR", "research-cloud");
      ]
    u

let test_deployment_validation () =
  let u, _ = setup () in
  (match
     R.Deployment.create ~nodes ~actors:[ ("Doctor", "surgery") ] ~stores:[] u
   with
  | Error msgs -> check bool_ "missing placements reported" true (List.length msgs > 5)
  | Ok _ -> Alcotest.fail "incomplete placement accepted");
  match
    R.Deployment.create ~nodes
      ~actors:[ ("Doctor", "mars") ]
      ~stores:[] u
  with
  | Error msgs ->
    check bool_ "unknown node reported" true
      (List.exists
         (fun m ->
           let rec contains i =
             i + 4 <= String.length m
             && (String.sub m i 4 = "mars" || contains (i + 1))
           in
           contains 0)
         msgs)
  | Ok _ -> Alcotest.fail "unknown node accepted"

let test_deployment_transfers () =
  let u, lts = setup () in
  match placement u with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok dep ->
    let transfers = R.Deployment.transfers dep lts in
    check bool_ "transfers found" true (transfers <> []);
    (* The Doctor's EHR create moves data surgery/UK -> dc-eu/EU. *)
    check bool_ "EHR create crosses UK->EU" true
      (List.exists
         (fun (tr : R.Deployment.transfer) ->
           tr.action.Core.Action.kind = Core.Action.Create
           && tr.action.Core.Action.store = Some "EHR"
           && tr.cross_region)
         transfers);
    (* The Receptionist's Appointments create stays on one node: absent. *)
    check bool_ "same-node create omitted" false
      (List.exists
         (fun (tr : R.Deployment.transfer) ->
           tr.action.Core.Action.kind = Core.Action.Create
           && tr.action.Core.Action.store = Some "Appointments")
         transfers);
    (* Collects always appear, from the subject's device. *)
    check bool_ "collect from device" true
      (List.exists
         (fun (tr : R.Deployment.transfer) ->
           tr.action.Core.Action.kind = Core.Action.Collect
           && tr.from_node = None)
         transfers)

let test_deployment_risky_transfers () =
  let u, lts = setup () in
  match placement u with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok dep ->
    let risky = R.Deployment.risky_transfers dep lts H.profile_case_a in
    check bool_ "risky transfers exist" true (risky <> []);
    List.iter
      (fun (tr : R.Deployment.transfer) ->
        check bool_ "all flagged transfers cross regions" true tr.cross_region;
        check bool_ "all carry sensitive fields" true
          (List.exists
             (fun f -> Core.User_profile.sensitivity H.profile_case_a f > 0.0)
             tr.action.Core.Action.fields))
      risky;
    (* The medical service's own flows are consented and not flagged. *)
    check bool_ "agreed-service flows not flagged" true
      (List.for_all
         (fun (tr : R.Deployment.transfer) ->
           match tr.action.Core.Action.provenance with
           | Core.Action.From_flow { service; _ } ->
             service <> H.medical_service
           | _ -> true)
         risky)

let () =
  Alcotest.run "distributed"
    [
      ( "transparency",
        [
          Alcotest.test_case "initial empty" `Quick test_transparency_initial_empty;
          Alcotest.test_case "tracks monitor" `Quick test_transparency_tracks_monitor;
          Alcotest.test_case "worst case" `Quick test_transparency_worst_case_superset;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "validation" `Quick test_deployment_validation;
          Alcotest.test_case "transfers" `Quick test_deployment_transfers;
          Alcotest.test_case "risky transfers" `Quick test_deployment_risky_transfers;
        ] );
    ]
