(* The compiled population engine (Risk_plan + equivalence classes +
   parallel streaming aggregation) against the naive per-profile path:
   same seeds, several specs and job counts, byte-identical aggregates.
   Plus the hotspot counting fix and the plan's full-report parity. *)

module Core = Mdp_core
module H = Mdp_scenario.Healthcare
module SH = Mdp_scenario.Smart_home

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let granular = { Core.Generate.default_options with granular_reads = true }

let spec ?(seed = 7) ?(agree_probability = 0.7) size =
  { Core.Population.seed; size; westin_mix = Core.Population.default_mix;
    agree_probability }

let render agg = Format.asprintf "%a" Core.Population.pp_aggregate agg

(* Naive vs compiled on one model: equal aggregates (structurally and as
   rendered text) for jobs 1 and 4. *)
let check_engines name diagram policy options profiles =
  let u = Core.Universe.make diagram policy in
  let lts = Core.Generate.run ~options u in
  let naive = Core.Population.analyse u lts profiles in
  List.iter
    (fun jobs ->
      let compiled =
        Core.Population.analyse_compiled ~jobs u lts profiles
      in
      check bool_
        (Printf.sprintf "%s jobs=%d structural equality" name jobs)
        true (naive = compiled);
      check Alcotest.string
        (Printf.sprintf "%s jobs=%d rendered equality" name jobs)
        (render naive) (render compiled))
    [ 1; 4 ]

let test_healthcare_default () =
  let profiles = Core.Population.simulate (spec 300) H.diagram in
  check_engines "healthcare" H.diagram H.policy
    Core.Generate.default_options profiles

let test_healthcare_granular () =
  let profiles = Core.Population.simulate (spec 80) H.diagram in
  check_engines "healthcare-granular" H.diagram H.policy granular profiles

let test_healthcare_fixed_policy () =
  let profiles =
    Core.Population.simulate (spec ~seed:99 ~agree_probability:0.4 150)
      H.diagram
  in
  check_engines "healthcare-fixed" H.diagram H.fixed_policy
    Core.Generate.default_options profiles

let test_smart_home () =
  let profiles = Core.Population.simulate (spec ~seed:3 200) SH.diagram in
  check_engines "smart-home" SH.diagram SH.policy
    Core.Generate.default_options profiles

let test_empty_population () =
  check_engines "empty" H.diagram H.policy Core.Generate.default_options []

(* Hand-built profiles (explicit sensitivities, overlapping and
   duplicated) rather than simulated ones. *)
let test_handmade_profiles () =
  let p sens agreed =
    Core.User_profile.make ~sensitivities:sens ~agreed_services:agreed ()
  in
  let profiles =
    [
      p [ (H.diagnosis, 0.9); (H.name, 0.3) ] [];
      p [ (H.diagnosis, 0.9); (H.name, 0.3) ] [];
      p [ (H.diagnosis, 0.9); (H.name, 0.3) ] [ H.medical_service ];
      p [ (H.treatment, 0.6) ] [ H.medical_service; H.research_service ];
      p [] [];
    ]
  in
  check_engines "handmade" H.diagram H.policy granular profiles

(* ------------------------------------------------------------------ *)
(* Equivalence classes *)

let test_classes_partition () =
  let u = Core.Universe.make H.diagram H.policy in
  let profiles = Core.Population.simulate (spec 500) H.diagram in
  let classes = Core.Population.classes u profiles in
  check int_ "members sum to population" 500
    (Mdp_prelude.Listx.sum_by snd classes);
  (* 3 Westin baselines x 2^2 service subsets bound the class count. *)
  check bool_ "at most segments x 2^|services| classes" true
    (List.length classes <= 12);
  check bool_ "dedup is real at this size" true (List.length classes < 500)

let test_classes_distinguish () =
  let u = Core.Universe.make H.diagram H.policy in
  let p sens agreed =
    Core.User_profile.make ~sensitivities:sens ~agreed_services:agreed ()
  in
  let classes =
    Core.Population.classes u
      [
        p [ (H.diagnosis, 0.9) ] [];
        p [ (H.diagnosis, 0.9) ] [];
        p [ (H.diagnosis, 0.8) ] [];
        p [ (H.diagnosis, 0.9) ] [ H.medical_service ];
      ]
  in
  check int_ "three distinct classes" 3 (List.length classes);
  check int_ "first class has both members" 2 (snd (List.hd classes))

(* ------------------------------------------------------------------ *)
(* σ-delta reaggregation (PR 10): a 1-field sensitivity edit over a
   large population re-evaluates only the classes whose σ actually
   moves, and the re-merged aggregate is byte-identical to a fresh
   compiled run over the edited profiles. *)

let test_reaggregate_single_class () =
  let u = Core.Universe.make H.diagram H.policy in
  let lts = Core.Generate.run u in
  (* 100k users in five equivalence classes; four of them already sit
     at σ(Diagnosis) = 0.9, so the edit below moves exactly one. *)
  let p sens agreed =
    Core.User_profile.make ~sensitivities:sens ~agreed_services:agreed ()
  in
  let patterns =
    [|
      p [ (H.diagnosis, 0.9); (H.name, 0.3) ] [];
      p [ (H.diagnosis, 0.9); (H.name, 0.3) ] [ H.medical_service ];
      p [ (H.diagnosis, 0.9); (H.treatment, 0.6) ] [ H.research_service ];
      p [ (H.diagnosis, 0.9) ] [ H.medical_service; H.research_service ];
      p [ (H.diagnosis, 0.2); (H.name, 0.7) ] [];
    |]
  in
  let profiles =
    List.init 100_000 (fun i -> patterns.(i mod Array.length patterns))
  in
  let cached = Core.Population.prepare ~jobs:4 u lts profiles in
  check Alcotest.string "cached aggregate matches compiled"
    (render (Core.Population.analyse_compiled u lts profiles))
    (render (Core.Population.cached_aggregate cached));
  let overrides = [ (H.diagnosis, 0.9) ] in
  let agg, reused, reevaluated =
    Core.Population.reaggregate ~jobs:4 cached ~overrides
  in
  check int_ "only the moved class re-evaluates" 1 reevaluated;
  check int_ "the other classes are reused" 4 reused;
  (* Ground truth: the same edit applied profile-wide, analysed cold.
     The edited fifth class collapses into none of the others (its Name
     σ differs), so the class structure stays put — but the merge is
     sums-and-maxes either way. *)
  let edit prof =
    Core.User_profile.make
      ~sensitivities:
        (List.map
           (fun (f, v) ->
             if Mdp_dataflow.Field.equal f H.diagnosis then (f, 0.9)
             else (f, v))
           (Core.User_profile.sensitivities prof))
      ~agreed_services:(Core.User_profile.agreed_services prof)
      ()
  in
  let truth =
    Core.Population.analyse_compiled ~jobs:1 u lts (List.map edit profiles)
  in
  check bool_ "reaggregate structurally equals cold" true (agg = truth);
  check Alcotest.string "reaggregate byte-identical to cold" (render truth)
    (render agg);
  (* jobs-independence and cache immutability: a second pass (jobs 1)
     answers identically, and a vacuous override reuses everything. *)
  let agg1, _, _ = Core.Population.reaggregate ~jobs:1 cached ~overrides in
  check bool_ "jobs=1 agrees" true (agg = agg1);
  let agg0, r0, e0 = Core.Population.reaggregate cached ~overrides:[] in
  check int_ "empty override re-evaluates nothing" 0 e0;
  check int_ "empty override reuses every class" 5 r0;
  check bool_ "empty override is the base aggregate" true
    (agg0 = Core.Population.cached_aggregate cached)

(* ------------------------------------------------------------------ *)
(* Hotspot counting fix: a user with findings at two levels on the same
   (actor, store) used to increment [affected] twice. *)

let test_hotspot_counts_user_once () =
  let u = Core.Universe.make H.diagram H.policy in
  let lts = Core.Generate.run ~options:granular u in
  (* No agreed services, very different sensitivities: the granular EHR
     reads of one actor carry findings at different levels. *)
  let profile =
    Core.User_profile.make
      ~sensitivities:[ (H.diagnosis, 0.9); (H.name, 0.2) ]
      ~agreed_services:[] ()
  in
  let report = Core.Disclosure_risk.analyse u lts profile in
  let distinct_levels_on_one_access =
    Mdp_prelude.Listx.dedup
      (List.filter_map
         (fun (f : Core.Disclosure_risk.finding) ->
           if f.action.Core.Action.actor = "Administrator"
              && f.action.Core.Action.store = Some "EHR"
           then Some f.level
           else None)
         report.findings)
  in
  check bool_ "scenario has two levels on the same access" true
    (List.length distinct_levels_on_one_access >= 2);
  let agg = Core.Population.analyse u lts [ profile ] in
  List.iter
    (fun (h : Core.Population.hotspot) ->
      check int_
        (Printf.sprintf "hotspot %s/%s counts the single user once" h.actor
           (Option.value h.store ~default:"-"))
        1 h.affected)
    agg.hotspots;
  let compiled = Core.Population.analyse_compiled u lts [ profile ] in
  check bool_ "compiled agrees" true (agg = compiled)

(* ------------------------------------------------------------------ *)
(* Full-report parity: Risk_plan.analyse is a drop-in replacement for
   Disclosure_risk.analyse, annotations included. *)

let labels_of lts =
  let acc = ref [] in
  Core.Plts.iter_transitions lts (fun tr ->
      acc :=
        Format.asprintf "%d>%d %a" tr.src tr.dst Core.Action.pp tr.label
        :: !acc);
  List.rev !acc

let check_plan_parity name diagram policy options profile =
  let u = Core.Universe.make diagram policy in
  let naive_lts = Core.Generate.run ~options u in
  let naive = Core.Disclosure_risk.analyse u naive_lts profile in
  let plan_lts = Core.Generate.run ~options u in
  let plan = Core.Risk_plan.compile u plan_lts in
  let compiled = Core.Risk_plan.analyse plan profile in
  check Alcotest.string
    (name ^ " report")
    (Format.asprintf "%a" Core.Disclosure_risk.pp_report naive)
    (Format.asprintf "%a" Core.Disclosure_risk.pp_report compiled);
  check bool_ (name ^ " reports structurally equal") true (naive = compiled);
  check
    Alcotest.(list string)
    (name ^ " annotated labels")
    (labels_of naive_lts) (labels_of plan_lts);
  (* Witnesses come from the plan's BFS tree; spot-check against the
     per-finding searches of the naive path. *)
  List.iter2
    (fun (a : Core.Disclosure_risk.finding)
         (b : Core.Disclosure_risk.finding) ->
      check int_ (name ^ " witness lengths") (List.length a.witness)
        (List.length b.witness))
    naive.findings compiled.findings

let test_plan_parity_healthcare () =
  check_plan_parity "healthcare" H.diagram H.policy
    Core.Generate.default_options H.profile_case_a

let test_plan_parity_granular () =
  check_plan_parity "healthcare-granular" H.diagram H.policy granular
    H.profile_case_a

let test_plan_parity_smart_home () =
  check_plan_parity "smart-home" SH.diagram SH.policy
    Core.Generate.default_options SH.profile

let test_plan_rejects_stale_lts () =
  let u = Core.Universe.make H.study_diagram H.study_policy in
  let lts = Core.Generate.run ~options:granular u in
  let plan = Core.Risk_plan.compile u lts in
  (* The pseudonym pass adds inferred transitions: the plan must refuse
     to analyse the grown LTS rather than misattribute entries. *)
  ignore (Core.Pseudonym_risk.analyse u lts H.study_binding);
  match Core.Risk_plan.analyse plan H.profile_case_a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on a grown LTS"

(* The likelihood combinators themselves: Sum_saturating is the exact
   sum below 1 (same term order as the engines) and exactly 1 once the
   scenario probabilities sum past it; Independent_union is the
   complement-product and never saturates for probabilities < 1. *)
let test_combine_semantics () =
  let model combine =
    { Core.Disclosure_risk.accidental_access = 0.;
      maintenance_exposure = 0.; rogue_service = 0.; combine }
  in
  let sum = model Core.Disclosure_risk.Sum_saturating in
  let union = model Core.Disclosure_risk.Independent_union in
  let combine m a mn r =
    Core.Disclosure_risk.combine_scenarios m ~accidental:a ~maintenance:mn
      ~rogue:r
  in
  check (Alcotest.float 0.) "sum below 1 is exact" (0.05 +. 0.02 +. 0.01)
    (combine sum 0.05 0.02 0.01);
  check (Alcotest.float 0.) "sum past 1 saturates" 1.0
    (combine sum 0.6 0.5 0.4);
  check (Alcotest.float 0.) "union is complement-product"
    (1.0 -. (0.4 *. 0.5 *. 0.6))
    (combine union 0.6 0.5 0.4);
  check bool_ "union stays below 1" true (combine union 0.9 0.9 0.9 < 1.0)

(* Property: for models swept across the sum = 1 boundary — including
   ones where every read saturates — the naive and compiled engines
   produce byte-identical reports, and every likelihood stays in
   [0, 1]. *)
let arb_model =
  let open QCheck in
  let print (m : Core.Disclosure_risk.likelihood_model) =
    Printf.sprintf "{a=%g; m=%g; r=%g; %s}" m.accidental_access
      m.maintenance_exposure m.rogue_service
      (match m.combine with
      | Core.Disclosure_risk.Sum_saturating -> "sum"
      | Core.Disclosure_risk.Independent_union -> "union")
  in
  let gen =
    let open Gen in
    (* Each scenario in [0, 0.6]: the sum ranges over [0, 1.8], so the
       sweep crosses 1.0 from both sides. *)
    let p = float_bound_inclusive 0.6 in
    let* accidental_access = p in
    let* maintenance_exposure = p in
    let* rogue_service = p in
    let+ combine =
      oneofl
        [
          Core.Disclosure_risk.Sum_saturating;
          Core.Disclosure_risk.Independent_union;
        ]
    in
    { Core.Disclosure_risk.accidental_access; maintenance_exposure;
      rogue_service; combine }
  in
  make ~print gen

let prop_extreme_models_parity =
  QCheck.Test.make ~name:"extreme models keep engines byte-identical"
    ~count:20 arb_model (fun model ->
      let u = Core.Universe.make H.diagram H.policy in
      let naive_lts = Core.Generate.run u in
      let naive = Core.Disclosure_risk.analyse ~model u naive_lts
          H.profile_case_a in
      let plan_lts = Core.Generate.run u in
      let plan = Core.Risk_plan.compile ~model u plan_lts in
      let compiled = Core.Risk_plan.analyse plan H.profile_case_a in
      let in_range (f : Core.Disclosure_risk.finding) =
        f.likelihood >= 0.0 && f.likelihood <= 1.0
      in
      naive = compiled
      && Format.asprintf "%a" Core.Disclosure_risk.pp_report naive
         = Format.asprintf "%a" Core.Disclosure_risk.pp_report compiled
      && List.for_all in_range naive.findings)

let () =
  Alcotest.run "population"
    [
      ( "compiled-vs-naive",
        [
          Alcotest.test_case "healthcare default" `Quick
            test_healthcare_default;
          Alcotest.test_case "healthcare granular" `Quick
            test_healthcare_granular;
          Alcotest.test_case "healthcare fixed policy" `Quick
            test_healthcare_fixed_policy;
          Alcotest.test_case "smart home" `Quick test_smart_home;
          Alcotest.test_case "empty population" `Quick test_empty_population;
          Alcotest.test_case "handmade profiles" `Quick
            test_handmade_profiles;
        ] );
      ( "classes",
        [
          Alcotest.test_case "partition" `Quick test_classes_partition;
          Alcotest.test_case "distinguish" `Quick test_classes_distinguish;
        ] );
      ( "reaggregate",
        [
          Alcotest.test_case "1-field edit re-evaluates one class" `Quick
            test_reaggregate_single_class;
        ] );
      ( "hotspots",
        [
          Alcotest.test_case "user counted once" `Quick
            test_hotspot_counts_user_once;
        ] );
      ( "plan-parity",
        [
          Alcotest.test_case "healthcare" `Quick test_plan_parity_healthcare;
          Alcotest.test_case "granular" `Quick test_plan_parity_granular;
          Alcotest.test_case "smart home" `Quick test_plan_parity_smart_home;
          Alcotest.test_case "stale lts rejected" `Quick
            test_plan_rejects_stale_lts;
        ] );
      ( "likelihood-clamp",
        [
          Alcotest.test_case "combine semantics" `Quick
            test_combine_semantics;
          QCheck_alcotest.to_alcotest prop_extreme_models_parity;
        ] );
    ]
