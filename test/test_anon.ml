(* Tests for the anonymisation substrate: values, datasets, hierarchies,
   k-anonymity (checker, Datafly, optimal lattice), Mondrian, l-diversity,
   §III-B value risk (incl. the exact Table I figures), utility metrics,
   re-identification risk and the CSV bridge. *)

module A = Mdp_anon
module V = A.Value
module Frac = Mdp_prelude.Frac

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let float_ = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_close () =
  check bool_ "ints close" true (V.close ~closeness:5.0 (V.Int 100) (V.Int 104));
  check bool_ "ints at boundary" true (V.close ~closeness:5.0 (V.Int 100) (V.Int 105));
  check bool_ "ints far" false (V.close ~closeness:5.0 (V.Int 100) (V.Int 106));
  check bool_ "int/float mix" true (V.close ~closeness:0.5 (V.Int 1) (V.Float 1.4));
  check bool_ "strings equal" true (V.close ~closeness:0.0 (V.Str "x") (V.Str "x"));
  check bool_ "strings differ" false (V.close ~closeness:9.0 (V.Str "x") (V.Str "y"));
  check bool_ "suppressed close to nothing" false
    (V.close ~closeness:9.0 V.Suppressed V.Suppressed)

let test_value_covers () =
  check bool_ "interval covers int" true (V.covers (V.Interval (20.0, 30.0)) (V.Int 25));
  check bool_ "interval lower inclusive" true (V.covers (V.Interval (20.0, 30.0)) (V.Int 20));
  check bool_ "interval upper exclusive" false (V.covers (V.Interval (20.0, 30.0)) (V.Int 30));
  check bool_ "set covers member" true (V.covers (V.str_set [ "a"; "b" ]) (V.Str "a"));
  check bool_ "suppressed covers all" true (V.covers V.Suppressed (V.Str "zzz"));
  check bool_ "equal covers" true (V.covers (V.Int 3) (V.Int 3))

let test_value_strings () =
  check Alcotest.string "interval" "20-30" (V.to_string (V.Interval (20.0, 30.0)));
  check Alcotest.string "suppressed" "*" (V.to_string V.Suppressed);
  check Alcotest.string "float int-like" "80" (V.to_string (V.Float 80.0));
  check Alcotest.string "set" "{a, b}" (V.to_string (V.str_set [ "b"; "a"; "a" ]))

(* ------------------------------------------------------------------ *)
(* Dataset *)

let mini () =
  A.Dataset.make
    ~attrs:
      [
        A.Attribute.make ~name:"Id" ~kind:A.Attribute.Identifier;
        A.Attribute.make ~name:"Q" ~kind:A.Attribute.Quasi;
        A.Attribute.make ~name:"S" ~kind:A.Attribute.Sensitive;
      ]
    ~rows:
      [
        [ V.Str "a"; V.Int 1; V.Int 10 ];
        [ V.Str "b"; V.Int 1; V.Int 20 ];
        [ V.Str "c"; V.Int 2; V.Int 30 ];
      ]

let test_dataset_accessors () =
  let d = mini () in
  check int_ "nrows" 3 (A.Dataset.nrows d);
  check int_ "ncols" 3 (A.Dataset.ncols d);
  check int_ "col_index" 1 (A.Dataset.col_index d "Q");
  check (Alcotest.list int_) "quasi idx" [ 1 ] (A.Dataset.quasi_indices d);
  check (Alcotest.list int_) "sensitive idx" [ 2 ] (A.Dataset.sensitive_indices d);
  check bool_ "column" true (A.Dataset.column d "S" = [ V.Int 10; V.Int 20; V.Int 30 ]);
  let d' = A.Dataset.drop_identifiers d in
  check int_ "dropped id col" 2 (A.Dataset.ncols d');
  let classes = A.Dataset.equivalence_classes d ~by:[ 1 ] in
  check (Alcotest.list (Alcotest.list int_)) "classes" [ [ 0; 1 ]; [ 2 ] ] classes

let test_dataset_invalid () =
  (match
     A.Dataset.make
       ~attrs:[ A.Attribute.make ~name:"X" ~kind:A.Attribute.Quasi ]
       ~rows:[ [ V.Int 1; V.Int 2 ] ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ragged row accepted");
  match
    A.Dataset.make
      ~attrs:
        [
          A.Attribute.make ~name:"X" ~kind:A.Attribute.Quasi;
          A.Attribute.make ~name:"X" ~kind:A.Attribute.Quasi;
        ]
      ~rows:[]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate attr accepted"

(* ------------------------------------------------------------------ *)
(* Hierarchy *)

let test_numeric_hierarchy () =
  let h = A.Hierarchy.numeric ~widths:[ 10.0; 20.0 ] () in
  check int_ "nlevels" 3 (A.Hierarchy.nlevels h);
  check bool_ "level0 identity" true
    (V.equal (A.Hierarchy.generalise h ~level:0 (V.Int 35)) (V.Int 35));
  check bool_ "level1 decade" true
    (V.equal (A.Hierarchy.generalise h ~level:1 (V.Int 35)) (V.Interval (30.0, 40.0)));
  check bool_ "level2 score" true
    (V.equal (A.Hierarchy.generalise h ~level:2 (V.Int 35)) (V.Interval (20.0, 40.0)));
  check bool_ "top suppresses" true
    (V.equal (A.Hierarchy.generalise h ~level:3 (V.Int 35)) V.Suppressed);
  check bool_ "non-numeric suppressed" true
    (V.equal (A.Hierarchy.generalise h ~level:1 (V.Str "x")) V.Suppressed);
  Alcotest.check_raises "level out of range"
    (Invalid_argument "Hierarchy.generalise: bad level") (fun () ->
      ignore (A.Hierarchy.generalise h ~level:4 (V.Int 1)))

let test_categorical_hierarchy () =
  let h =
    A.Hierarchy.categorical
      ~levels:[ [ ("N1", "N"); ("E2", "E") ]; [ ("N", "London"); ("E", "London") ] ]
  in
  check bool_ "level1" true
    (V.equal (A.Hierarchy.generalise h ~level:1 (V.Str "N1")) (V.Str "N"));
  check bool_ "level2" true
    (V.equal (A.Hierarchy.generalise h ~level:2 (V.Str "E2")) (V.Str "London"));
  check bool_ "unknown suppressed" true
    (V.equal (A.Hierarchy.generalise h ~level:1 (V.Str "XX")) V.Suppressed);
  check bool_ "top" true
    (V.equal (A.Hierarchy.generalise h ~level:3 (V.Str "N1")) V.Suppressed)

let test_hierarchy_invalid () =
  (match A.Hierarchy.numeric ~widths:[ 10.0; 5.0 ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing widths accepted");
  match A.Hierarchy.numeric ~widths:[ -1.0 ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative width accepted"

(* ------------------------------------------------------------------ *)
(* k-anonymity *)

let table1 = Mdp_scenario.Healthcare.table1_released

let test_kanon_checker () =
  check bool_ "table1 is 2-anonymous" true (A.Kanon.is_k_anonymous ~k:2 table1);
  check bool_ "table1 not 3-anonymous" false (A.Kanon.is_k_anonymous ~k:3 table1);
  check int_ "min class size" 2 (A.Kanon.min_class_size table1);
  check int_ "three classes" 3 (List.length (A.Kanon.classes table1))

let test_datafly_reaches_k () =
  let raw = A.Dataset.drop_identifiers Mdp_scenario.Healthcare.table1_raw in
  match A.Kanon.datafly ~k:2 raw Mdp_scenario.Healthcare.table1_scheme with
  | Ok (ds, levels, suppressed) ->
    check bool_ "result 2-anonymous" true (A.Kanon.is_k_anonymous ~k:2 ds);
    check int_ "no suppression needed" 0 suppressed;
    check bool_ "levels at most max" true
      (List.for_all (fun (_, l) -> l <= 3) levels)
  | Error e -> Alcotest.fail e

let test_datafly_with_suppression () =
  (* An outlier row that no generalisation groups: needs suppression. *)
  let ds =
    A.Dataset.make
      ~attrs:
        [
          A.Attribute.make ~name:"Q" ~kind:A.Attribute.Quasi;
          A.Attribute.make ~name:"S" ~kind:A.Attribute.Sensitive;
        ]
      ~rows:
        [
          [ V.Str "x"; V.Int 1 ];
          [ V.Str "x"; V.Int 2 ];
          [ V.Str "y"; V.Int 3 ];
        ]
  in
  let scheme = [ ("Q", A.Hierarchy.suppress_only) ] in
  (* With suppress-only hierarchy level 1 makes everything one class, so
     k=2 is reachable without suppression... *)
  (match A.Kanon.datafly ~k:2 ds scheme with
  | Ok (out, _, suppressed) ->
    check bool_ "2-anonymous" true (A.Kanon.is_k_anonymous ~k:2 out);
    check int_ "rows kept" (3 - suppressed) (A.Dataset.nrows out)
  | Error e -> Alcotest.fail e);
  (* ...but k=4 is unreachable even fully generalised. *)
  match A.Kanon.datafly ~k:4 ds scheme with
  | Error _ -> ()
  | Ok (_, _, _) -> Alcotest.fail "expected failure at k=4"

let test_optimal_minimal () =
  let raw = A.Dataset.drop_identifiers Mdp_scenario.Healthcare.table1_raw in
  match A.Kanon.optimal ~k:2 raw Mdp_scenario.Healthcare.table1_scheme with
  | Some (ds, levels) ->
    check bool_ "optimal is 2-anonymous" true (A.Kanon.is_k_anonymous ~k:2 ds);
    let total = Mdp_prelude.Listx.sum_by snd levels in
    check int_ "minimal total level" 2 total
  | None -> Alcotest.fail "no lattice point found"

let prop_datafly_k_anonymous =
  QCheck.Test.make ~name:"datafly output is k-anonymous" ~count:40
    QCheck.(pair (int_range 2 4) (int_range 10 60))
    (fun (k, rows) ->
      let ds = Mdp_scenario.Synthetic.dataset ~seed:(k * rows) ~rows ~quasi:2 in
      let scheme = Mdp_scenario.Synthetic.scheme_for ~quasi:2 in
      match A.Kanon.datafly ~k ~max_suppression:0.3 ds scheme with
      | Ok (out, _, _) -> A.Kanon.is_k_anonymous ~k out
      | Error _ -> true (* allowed to fail; must not lie *))

(* ------------------------------------------------------------------ *)
(* Mondrian *)

let test_mondrian () =
  let ds = Mdp_scenario.Synthetic.dataset ~seed:5 ~rows:100 ~quasi:2 in
  match A.Mondrian.anonymise ~k:5 ds with
  | Ok out ->
    check bool_ "5-anonymous" true (A.Kanon.is_k_anonymous ~k:5 out);
    check int_ "row count preserved" 100 (A.Dataset.nrows out);
    (* Generalised cells must cover the original values. *)
    let q0 = A.Dataset.col_index ds "Q0" in
    for r = 0 to 99 do
      if
        not
          (V.covers (A.Dataset.get out ~row:r ~col:q0) (A.Dataset.get ds ~row:r ~col:q0))
      then Alcotest.failf "row %d not covered" r
    done
  | Error e -> Alcotest.fail e

let test_mondrian_errors () =
  (match A.Mondrian.anonymise ~k:10 (Mdp_scenario.Synthetic.dataset ~seed:1 ~rows:5 ~quasi:1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "k larger than dataset accepted");
  let non_numeric =
    A.Dataset.make
      ~attrs:[ A.Attribute.make ~name:"Q" ~kind:A.Attribute.Quasi ]
      ~rows:[ [ V.Str "x" ]; [ V.Str "y" ] ]
  in
  match A.Mondrian.anonymise ~k:2 non_numeric with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric quasi accepted"

let prop_mondrian_k_anonymous =
  QCheck.Test.make ~name:"mondrian output is k-anonymous" ~count:30
    QCheck.(pair (int_range 2 6) (int_range 20 80))
    (fun (k, rows) ->
      let ds = Mdp_scenario.Synthetic.dataset ~seed:(k + rows) ~rows ~quasi:2 in
      match A.Mondrian.anonymise ~k ds with
      | Ok out -> A.Kanon.is_k_anonymous ~k out
      | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* l-diversity *)

let test_ldiversity () =
  check int_ "table1 distinct l" 2 (A.Ldiv.distinct table1 ~sensitive:"Weight");
  check bool_ "is 2-diverse" true (A.Ldiv.is_distinct_diverse ~l:2 table1 ~sensitive:"Weight");
  check bool_ "not 3-diverse" false (A.Ldiv.is_distinct_diverse ~l:3 table1 ~sensitive:"Weight");
  let e = A.Ldiv.entropy table1 ~sensitive:"Weight" in
  check bool_ "entropy l at least 1" true (e >= 1.0);
  check bool_ "entropy l at most distinct l" true (e <= 2.0 +. 1e-9)

let test_ldiversity_constant_class () =
  let ds =
    A.Dataset.make
      ~attrs:
        [
          A.Attribute.make ~name:"Q" ~kind:A.Attribute.Quasi;
          A.Attribute.make ~name:"S" ~kind:A.Attribute.Sensitive;
        ]
      ~rows:[ [ V.Int 1; V.Int 9 ]; [ V.Int 1; V.Int 9 ] ]
  in
  check int_ "constant class l=1" 1 (A.Ldiv.distinct ds ~sensitive:"S");
  check (Alcotest.float 1e-6) "entropy 1" 1.0 (A.Ldiv.entropy ds ~sensitive:"S")

(* ------------------------------------------------------------------ *)
(* Value risk: the paper's Table I, exactly *)

let policy = Mdp_scenario.Healthcare.value_policy

let risks fields_read =
  let r = A.Value_risk.assess table1 ~fields_read policy in
  (List.map (fun (s : A.Value_risk.score) -> Frac.to_string s.risk) r.scores, r.violations)

let test_table1_height () =
  let rs, v = risks [ "Height" ] in
  check (Alcotest.list Alcotest.string) "height risks"
    [ "2/4"; "2/4"; "2/4"; "2/4"; "1/2"; "1/2" ] rs;
  check int_ "0 violations" 0 v

let test_table1_age () =
  let rs, v = risks [ "Age" ] in
  check (Alcotest.list Alcotest.string) "age risks"
    [ "2/2"; "2/2"; "3/4"; "3/4"; "1/4"; "3/4" ] rs;
  check int_ "2 violations" 2 v

let test_table1_age_height () =
  let rs, v = risks [ "Age"; "Height" ] in
  check (Alcotest.list Alcotest.string) "age+height risks"
    [ "2/2"; "2/2"; "2/2"; "2/2"; "1/2"; "1/2" ] rs;
  check int_ "4 violations" 4 v

let test_value_risk_no_fields_read () =
  let r = A.Value_risk.assess table1 ~fields_read:[] policy in
  (* One set of six records. *)
  List.iter
    (fun (s : A.Value_risk.score) -> check int_ "den 6" 6 s.risk.Frac.den)
    r.scores;
  check int_ "no violations" 0 r.violations

let test_value_risk_sweep () =
  let reports = A.Value_risk.sweep table1 policy in
  check int_ "3 subsets of 2 quasi attrs" 3 (List.length reports);
  (* ordered by subset size *)
  check int_ "singletons first" 1
    (List.length (List.hd reports).A.Value_risk.fields_read)

let prop_value_risk_bounds =
  QCheck.Test.make ~name:"value risk in (0,1], never empty sets" ~count:40
    QCheck.(int_range 10 80)
    (fun rows ->
      let ds = Mdp_scenario.Synthetic.dataset ~seed:rows ~rows ~quasi:2 in
      let p = { A.Value_risk.sensitive = "S"; closeness = 5.0; confidence = 0.9 } in
      let r = A.Value_risk.assess ds ~fields_read:[ "Q0" ] p in
      List.for_all
        (fun (s : A.Value_risk.score) ->
          s.risk.Frac.num >= 1 (* own value is always close to itself *)
          && s.risk.Frac.num <= s.risk.Frac.den)
        r.scores)

let prop_value_risk_monotone_in_fields =
  (* Reading more quasi fields weakly increases each record's risk:
     finer partitions shrink the sets around each record. *)
  QCheck.Test.make ~name:"value risk monotone in fields_read" ~count:30
    QCheck.(int_range 10 60)
    (fun rows ->
      let ds = Mdp_scenario.Synthetic.dataset ~seed:(rows * 3) ~rows ~quasi:2 in
      let p = { A.Value_risk.sensitive = "S"; closeness = 5.0; confidence = 0.9 } in
      let r1 = A.Value_risk.assess ds ~fields_read:[ "Q0" ] p in
      let r2 = A.Value_risk.assess ds ~fields_read:[ "Q0"; "Q1" ] p in
      List.for_all2
        (fun (a : A.Value_risk.score) (b : A.Value_risk.score) ->
          Frac.to_float b.risk >= Frac.to_float a.risk -. 1e-9)
        r1.scores r2.scores)

(* ------------------------------------------------------------------ *)
(* Utility *)

let test_utility_means () =
  let raw = A.Dataset.drop_identifiers Mdp_scenario.Healthcare.table1_raw in
  (* Weight survives generalisation untouched. *)
  check (Alcotest.option float_) "weight mean drift" (Some 0.0)
    (A.Utility.mean_drift ~original:raw ~release:table1 "Weight");
  (* Age becomes interval midpoints: drift bounded by half the band. *)
  (match A.Utility.mean_drift ~original:raw ~release:table1 "Age" with
  | Some d -> check bool_ "age drift bounded" true (d <= 5.0)
  | None -> Alcotest.fail "age mean should exist");
  match A.Utility.variance_drift ~original:raw ~release:table1 "Weight" with
  | Some d -> check float_ "weight variance drift" 0.0 d
  | None -> Alcotest.fail "variance should exist"

let test_utility_precision_and_discernibility () =
  check float_ "precision untouched" 1.0
    (A.Utility.precision ~scheme:Mdp_scenario.Healthcare.table1_scheme ~levels:[]);
  let p =
    A.Utility.precision ~scheme:Mdp_scenario.Healthcare.table1_scheme
      ~levels:[ ("Age", 1); ("Height", 1) ]
  in
  check bool_ "partial precision" true (p > 0.5 && p < 1.0);
  check int_ "discernibility of table1" 12 (A.Utility.discernibility table1);
  check float_ "avg class size" 2.0 (A.Utility.avg_class_size table1)

(* ------------------------------------------------------------------ *)
(* Re-identification *)

let test_reident () =
  check float_ "prosecutor" 0.5 (A.Reident.prosecutor table1);
  check float_ "marketer" 0.5 (A.Reident.marketer table1);
  let population = A.Dataset.drop_identifiers Mdp_scenario.Healthcare.table1_raw in
  match A.Reident.journalist ~release:table1 ~population with
  | Some r -> check float_ "journalist equals prosecutor here" 0.5 r
  | None -> Alcotest.fail "population should cover the release"

(* ------------------------------------------------------------------ *)
(* CSV *)

let test_csv_roundtrip () =
  let text = A.Csv.render table1 in
  match
    A.Csv.parse
      ~kinds:
        [
          ("Age", A.Attribute.Quasi);
          ("Height", A.Attribute.Quasi);
          ("Weight", A.Attribute.Sensitive);
        ]
      text
  with
  | Error e -> Alcotest.fail e
  | Ok ds ->
    check int_ "rows" 6 (A.Dataset.nrows ds);
    check bool_ "interval survived" true
      (V.equal (A.Dataset.get ds ~row:0 ~col:0) (V.Interval (30.0, 40.0)));
    check bool_ "ints survived" true
      (V.equal (A.Dataset.get ds ~row:0 ~col:2) (V.Int 100))

let test_csv_errors () =
  (match A.Csv.parse ~kinds:[] "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted");
  match A.Csv.parse ~kinds:[] "a,b\n1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ragged accepted"

(* ------------------------------------------------------------------ *)
(* Release gate *)

let test_release_gate_accepts_and_rejects () =
  let raw = A.Dataset.drop_identifiers Mdp_scenario.Healthcare.table1_raw in
  let release = table1 in
  (* k alone: accepted. *)
  let base = A.Release_gate.default ~k:2 in
  let v = A.Release_gate.evaluate ~original:raw ~release base in
  check bool_ "k=2 accepted" true v.accepted;
  (* k=3: rejected with a message. *)
  let v3 = A.Release_gate.evaluate ~original:raw ~release { base with k = 3 } in
  check bool_ "k=3 rejected" false v3.accepted;
  check int_ "one failure" 1 (List.length v3.failures);
  (* l-diversity and value risk together: the Table-I release fails the
     value-risk criterion at the paper's thresholds. *)
  let strict =
    {
      base with
      l = Some 2;
      max_violation_ratio = Some 0.5;
      value_policy = Some Mdp_scenario.Healthcare.value_policy;
    }
  in
  let vs = A.Release_gate.evaluate ~original:raw ~release strict in
  check bool_ "value risk trips the gate" false vs.accepted;
  check bool_ "failure names the read set" true
    (List.exists
       (fun m ->
         String.length m > 10
         && (let rec contains i =
               i + 3 <= String.length m
               && (String.sub m i 3 = "Age" || contains (i + 1))
             in
             contains 0))
       vs.failures)

let test_release_gate_utility () =
  let raw = A.Dataset.drop_identifiers Mdp_scenario.Healthcare.table1_raw in
  (* The release keeps Weight raw: zero drift, so a tight bound passes. *)
  let criteria =
    { (A.Release_gate.default ~k:2) with max_mean_drift = Some 0.001 }
  in
  let v = A.Release_gate.evaluate ~original:raw ~release:table1 criteria in
  check bool_ "no drift on raw sensitive column" true v.accepted;
  (* Misconfiguration is itself a failure. *)
  let bad =
    { (A.Release_gate.default ~k:2) with max_violation_ratio = Some 0.5 }
  in
  let vb = A.Release_gate.evaluate ~original:raw ~release:table1 bad in
  check bool_ "ratio without policy rejected" false vb.accepted

(* ------------------------------------------------------------------ *)
(* Columnar engine: parity with the naive modules, bit for bit *)

module C = A.Columnar

let seeds = [ 3; 17; 23 ]
let parity_ds seed = Mdp_scenario.Synthetic.dataset ~seed ~rows:400 ~quasi:3

let test_columnar_classes_parity () =
  List.iter
    (fun seed ->
      let ds = parity_ds seed in
      let plan = C.compile ds in
      List.iter
        (fun by ->
          check bool_
            (Printf.sprintf "classes seed %d by %s" seed
               (String.concat "," (List.map string_of_int by)))
            true
            (A.Dataset.equivalence_classes ds ~by = C.equivalence_classes plan ~by))
        [ []; [ 0 ]; [ 0; 1 ]; [ 0; 1; 2 ]; [ 3 ]; [ 2; 0 ] ];
      check bool_ "kanon classes" true (A.Kanon.classes ds = C.classes plan);
      check int_ "min class size" (A.Kanon.min_class_size ds)
        (C.min_class_size plan);
      check bool_ "is_k_anonymous" (A.Kanon.is_k_anonymous ~k:3 ds)
        (C.is_k_anonymous ~k:3 plan);
      check bool_ "violating rows" true
        (A.Kanon.violating_rows ~k:5 ds = C.violating_rows ~k:5 plan);
      check int_ "distinct count" (A.Kanon.distinct_count ds 3)
        (C.distinct_count plan 3))
    seeds

let result_datasets_equal a b =
  match (a, b) with
  | Ok a, Ok b -> A.Dataset.attrs a = A.Dataset.attrs b && A.Dataset.rows a = A.Dataset.rows b
  | Error ea, Error eb -> (ea : string) = eb
  | _ -> false

let test_columnar_mondrian_parity () =
  List.iter
    (fun seed ->
      let ds = Mdp_scenario.Synthetic.dataset ~seed ~rows:600 ~quasi:2 in
      let plan = C.compile ds in
      List.iter
        (fun k ->
          let naive_parts = A.Mondrian.partitions ~k ds in
          let naive_rel = A.Mondrian.anonymise ~k ds in
          List.iter
            (fun jobs ->
              (* par_threshold far below the row count so jobs=4
                 actually exercises the two-phase parallel path. *)
              check bool_
                (Printf.sprintf "partitions seed %d k %d jobs %d" seed k jobs)
                true
                (naive_parts
                = C.mondrian_partitions ~jobs ~par_threshold:64 ~k plan);
              check bool_
                (Printf.sprintf "release seed %d k %d jobs %d" seed k jobs)
                true
                (result_datasets_equal naive_rel
                   (C.mondrian_anonymise ~jobs ~par_threshold:64 ~k plan)))
            [ 1; 4 ])
        [ 2; 7; 25 ])
    seeds

let test_columnar_mondrian_errors () =
  (* Too few rows: identical error text. *)
  let small = Mdp_scenario.Synthetic.dataset ~seed:1 ~rows:5 ~quasi:1 in
  check bool_ "fewer-rows error" true
    (A.Mondrian.partitions ~k:10 small
    = C.mondrian_partitions ~k:10 (C.compile small));
  (* Non-numeric quasi: same first offending cell in row-major order,
     even with several bad cells across columns. *)
  let mixed =
    A.Dataset.make
      ~attrs:
        [
          A.Attribute.make ~name:"Q0" ~kind:A.Attribute.Quasi;
          A.Attribute.make ~name:"Q1" ~kind:A.Attribute.Quasi;
        ]
      ~rows:
        [
          [ V.Int 1; V.Int 2 ];
          [ V.Int 3; V.Str "x" ];
          [ V.Str "y"; V.Str "z" ];
        ]
  in
  check bool_ "non-numeric error" true
    (A.Mondrian.anonymise ~k:1 mixed
     |> Result.map A.Dataset.rows
    = (C.mondrian_anonymise ~k:1 (C.compile mixed) |> Result.map A.Dataset.rows))

let test_columnar_analyses_parity () =
  List.iter
    (fun seed ->
      let ds = parity_ds seed in
      let release = Result.get_ok (A.Mondrian.anonymise ~k:10 ds) in
      let plan = C.compile release in
      check int_ "ldiv distinct" (A.Ldiv.distinct release ~sensitive:"S")
        (C.ldiv_distinct plan ~sensitive:"S");
      check bool_ "ldiv distinct predicate"
        (A.Ldiv.is_distinct_diverse ~l:2 release ~sensitive:"S")
        (C.is_distinct_diverse ~l:2 plan ~sensitive:"S");
      check bool_ "ldiv entropy bit-equal" true
        (Float.equal
           (A.Ldiv.entropy release ~sensitive:"S")
           (C.ldiv_entropy plan ~sensitive:"S"));
      check bool_ "entropy predicate"
        (A.Ldiv.is_entropy_diverse ~l:1.5 release ~sensitive:"S")
        (C.is_entropy_diverse ~l:1.5 plan ~sensitive:"S");
      check bool_ "numeric emd bit-equal" true
        (A.Tcloseness.numeric_emd release ~sensitive:"S"
        = C.tclose_numeric_emd plan ~sensitive:"S");
      check bool_ "is_t_close"
        (A.Tcloseness.is_t_close ~t:0.3 release ~sensitive:"S")
        (C.is_t_close ~t:0.3 plan ~sensitive:"S");
      check bool_ "prosecutor" true
        (Float.equal (A.Reident.prosecutor release) (C.reident_prosecutor plan));
      check bool_ "marketer" true
        (Float.equal (A.Reident.marketer release) (C.reident_marketer plan));
      check bool_ "journalist" true
        (A.Reident.journalist ~release ~population:ds
        = C.reident_journalist ~release:plan ~population:(C.compile ds));
      let p = { A.Value_risk.sensitive = "S"; closeness = 5.0; confidence = 0.9 } in
      List.iter
        (fun fields_read ->
          check bool_
            (Printf.sprintf "value risk {%s}" (String.concat "," fields_read))
            true
            (A.Value_risk.assess release ~fields_read p
            = C.value_risk_assess plan ~fields_read p))
        [ [ "Q0" ]; [ "Q0"; "Q1" ]; [ "Q2"; "Q0" ] ];
      check bool_ "value risk sweep" true
        (A.Value_risk.sweep release p = C.value_risk_sweep plan p))
    seeds

let test_columnar_categorical_parity () =
  (* Categorical sensitive column: total-variation t-closeness and
     code-counted value risk, including a Suppressed cell. *)
  let ds =
    A.Dataset.make
      ~attrs:
        [
          A.Attribute.make ~name:"Q" ~kind:A.Attribute.Quasi;
          A.Attribute.make ~name:"S" ~kind:A.Attribute.Sensitive;
        ]
      ~rows:
        [
          [ V.Int 1; V.Str "flu" ];
          [ V.Int 1; V.Str "cold" ];
          [ V.Int 2; V.Str "flu" ];
          [ V.Int 2; V.Str "flu" ];
          [ V.Int 3; V.Suppressed ];
          [ V.Int 3; V.Str "cold" ];
        ]
  in
  let plan = C.compile ds in
  check bool_ "categorical distance" true
    (A.Tcloseness.categorical_distance ds ~sensitive:"S"
    = C.tclose_categorical plan ~sensitive:"S");
  check bool_ "is_t_close categorical"
    (A.Tcloseness.is_t_close ~t:0.4 ds ~sensitive:"S")
    (C.is_t_close ~t:0.4 plan ~sensitive:"S");
  let p = { A.Value_risk.sensitive = "S"; closeness = 0.0; confidence = 0.5 } in
  check bool_ "categorical value risk" true
    (A.Value_risk.assess ds ~fields_read:[ "Q" ] p
    = C.value_risk_assess plan ~fields_read:[ "Q" ] p);
  check int_ "ldiv distinct categorical" (A.Ldiv.distinct ds ~sensitive:"S")
    (C.ldiv_distinct plan ~sensitive:"S")

let test_columnar_gate_parity () =
  (* Identical verdicts — same failure strings in the same order — for
     both an accepting and a rejecting set of criteria, across seeds. *)
  List.iter
    (fun seed ->
      let ds = parity_ds seed in
      let release = Result.get_ok (A.Mondrian.anonymise ~k:10 ds) in
      let plan = C.compile release in
      let vp =
        { A.Value_risk.sensitive = "S"; closeness = 5.0; confidence = 0.9 }
      in
      List.iter
        (fun criteria ->
          let naive =
            A.Release_gate.evaluate ~original:ds ~release criteria
          in
          let col = C.evaluate_gate ~original:ds ~release:plan criteria in
          check bool_ "verdict accepted" naive.A.Release_gate.accepted
            col.A.Release_gate.accepted;
          check (Alcotest.list Alcotest.string) "verdict failures"
            naive.A.Release_gate.failures col.A.Release_gate.failures)
        [
          A.Release_gate.default ~k:10;
          { (A.Release_gate.default ~k:10) with l = Some 2 };
          (* Unsatisfiable criteria: every failure path renders. *)
          {
            A.Release_gate.k = 100_000;
            l = Some 1_000;
            t = Some 0.0;
            max_violation_ratio = Some 0.0;
            value_policy = Some vp;
            max_mean_drift = Some 0.0;
          };
          (* Ratio without a policy: the config-error failure. *)
          {
            (A.Release_gate.default ~k:10) with
            max_violation_ratio = Some 0.5;
          };
        ])
    seeds

let test_columnar_release_plan () =
  (* [mondrian_release]'s seeded dictionaries must be indistinguishable
     from compiling its release from scratch, and its gate verdicts
     from the naive gate, for any job count. *)
  List.iter
    (fun seed ->
      let ds = parity_ds seed in
      let plan = C.compile ds in
      let naive_rel = Result.get_ok (A.Mondrian.anonymise ~k:10 ds) in
      List.iter
        (fun jobs ->
          let rplan =
            Result.get_ok
              (C.mondrian_release ~jobs ~par_threshold:64 ~k:10 plan)
          in
          check bool_ "release cells" true
            (A.Dataset.rows (C.source rplan) = A.Dataset.rows naive_rel);
          let fresh = C.compile (C.source rplan) in
          check bool_ "classes" true (C.classes rplan = C.classes fresh);
          check int_ "min class size" (C.min_class_size fresh)
            (C.min_class_size rplan);
          check int_ "ldiv distinct"
            (A.Ldiv.distinct naive_rel ~sensitive:"S")
            (C.ldiv_distinct rplan ~sensitive:"S");
          check bool_ "ldiv entropy bit-equal" true
            (Float.equal
               (A.Ldiv.entropy naive_rel ~sensitive:"S")
               (C.ldiv_entropy rplan ~sensitive:"S"));
          List.iter
            (fun c ->
              check int_
                (Printf.sprintf "distinct col %d" c)
                (C.distinct_count fresh c)
                (C.distinct_count rplan c))
            (A.Dataset.quasi_indices naive_rel);
          let crit =
            { (A.Release_gate.default ~k:10) with A.Release_gate.l = Some 2 }
          in
          let naive =
            A.Release_gate.evaluate ~original:ds ~release:naive_rel crit
          in
          let col = C.evaluate_gate ~original:ds ~release:rplan crit in
          check bool_ "gate accepted" naive.A.Release_gate.accepted
            col.A.Release_gate.accepted;
          check
            (Alcotest.list Alcotest.string)
            "gate failures" naive.A.Release_gate.failures
            col.A.Release_gate.failures)
        [ 1; 4 ])
    seeds

let test_columnar_guard () =
  let ds = parity_ds 3 in
  let plan = C.compile ds in
  C.guard plan ds;
  check bool_ "source is the dataset" true (C.source plan == ds);
  check int_ "nrows" 400 (C.nrows plan);
  (* Structurally equal but physically different dataset: rejected,
     mirroring Risk_plan's stale-plan guard. *)
  let other = parity_ds 3 in
  match C.guard plan other with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "stale/mismatched dataset accepted"

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "anon"
    [
      ( "value",
        [
          Alcotest.test_case "close" `Quick test_value_close;
          Alcotest.test_case "covers" `Quick test_value_covers;
          Alcotest.test_case "to_string" `Quick test_value_strings;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "accessors" `Quick test_dataset_accessors;
          Alcotest.test_case "invalid" `Quick test_dataset_invalid;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "numeric" `Quick test_numeric_hierarchy;
          Alcotest.test_case "categorical" `Quick test_categorical_hierarchy;
          Alcotest.test_case "invalid" `Quick test_hierarchy_invalid;
        ] );
      ( "kanon",
        [
          Alcotest.test_case "checker" `Quick test_kanon_checker;
          Alcotest.test_case "datafly reaches k" `Quick test_datafly_reaches_k;
          Alcotest.test_case "datafly suppression" `Quick test_datafly_with_suppression;
          Alcotest.test_case "optimal minimal" `Quick test_optimal_minimal;
          qtest prop_datafly_k_anonymous;
        ] );
      ( "mondrian",
        [
          Alcotest.test_case "partitions" `Quick test_mondrian;
          Alcotest.test_case "errors" `Quick test_mondrian_errors;
          qtest prop_mondrian_k_anonymous;
        ] );
      ( "ldiversity",
        [
          Alcotest.test_case "table1" `Quick test_ldiversity;
          Alcotest.test_case "constant class" `Quick test_ldiversity_constant_class;
        ] );
      ( "value-risk (Table I)",
        [
          Alcotest.test_case "height column" `Quick test_table1_height;
          Alcotest.test_case "age column" `Quick test_table1_age;
          Alcotest.test_case "age+height column" `Quick test_table1_age_height;
          Alcotest.test_case "empty fields_read" `Quick test_value_risk_no_fields_read;
          Alcotest.test_case "sweep" `Quick test_value_risk_sweep;
          qtest prop_value_risk_bounds;
          qtest prop_value_risk_monotone_in_fields;
        ] );
      ( "utility",
        [
          Alcotest.test_case "means/variances" `Quick test_utility_means;
          Alcotest.test_case "precision/discernibility" `Quick
            test_utility_precision_and_discernibility;
        ] );
      ("reident", [ Alcotest.test_case "attacker models" `Quick test_reident ]);
      ( "columnar",
        [
          Alcotest.test_case "classes parity" `Quick test_columnar_classes_parity;
          Alcotest.test_case "mondrian parity" `Quick test_columnar_mondrian_parity;
          Alcotest.test_case "mondrian errors" `Quick test_columnar_mondrian_errors;
          Alcotest.test_case "analyses parity" `Quick test_columnar_analyses_parity;
          Alcotest.test_case "categorical parity" `Quick
            test_columnar_categorical_parity;
          Alcotest.test_case "release-gate parity" `Quick
            test_columnar_gate_parity;
          Alcotest.test_case "seeded release plan" `Quick
            test_columnar_release_plan;
          Alcotest.test_case "stale-plan guard" `Quick test_columnar_guard;
        ] );
      ( "release gate",
        [
          Alcotest.test_case "accept/reject" `Quick test_release_gate_accepts_and_rejects;
          Alcotest.test_case "utility" `Quick test_release_gate_utility;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "errors" `Quick test_csv_errors;
        ] );
    ]
