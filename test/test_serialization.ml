(* Tests for serialisation: the JSON value library, the analysis report
   export and trace recording. *)

module Json = Mdp_prelude.Json
module Core = Mdp_core
module R = Mdp_runtime
module H = Mdp_scenario.Healthcare

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json *)

let sample =
  Json.Obj
    [
      ("name", Json.Str "he said \"hi\"\n");
      ("count", Json.int 42);
      ("ratio", Json.Num 0.5);
      ("ok", Json.Bool true);
      ("nothing", Json.Null);
      ("items", Json.List [ Json.int 1; Json.int 2 ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
    ]

let test_json_roundtrip () =
  List.iter
    (fun indent ->
      match Json.of_string (Json.to_string ~indent sample) with
      | Ok parsed -> check bool_ "roundtrip equal" true (parsed = sample)
      | Error e -> Alcotest.fail e)
    [ true; false ]

let test_json_parse_basics () =
  (match Json.of_string {| {"a": [1, 2.5, -3], "b": {"c": null}} |} with
  | Ok v ->
    check bool_ "nested member" true
      (Json.member "b" v |> Option.get |> Json.member "c" = Some Json.Null);
    (match Json.member "a" v with
    | Some (Json.List [ Json.Num a; Json.Num b; Json.Num c ]) ->
      check (Alcotest.float 1e-9) "1" 1.0 a;
      check (Alcotest.float 1e-9) "2.5" 2.5 b;
      check (Alcotest.float 1e-9) "-3" (-3.0) c
    | _ -> Alcotest.fail "list shape")
  | Error e -> Alcotest.fail e);
  check bool_ "member on non-object" true (Json.member "x" (Json.int 1) = None)

let test_json_parse_errors () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" input)
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ]

let test_json_escaping () =
  let s = Json.to_string ~indent:false (Json.Str "tab\there") in
  check string_ "escaped tab" "\"tab\\there\"" s

(* ------------------------------------------------------------------ *)
(* Report *)

let analysis () =
  let options = { Core.Generate.default_options with granular_reads = false } in
  Core.Analysis.run ~options ~profile:H.profile_case_a
    ~bindings:[] H.diagram H.policy

let test_report_structure () =
  let a = analysis () in
  let json = Core.Report.analysis a in
  (match Json.member "model" json with
  | Some model ->
    check bool_ "state count present" true
      (Json.member "states" model
      = Some (Json.int (Core.Plts.num_states a.lts)));
    check bool_ "60-variable count" true
      (Json.member "state_variable_pairs" model = Some (Json.int 50))
  | None -> Alcotest.fail "model section missing");
  match Json.member "disclosure" json with
  | Some disclosure -> (
    check bool_ "max level Medium" true
      (Json.member "max_level" disclosure = Some (Json.Str "Medium"));
    match Json.member "findings" disclosure with
    | Some (Json.List findings) ->
      check bool_ "findings exported" true (List.length findings > 0);
      let first = List.hd findings in
      check bool_ "finding has witness" true
        (match Json.member "witness" first with
        | Some (Json.List _) -> true
        | _ -> false)
    | _ -> Alcotest.fail "findings missing")
  | None -> Alcotest.fail "disclosure section missing"

let test_report_parses_back () =
  let a = analysis () in
  match Json.of_string (Core.Report.to_string a) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e

let test_report_pseudonym () =
  let options = { Core.Generate.default_options with granular_reads = true } in
  let a =
    Core.Analysis.run ~options ~bindings:[ H.study_binding ] H.study_diagram
      H.study_policy
  in
  match Json.member "pseudonym_risks" (Core.Report.analysis a) with
  | Some (Json.List rts) ->
    check int_ "all risk transitions exported" (List.length a.pseudonym)
      (List.length rts);
    let violations =
      List.filter_map
        (fun rt ->
          match Json.member "violations" rt with
          | Some (Json.Num v) -> Some (int_of_float v)
          | _ -> None)
        rts
    in
    check bool_ "0/2/4 present" true
      (List.mem 0 violations && List.mem 2 violations && List.mem 4 violations)
  | _ -> Alcotest.fail "pseudonym section missing"

(* ------------------------------------------------------------------ *)
(* Trace *)

let sample_trace u =
  R.Sim.run_exn u
    {
      seed = 3;
      services = [ H.medical_service; H.research_service ];
      snoopers =
        [ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 1.0 } ];
    }

let test_trace_roundtrip () =
  let u = Core.Universe.make H.diagram H.policy in
  let trace = sample_trace u in
  match R.Trace.of_lines (R.Trace.to_lines trace) with
  | Ok parsed -> check bool_ "roundtrip" true (parsed = trace)
  | Error e -> Alcotest.fail e

let test_trace_rejects_disorder () =
  let e t =
    R.Event.make ~time:t ~kind:Core.Action.Collect ~actor:"A"
      ~fields:[ Mdp_dataflow.Field.make "F" ] ()
  in
  let text = R.Trace.to_lines [ e 2; e 1 ] in
  match R.Trace.of_lines text with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-increasing timestamps accepted"

let test_trace_stats () =
  let u = Core.Universe.make H.diagram H.policy in
  let trace = sample_trace u in
  let s = R.Trace.stats trace in
  check int_ "events" (List.length trace) s.events;
  check int_ "kind counts sum" s.events
    (Mdp_prelude.Listx.sum_by snd s.by_kind);
  check int_ "actor counts sum" s.events
    (Mdp_prelude.Listx.sum_by snd s.by_actor);
  check bool_ "ad-hoc snoops counted" true (s.ad_hoc >= 1);
  check int_ "empty trace" 0 (R.Trace.stats []).events

let () =
  Alcotest.run "serialization"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
        ] );
      ( "report",
        [
          Alcotest.test_case "structure" `Quick test_report_structure;
          Alcotest.test_case "parses back" `Quick test_report_parses_back;
          Alcotest.test_case "pseudonym risks" `Quick test_report_pseudonym;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "rejects disorder" `Quick test_trace_rejects_disorder;
          Alcotest.test_case "stats" `Quick test_trace_stats;
        ] );
    ]
