(* End-to-end integration tests: the full §IV-A and §IV-B case studies
   through the façade, DSL-sourced models through generation, analysis
   and monitoring, and cross-cutting invariants tying the layers
   together. *)

open Mdp_dataflow
module Core = Mdp_core
module R = Mdp_runtime
module A = Mdp_anon
module H = Mdp_scenario.Healthcare

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let level_t = Alcotest.testable Core.Level.pp Core.Level.equal

(* ------------------------------------------------------------------ *)
(* §IV-A, fully replayed through the façade *)

let test_case_a_end_to_end () =
  let a = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy in
  let report = Option.get a.disclosure in
  (* Paper: "This first determined the actors that are non-allowed (the
     Administrator and Researcher)". *)
  check (Alcotest.list Alcotest.string) "non-allowed"
    [ "Administrator"; "Researcher" ] report.non_allowed;
  (* Paper: "the transition is labelled with a risk level of Medium". *)
  check level_t "Medium" Core.Level.Medium
    (Core.Disclosure_risk.level_for report ~actor:"Administrator" ~store:"EHR"
       ~field:H.diagnosis);
  (* Paper: "The access policies were changed accordingly and the risk
     level was reduced to Low". *)
  let a' = Core.Analysis.rerun_with_policy a H.fixed_policy in
  check level_t "Low" Core.Level.Low
    (Core.Disclosure_risk.max_level (Option.get a'.disclosure))

(* ------------------------------------------------------------------ *)
(* §IV-B, fully replayed *)

let test_case_b_end_to_end () =
  (* Datafly with k=2 independently rediscovers the paper's
     generalisation. *)
  let raw = A.Dataset.drop_identifiers H.table1_raw in
  (match A.Kanon.datafly ~k:2 raw H.table1_scheme with
  | Ok (ds, levels, 0) ->
    check bool_ "datafly matches the prepared release" true
      (A.Dataset.rows ds = A.Dataset.rows H.table1_released);
    check (Alcotest.list (Alcotest.pair Alcotest.string int_)) "levels"
      [ ("Age", 1); ("Height", 1) ]
      (List.sort compare levels)
  | Ok (_, _, n) -> Alcotest.failf "unexpected suppression of %d rows" n
  | Error e -> Alcotest.fail e);
  (* The LTS risk-transitions carry Fig. 4's violation scores. *)
  let options = { Core.Generate.default_options with granular_reads = true } in
  let a =
    Core.Analysis.run ~options ~bindings:[ H.study_binding ] H.study_diagram
      H.study_policy
  in
  let violations =
    List.sort_uniq Int.compare
      (List.map
         (fun (rt : Core.Pseudonym_risk.risk_transition) ->
           rt.report.A.Value_risk.violations)
         a.pseudonym)
  in
  check (Alcotest.list int_) "violation scores 0/2/4" [ 0; 2; 4 ] violations

(* ------------------------------------------------------------------ *)
(* DSL file -> pipeline -> monitor *)

let healthcare_text =
  Mdp_dsl.Printer.to_string
    { Mdp_dsl.Parser.diagram = H.diagram; policy = H.policy; placement = None }

let test_dsl_to_monitor () =
  match Mdp_dsl.Parser.parse healthcare_text with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let a =
      Core.Analysis.run ~profile:H.profile_case_a m.Mdp_dsl.Parser.diagram
        m.Mdp_dsl.Parser.policy
    in
    (* Parsed model behaves identically to the programmatic one. *)
    let direct = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy in
    check int_ "same state count" (Core.Plts.num_states direct.lts)
      (Core.Plts.num_states a.lts);
    check int_ "same transition count"
      (Core.Plts.num_transitions direct.lts)
      (Core.Plts.num_transitions a.lts);
    (* ... and supports monitoring. *)
    let monitor = R.Monitor.create a.universe a.lts in
    let trace =
      R.Sim.run_exn a.universe
        {
          seed = 5;
          services = [ H.medical_service; H.research_service ];
          snoopers =
            [ { R.Sim.actor = "Administrator"; store = "EHR"; probability = 1.0 } ];
        }
    in
    let alerts = R.Monitor.run_trace monitor trace in
    check bool_ "snoop flagged" true
      (List.exists (function R.Monitor.Risky _ -> true | _ -> false) alerts)

(* ------------------------------------------------------------------ *)
(* Cross-cutting invariants *)

let test_lts_quotient_preserves_risk_reachability () =
  (* Quotienting by the privacy-state projection must preserve whether a
     risky read is reachable. *)
  let u = Core.Universe.make H.diagram H.policy in
  let lts = Core.Generate.run u in
  ignore (Core.Disclosure_risk.analyse u lts H.profile_case_a);
  let risky_label (l : Core.Action.t) =
    match l.risk with
    | Some (Core.Action.Disclosure_risk { level; _ }) ->
      Core.Level.compare level Core.Level.Medium >= 0
    | _ -> false
  in
  let has_risky t =
    let found = ref false in
    Core.Plts.iter_transitions t (fun tr -> if risky_label tr.label then found := true);
    !found
  in
  let q, _ =
    Core.Plts.quotient lts
      ~init_key:(fun s ->
        let cfg = Core.Plts.state_data lts s in
        Format.asprintf "%a"
          (Core.Privacy_state.pp_compact u)
          cfg.Core.Config.privacy)
  in
  check bool_ "risk preserved by quotient" true (has_risky lts = has_risky q);
  check bool_ "quotient not larger" true
    (Core.Plts.num_states q <= Core.Plts.num_states lts)

let test_has_implies_monotone_along_paths () =
  (* Along every transition, has-bits only grow (deletes touch stores and
     could-bits, never has). *)
  let u = Core.Universe.make H.diagram H.policy in
  let lts =
    Core.Generate.run
      ~options:{ Core.Generate.default_options with potential_deletes = true }
      u
  in
  Core.Plts.iter_transitions lts (fun tr ->
      let src = Core.Plts.state_data lts tr.src in
      let dst = Core.Plts.state_data lts tr.dst in
      if
        not
          (Mdp_prelude.Bitset.subset src.Core.Config.privacy.Core.Privacy_state.has
             dst.Core.Config.privacy.Core.Privacy_state.has)
      then Alcotest.fail "has-bits shrank along a transition")

let test_could_matches_store_contents () =
  (* Invariant: could(a, f) iff some store holds f with a permitted to
     read it there. *)
  let u = Core.Universe.make H.diagram H.policy in
  let lts =
    Core.Generate.run
      ~options:{ Core.Generate.default_options with potential_deletes = true }
      u
  in
  List.iter
    (fun s ->
      let cfg = Core.Plts.state_data lts s in
      for a = 0 to Core.Universe.nactors u - 1 do
        for f = 0 to Core.Universe.nfields u - 1 do
          let expected =
            List.exists
              (fun store ->
                Core.Config.store_has cfg ~store ~field:f
                && List.mem a (Core.Universe.readers u ~store ~field:f))
              (List.init (Core.Universe.nstores u) Fun.id)
          in
          let actual =
            Core.Privacy_state.could_i cfg.Core.Config.privacy
              (Core.Universe.var u ~actor:a ~field:f)
          in
          if expected <> actual then
            Alcotest.failf "could mismatch at state %d actor %d field %d" s a f
        done
      done)
    (Core.Plts.states lts)

let test_fig2_table_dimensions () =
  (* Fig. 2's table: 60 base-state-variable pairs for the healthcare
     model (5 actors x 6 base fields), each with has+could. *)
  let u = Core.Universe.make H.diagram H.policy in
  let base_fields =
    List.filter (fun f -> not (Field.is_anon f)) (Diagram.all_fields H.diagram)
  in
  check int_ "paper's 60 variables" 60
    (2 * Core.Universe.nactors u * List.length base_fields)

let test_monitor_follows_witness () =
  (* Feeding a finding's witness path as events drives the monitor to the
     finding's source state. *)
  let a = Core.Analysis.run ~profile:H.profile_case_a H.diagram H.policy in
  let report = Option.get a.disclosure in
  let finding = List.hd report.findings in
  let monitor = R.Monitor.create a.universe a.lts in
  let to_event i (act : Core.Action.t) =
    let service =
      match act.provenance with
      | Core.Action.From_flow { service; _ } -> Some service
      | Core.Action.Potential | Core.Action.Inferred -> None
    in
    R.Event.make ~time:(i + 1) ~kind:act.kind ~actor:act.actor
      ~fields:act.fields ?store:act.store ?service ()
  in
  let alerts =
    R.Monitor.run_trace monitor (List.mapi to_event finding.witness)
  in
  check bool_ "witness replays without off-model alerts" true
    (List.for_all
       (function R.Monitor.Off_model _ -> false | _ -> true)
       alerts);
  check int_ "monitor lands on the finding source" finding.src
    (R.Monitor.current_state monitor)

let () =
  Alcotest.run "integration"
    [
      ( "case studies",
        [
          Alcotest.test_case "section IV-A end to end" `Quick test_case_a_end_to_end;
          Alcotest.test_case "section IV-B end to end" `Quick test_case_b_end_to_end;
        ] );
      ( "dsl pipeline",
        [ Alcotest.test_case "file to monitor" `Quick test_dsl_to_monitor ] );
      ( "invariants",
        [
          Alcotest.test_case "quotient preserves risk" `Quick
            test_lts_quotient_preserves_risk_reachability;
          Alcotest.test_case "has monotone" `Quick
            test_has_implies_monotone_along_paths;
          Alcotest.test_case "could = store x policy" `Quick
            test_could_matches_store_contents;
          Alcotest.test_case "Fig 2 dimensions" `Quick test_fig2_table_dimensions;
          Alcotest.test_case "monitor follows witness" `Quick
            test_monitor_follows_witness;
        ] );
    ]
