(* Regression tests for the packed LTS engine (PR 7): the arena-backed,
   sharded-dedup representation must produce the exact LTS of the boxed
   engine — state numbering, transition order, analysis output — for
   every job count, survive post-exploration mutation (the
   pseudonym-risk pass appends states and transitions), and round-trip
   states through the byte codecs exactly. *)

module Core = Mdp_core
module H = Mdp_scenario.Healthcare
module SH = Mdp_scenario.Smart_home
module Synthetic = Mdp_scenario.Synthetic
module P = Mdp_lts.Packed_repr
module Lts = Mdp_lts.Lts

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let transition_triples lts =
  List.map
    (fun (tr : Core.Plts.transition) ->
      (tr.src, Format.asprintf "%a" Core.Action.pp tr.label, tr.dst))
    (Core.Plts.transitions lts)

let triple = Alcotest.(triple int string int)

let same_lts ctx expected actual =
  check int_ (ctx ^ " states")
    (Core.Plts.num_states expected)
    (Core.Plts.num_states actual);
  check int_ (ctx ^ " transitions")
    (Core.Plts.num_transitions expected)
    (Core.Plts.num_transitions actual);
  for i = 0 to Core.Plts.num_states expected - 1 do
    if
      not
        (Core.Config.equal
           (Core.Plts.state_data expected i)
           (Core.Plts.state_data actual i))
    then Alcotest.failf "%s: state %d differs" ctx i
  done;
  check (Alcotest.list triple) (ctx ^ " transition list")
    (transition_triples expected) (transition_triples actual)

(* Boxed sequential run as ground truth; packed runs at several job
   counts must match it exactly. [par_threshold:0] forces the parallel
   sharded-dedup machinery even on models whose frontiers the default
   threshold would route through the sequential path. The raw triples
   are captured before any analysis — [Disclosure_risk.analyse]
   annotates labels in place. *)
let check_backends name ?profile u options =
  let boxed =
    Core.Generate.run ~options:{ options with Core.Generate.packed = false } u
  in
  let boxed_triples = transition_triples boxed in
  let report lts profile =
    Format.asprintf "%a" Core.Disclosure_risk.pp_report
      (Core.Disclosure_risk.analyse u lts profile)
  in
  let boxed_report = Option.map (report boxed) profile in
  List.iter
    (fun jobs ->
      let ctx = Printf.sprintf "%s jobs=%d" name jobs in
      let packed =
        Core.Generate.run
          ~options:{ options with Core.Generate.packed = true }
          ~jobs ~par_threshold:0 u
      in
      check int_ (ctx ^ " states")
        (Core.Plts.num_states boxed)
        (Core.Plts.num_states packed);
      check int_ (ctx ^ " transitions")
        (Core.Plts.num_transitions boxed)
        (Core.Plts.num_transitions packed);
      for i = 0 to Core.Plts.num_states boxed - 1 do
        if
          not
            (Core.Config.equal
               (Core.Plts.state_data boxed i)
               (Core.Plts.state_data packed i))
        then Alcotest.failf "%s: state %d differs" ctx i
      done;
      check (Alcotest.list triple) (ctx ^ " transition list") boxed_triples
        (transition_triples packed);
      match (profile, boxed_report) with
      | Some profile, Some expected ->
        check Alcotest.string (ctx ^ " disclosure report") expected
          (report packed profile)
      | _ -> ())
    [ 1; 4; 8 ]

let test_healthcare () =
  let u = Core.Universe.make H.diagram H.policy in
  check_backends "healthcare" ~profile:H.profile_case_a u
    Core.Generate.default_options;
  check_backends "healthcare-deletes" u
    { Core.Generate.default_options with potential_deletes = true }

let test_smart_home () =
  let u = Core.Universe.make SH.diagram SH.policy in
  check_backends "smart-home" ~profile:SH.profile u
    Core.Generate.default_options

let synthetic_spec (na, nf, fps) =
  {
    Synthetic.seed = 42;
    nactors = na;
    nfields = nf;
    nstores = 2;
    nservices = 2;
    flows_per_service = fps;
  }

let test_synthetic () =
  List.iter
    (fun dims ->
      let spec = synthetic_spec dims in
      let diagram, policy = Synthetic.model spec in
      let u = Core.Universe.make diagram policy in
      let profile = Synthetic.profile spec diagram in
      let na, nf, fps = dims in
      check_backends
        (Printf.sprintf "synthetic-%d-%d-%d" na nf fps)
        ~profile u Core.Generate.default_options)
    [ (2, 4, 3); (4, 6, 4); (6, 8, 5) ]

(* The pseudonym-risk pass mutates the LTS after exploration —
   [add_state] on a new config plus [add_transition] from mid-graph
   sources (overflow rows on the packed backend). Results and the
   mutated LTS must match the boxed run, and a disclosure pass over the
   mutated LTS must still agree. *)
let test_post_explore_mutation () =
  let u = Core.Universe.make H.study_diagram H.study_policy in
  let run packed =
    let lts =
      Core.Generate.run
        ~options:
          { Core.Generate.default_options with packed; granular_reads = true }
        u
    in
    let risks = Core.Pseudonym_risk.analyse u lts H.study_binding in
    (lts, risks)
  in
  let boxed, boxed_risks = run false in
  let packed, packed_risks = run true in
  check bool_ "risk transitions found" true (boxed_risks <> []);
  check int_ "same risk count" (List.length boxed_risks)
    (List.length packed_risks);
  List.iter2
    (fun (a : Core.Pseudonym_risk.risk_transition)
         (b : Core.Pseudonym_risk.risk_transition) ->
      check int_ "risk src" a.src b.src;
      check int_ "risk dst" a.dst b.dst;
      check Alcotest.string "risk actor" a.actor b.actor)
    boxed_risks packed_risks;
  same_lts "post-mutation" boxed packed;
  let profile =
    Core.User_profile.make
      ~sensitivities:[ (H.weight, 0.9) ]
      ~agreed_services:[ "DataCollection" ] ()
  in
  check Alcotest.string "disclosure after mutation"
    (Format.asprintf "%a" Core.Disclosure_risk.pp_report
       (Core.Disclosure_risk.analyse u boxed profile))
    (Format.asprintf "%a" Core.Disclosure_risk.pp_report
       (Core.Disclosure_risk.analyse u packed profile))

(* map_labels rewrites labels in place (risk annotation); on the packed
   backend that re-interns labels in rows and overflow. *)
let test_map_labels () =
  let u = Core.Universe.make H.diagram H.policy in
  let run packed =
    let lts =
      Core.Generate.run
        ~options:{ Core.Generate.default_options with packed }
        u
    in
    let plan = Core.Risk_plan.compile u lts in
    ignore (Core.Risk_plan.analyse plan H.profile_case_a);
    lts
  in
  same_lts "after plan annotation" (run false) (run true)

let test_find_state_packed () =
  let u = Core.Universe.make H.diagram H.policy in
  let lts = Core.Generate.run u in
  check bool_ "packed backend" true (Core.Plts.mem_stats lts <> None);
  (* Every stored state must be found at its own id. *)
  Core.Plts.iter_states lts (fun i ->
      match Core.Plts.find_state lts (Core.Plts.state_data lts i) with
      | Some j -> check int_ "find_state id" i j
      | None -> Alcotest.failf "state %d not found" i);
  check bool_ "absent state" true
    (Core.Plts.find_state lts
       (let cfg = Core.Config.copy (Core.Plts.state_data lts 0) in
        Mdp_prelude.Bitset.set cfg.Core.Config.executed 0;
        Mdp_prelude.Bitset.set cfg.Core.Config.privacy.has 0;
        cfg)
    = None
    ||
    (* the flipped config may genuinely exist in the model; only the
       contract "Some i implies equal data" matters *)
    true)

let test_mem_stats () =
  let diagram, policy = Synthetic.model (synthetic_spec (6, 8, 5)) in
  let u = Core.Universe.make diagram policy in
  let lts = Core.Generate.run u in
  match Core.Plts.mem_stats lts with
  | None -> Alcotest.fail "expected packed backend"
  | Some ms ->
    check int_ "states" (Core.Plts.num_states lts) ms.Lts.ms_states;
    check int_ "transitions" (Core.Plts.num_transitions lts)
      ms.Lts.ms_transitions;
    check int_ "full + delta = states"
      ms.Lts.ms_states
      (ms.Lts.ms_full_states + ms.Lts.ms_delta_states);
    check int_ "total is the sum of parts" ms.Lts.ms_total_bytes
      (ms.Lts.ms_state_bytes + ms.Lts.ms_edge_bytes + ms.Lts.ms_index_bytes
     + ms.Lts.ms_dedup_bytes);
    check bool_ "labels interned" true
      (ms.Lts.ms_labels > 0
      && ms.Lts.ms_labels < Core.Plts.num_transitions lts);
    check bool_ "deltas dominate" true
      (ms.Lts.ms_delta_states > ms.Lts.ms_full_states)

let test_abort_stats () =
  let u = Core.Universe.make H.diagram H.policy in
  let options = { Core.Generate.default_options with max_states = 5 } in
  List.iter
    (fun jobs ->
      match Core.Generate.run ~options ~jobs ~par_threshold:0 u with
      | exception Mdp_lts.Lts.Too_many_states n -> (
        check int_ "limit carried" 5 n;
        match Lts.last_abort_stats () with
        | None -> Alcotest.fail "no abort stats recorded"
        | Some st ->
          check int_ "abort limit" 5 st.Lts.ab_limit;
          check bool_ "states past limit" true (st.Lts.ab_states > 5);
          check bool_ "bytes/state observed" true
            (match st.Lts.ab_bytes_per_state with
            | Some bps -> bps > 0.
            | None -> false))
      | _ -> Alcotest.fail "expected Too_many_states")
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Codec property tests *)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(oneof [ small_nat; int_bound max_int ])
    (fun v ->
      let b = Bytes.create 10 in
      let pos = P.put_varint b 0 v in
      pos = P.varint_size v
      &&
      let c = P.cursor () in
      c.P.b <- b;
      c.P.pos <- 0;
      P.get_varint c = v && c.P.pos = pos)

let prop_zigzag_roundtrip =
  QCheck.Test.make ~name:"zigzag roundtrip" ~count:500 QCheck.int (fun v ->
      P.unzigzag (P.zigzag v) = v)

let prop_word_patch_roundtrip =
  QCheck.Test.make ~name:"word patch roundtrip" ~count:500
    QCheck.(pair int int)
    (fun (base, w) ->
      let b = Bytes.create 16 in
      let pos = P.put_word_patch b 0 ~base w in
      pos = P.word_patch_size ~base w
      &&
      let c = P.cursor () in
      c.P.b <- b;
      c.P.pos <- 0;
      P.get_word_patch c ~base = w && c.P.pos = pos)

(* Random configs of a fixed synthetic universe round-trip through the
   packed-word codec: blit then decode rebuilds an equal config, and
   word equality tracks config equality (the packer contract the
   sharded dedup relies on). *)
let prop_config_roundtrip =
  let diagram, policy = Synthetic.model (synthetic_spec (4, 6, 4)) in
  let u = Core.Universe.make diagram policy in
  let template = Core.Config.initial u in
  let w = Core.Config.nwords template in
  let random_config bits =
    let cfg = Core.Config.copy template in
    let open Mdp_prelude in
    List.iter
      (fun bit ->
        let pick = bit mod (2 + Array.length cfg.Core.Config.stores) in
        let set bs = Bitset.set bs (bit mod Bitset.length bs) in
        match pick with
        | 0 -> set cfg.Core.Config.privacy.has
        | 1 -> set cfg.Core.Config.privacy.could
        | p -> set cfg.Core.Config.stores.(p - 2))
      bits;
    (match bits with
    | b :: _ ->
      Bitset.set cfg.Core.Config.executed
        (b mod Bitset.length cfg.Core.Config.executed)
    | [] -> ());
    cfg
  in
  QCheck.Test.make ~name:"config pack/unpack roundtrip" ~count:300
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (bits_a, bits_b) ->
      let a = random_config bits_a and b = random_config bits_b in
      let wa = Array.make w 0 and wb = Array.make w 0 in
      ignore (Core.Config.blit_words a wa 0 : int);
      ignore (Core.Config.blit_words b wb 0 : int);
      Core.Config.equal (Core.Config.of_words ~template wa 0) a
      && Core.Config.equal a b = (wa = wb)
      && (not (Core.Config.equal a b)
         || Core.Config.hash a = Core.Config.hash b))

(* Delta records through the real arena: encode a chain of words where
   each element patches its parent, then decode every element back. *)
let prop_delta_chain_roundtrip =
  QCheck.Test.make ~name:"arena word-patch chain roundtrip" ~count:200
    QCheck.(pair (small_list int) (int_bound 6))
    (fun (xs, nwords) ->
      let w = 1 + nwords in
      let states =
        (* cumulative OR chains: adjacent states differ in few bytes,
           like BFS parents and children *)
        List.mapi
          (fun i x ->
            Array.init w (fun j -> (x lsr j) lxor (i * 0x9e3779b9))
          )
          xs
      in
      let arena = P.Arena.create () in
      let buf = Bytes.create (16 + (9 * w)) in
      let offs =
        List.mapi
          (fun i words ->
            let base =
              if i = 0 then Array.make w 0 else List.nth states (i - 1)
            in
            let pos = ref (P.put_varint buf 0 i) in
            Array.iteri
              (fun j wd -> pos := P.put_word_patch buf !pos ~base:base.(j) wd)
              words;
            P.Arena.append arena buf !pos)
          states
      in
      let c = P.cursor () in
      List.for_all2
        (fun off words ->
          (* decode by walking the stored parent chain *)
          let rec decode off dst =
            P.Arena.seek arena c off;
            let tag = P.get_varint c in
            if tag = 0 then
              for j = 0 to w - 1 do
                dst.(j) <- P.get_word_patch c ~base:0
              done
            else begin
              let b = c.P.b and pos = c.P.pos in
              decode (List.nth offs (tag - 1)) dst;
              c.P.b <- b;
              c.P.pos <- pos;
              for j = 0 to w - 1 do
                dst.(j) <- P.get_word_patch c ~base:dst.(j)
              done
            end
          in
          let dst = Array.make w 0 in
          decode off dst;
          dst = words)
        offs states)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "packed-engine"
    [
      ( "packed vs boxed",
        [
          Alcotest.test_case "healthcare" `Quick test_healthcare;
          Alcotest.test_case "smart home" `Quick test_smart_home;
          Alcotest.test_case "synthetic" `Quick test_synthetic;
          Alcotest.test_case "post-explore mutation" `Quick
            test_post_explore_mutation;
          Alcotest.test_case "map_labels" `Quick test_map_labels;
          Alcotest.test_case "find_state" `Quick test_find_state_packed;
          Alcotest.test_case "mem_stats" `Quick test_mem_stats;
          Alcotest.test_case "abort stats" `Quick test_abort_stats;
        ] );
      qsuite "codecs"
        [
          prop_varint_roundtrip;
          prop_zigzag_roundtrip;
          prop_word_patch_roundtrip;
          prop_config_roundtrip;
          prop_delta_chain_roundtrip;
        ];
    ]
