(* Runtime monitoring (paper §I: the model also monitors the running
   service): simulate a smart-home subject's traffic, replay it through
   the policy-enforcement point and the LTS monitor, and show the alerts
   raised by the Marketing team's opportunistic telemetry reads —
   before and after the policy fix.

     dune exec examples/smart_home_monitoring.exe *)

open Mdp_scenario
module Core = Mdp_core
module R = Mdp_runtime

let section title = Format.printf "@.== %s ==@." title

let replay analysis ~seed =
  let monitor = R.Monitor.create analysis.Core.Analysis.universe analysis.Core.Analysis.lts in
  let trace =
    R.Sim.run_exn analysis.Core.Analysis.universe
      {
        seed;
        services = [ Smart_home.energy_service; Smart_home.analytics_service ];
        snoopers =
          [ { actor = "Marketing"; store = "Telemetry"; probability = 0.5 } ];
      }
  in
  List.iter
    (fun event ->
      Format.printf "%a@." R.Event.pp event;
      List.iter
        (fun alert -> Format.printf "  !! %a@." R.Monitor.pp_alert alert)
        (R.Monitor.observe monitor event))
    trace

let () =
  section "Initial policy: Marketing may read raw telemetry";
  let analysis =
    Core.Analysis.run ~profile:Smart_home.profile Smart_home.diagram
      Smart_home.policy
  in
  let report = Option.get analysis.disclosure in
  Format.printf "design-time findings: %d (max level %a)@."
    (List.length report.findings)
    Core.Level.pp
    (Core.Disclosure_risk.max_level report);
  section "Simulated trace with monitor alerts";
  replay analysis ~seed:7;

  section "After revoking Marketing's occupancy/consumption reads";
  let analysis' =
    Core.Analysis.rerun_with_policy analysis Smart_home.fixed_policy
  in
  let report' = Option.get analysis'.disclosure in
  Format.printf "design-time findings: %d (max level %a)@."
    (List.length report'.findings)
    Core.Level.pp
    (Core.Disclosure_risk.max_level report');
  section "Same seed, fixed policy";
  replay analysis' ~seed:7
