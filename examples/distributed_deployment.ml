(* Distributed deployment analysis: place the healthcare service's actors
   and datastores across a UK surgery, an EU datacenter and a US research
   cloud; list every network transfer of personal data the model can
   perform, flag the cross-region ones the subject never consented to,
   and print the data-subject transparency report after a monitored run.

     dune exec examples/distributed_deployment.exe *)

open Mdp_scenario
module Core = Mdp_core
module R = Mdp_runtime

let section title = Format.printf "@.== %s ==@." title

let () =
  let analysis =
    Core.Analysis.run ~profile:Healthcare.profile_case_a Healthcare.diagram
      Healthcare.policy
  in
  let u = analysis.universe and lts = analysis.lts in
  let deployment =
    match
      R.Deployment.create
        ~nodes:
          [
            { R.Deployment.id = "surgery"; region = "UK" };
            { R.Deployment.id = "dc-eu"; region = "EU" };
            { R.Deployment.id = "research-cloud"; region = "US" };
          ]
        ~actors:
          [
            ("Receptionist", "surgery");
            ("Doctor", "surgery");
            ("Nurse", "surgery");
            ("Administrator", "dc-eu");
            ("Researcher", "research-cloud");
          ]
        ~stores:
          [
            ("Appointments", "surgery");
            ("EHR", "dc-eu");
            ("AnonEHR", "research-cloud");
          ]
        u
    with
    | Ok d -> d
    | Error msgs -> failwith (String.concat "\n" msgs)
  in

  section "Every network transfer the model can perform";
  List.iter
    (fun tr -> Format.printf "  %a@." R.Deployment.pp_transfer tr)
    (R.Deployment.transfers deployment lts);

  section "Cross-region transfers of sensitive data without consent";
  (match R.Deployment.risky_transfers deployment lts Healthcare.profile_case_a with
  | [] -> Format.printf "none@."
  | risky ->
    List.iter (fun tr -> Format.printf "  %a@." R.Deployment.pp_transfer tr) risky);

  section "Transparency report after a monitored medical-service run";
  let monitor = R.Monitor.create u lts in
  let trace =
    R.Sim.run_exn u { seed = 11; services = [ Healthcare.medical_service ]; snoopers = [] }
  in
  ignore (R.Monitor.run_trace monitor trace);
  Format.printf "@[<v>%a@]@."
    Core.Transparency.pp
    (Core.Transparency.at_state u lts (R.Monitor.current_state monitor));

  section "Worst case over the whole model (what COULD happen)";
  let worst = Core.Transparency.worst_case u lts in
  Format.printf "%d (actor, field) exposures; the researcher's slice:@."
    (List.length worst);
  Format.printf "@[<v>%a@]@."
    Core.Transparency.pp
    (Core.Transparency.for_actor worst "Researcher")
