module Json = Mdp_prelude.Json

type profile_spec = {
  agreed : string list;
  sensitivities : (string * float) list;
}

type pop_spec = { psize : int; pseed : int; pagree : float }

type whatif_spec = {
  wprofile : profile_spec;
  wedits : string list;
  wdiff : bool;
  wpop : pop_spec option;
}

type kind =
  | Lts_stats
  | Risk of profile_spec
  | Population of pop_spec
  | Whatif of whatif_spec

type model_ref = Named of string | Inline of string

type analysis = {
  kind : kind;
  model : model_ref;
  max_states : int option;
  deadline_ms : int option;
  allow_stale : bool;
}

type cmd =
  | Analyse of analysis
  | Cancel_request of string
  | Ping
  | Health
  | Metrics
  | Shutdown

type request = { req_id : string option; cmd : cmd }

let str_member name j = Option.bind (Json.member name j) Json.to_str_opt
let int_member name j = Option.bind (Json.member name j) Json.to_int_opt

let float_member name j =
  match Json.member name j with Some (Json.Num f) -> Some f | _ -> None

let bool_member name j =
  match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None

(* A request id must be correlatable even when the rest of the line is
   garbage, so accept both strings and bare numbers. *)
let id_of j =
  match Json.member "id" j with
  | Some (Json.Str s) -> Some s
  | Some (Json.Num f) ->
    Some
      (if Float.is_integer f then string_of_int (int_of_float f)
       else string_of_float f)
  | _ -> None

let profile_of j =
  let agreed =
    match Json.member "agree" j with
    | Some (Json.List l) -> List.filter_map Json.to_str_opt l
    | _ -> []
  in
  let sensitivities =
    match Json.member "sensitivity" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.Num f -> Some (k, f)
          | Json.Null | Json.Bool _ | Json.Str _ | Json.List _ | Json.Obj _ ->
            None)
        fields
    | _ -> []
  in
  { agreed; sensitivities }

let model_of j =
  match (str_member "model_text" j, str_member "model" j) with
  | Some text, _ -> Ok (Inline text)
  | None, Some name -> Ok (Named name)
  | None, None -> Error "missing \"model\" (name/path) or \"model_text\" (DSL)"

let analysis_of j kind =
  match model_of j with
  | Error _ as e -> e
  | Ok model ->
    let max_states = int_member "max_states" j in
    let deadline_ms = int_member "deadline_ms" j in
    (match (max_states, deadline_ms) with
    | Some n, _ when n < 1 -> Error "\"max_states\" must be positive"
    | _, Some n when n < 1 -> Error "\"deadline_ms\" must be positive"
    | _ ->
      Ok
        (Analyse
           {
             kind;
             model;
             max_states;
             deadline_ms;
             allow_stale =
               Option.value (bool_member "allow_stale" j) ~default:false;
           }))

let parse_request line =
  match Json.of_string line with
  | Error msg -> Error (None, "invalid JSON: " ^ msg)
  | Ok (Json.Obj _ as j) -> (
    let id = id_of j in
    let fail msg = Error (id, msg) in
    match str_member "cmd" j with
    | None -> fail "missing string field \"cmd\""
    | Some cmd_name -> (
      let analysis kind =
        match analysis_of j kind with
        | Ok cmd -> Ok { req_id = id; cmd }
        | Error msg -> fail msg
      in
      (* Shared by "population" and the what-if [wpop] extension, so a
         population spec parses identically in both. *)
      let pop_spec ~default_size =
        let psize = Option.value (int_member "size" j) ~default:default_size in
        let pseed = Option.value (int_member "pop_seed" j) ~default:7 in
        let pagree =
          Option.value (float_member "agree_probability" j) ~default:0.5
        in
        if psize < 1 then Error "\"size\" must be positive"
        else if pagree < 0.0 || pagree > 1.0 then
          Error "\"agree_probability\" must be within [0,1]"
        else Ok { psize; pseed; pagree }
      in
      match cmd_name with
      | "lts" -> analysis Lts_stats
      | "risk" -> analysis (Risk (profile_of j))
      | "population" -> (
        match pop_spec ~default_size:1000 with
        | Ok p -> analysis (Population p)
        | Error msg -> fail msg)
      | "whatif" -> (
        match Json.member "edits" j with
        | Some (Json.List (_ :: _ as l))
          when List.for_all
                 (fun e -> Json.to_str_opt e <> None)
                 l -> (
          (* an int "size" member opts the what-if into population
             deltas; absent, no population is computed *)
          let wpop =
            match int_member "size" j with
            | None -> Ok None
            | Some _ -> Result.map Option.some (pop_spec ~default_size:1000)
          in
          match wpop with
          | Error msg -> fail msg
          | Ok wpop ->
            analysis
              (Whatif
                 {
                   wprofile = profile_of j;
                   wedits = List.filter_map Json.to_str_opt l;
                   wdiff =
                     Option.value (bool_member "diff" j) ~default:false;
                   wpop;
                 }))
        | _ -> fail "\"whatif\" needs a non-empty string list \"edits\"")
      | "cancel" -> (
        match str_member "target" j with
        | Some target -> Ok { req_id = id; cmd = Cancel_request target }
        | None -> fail "\"cancel\" needs a string field \"target\"")
      | "ping" -> Ok { req_id = id; cmd = Ping }
      | "health" -> Ok { req_id = id; cmd = Health }
      | "metrics" -> Ok { req_id = id; cmd = Metrics }
      | "shutdown" -> Ok { req_id = id; cmd = Shutdown }
      | other -> fail (Printf.sprintf "unknown cmd %S" other)))
  | Ok _ -> Error (None, "request must be a JSON object")

type status =
  | Ok_
  | Error_
  | Cancelled of [ `Deadline | `Client ]
  | Overloaded
  | Breaker_open
  | State_limit
  | Shutting_down

let status_string = function
  | Ok_ -> "ok"
  | Error_ -> "error"
  | Cancelled _ -> "cancelled"
  | Overloaded -> "overloaded"
  | Breaker_open -> "breaker_open"
  | State_limit -> "state_limit"
  | Shutting_down -> "shutting_down"

let status_of_string = function
  | "ok" -> Some Ok_
  | "error" -> Some Error_
  | "cancelled" -> Some (Cancelled `Client)
  | "overloaded" -> Some Overloaded
  | "breaker_open" -> Some Breaker_open
  | "state_limit" -> Some State_limit
  | "shutting_down" -> Some Shutting_down
  | _ -> None

type response = {
  resp_id : string option;
  status : status;
  cached : bool;
  stale : bool;
  elapsed_ms : float;
  body : Json.t;
}

let response ?(cached = false) ?(stale = false) ?(elapsed_ms = 0.0)
    ?(body = Json.Obj []) ~id status =
  { resp_id = id; status; cached; stale; elapsed_ms; body }

let error_body message = Json.Obj [ ("message", Json.Str message) ]

let response_to_line r =
  let reason =
    match r.status with
    | Cancelled `Deadline -> [ ("reason", Json.Str "deadline") ]
    | Cancelled `Client -> [ ("reason", Json.Str "client") ]
    | Ok_ | Error_ | Overloaded | Breaker_open | State_limit | Shutting_down ->
      []
  in
  Json.to_string ~indent:false
    (Json.Obj
       ([
          ( "id",
            match r.resp_id with Some s -> Json.Str s | None -> Json.Null );
          ("status", Json.Str (status_string r.status));
        ]
       @ reason
       @ [
           ("cached", Json.Bool r.cached);
           ("stale", Json.Bool r.stale);
           ("elapsed_ms", Json.Num (Float.round (r.elapsed_ms *. 1000.) /. 1000.));
           ("body", r.body);
         ]))

let response_of_line line =
  match Json.of_string line with
  | Error msg -> Error ("response is not JSON: " ^ msg)
  | Ok j -> (
    let id =
      match Json.member "id" j with
      | Some (Json.Str s) -> Some s
      | _ -> None
    in
    match Option.bind (str_member "status" j) status_of_string with
    | None -> Error "missing or unknown \"status\""
    | Some status -> (
      let status =
        (* Recover the cancellation reason dropped by status_of_string. *)
        match (status, str_member "reason" j) with
        | Cancelled _, Some "deadline" -> Cancelled `Deadline
        | _ -> status
      in
      match
        ( bool_member "cached" j,
          bool_member "stale" j,
          float_member "elapsed_ms" j,
          Json.member "body" j )
      with
      | Some cached, Some stale, Some elapsed_ms, Some body ->
        Ok { resp_id = id; status; cached; stale; elapsed_ms; body }
      | _ -> Error "missing cached/stale/elapsed_ms/body field"))
