(** Wire protocol of the [mdpriv serve] daemon: newline-delimited JSON
    requests and responses over a byte stream (stdin/stdout pair or a
    Unix socket).

    Every request line is answered by exactly one response line — also
    for malformed input, overload shedding, tripped breakers, blown
    deadlines and shutdown races — so a client can always correlate by
    [id] and never hangs waiting on a swallowed error. Responses may
    arrive out of submission order (requests run concurrently on a
    worker pool); the echoed [id] is the correlation key.

    Request shape (one JSON object per line):
    {v
    {"id":"r1","cmd":"risk","model":"synthetic:5-8-4",
     "agree":["Service0"],"sensitivity":{"Field0":0.9},
     "deadline_ms":2000,"max_states":100000,"allow_stale":false}
    v}
    [cmd] is one of ["lts"], ["risk"], ["population"], ["whatif"]
    (analysis requests), ["cancel"] (with ["target"]: the id of an
    in-flight request), ["ping"], ["health"], ["metrics"],
    ["shutdown"]. Models
    are named by path, by ["synthetic:NA-NF-FPS[@SEED]"] spec, or
    supplied inline as DSL text under ["model_text"]. *)

module Json = Mdp_prelude.Json

(** {1 Requests} *)

type profile_spec = {
  agreed : string list;
  sensitivities : (string * float) list;
}

type pop_spec = { psize : int; pseed : int; pagree : float }

type whatif_spec = {
  wprofile : profile_spec;  (** Same fields as a ["risk"] request. *)
  wedits : string list;  (** [Mdp_core.Edit] concrete specs, in order. *)
  wdiff : bool;  (** Include the per-signature {!Mdp_core.Risk_diff}. *)
  wpop : pop_spec option;
      (** Present when the request carries an int ["size"] member (same
          ["pop_seed"]/["agree_probability"] defaults as a
          ["population"] request): also report the population aggregate
          before and after the edits — σ-only edits answered by
          class-delta reaggregation with reuse counts. *)
}

type kind =
  | Lts_stats  (** Generate and summarise the LTS. *)
  | Risk of profile_spec  (** §III-A disclosure analysis, full report. *)
  | Population of pop_spec  (** Aggregate over a simulated population. *)
  | Whatif of whatif_spec
      (** §IV-A edit loop: apply edits, recompute incrementally against
          the cached artifact, report before/after (and optionally the
          risk diff). Parsed from
          [{"cmd":"whatif","edits":["revoke:Admin:delete:EHR"],
          "diff":true, ...}] with the profile fields of ["risk"]. *)

type model_ref =
  | Named of string  (** File path or [synthetic:...] spec. *)
  | Inline of string  (** DSL source shipped in the request. *)

type analysis = {
  kind : kind;
  model : model_ref;
  max_states : int option;
  deadline_ms : int option;
  allow_stale : bool;
      (** When shed under overload, accept a cached (possibly stale)
          result flagged as such instead of an [overloaded] refusal. *)
}

type cmd =
  | Analyse of analysis
  | Cancel_request of string  (** Target request id. *)
  | Ping
  | Health
  | Metrics
  | Shutdown

type request = { req_id : string option; cmd : cmd }

val parse_request : string -> (request, string option * string) result
(** [Error (id, message)] preserves the request id whenever the line
    was at least valid JSON with a string ["id"], so even a rejected
    request gets a correlatable response. *)

(** {1 Responses} *)

type status =
  | Ok_
  | Error_  (** Malformed request, unknown model, parse failure... *)
  | Cancelled of [ `Deadline | `Client ]
  | Overloaded  (** Shed at admission: bounded queue full. *)
  | Breaker_open  (** Fast-failed: this model's circuit breaker is open. *)
  | State_limit  (** Exploration guard tripped (structured, with hint). *)
  | Shutting_down

val status_string : status -> string
val status_of_string : string -> status option

type response = {
  resp_id : string option;
  status : status;
  cached : bool;
  stale : bool;
  elapsed_ms : float;
  body : Json.t;  (** Result payload, or details ([message], [limit]...). *)
}

val response : ?cached:bool -> ?stale:bool -> ?elapsed_ms:float ->
  ?body:Json.t -> id:string option -> status -> response

val error_body : string -> Json.t
(** [{"message": ...}]. *)

val response_to_line : response -> string
(** Single-line JSON (no embedded newlines), ready to write. *)

val response_of_line : string -> (response, string) result
(** Used by clients and by the soak harness's well-formedness oracle:
    requires a parseable object, a known [status], and the
    [cached]/[stale]/[elapsed_ms] fields. *)
