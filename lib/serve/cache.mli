(** Bounded, mutex-guarded LRU cache for compiled analysis artifacts
    and rendered results.

    The daemon's whole performance story is "compile once, answer from
    cache": a warm hit skips DSL parsing, LTS exploration and risk-plan
    compilation. The cache is shared by every worker domain, so all
    operations take an internal lock — entries must therefore be
    treated as immutable by readers (the engine wraps the one mutable
    artifact, the risk plan's label annotations, in its own per-entry
    lock).

    Eviction is least-recently-used with a hard entry cap. Evicted
    entries can optionally be retained in a second-chance [stale] store
    (also LRU-bounded) that {!find_stale} consults — that is what lets
    the engine degrade gracefully under overload by serving a
    previously-computed result flagged as stale instead of shedding the
    request outright.

    Hit/miss/eviction counts are kept per instance and mirrored to
    {!Mdp_obs.Metrics} counters [<name>/hits], [<name>/misses],
    [<name>/evictions] when metrics are enabled. *)

type 'v t

val create : ?stale_cap:int -> name:string -> cap:int -> unit -> 'v t
(** [cap] is the live-entry bound (clamped to >= 1); [stale_cap]
    (default 0: disabled) bounds the evicted-entry store. [name]
    prefixes the exported metric counters. *)

val find : 'v t -> string -> 'v option
(** Refreshes recency on hit. *)

val put : 'v t -> string -> 'v -> unit
(** Insert or replace; may evict the least-recently-used entry (into
    the stale store when enabled). *)

val find_stale : 'v t -> string -> 'v option
(** Look for a previously-evicted value. Never consulted on the fast
    path — only when degrading under overload. Checks live entries
    first, so a [Some] is best-effort "the freshest we ever had". A
    live answer counts (and refreshes recency) as a plain hit; a
    stale-store answer counts as a {e stale hit}, kept separate in
    {!stats} so degraded serving never inflates the real hit ratio. *)

val remove : 'v t -> string -> unit
(** Drop a key from live and stale stores (used when an artifact is
    discovered to be poisoned, e.g. after a breaker trips). *)

type stats = {
  len : int;
  cap : int;
  hits : int;
  misses : int;
  stale_hits : int;  (** Served from the stale store by {!find_stale}. *)
  evictions : int;
  stale_len : int;
}

val stats : 'v t -> stats
val stats_json : 'v t -> Mdp_prelude.Json.t
