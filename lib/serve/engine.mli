(** The daemon's analysis engine: one object owning the whole
    compile -> cache -> evaluate pipeline behind a single [handle]
    entry point, shared by every worker domain.

    Three caches sit in front of the pipeline, all LRU-bounded
    ({!Cache}) and keyed by content hashes so a model edit can never
    serve a stale artifact:

    - {b artifacts} — (universe, generated LTS, consistency gaps,
      lazily compiled {!Mdp_core.Risk_plan}) per (model hash,
      max_states). Generation is the expensive phase; a warm artifact
      turns a risk query into an array walk.
    - {b population classes} — {!Mdp_core.Population.classes} output
      per (model hash, population spec).
    - {b results} — fully rendered response bodies per (model hash,
      request essence). A warm hit answers without touching the model
      at all, and evicted bodies are retained in a stale store that
      {!stale_response} serves (flagged [stale]) when the daemon sheds
      load.

    [Risk_plan.analyse] mutates LTS labels, so each artifact carries a
    lock serialising plan use; [Risk_plan.summary]-based population
    sweeps still fan out over [jobs] domains {e inside} the lock.

    [whatif] requests run {!Mdp_core.Analysis.run_incremental} against
    the cached artifact under that same lock: edits the classifier
    proves LTS-preserving reuse the artifact's LTS and compiled plan
    (re-evaluation only), and result keys canonicalise the edit specs
    so equivalent edit spellings share a cache entry. A full fallback
    (LTS-invalidating edit) explores a fresh LTS without touching the
    cached artifact; it honours the state guard but not [cancel].

    Failures are structured, never escaping exceptions: state-limit
    trips and deadline expiries also feed the per-model-hash circuit
    {!Breaker}, so a model that keeps blowing its budget fast-fails
    subsequent requests for a cooldown instead of burning workers. *)

module Json = Mdp_prelude.Json

type config = {
  artifact_cap : int;  (** Compiled-artifact LRU entries. *)
  result_cap : int;  (** Rendered-result LRU entries. *)
  stale_cap : int;  (** Evicted results kept for degraded serving. *)
  jobs : int;  (** Domains per exploration / population sweep. *)
  breaker_threshold : int;
  breaker_cooldown_ms : int;
  default_deadline_ms : int option;
      (** Budget applied when a request names none; [None] = unlimited. *)
  max_states : int;
      (** Ceiling clamped onto per-request [max_states]. *)
  mem_budget : int option;
      (** Resident-byte budget for each compilation's packed LTS: above
          it the engine spills sealed arena chunks and dedup tables to
          disk and completes bounded by disk, not RAM (state numbering
          unchanged). [None] = never spill. [state_limit] error bodies
          report resident/spill occupancy when a budget is set. *)
}

val default_config : config
(** 8 artifacts, 64 results (32 stale), jobs 1, breaker 3 / 5000 ms,
    no default deadline, 200_000-state ceiling. *)

type t

val create : ?config:config -> unit -> t

val handle :
  t -> ?cancel:Mdp_obs.Cancel.t -> ?admitted_ns:int ->
  Protocol.request -> Protocol.response
(** Synchronously answer one request; never raises. [cancel] is the
    request's token (polled throughout exploration and population
    sweeps); [admitted_ns] backdates [elapsed_ms] to admission time so
    queueing delay is visible to the client. [Cancel_request] and
    [Shutdown] need server state and answer with an error here. *)

val stale_response : t -> Protocol.request -> Protocol.response option
(** Degraded path for an analysis request with [allow_stale]: a
    previously computed (possibly evicted) result for the same essence,
    flagged [cached] and [stale]. [None] when nothing applicable was
    ever computed — the caller then sheds with [Overloaded]. *)

val deadline_ms_for : t -> Protocol.analysis -> int option
(** The effective budget: the request's, else the configured default. *)

val health_json : t -> Json.t
(** Cache/breaker/jobs snapshot (the server adds queue depth). *)
