(** Chaos soak harness for the daemon.

    Builds a seeded adversarial workload — cache-friendly repeats,
    cache-thrashing one-off models, malformed lines, state-limit
    blowers (to trip the breaker), deadline busters, mid-request
    cancellations, pings — perturbs the request stream with the
    {!Mdp_runtime.Faults} machinery (drops, duplicates, reorders,
    delays), drives it through an in-process {!Server}, and checks the
    resilience contract:

    - the daemon never crashes and no worker dies;
    - {e every} delivered line is answered with exactly one well-formed
      response carrying a known status;
    - deadline-cancelled requests terminate within their budget plus a
      bounded overshoot (one frontier round);
    - caches stay within their configured bounds.

    Deterministic workload for a given seed; response timings and
    therefore shed/breaker counts are not (and are not asserted). *)

type spec = {
  seed : int;
  requests : int;  (** Lines generated before fault perturbation. *)
  workers : int;
  queue_cap : int;
  fault_rate : float;
      (** Drop/duplicate/reorder/delay probability per line. *)
  breaker_cooldown_ms : int;
  deadline_slack_ms : float;
      (** Allowed overshoot past a request's deadline budget. *)
}

val default_spec : spec
(** seed 7, 1000 requests, 2 workers, queue 32, 5% faults, 250 ms
    cooldown, 1500 ms slack. *)

type outcome = {
  delivered : int;  (** Lines that survived fault injection. *)
  answered : int;
  by_status : (string * int) list;  (** Sorted by status name. *)
  ill_formed : int;  (** Responses failing {!Protocol.response_of_line}. *)
  cache_overflow : bool;  (** Any cache above its configured cap. *)
  worst_overshoot_ms : float;
      (** Max [elapsed - deadline] over deadline-cancelled requests. *)
  deadline_violations : int;  (** Overshoots beyond the allowed slack. *)
  wall_s : float;
  heap_mb : float;  (** Major-heap words at the end, in MiB. *)
  ok : bool;  (** The whole contract held. *)
}

val run : spec -> outcome
val pp_outcome : Format.formatter -> outcome -> unit
