module Json = Mdp_prelude.Json
module Prng = Mdp_prelude.Prng
module Faults = Mdp_runtime.Faults
module Clock = Mdp_obs.Clock

type spec = {
  seed : int;
  requests : int;
  workers : int;
  queue_cap : int;
  fault_rate : float;
  breaker_cooldown_ms : int;
  deadline_slack_ms : float;
}

let default_spec =
  {
    seed = 7;
    requests = 1000;
    workers = 2;
    queue_cap = 32;
    fault_rate = 0.05;
    breaker_cooldown_ms = 250;
    deadline_slack_ms = 1500.0;
  }

type outcome = {
  delivered : int;
  answered : int;
  by_status : (string * int) list;
  ill_formed : int;
  cache_overflow : bool;
  worst_overshoot_ms : float;
  deadline_violations : int;
  wall_s : float;
  heap_mb : float;
  ok : bool;
}

(* ----- workload ----- *)

let line fields = Json.to_string ~indent:false (Json.Obj fields)

let request ~id fields = line (("id", Json.Str id) :: fields)

(* Small models that finish fast; a few repeats make the result cache
   earn its keep, the @-seeded tail forces constant eviction. *)
let warm_models = [| "synthetic:4-6-3"; "synthetic:5-6-3@3"; "synthetic:4-5-2@9" |]

let malformed rng =
  let corpus =
    [|
      "";
      "{";
      "nonsense";
      "[1,2,3]";
      "\"just a string\"";
      {|{"cmd":"bogus","id":"m-bogus"}|};
      {|{"id":"m-nocmd","model":"synthetic:4-6-3"}|};
      {|{"cmd":"risk","id":"m-nomodel"}|};
      {|{"cmd":"cancel","id":"m-notarget"}|};
      {|{"cmd":"population","id":"m-badsize","model":"synthetic:4-6-3","size":-4}|};
      {|{"cmd":"lts","id":"m-badms","model":"synthetic:4-6-3","max_states":0}|};
      {|{"cmd":"risk","id":"m-badmodel","model":"synthetic:oops"}|};
      {|{"cmd":"risk","id":"m-nofile","model":"/nonexistent/model.mdp"}|};
    |]
  in
  corpus.(Prng.int rng (Array.length corpus))

(* Each generated line, with the deadline budget when it carries one so
   the oracle can check the overshoot of its (id-correlated) response. *)
type gen = { text : string; deadline_of : (string * int) option }

let plain text = { text; deadline_of = None }

let generate spec =
  let rng = Prng.create ~seed:spec.seed in
  let analyse_ids = ref [] in
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  List.init spec.requests (fun _ ->
      let roll = Prng.int rng 100 in
      if roll < 35 then begin
        (* Warm-pool analysis: repeats hit the result cache. *)
        let id = fresh "r" in
        analyse_ids := id :: !analyse_ids;
        let model = warm_models.(Prng.int rng (Array.length warm_models)) in
        let cmd = if Prng.bool rng then "risk" else "lts" in
        plain
          (request ~id
             [
               ("cmd", Json.Str cmd);
               ("model", Json.Str model);
               ("agree", Json.List [ Json.Str "Service0" ]);
               ("allow_stale", Json.Bool (Prng.bool rng));
             ])
      end
      else if roll < 50 then begin
        (* Cache thrashing: ~50 distinct model hashes vs small caches. *)
        let id = fresh "t" in
        analyse_ids := id :: !analyse_ids;
        plain
          (request ~id
             [
               ("cmd", Json.Str "lts");
               ( "model",
                 Json.Str (Printf.sprintf "synthetic:3-5-2@%d" (Prng.int rng 50))
               );
             ])
      end
      else if roll < 60 then begin
        let id = fresh "p" in
        analyse_ids := id :: !analyse_ids;
        plain
          (request ~id
             [
               ("cmd", Json.Str "population");
               ("model", Json.Str "synthetic:4-6-3");
               ("size", Json.int (100 + Prng.int rng 400));
               ("pop_seed", Json.int (Prng.int rng 4));
             ])
      end
      else if roll < 75 then plain (malformed rng)
      else if roll < 83 then begin
        (* State-limit blower: same model hash every time, so repeated
           trips open its breaker and later ones fast-fail. *)
        let id = fresh "x" in
        analyse_ids := id :: !analyse_ids;
        plain
          (request ~id
             [
               ("cmd", Json.Str "lts");
               ("model", Json.Str "synthetic:9-11-6");
               ("max_states", Json.int 400);
             ])
      end
      else if roll < 91 then begin
        (* Deadline buster: a model too big for a few-ms budget. *)
        let id = fresh "d" in
        analyse_ids := id :: !analyse_ids;
        let budget = 1 + Prng.int rng 15 in
        {
          text =
            request ~id
              [
                ("cmd", Json.Str "lts");
                ("model", Json.Str "synthetic:8-10-5@11");
                ("deadline_ms", Json.int budget);
                ("max_states", Json.int 1_000_000);
              ];
          deadline_of = Some (id, budget);
        }
      end
      else if roll < 96 then begin
        (* Mid-request cancellation aimed at a recent analysis id. *)
        match !analyse_ids with
        | [] -> plain (request ~id:(fresh "g") [ ("cmd", Json.Str "ping") ])
        | ids ->
          let target = List.nth ids (Prng.int rng (min 8 (List.length ids))) in
          plain
            (request ~id:(fresh "c")
               [ ("cmd", Json.Str "cancel"); ("target", Json.Str target) ])
      end
      else
        let cmd =
          match Prng.int rng 3 with
          | 0 -> "ping"
          | 1 -> "health"
          | _ -> "metrics"
        in
        plain (request ~id:(fresh "g") [ ("cmd", Json.Str cmd) ]))

(* ----- oracle ----- *)

let run spec =
  let t_start = Clock.now_ns () in
  let gens = generate spec in
  let deadlines = Hashtbl.create 64 in
  List.iter
    (fun g ->
      match g.deadline_of with
      | Some (id, ms) -> Hashtbl.replace deadlines id ms
      | None -> ())
    gens;
  (* The chaos stream: drop, duplicate, reorder and delay whole request
     lines with the same seeded machinery the monitoring pipeline uses
     on event traces. *)
  let injection =
    Faults.inject_any ~seed:(spec.seed + 1)
      (Faults.uniform spec.fault_rate)
      (List.map (fun g -> g.text) gens)
  in
  let delivered = injection.Faults.delivered in
  let engine_config =
    {
      Engine.default_config with
      artifact_cap = 6;
      result_cap = 32;
      stale_cap = 16;
      breaker_cooldown_ms = spec.breaker_cooldown_ms;
      (* Deliberately tiny: the soak's deadline-buster and state-limit
         models overflow 256 KiB resident immediately, so every run
         exercises the spill tier under faults, cancellations and limit
         aborts — the paths that must tear spill directories down. *)
      mem_budget = Some (256 * 1024);
    }
  in
  let engine = Engine.create ~config:engine_config () in
  let responses = ref [] in
  let resp_mu = Mutex.create () in
  let respond line =
    Mutex.lock resp_mu;
    responses := line :: !responses;
    Mutex.unlock resp_mu
  in
  let server =
    Server.create ~workers:spec.workers ~queue_cap:spec.queue_cap ~respond
      engine
  in
  (* Seeded arrival jitter plus bounded backpressure: an occasional
     pause between lines (so in-flight work can be cancelled mid-run),
     and a short drain wait when the queue is full — bursts still
     overflow and exercise shedding, but most of the stream gets past
     admission and into the engine. *)
  let arrival = Prng.create ~seed:(spec.seed + 2) in
  List.iter
    (fun l ->
      if Prng.int arrival 20 = 0 then
        Unix.sleepf (0.0002 *. float_of_int (1 + Prng.int arrival 5));
      let rec drain tries =
        if tries > 0 && Server.queue_depth server >= spec.queue_cap then begin
          Unix.sleepf 0.0005;
          drain (tries - 1)
        end
      in
      (* Pace only most of the time: unpaced bursts overflow the queue
         and keep the overload-shedding path under test. *)
      if Prng.int arrival 4 > 0 then drain 40;
      Server.submit server l)
    delivered;
  Server.shutdown server;
  let responses = !responses in
  (* Contract checks. *)
  let by_status = Hashtbl.create 8 in
  let ill_formed = ref 0 in
  let worst_overshoot = ref 0.0 in
  let deadline_violations = ref 0 in
  List.iter
    (fun l ->
      match Protocol.response_of_line l with
      | Error _ -> incr ill_formed
      | Ok r -> (
        let s = Protocol.status_string r.status in
        Hashtbl.replace by_status s
          (1 + Option.value (Hashtbl.find_opt by_status s) ~default:0);
        match (r.status, r.resp_id) with
        | Protocol.Cancelled `Deadline, Some id -> (
          match Hashtbl.find_opt deadlines id with
          | Some budget ->
            let overshoot = r.elapsed_ms -. float_of_int budget in
            if overshoot > !worst_overshoot then worst_overshoot := overshoot;
            if overshoot > spec.deadline_slack_ms then
              incr deadline_violations
          | None -> ())
        | _ -> ()))
    responses;
  let stats_over =
    let check json =
      match (Json.member "len" json, Json.member "cap" json) with
      | Some l, Some c -> (
        match (Json.to_int_opt l, Json.to_int_opt c) with
        | Some l, Some c -> l > c
        | _ -> true)
      | _ -> true
    in
    match Engine.health_json engine with
    | Json.Obj fields ->
      List.exists
        (fun (k, v) ->
          (k = "artifacts" || k = "results" || k = "classes") && check v)
        fields
    | _ -> true
  in
  let answered = List.length responses in
  let delivered_n = List.length delivered in
  Gc.full_major ();
  let heap_mb =
    float_of_int (Gc.stat ()).Gc.heap_words *. float_of_int (Sys.word_size / 8)
    /. (1024.0 *. 1024.0)
  in
  {
    delivered = delivered_n;
    answered;
    by_status =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_status []);
    ill_formed = !ill_formed;
    cache_overflow = stats_over;
    worst_overshoot_ms = !worst_overshoot;
    deadline_violations = !deadline_violations;
    wall_s = float_of_int (Clock.now_ns () - t_start) /. 1.e9;
    heap_mb;
    ok =
      answered = delivered_n
      && !ill_formed = 0
      && !deadline_violations = 0
      && not stats_over;
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>soak: %s@,\
     delivered %d, answered %d, ill-formed %d@,\
     statuses:@,"
    (if o.ok then "OK" else "FAILED")
    o.delivered o.answered o.ill_formed;
  List.iter
    (fun (s, n) -> Format.fprintf ppf "  %-14s %d@," s n)
    o.by_status;
  Format.fprintf ppf
    "worst deadline overshoot %.1f ms (%d violation(s))@,\
     caches %s, heap %.1f MiB, wall %.2f s@]"
    o.worst_overshoot_ms o.deadline_violations
    (if o.cache_overflow then "OVER CAP" else "within caps")
    o.heap_mb o.wall_s
