module Json = Mdp_prelude.Json
module Metrics = Mdp_obs.Metrics
module Clock = Mdp_obs.Clock
module Cancel = Mdp_obs.Cancel
module C = Mdp_core
module Synthetic = Mdp_scenario.Synthetic
module Field = Mdp_dataflow.Field

type config = {
  artifact_cap : int;
  result_cap : int;
  stale_cap : int;
  jobs : int;
  breaker_threshold : int;
  breaker_cooldown_ms : int;
  default_deadline_ms : int option;
  max_states : int;
  mem_budget : int option;
}

let default_config =
  {
    artifact_cap = 8;
    result_cap = 64;
    stale_cap = 32;
    jobs = 1;
    breaker_threshold = 3;
    breaker_cooldown_ms = 5000;
    default_deadline_ms = None;
    (* The packed LTS engine stores states at a few bytes each, so the
       per-request guard can afford 10x the boxed-era default without
       risking the process. *)
    max_states = 2_000_000;
    (* No resident budget by default: a daemon that should cap its RAM
       and spill compilations to disk opts in (mdpriv serve
       --mem-budget). *)
    mem_budget = None;
  }

(* The compiled state of one model: everything downstream of the DSL
   parse. [plan] is compiled on first risk/population use; the [lock]
   serialises that compilation and every [Risk_plan.analyse] call
   (which rewrites LTS label annotations in place). *)
type artifact = {
  universe : C.Universe.t;
  lts : C.Plts.t;
  consistency : C.Consistency.gap list;
  options : C.Generate.options;
      (** Exactly what the LTS was generated with — the what-if
          classifier needs them to bound an edit's damage. *)
  lock : Mutex.t;
  mutable plan : C.Risk_plan.t option;
}

type t = {
  config : config;
  artifacts : artifact Cache.t;
  class_sets : (C.User_profile.t * int) list Cache.t;
  results : Json.t Cache.t;
  breaker : Breaker.t;
}

let create ?(config = default_config) () =
  {
    config;
    artifacts = Cache.create ~name:"serve/artifacts" ~cap:config.artifact_cap ();
    class_sets = Cache.create ~name:"serve/classes" ~cap:config.artifact_cap ();
    results =
      Cache.create ~name:"serve/results" ~cap:config.result_cap
        ~stale_cap:config.stale_cap ();
    breaker =
      Breaker.create ~threshold:config.breaker_threshold
        ~cooldown_ms:config.breaker_cooldown_ms ();
  }

let deadline_ms_for t (a : Protocol.analysis) =
  match a.deadline_ms with Some _ as d -> d | None -> t.config.default_deadline_ms

(* ----- keys -----

   Everything is keyed by content, not by name: a file model hashes its
   bytes (an edited file is a different model), a synthetic spec hashes
   its canonical rendering, an inline model its source text. The model
   hash is also the breaker key, so breaker state survives cache
   eviction but never outlives a model edit. *)

type source = Synthetic of Synthetic.spec | Dsl of string

let canonical_spec (s : Synthetic.spec) =
  Printf.sprintf "synthetic:%d-%d-%d-%d-%d@%d" s.nactors s.nfields
    s.flows_per_service s.nstores s.nservices s.seed

let resolve_model (m : Protocol.model_ref) =
  match m with
  | Protocol.Inline text ->
    Ok (Digest.to_hex (Digest.string ("inline\x00" ^ text)), Dsl text)
  | Protocol.Named name -> (
    match Synthetic.spec_of_string name with
    | Some (Ok spec) ->
      Ok (Digest.to_hex (Digest.string (canonical_spec spec)), Synthetic spec)
    | Some (Error msg) -> Error msg
    | None -> (
      match In_channel.with_open_bin name In_channel.input_all with
      | text -> Ok (Digest.to_hex (Digest.string ("file\x00" ^ text)), Dsl text)
      | exception Sys_error msg -> Error msg))

let rec kind_essence = function
  | Protocol.Lts_stats -> "lts"
  | Protocol.Risk p ->
    let agreed = List.sort String.compare p.agreed in
    let sens =
      List.sort compare p.sensitivities
      |> List.map (fun (f, s) -> Printf.sprintf "%s=%.17g" f s)
    in
    "risk|" ^ String.concat "," agreed ^ "|" ^ String.concat "," sens
  | Protocol.Population p ->
    Printf.sprintf "population|%d|%d|%.17g" p.psize p.pseed p.pagree
  | Protocol.Whatif w ->
    (* Edit-delta keys: canonicalise parseable edit batches — per-edit
       normal form plus [Edit.canonical_batch]'s order/dedup rules — so
       semantically equal batches ("read,write" vs "write,read",
       reordered independent edits) share one cache entry, while a
       batch with an extra (possibly vacuous) edit keys separately.
       Unparseable specs key on their raw text (the request will be
       rejected downstream anyway, uncached). *)
    let edits =
      match C.Edit.parse_all w.wedits with
      | Ok es -> List.map C.Edit.to_string (C.Edit.canonical_batch es)
      | Error _ ->
        List.map
          (fun s ->
            match C.Edit.parse s with
            | Ok e -> C.Edit.to_string e
            | Error _ -> s)
          w.wedits
    in
    Printf.sprintf "whatif|%s|%s|diff=%b%s"
      (kind_essence (Protocol.Risk w.wprofile))
      (String.concat ";" edits) w.wdiff
      (match w.wpop with
      | None -> ""
      | Some p -> Printf.sprintf "|pop=%d:%d:%.17g" p.psize p.pseed p.pagree)

let artifact_key model_key max_states =
  Printf.sprintf "%s#ms=%d" model_key max_states

let result_key akey kind = akey ^ "#" ^ Digest.to_hex (Digest.string (kind_essence kind))

let class_key akey (p : Protocol.pop_spec) =
  Printf.sprintf "%s#classes:%d:%d:%.17g" akey p.psize p.pseed p.pagree

(* ----- rendering ----- *)

let level l = Json.Str (C.Level.to_string l)

let lts_body (a : artifact) =
  Json.Obj
    [
      ("states", Json.int (C.Plts.num_states a.lts));
      ("transitions", Json.int (C.Plts.num_transitions a.lts));
      ("deterministic", Json.Bool (C.Plts.is_deterministic a.lts));
      ("consistency_gaps", Json.List (List.map C.Report.consistency_gap a.consistency));
    ]

let risk_body (a : artifact) (report : C.Disclosure_risk.report) =
  Json.Obj
    [
      ("worst", level (C.Disclosure_risk.max_level report));
      ( "non_allowed",
        Json.List (List.map (fun s -> Json.Str s) report.non_allowed) );
      ("findings", Json.List (List.map C.Report.finding report.findings));
      ("exposures", Json.List (List.map C.Report.finding report.exposures));
      ("consistency_gaps", Json.int (List.length a.consistency));
    ]

let signature_json (s : C.Risk_diff.signature) =
  Json.Obj
    [
      ("actor", Json.Str s.actor);
      ("store", match s.store with Some st -> Json.Str st | None -> Json.Null);
      ("kind", Json.Str (Format.asprintf "%a" C.Action.pp_kind s.kind));
      ("fields", Json.List (List.map (fun f -> Json.Str f) s.fields));
    ]

let change_json (c : C.Risk_diff.change) =
  Json.Obj
    [
      ("signature", signature_json c.signature);
      ("before", level c.before);
      ("after", level c.after);
    ]

let diff_json (d : C.Risk_diff.t) =
  Json.Obj
    [
      ("removed", Json.List (List.map change_json d.removed));
      ("added", Json.List (List.map change_json d.added));
      ("changed", Json.List (List.map change_json d.changed));
      ("unchanged", Json.int d.unchanged);
      ("improved", Json.Bool (C.Risk_diff.improved d));
    ]

let population_body (agg : C.Population.aggregate) =
  Json.Obj
    [
      ("total", Json.int agg.total);
      ( "by_level",
        Json.Obj
          (List.map (fun (l, n) -> (C.Level.to_string l, Json.int n)) agg.by_level)
      );
      ( "hotspots",
        Json.List
          (List.map
             (fun (h : C.Population.hotspot) ->
               Json.Obj
                 [
                   ("actor", Json.Str h.actor);
                   ( "store",
                     match h.store with Some s -> Json.Str s | None -> Json.Null
                   );
                   ("affected", Json.int h.affected);
                   ("worst", level h.worst);
                 ])
             agg.hotspots) );
    ]

let whatif_body ?population ~diff ~(inv : C.Edit.invalidation) ~before
    ~after_t () =
  let after =
    match after_t.C.Analysis.disclosure with
    | Some r -> r
    | None -> assert false (* whatif always runs with a profile *)
  in
  Json.Obj
    ([
       ("worst_before", level (C.Disclosure_risk.max_level before));
       ("worst_after", level (C.Disclosure_risk.max_level after));
       ("findings_after", Json.int (List.length after.findings));
       ("incremental", Json.Bool (not inv.C.Edit.inv_lts));
       ( "invalidated",
         Json.Obj
           [
             ("lts", Json.Bool inv.C.Edit.inv_lts);
             ("cone", Json.Bool inv.C.Edit.inv_cone);
             ("plan", Json.Bool inv.C.Edit.inv_plan);
             ("risk", Json.Bool inv.C.Edit.inv_risk);
             ("classes", Json.Bool inv.C.Edit.inv_classes);
             ("sigma", Json.Bool (inv.C.Edit.inv_sigma <> None));
             ("pseudonym", Json.Bool inv.C.Edit.inv_pseudonym);
             ("consistency", Json.Bool inv.C.Edit.inv_consistency);
           ] );
     ]
    @ (match population with
      | None -> []
      | Some (pop_before, pop_after, reused, reevaluated) ->
        [
          ( "population",
            Json.Obj
              [
                ("before", population_body pop_before);
                ("after", population_body pop_after);
                ("classes_reused", Json.int reused);
                ("classes_reevaluated", Json.int reevaluated);
              ] );
        ])
    @
    if diff then
      [ ("diff", diff_json (C.Risk_diff.diff ~before ~after)) ]
    else [])

(* ----- the pipeline ----- *)

exception Refused of Protocol.status * Json.t

let refuse status body = raise (Refused (status, body))

let refuse_error msg = refuse Protocol.Error_ (Protocol.error_body msg)

let build_model source =
  match source with
  | Synthetic spec -> Synthetic.model spec
  | Dsl text -> (
    match Mdp_dsl.Parser.parse text with
    | Ok m -> (m.diagram, m.policy)
    | Error msg -> refuse_error ("model parse error: " ^ msg))

let compile_artifact t ~cancel ~max_states source =
  Metrics.span "serve/compile" @@ fun () ->
  let diagram, policy = build_model source in
  let universe =
    match C.Universe.make diagram policy with
    | u -> u
    | exception Invalid_argument msg ->
      refuse_error ("policy does not validate: " ^ msg)
  in
  let options =
    {
      C.Generate.default_options with
      max_states;
      mem_budget = t.config.mem_budget;
    }
  in
  let lts = C.Generate.run ~options ~jobs:t.config.jobs ?cancel universe in
  {
    universe;
    lts;
    consistency = C.Consistency.check universe;
    options;
    lock = Mutex.create ();
    plan = None;
  }

let with_artifact_lock (a : artifact) f =
  Mutex.lock a.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock a.lock) f

let plan_of a =
  match a.plan with
  | Some p -> p
  | None ->
    let p = C.Risk_plan.compile a.universe a.lts in
    a.plan <- Some p;
    p

let profile_of (p : Protocol.profile_spec) =
  match
    C.User_profile.make
      ~sensitivities:(List.map (fun (f, s) -> (Field.make f, s)) p.sensitivities)
      ~agreed_services:p.agreed ()
  with
  | profile -> profile
  | exception Invalid_argument msg -> refuse_error ("bad profile: " ^ msg)

let classes_for t ~akey (a : artifact) (p : Protocol.pop_spec) =
  let key = class_key akey p in
  match Cache.find t.class_sets key with
  | Some cls -> cls
  | None ->
    let spec =
      {
        C.Population.seed = p.pseed;
        size = p.psize;
        westin_mix = C.Population.default_mix;
        agree_probability = p.pagree;
      }
    in
    let profiles =
      C.Population.simulate spec (C.Universe.diagram a.universe)
    in
    let cls = C.Population.classes a.universe profiles in
    Cache.put t.class_sets key cls;
    cls

let evaluate t ~akey ~cancel (a : artifact) (kind : Protocol.kind) =
  Metrics.span "serve/evaluate" @@ fun () ->
  (match cancel with None -> () | Some c -> Cancel.check c);
  match kind with
  | Protocol.Lts_stats -> lts_body a
  | Protocol.Risk spec ->
    let profile = profile_of spec in
    with_artifact_lock a (fun () ->
        risk_body a (C.Risk_plan.analyse (plan_of a) profile))
  | Protocol.Population pop ->
    let cls = classes_for t ~akey a pop in
    with_artifact_lock a (fun () ->
        let plan = plan_of a in
        population_body
          (C.Population.analyse_compiled ~jobs:t.config.jobs ?cancel ~plan
             ~classes:cls a.universe a.lts []))
  | Protocol.Whatif w ->
    let profile = profile_of w.wprofile in
    let edits =
      match C.Edit.parse_all w.wedits with
      | Ok es -> es
      | Error msg -> refuse_error ("bad edit: " ^ msg)
    in
    with_artifact_lock a (fun () ->
        Metrics.span "serve/whatif" @@ fun () ->
        let plan = plan_of a in
        (* The in-sync analyse both yields the baseline report and
           caches the plan's witness tree, which the incremental
           re-evaluation over the (possibly reused) LTS depends on. *)
        let before = C.Risk_plan.analyse plan profile in
        let base =
          {
            C.Analysis.params =
              {
                options = a.options;
                matrix = C.Risk_matrix.default;
                model = C.Disclosure_risk.default_likelihood;
                profile = Some profile;
                bindings = [];
              };
            universe = a.universe;
            lts = a.lts;
            consistency = a.consistency;
            disclosure = Some before;
            pseudonym = [];
            plan = Some plan;
          }
        in
        let inputs = C.Analysis.inputs_of base in
        let after_inputs =
          match C.Edit.apply_all inputs edits with
          | Ok i -> i
          | Error msg -> refuse_error ("edit does not apply: " ^ msg)
        in
        let inv =
          C.Edit.classify ~options:a.options ~before:inputs ~after:after_inputs
        in
        let after_t =
          C.Analysis.run_incremental ~jobs:t.config.jobs ~previous:base edits
        in
        let population =
          match w.wpop with
          | None -> None
          | Some pop ->
            let cls = classes_for t ~akey a pop in
            let cached =
              C.Population.prepare ~jobs:t.config.jobs ?cancel ~plan
                ~classes:cls a.universe a.lts []
            in
            let pop_before = C.Population.cached_aggregate cached in
            (* The cached class summaries survive the edit only when
               nothing but the single profile moved — any policy,
               diagram or binding change re-levels every class. *)
            let sigma_only =
              after_inputs.C.Edit.policy == inputs.C.Edit.policy
              && after_inputs.C.Edit.diagram == inputs.C.Edit.diagram
              && after_inputs.C.Edit.bindings == inputs.C.Edit.bindings
            in
            let pop_after, reused, reevaluated =
              match inv.C.Edit.inv_sigma with
              | Some overrides when sigma_only ->
                C.Population.reaggregate ~jobs:t.config.jobs ?cancel cached
                  ~overrides
              | _ ->
                (* full recompute against the edited model; the
                   simulated profiles themselves are unchanged *)
                let spec =
                  {
                    C.Population.seed = pop.Protocol.pseed;
                    size = pop.psize;
                    westin_mix = C.Population.default_mix;
                    agree_probability = pop.pagree;
                  }
                in
                let u' = after_t.C.Analysis.universe in
                let profiles =
                  C.Population.simulate spec (C.Universe.diagram u')
                in
                let agg =
                  C.Population.analyse_compiled ~jobs:t.config.jobs ?cancel
                    ?plan:after_t.C.Analysis.plan u' after_t.C.Analysis.lts
                    profiles
                in
                (agg, 0, List.length (C.Population.classes u' profiles))
            in
            Some (pop_before, pop_after, reused, reevaluated)
        in
        whatif_body ?population ~diff:w.wdiff ~inv ~before ~after_t ())

(* Breaker accounting: only evidence that the model itself is too
   expensive (state-limit trips, blown deadlines) counts as a failure.
   Everything else that ends a request admitted as a probe — parse
   errors, bad profiles, client cancels, cache hits — must still
   resolve the probe, so it reports success. *)
let run_analysis t ~cancel ~bkey ~akey (an : Protocol.analysis) source =
  try
    let art =
      match Cache.find t.artifacts akey with
      | Some a -> a
      | None ->
        let a =
          compile_artifact t ~cancel
            ~max_states:
              (min t.config.max_states
                 (Option.value an.max_states ~default:t.config.max_states))
            source
        in
        Cache.put t.artifacts akey a;
        a
    in
    let body = evaluate t ~akey ~cancel art an.kind in
    Breaker.success t.breaker bkey;
    Ok body
  with
  | Mdp_lts.Lts.Too_many_states limit ->
    Breaker.failure t.breaker bkey;
    Metrics.incr "serve/state_limit";
    (* Observed sizes at the abort, when the engine recorded them (the
       raise and this handler run on the same worker domain, so the
       domain-local stats are ours): with bytes/state in hand an
       operator can work out what [--max-states] their memory actually
       affords instead of guessing. *)
    let observed =
      match Mdp_lts.Lts.last_abort_stats () with
      | Some st when st.Mdp_lts.Lts.ab_limit = limit ->
        [
          ("states", Json.int st.Mdp_lts.Lts.ab_states);
          ("transitions", Json.int st.Mdp_lts.Lts.ab_transitions);
        ]
        @ (match st.Mdp_lts.Lts.ab_bytes_per_state with
          | Some bps -> [ ("bytes_per_state", Json.Num bps) ]
          | None -> [])
        (* Spill occupancy at the abort: an operator tuning a budgeted
           daemon can tell apart "the model is genuinely too big" from
           "the budget forced everything to disk and the guard fired
           anyway" (raise --max-states, not RAM, in the latter case). *)
        @ (match st.Mdp_lts.Lts.ab_resident_bytes with
          | Some rb -> [ ("resident_bytes", Json.int rb) ]
          | None -> [])
        @ (if st.Mdp_lts.Lts.ab_spill_bytes > 0 then
             [ ("spill_bytes", Json.int st.Mdp_lts.Lts.ab_spill_bytes) ]
           else [])
        @ (match st.Mdp_lts.Lts.ab_mem_budget with
          | Some b -> [ ("mem_budget", Json.int b) ]
          | None -> [])
      | _ -> []
    in
    Error
      ( Protocol.State_limit,
        Json.Obj
          ([
             ( "message",
               Json.Str
                 (C.Analysis.failure_message
                    (C.Analysis.State_limit
                       { limit; hint = C.Analysis.state_limit_hint })) );
             ("limit", Json.int limit);
             ("hint", Json.Str C.Analysis.state_limit_hint);
           ]
          @ observed) )
  | Cancel.Cancelled reason ->
    (match reason with
    | Cancel.Deadline -> Breaker.failure t.breaker bkey
    | Cancel.Client -> Breaker.success t.breaker bkey);
    Metrics.incr "serve/cancelled";
    Error
      ( Protocol.Cancelled
          (match reason with
          | Cancel.Deadline -> `Deadline
          | Cancel.Client -> `Client),
        Protocol.error_body "request cancelled" )
  | Refused (status, body) ->
    Breaker.success t.breaker bkey;
    Error (status, body)

let elapsed_ms_since t0 = float_of_int (Clock.now_ns () - t0) /. 1.e6

let health_json t =
  Json.Obj
    [
      ("artifacts", Cache.stats_json t.artifacts);
      ("results", Cache.stats_json t.results);
      ("classes", Cache.stats_json t.class_sets);
      ("breaker", Breaker.to_json t.breaker);
      ("jobs", Json.int t.config.jobs);
      ("metrics_enabled", Json.Bool (Metrics.enabled ()));
    ]

let handle t ?cancel ?admitted_ns (req : Protocol.request) =
  let t0 = match admitted_ns with Some n -> n | None -> Clock.now_ns () in
  let respond ?cached ?stale ?body status =
    Protocol.response ?cached ?stale ?body ~elapsed_ms:(elapsed_ms_since t0)
      ~id:req.req_id status
  in
  match req.cmd with
  | Protocol.Ping -> respond Protocol.Ok_ ~body:(Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Health -> respond Protocol.Ok_ ~body:(health_json t)
  | Protocol.Metrics ->
    (* Refresh the memory gauges at the scrape point only — never from
       analysis paths, whose snapshots must stay machine-independent. *)
    Metrics.sample_memory ();
    respond Protocol.Ok_
      ~body:
        (Json.Obj
           [
             ("enabled", Json.Bool (Metrics.enabled ()));
             ( "prometheus",
               Json.Str
                 (if Metrics.enabled () then
                    Metrics.to_prometheus (Metrics.snapshot ())
                  else "") );
           ])
  | Protocol.Shutdown ->
    respond Protocol.Ok_ ~body:(Json.Obj [ ("draining", Json.Bool true) ])
  | Protocol.Cancel_request _ ->
    respond Protocol.Error_
      ~body:(Protocol.error_body "cancel requires the server's request registry")
  | Protocol.Analyse an -> (
    match resolve_model an.model with
    | Error msg -> respond Protocol.Error_ ~body:(Protocol.error_body msg)
    | Ok (bkey, source) -> (
      let akey =
        artifact_key bkey
          (min t.config.max_states
             (Option.value an.max_states ~default:t.config.max_states))
      in
      let rkey = result_key akey an.kind in
      match Breaker.admit t.breaker bkey with
      | Breaker.Fast_fail retry_ms ->
        respond Protocol.Breaker_open
          ~body:
            (Json.Obj
               [
                 ( "message",
                   Json.Str
                     "circuit breaker open for this model (repeated \
                      state-limit or deadline failures)" );
                 ("retry_after_ms", Json.int retry_ms);
               ])
      | Breaker.Proceed -> (
        match Cache.find t.results rkey with
        | Some body ->
          Breaker.success t.breaker bkey;
          respond Protocol.Ok_ ~cached:true ~body
        | None -> (
          match run_analysis t ~cancel ~bkey ~akey an source with
          | Ok body ->
            Cache.put t.results rkey body;
            respond Protocol.Ok_ ~body
          | Error (status, body) -> respond status ~body))))

let stale_response t (req : Protocol.request) =
  match req.cmd with
  | Protocol.Analyse an when an.allow_stale -> (
    match resolve_model an.model with
    | Error _ -> None
    | Ok (bkey, _) ->
      let akey =
        artifact_key bkey
          (min t.config.max_states
             (Option.value an.max_states ~default:t.config.max_states))
      in
      Option.map
        (fun body ->
          Metrics.incr "serve/stale_served";
          Protocol.response ~cached:true ~stale:true ~body ~id:req.req_id
            Protocol.Ok_)
        (Cache.find_stale t.results (result_key akey an.kind)))
  | _ -> None
