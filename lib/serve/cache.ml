module Metrics = Mdp_obs.Metrics

(* LRU with lazy-deleted access log: each access pushes (key, generation)
   onto [order]; an entry's current generation lives in the table, so
   stale log cells are recognised and skipped at eviction time. The log
   is compacted whenever it outgrows a small multiple of the capacity,
   which bounds memory for any access pattern — including the
   read-heavy steady state where no eviction would otherwise drain it. *)

type 'v entry = { mutable value : 'v; mutable gen : int }

type 'v t = {
  name : string;
  cap : int;
  tbl : (string, 'v entry) Hashtbl.t;
  order : (string * int) Queue.t;
  stale_cap : int;
  stale_tbl : (string, 'v entry) Hashtbl.t;
  stale_order : (string * int) Queue.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable stale_hits : int;
  mutable evictions : int;
  mu : Mutex.t;
}

let create ?(stale_cap = 0) ~name ~cap () =
  let cap = max 1 cap in
  {
    name;
    cap;
    tbl = Hashtbl.create (2 * cap);
    order = Queue.create ();
    stale_cap = max 0 stale_cap;
    stale_tbl = Hashtbl.create (max 1 stale_cap);
    stale_order = Queue.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    stale_hits = 0;
    evictions = 0;
    mu = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let touch t order entry key =
  t.tick <- t.tick + 1;
  entry.gen <- t.tick;
  Queue.add (key, t.tick) order

let compact tbl order =
  let live = Queue.create () in
  Queue.iter
    (fun (key, gen) ->
      match Hashtbl.find_opt tbl key with
      | Some e when e.gen = gen -> Queue.add (key, gen) live
      | _ -> ())
    order;
  Queue.clear order;
  Queue.transfer live order

let maybe_compact t =
  if Queue.length t.order > (4 * t.cap) + 16 then compact t.tbl t.order;
  if
    t.stale_cap > 0
    && Queue.length t.stale_order > (4 * t.stale_cap) + 16
  then compact t.stale_tbl t.stale_order

(* Pop log cells until one matches its entry's current generation:
   that entry is the true LRU. *)
let rec evict_lru tbl order =
  match Queue.take_opt order with
  | None -> None
  | Some (key, gen) -> (
    match Hashtbl.find_opt tbl key with
    | Some e when e.gen = gen ->
      Hashtbl.remove tbl key;
      Some (key, e.value)
    | _ -> evict_lru tbl order)

let stale_put t key value =
  if t.stale_cap > 0 then begin
    (match Hashtbl.find_opt t.stale_tbl key with
    | Some e ->
      e.value <- value;
      touch t t.stale_order e key
    | None ->
      let e = { value; gen = 0 } in
      Hashtbl.add t.stale_tbl key e;
      touch t t.stale_order e key);
    while Hashtbl.length t.stale_tbl > t.stale_cap do
      ignore (evict_lru t.stale_tbl t.stale_order)
    done
  end

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.hits <- t.hits + 1;
        Metrics.incr (t.name ^ "/hits");
        touch t t.order e key;
        maybe_compact t;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        Metrics.incr (t.name ^ "/misses");
        None)

let put t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
      | Some e ->
        e.value <- value;
        touch t t.order e key
      | None ->
        let e = { value; gen = 0 } in
        Hashtbl.add t.tbl key e;
        touch t t.order e key);
      while Hashtbl.length t.tbl > t.cap do
        match evict_lru t.tbl t.order with
        | Some (k, v) ->
          t.evictions <- t.evictions + 1;
          Metrics.incr (t.name ^ "/evictions");
          stale_put t k v
        | None -> ()
      done;
      maybe_compact t)

(* A second-chance answer is not a plain hit: live answers count as
   [hits] (and refresh recency, same as [find]), stale-store answers as
   [stale_hits] — conflating them would make the hit ratio look healthy
   exactly when the cache is thrashing and degrading to stale serves. *)
let find_stale t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.hits <- t.hits + 1;
        Metrics.incr (t.name ^ "/hits");
        touch t t.order e key;
        maybe_compact t;
        Some e.value
      | None -> (
        match Hashtbl.find_opt t.stale_tbl key with
        | Some e ->
          t.stale_hits <- t.stale_hits + 1;
          Metrics.incr (t.name ^ "/stale_hits");
          Some e.value
        | None ->
          t.misses <- t.misses + 1;
          Metrics.incr (t.name ^ "/misses");
          None))

let remove t key =
  locked t (fun () ->
      Hashtbl.remove t.tbl key;
      Hashtbl.remove t.stale_tbl key)

type stats = {
  len : int;
  cap : int;
  hits : int;
  misses : int;
  stale_hits : int;
  evictions : int;
  stale_len : int;
}

let stats t =
  locked t (fun () ->
      {
        len = Hashtbl.length t.tbl;
        cap = t.cap;
        hits = t.hits;
        misses = t.misses;
        stale_hits = t.stale_hits;
        evictions = t.evictions;
        stale_len = Hashtbl.length t.stale_tbl;
      })

let stats_json t =
  let s = stats t in
  Mdp_prelude.Json.Obj
    [
      ("len", Mdp_prelude.Json.int s.len);
      ("cap", Mdp_prelude.Json.int s.cap);
      ("hits", Mdp_prelude.Json.int s.hits);
      ("misses", Mdp_prelude.Json.int s.misses);
      ("stale_hits", Mdp_prelude.Json.int s.stale_hits);
      ("evictions", Mdp_prelude.Json.int s.evictions);
      ("stale_len", Mdp_prelude.Json.int s.stale_len);
    ]
