(** Per-key circuit breakers.

    A model whose exploration keeps blowing the state limit or the
    deadline budget will keep doing so on every retry, burning a worker
    domain each time. The breaker remembers recent failures per key
    (the engine keys by model hash) and, after [threshold] consecutive
    failures, fast-fails further requests for [cooldown_ms] without
    touching a worker. After the cooldown one probe request is let
    through (half-open); its outcome closes the breaker or re-opens it
    for another cooldown.

    Client-initiated cancellations are {e not} failures — only
    outcomes that evidence the model itself is too expensive
    (state-limit trips, deadline expiries) should be recorded via
    {!failure}. All operations are thread-safe. *)

type t

val create : ?threshold:int -> ?cooldown_ms:int -> unit -> t
(** Defaults: [threshold = 3] consecutive failures, [cooldown_ms =
    5000]. Both clamped to >= 1. *)

type admission =
  | Proceed
  | Fast_fail of int
      (** Milliseconds until the next half-open probe is allowed. *)

val admit : t -> string -> admission
(** Consult (and possibly transition) the breaker for a key. At most
    one in-flight half-open probe is granted per key; concurrent
    requests during the probe fast-fail. *)

val success : t -> string -> unit
val failure : t -> string -> unit

val open_count : t -> int
(** Number of keys currently open or probing (for health reports). *)

val trips : t -> int
(** Total closed->open transitions since creation. *)

val to_json : t -> Mdp_prelude.Json.t
