module Metrics = Mdp_obs.Metrics
module Clock = Mdp_obs.Clock
module Cancel = Mdp_obs.Cancel

type job = {
  jreq : Protocol.request;
  jcancel : Cancel.t;
  jadmitted_ns : int;
}

type t = {
  engine : Engine.t;
  queue_cap : int;
  jobs : job Queue.t;
  mu : Mutex.t;
  work_ready : Condition.t;
  mutable closed : bool;
  (* In-flight (queued or running) analysis tokens by request id, for
     [cancel]. Duplicate ids: last registration wins; entries are
     removed by the worker that answers them only if still their own. *)
  inflight : (string, Cancel.t) Hashtbl.t;
  respond : string -> unit;
  out_mu : Mutex.t;
  mutable workers : unit Domain.t list;
  mutable stopped : bool;
}

let write t line =
  Mutex.lock t.out_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.out_mu) (fun () -> t.respond line)

let answer t (resp : Protocol.response) =
  Metrics.incr ("serve/status/" ^ Protocol.status_string resp.status);
  write t (Protocol.response_to_line resp)

let unregister t id token =
  match id with
  | None -> ()
  | Some id ->
    Mutex.lock t.mu;
    (match Hashtbl.find_opt t.inflight id with
    | Some tok when tok == token -> Hashtbl.remove t.inflight id
    | _ -> ());
    Mutex.unlock t.mu

let worker_loop t () =
  let rec next () =
    Mutex.lock t.mu;
    let rec wait () =
      if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
      else if t.closed then None
      else begin
        Condition.wait t.work_ready t.mu;
        wait ()
      end
    in
    let job = wait () in
    Mutex.unlock t.mu;
    match job with
    | None -> ()
    | Some job ->
      let resp =
        try
          Engine.handle t.engine ~cancel:job.jcancel
            ~admitted_ns:job.jadmitted_ns job.jreq
        with exn ->
          (* Last-ditch containment: the engine promises never to
             raise, but a worker dying would silently strand every
             queued request behind it. *)
          Metrics.incr "serve/worker_rescues";
          Protocol.response ~id:job.jreq.req_id
            ~body:(Protocol.error_body ("internal error: " ^ Printexc.to_string exn))
            Protocol.Error_
      in
      unregister t job.jreq.req_id job.jcancel;
      answer t resp;
      next ()
  in
  next ()

let create ?(workers = 2) ?(queue_cap = 32) ~respond engine =
  let t =
    {
      engine;
      queue_cap = max 1 queue_cap;
      jobs = Queue.create ();
      mu = Mutex.create ();
      work_ready = Condition.create ();
      closed = false;
      inflight = Hashtbl.create 64;
      respond;
      out_mu = Mutex.create ();
      workers = [];
      stopped = false;
    }
  in
  t.workers <- List.init (max 1 workers) (fun _ -> Domain.spawn (worker_loop t));
  t

let cancel t id =
  Mutex.lock t.mu;
  let hit = Hashtbl.find_opt t.inflight id in
  Mutex.unlock t.mu;
  match hit with
  | Some token ->
    Cancel.cancel token;
    Metrics.incr "serve/client_cancels";
    true
  | None -> false

let queue_depth t =
  Mutex.lock t.mu;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mu;
  n

let draining t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c

let close_admission t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mu

let token_for t (an : Protocol.analysis) =
  match Engine.deadline_ms_for t.engine an with
  | Some ms -> Cancel.with_budget_ms ms
  | None -> Cancel.create ()

(* Admission: queue if there is room; otherwise degrade to a stale
   cached result when the client opted in, else shed. Runs under the
   queue lock only long enough to decide. *)
let admit t (req : Protocol.request) (an : Protocol.analysis) =
  let token = token_for t an in
  let now = Clock.now_ns () in
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    `Refused
      (Protocol.response ~id:req.req_id
         ~body:(Protocol.error_body "daemon is shutting down")
         Protocol.Shutting_down)
  end
  else if Queue.length t.jobs >= t.queue_cap then begin
    Mutex.unlock t.mu;
    Metrics.incr "serve/shed";
    match Engine.stale_response t.engine req with
    | Some resp -> `Refused resp
    | None ->
      `Refused
        (Protocol.response ~id:req.req_id
           ~body:
             (Mdp_prelude.Json.Obj
                [
                  ( "message",
                    Mdp_prelude.Json.Str
                      "admission queue full; retry later or set allow_stale"
                  );
                  ("queue_cap", Mdp_prelude.Json.int t.queue_cap);
                ])
           Protocol.Overloaded)
  end
  else begin
    (match req.req_id with
    | Some id -> Hashtbl.replace t.inflight id token
    | None -> ());
    Queue.add { jreq = req; jcancel = token; jadmitted_ns = now } t.jobs;
    Metrics.observe "serve/queue_depth" (Queue.length t.jobs);
    Condition.signal t.work_ready;
    Mutex.unlock t.mu;
    `Queued
  end

let submit t line =
  Metrics.incr "serve/requests";
  match Protocol.parse_request line with
  | Error (id, msg) ->
    Metrics.incr "serve/malformed";
    answer t
      (Protocol.response ~id ~body:(Protocol.error_body msg) Protocol.Error_)
  | Ok req -> (
    match req.cmd with
    | Protocol.Ping | Protocol.Health | Protocol.Metrics ->
      answer t (Engine.handle t.engine req)
    | Protocol.Cancel_request target ->
      let found = cancel t target in
      answer t
        (Protocol.response ~id:req.req_id
           ~body:
             (Mdp_prelude.Json.Obj
                [
                  ("target", Mdp_prelude.Json.Str target);
                  ("found", Mdp_prelude.Json.Bool found);
                ])
           Protocol.Ok_)
    | Protocol.Shutdown ->
      close_admission t;
      answer t
        (Protocol.response ~id:req.req_id
           ~body:(Mdp_prelude.Json.Obj [ ("draining", Mdp_prelude.Json.Bool true) ])
           Protocol.Ok_)
    | Protocol.Analyse an -> (
      match admit t req an with
      | `Queued -> ()
      | `Refused resp -> answer t resp))

let shutdown t =
  close_admission t;
  let workers =
    (* Joining twice is an error; steal the list under the lock so
       concurrent shutdowns are idempotent. *)
    Mutex.lock t.mu;
    if t.stopped then begin
      Mutex.unlock t.mu;
      []
    end
    else begin
      t.stopped <- true;
      let w = t.workers in
      t.workers <- [];
      Mutex.unlock t.mu;
      w
    end
  in
  List.iter Domain.join workers

let serve_channels ?workers ?queue_cap engine ic oc =
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let t = create ?workers ?queue_cap ~respond engine in
  (try
     while not (draining t) do
       match input_line ic with
       | line -> if String.trim line <> "" then submit t line
       | exception End_of_file -> raise Exit
     done
   with Exit -> ());
  shutdown t
