module Clock = Mdp_obs.Clock
module Metrics = Mdp_obs.Metrics

type state =
  | Closed of int  (** consecutive failures so far *)
  | Open of int  (** monotonic ns after which a probe may run *)
  | Probing  (** one half-open probe in flight *)

type t = {
  threshold : int;
  cooldown_ns : int;
  tbl : (string, state) Hashtbl.t;
  mutable tripped : int;
  mu : Mutex.t;
}

let create ?(threshold = 3) ?(cooldown_ms = 5000) () =
  {
    threshold = max 1 threshold;
    cooldown_ns = max 1 cooldown_ms * 1_000_000;
    tbl = Hashtbl.create 16;
    tripped = 0;
    mu = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

type admission = Proceed | Fast_fail of int

let admit t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None | Some (Closed _) -> Proceed
      | Some Probing ->
        Metrics.incr "breaker/fast_fails";
        Fast_fail 0
      | Some (Open until_ns) ->
        let now = Clock.now_ns () in
        if now >= until_ns then begin
          Hashtbl.replace t.tbl key Probing;
          Proceed
        end
        else begin
          Metrics.incr "breaker/fast_fails";
          Fast_fail ((until_ns - now) / 1_000_000)
        end)

let success t key =
  locked t (fun () ->
      if Hashtbl.mem t.tbl key then Hashtbl.remove t.tbl key)

let failure t key =
  locked t (fun () ->
      let trip () =
        t.tripped <- t.tripped + 1;
        Metrics.incr "breaker/trips";
        Hashtbl.replace t.tbl key (Open (Clock.now_ns () + t.cooldown_ns))
      in
      match Hashtbl.find_opt t.tbl key with
      | Some Probing -> trip ()  (* failed probe: straight back to open *)
      | Some (Open _) -> ()  (* a straggler finishing late; already open *)
      | Some (Closed n) when n + 1 >= t.threshold -> trip ()
      | Some (Closed n) -> Hashtbl.replace t.tbl key (Closed (n + 1))
      | None ->
        if t.threshold <= 1 then trip ()
        else Hashtbl.replace t.tbl key (Closed 1))

let open_count t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ state n ->
          match state with Open _ | Probing -> n + 1 | Closed _ -> n)
        t.tbl 0)

let trips t = locked t (fun () -> t.tripped)

let to_json t =
  Mdp_prelude.Json.Obj
    [
      ("open", Mdp_prelude.Json.int (open_count t));
      ("trips", Mdp_prelude.Json.int (trips t));
    ]
