(** The daemon shell around {!Engine}: a pool of worker domains, a
    bounded admission queue, a cancellation registry and an output
    serialiser.

    Life of a request line:

    + {!submit} parses it on the caller's thread. Malformed lines are
      answered immediately ([error], echoing the id when one could be
      recovered) — a broken client cannot occupy a worker.
    + [ping]/[health]/[metrics]/[cancel] are answered inline: they must
      stay responsive precisely when the queue is deep.
    + Analysis requests pass admission control: if the bounded queue is
      full the request is shed — with a stale cached result when the
      client allowed it, else with [overloaded] — otherwise it is
      enqueued with a fresh cancellation token carrying its deadline
      budget, registered (by id) for [cancel], and picked up by a
      worker domain that calls {!Engine.handle} and writes the
      response.
    + [shutdown] (or {!shutdown}) closes admission: subsequent submits
      answer [shutting_down]; queued work drains; workers join.

    Responses are written through a single mutex-guarded callback, so
    concurrent workers never interleave bytes of two lines. *)

type t

val create :
  ?workers:int ->
  ?queue_cap:int ->
  respond:(string -> unit) ->
  Engine.t ->
  t
(** Defaults: 2 workers, queue capacity 32 (both clamped to >= 1).
    [respond] receives complete response lines (no trailing newline);
    calls are already serialised. *)

val submit : t -> string -> unit
(** Feed one request line. Always results in exactly one response line
    (now or when a worker finishes), never raises, never blocks on
    analysis work. *)

val cancel : t -> string -> bool
(** Fire the cancellation token of an in-flight request by id. False
    when no such request is queued or running (already answered, or
    never existed). *)

val queue_depth : t -> int
val draining : t -> bool

val shutdown : t -> unit
(** Close admission, drain the queue, join the workers. Idempotent.
    Safe to call while requests are in flight — they are answered
    first. *)

val serve_channels : ?workers:int -> ?queue_cap:int ->
  Engine.t -> in_channel -> out_channel -> unit
(** Run the newline-JSON protocol over a channel pair (stdin/stdout in
    [mdpriv serve], a socket in tests) until EOF or a [shutdown]
    request, then drain and return. Each response line is flushed
    eagerly so a single-request client never deadlocks on buffering. *)
