type scheme = (string * Hierarchy.t) list

type levels = (string * int) list

let apply ds scheme levels =
  List.fold_left
    (fun ds (attr, hier) ->
      match List.assoc_opt attr levels with
      | None | Some 0 -> ds
      | Some level -> Dataset.map_column ds attr (Hierarchy.generalise hier ~level))
    ds scheme

let classes ds = Dataset.equivalence_classes ds ~by:(Dataset.quasi_indices ds)

let min_class_size ds =
  match classes ds with
  | [] -> 0
  | cs -> List.fold_left (fun m c -> min m (List.length c)) max_int cs

let is_k_anonymous ~k ds = Dataset.nrows ds = 0 || min_class_size ds >= k

let distinct_count ds col =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  for r = 0 to Dataset.nrows ds - 1 do
    let s = Value.to_string (Dataset.get ds ~row:r ~col) in
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      incr count
    end
  done;
  !count

let violating_rows ~k ds =
  List.concat
    (List.filter (fun c -> List.length c < k) (classes ds))

let remove_rows ds rows_to_drop =
  let n = Dataset.nrows ds in
  let drop = Array.make n false in
  List.iter (fun r -> if r >= 0 && r < n then drop.(r) <- true) rows_to_drop;
  let keep = List.filter (fun r -> not drop.(r)) (List.init n Fun.id) in
  Dataset.make ~attrs:(Dataset.attrs ds)
    ~rows:(List.map (Dataset.row ds) keep)

let datafly ~k ?(max_suppression = 0.0) ds scheme =
  let n = Dataset.nrows ds in
  let budget = int_of_float (Float.floor (max_suppression *. float_of_int n)) in
  let rec go levels =
    let gen = apply ds scheme levels in
    let violating = violating_rows ~k gen in
    if List.length violating <= budget then
      Ok (remove_rows gen violating, levels, List.length violating)
    else
      (* Raise the not-yet-maxed quasi attribute with most distinct values. *)
      let candidates =
        List.filter
          (fun (attr, hier) ->
            List.assoc attr levels < Hierarchy.nlevels hier)
          scheme
      in
      match candidates with
      | [] -> Error "datafly: k-anonymity unreachable even at full suppression"
      | _ ->
        let attr, _ =
          List.fold_left
            (fun (best, bestc) (attr, hier) ->
              ignore hier;
              let c = distinct_count gen (Dataset.col_index gen attr) in
              if c > bestc then (attr, c) else (best, bestc))
            ("", -1) candidates
        in
        let levels =
          List.map
            (fun (a, l) -> if a = attr then (a, l + 1) else (a, l))
            levels
        in
        go levels
  in
  go (List.map (fun (a, _) -> (a, 0)) scheme)

let optimal ~k ds scheme =
  let maxes = List.map (fun (_, h) -> Hierarchy.nlevels h) scheme in
  let rec vectors = function
    | [] -> [ [] ]
    | m :: rest ->
      let tails = vectors rest in
      List.concat_map (fun l -> List.map (fun t -> l :: t) tails)
        (List.init (m + 1) Fun.id)
  in
  let by_total =
    List.sort
      (fun a b ->
        match Int.compare (List.fold_left ( + ) 0 a) (List.fold_left ( + ) 0 b) with
        | 0 -> List.compare Int.compare a b
        | c -> c)
      (vectors maxes)
  in
  let to_levels v = List.map2 (fun (a, _) l -> (a, l)) scheme v in
  List.find_map
    (fun v ->
      let levels = to_levels v in
      let gen = apply ds scheme levels in
      if is_k_anonymous ~k gen then Some (gen, levels) else None)
    by_total
