(** Columnar anonymisation engine.

    Compiles a {!Dataset.t} once into typed column storage — numeric
    quasi content as flat float arrays, categorical/sensitive content
    as dictionary-encoded integer codes — and re-implements the
    anonymisation and risk analyses over that representation. This is
    the compiled twin of the naive row-at-a-time modules ({!Mondrian},
    {!Kanon}, {!Ldiv}, {!Tcloseness}, {!Reident}, {!Value_risk}),
    following the same naive-vs-compiled split as [Mdp_core.Generate]
    and [Mdp_core.Risk_plan]: the naive modules stay the readable
    oracle, this module produces bit-identical results at
    million-row scale.

    Guarantees (checked by the [test_anon] parity suites and the
    [--pr4] bench agreement gate):
    - Mondrian partitions, partition order, row order within a
      partition, and released datasets equal the naive engine's for
      every [jobs] value.
    - Equivalence classes come out in the naive first-appearance
      order; k/l/t checks and re-identification/value-risk scores are
      float-for-float identical (the same IEEE operations are applied
      in the same order).

    A compiled plan is cheap: one pass to extract numeric content;
    per-column dictionaries are built lazily the first time a
    class-based analysis needs them. Plans memoise the quasi
    equivalence classes, so analyses are not safe to call from
    multiple domains concurrently ({!mondrian_partitions} and
    {!mondrian_anonymise} parallelise internally instead). *)

type t
(** A dataset compiled to columns. Immutable view of the source
    dataset: compiling never copies or alters cell values. *)

val compile : Dataset.t -> t

val source : t -> Dataset.t
(** The dataset the plan was compiled from (physical identity). *)

val nrows : t -> int

val guard : t -> Dataset.t -> unit
(** [guard t ds] checks that [t] was compiled from exactly [ds]
    (physical equality, mirroring [Risk_plan]'s stale-plan guard).
    @raise Invalid_argument if the plan is stale or mismatched. *)

val col_index : t -> string -> int
(** @raise Not_found on an unknown attribute name. *)

(** {1 Equivalence classes and k-anonymity} *)

val equivalence_classes : t -> by:int list -> int list list
(** Same classes, same class order, same row order as
    {!Dataset.equivalence_classes}, via one hashed coding pass per
    column instead of string-key grouping. *)

val classes : t -> int list list
(** Quasi-identifier classes ({!Kanon.classes}); memoised. *)

val min_class_size : t -> int
val is_k_anonymous : k:int -> t -> bool
val violating_rows : k:int -> t -> int list
val distinct_count : t -> int -> int

(** {1 Mondrian} *)

val mondrian_partitions :
  ?jobs:int -> ?par_threshold:int -> k:int -> t -> (int list list, string) result
(** {!Mondrian.partitions} over index ranges: recursion steps permute
    a row-index array in place (stable partition around an O(range)
    quickselect median) instead of rebuilding row lists, and with
    [jobs > 1] independent subranges are fanned out over a domain
    pool. Ranges below [par_threshold] rows (default 16384) are
    always explored sequentially. The result — including errors and
    their messages — is identical for every [jobs]. *)

val mondrian_anonymise :
  ?jobs:int -> ?par_threshold:int -> k:int -> t -> (Dataset.t, string) result
(** {!Mondrian.anonymise}, generalising quasi cells of each partition
    to their range interval. *)

val mondrian_release :
  ?jobs:int -> ?par_threshold:int -> k:int -> t -> (t, string) result
(** [mondrian_anonymise] that returns the release already compiled
    (its source dataset is what [mondrian_anonymise] would return,
    reachable via {!source}), with the per-quasi-column dictionaries
    seeded from the partition structure — one rendering per (leaf,
    column) instead of a pass over every row. Code assignment is
    identical to compiling the release from scratch, so every class
    analysis and {!evaluate_gate} behave exactly as they would on
    [compile (mondrian_anonymise ...)], only cheaper. This is the
    serving-path entry point: anonymise, then gate or analyse the
    same compiled release without recompiling it. *)

(** {1 l-diversity} *)

val ldiv_distinct : t -> sensitive:string -> int
val is_distinct_diverse : l:int -> t -> sensitive:string -> bool
val ldiv_entropy : t -> sensitive:string -> float
val is_entropy_diverse : l:float -> t -> sensitive:string -> bool

(** {1 t-closeness} *)

val tclose_numeric_emd : t -> sensitive:string -> float option
(** {!Tcloseness.numeric_emd}: per-class ordered EMD against the
    global distribution, counting over value ranks in the sorted
    support instead of assoc-list distributions. *)

val tclose_categorical : t -> sensitive:string -> float option
val is_t_close : t:float -> t -> sensitive:string -> bool

(** {1 Re-identification risk} *)

val reident_prosecutor : t -> float
val reident_marketer : t -> float

val reident_journalist : release:t -> population:t -> float option
(** {!Reident.journalist}: each class representative's generalised
    quasi cells are precompiled to per-column tests (range check on
    the population's float column, code-set membership on its
    dictionary codes) so the population scan does no [Value.covers]
    dispatch. *)

(** {1 §III-B value risk} *)

val value_risk_assess :
  t -> fields_read:string list -> Value_risk.policy -> Value_risk.report
(** {!Value_risk.assess}: classes by hashed coding; per-record
    frequencies by binary search over the class's sorted sensitive
    values (numeric) or dictionary-code counts (categorical), applying
    exactly the naive per-pair closeness predicate. *)

val value_risk_sweep : t -> Value_risk.policy -> Value_risk.report list
(** {!Value_risk.sweep} over the compiled plan. *)

(** {1 Release acceptance gate} *)

val evaluate_gate :
  original:Dataset.t -> release:t -> Release_gate.criteria ->
  Release_gate.verdict
(** {!Release_gate.evaluate} with every class-based criterion
    (k-anonymity, l-diversity, t-closeness, value risk) computed by
    this engine: identical verdict — same checks, same failure strings
    in the same order — at hashed-class cost. [original] is only
    consulted for utility drift, exactly as in the naive gate. *)
