open Mdp_prelude

(* ------------------------------------------------------------------ *)
(* Compiled representation *)

(* Dictionary codes of one column, built lazily on first class-based
   analysis (Mondrian never needs them). The two sides are independent
   and independently lazy — the release gate's k/l checks only ever
   render cells ([ckey]), so a high-cardinality sensitive column never
   pays for the [equal_key] side it does not use:
   - [ckey] codes rows by their *rendered* cell string, exactly the key
     the naive [Dataset.equivalence_classes] concatenates — two cells
     share a ckey iff the naive engine would put them in the same
     class. Codes are dense and in first-appearance order, so class
     order matches the naive first-seen grouping for free.
   - [ekey] codes rows up to {!Value.equal} (numeric content by float
     bits so [Int 3] and [Float 3.] share a code, other constructors by
     an injective rendering), which is what per-value frequency counts
     in {!Value_risk} need. *)
type ckeys = { cdict : Interner.t; ckey : int array; csize : int }

type ekeys = {
  edict : Interner.t;
  ekey : int array;
  esize : int;
  suppressed_code : int;  (* ekey code of [Suppressed]; -1 when absent *)
}

type col = {
  nums : float array;  (* numeric content; [nan] where none *)
  is_num : Bytes.t;  (* '\001' where {!Value.numeric} is [Some] *)
  all_numeric : bool;
  first_non_numeric : int;  (* [max_int] when the column is numeric *)
  mutable ckeys : ckeys option;
  mutable ekeys : ekeys option;
}

type t = {
  ds : Dataset.t;
  nrows : int;
  attrs : Attribute.t array;
  quasi : int list;
  cols : col array;
  mutable quasi_classes : int list list option;
}

let float_bits x = Int64.to_string (Int64.bits_of_float x)

(* Injective up to Value.equal: numeric values collapse to their float
   content (Value.equal compares Int/Float through the float), interval
   bounds go by bits (Float.equal semantics), the rest structurally. *)
let equal_key v =
  match Value.numeric v with
  | Some x -> "n" ^ float_bits x
  | None -> (
    match v with
    | Value.Str s -> "s" ^ s
    | Value.Interval (a, b) -> "v" ^ float_bits a ^ "," ^ float_bits b
    | Value.Str_set l -> "S" ^ String.concat "\x00" l
    | Value.Suppressed -> "x"
    | Value.Int _ | Value.Float _ -> assert false)

let compile_col ds ~col:c =
  let nrows = Dataset.nrows ds in
  let nums = Array.make nrows Float.nan in
  let is_num = Bytes.make nrows '\000' in
  let all_numeric = ref true in
  let first_non_numeric = ref max_int in
  for r = 0 to nrows - 1 do
    match Value.numeric (Dataset.get ds ~row:r ~col:c) with
    | Some x ->
      nums.(r) <- x;
      Bytes.set is_num r '\001'
    | None ->
      if !all_numeric then first_non_numeric := r;
      all_numeric := false
  done;
  {
    nums;
    is_num;
    all_numeric = !all_numeric;
    first_non_numeric = !first_non_numeric;
    ckeys = None;
    ekeys = None;
  }

let compile ds =
  let attrs = Array.of_list (Dataset.attrs ds) in
  {
    ds;
    nrows = Dataset.nrows ds;
    attrs;
    quasi = Dataset.quasi_indices ds;
    cols = Array.init (Array.length attrs) (fun c -> compile_col ds ~col:c);
    quasi_classes = None;
  }

let source t = t.ds
let nrows t = t.nrows

let guard t ds =
  if not (t.ds == ds) then
    invalid_arg
      "Columnar: plan was compiled from a different dataset (stale or \
       mismatched source)"

let col_index t name =
  let rec go i =
    if i >= Array.length t.attrs then raise Not_found
    else if t.attrs.(i).Attribute.name = name then i
    else go (i + 1)
  in
  go 0

(* Physically identical cells get their codes from a pointer cache
   instead of re-rendering [Value.to_string]/[equal_key]: generalised
   releases share one boxed value across every row of an equivalence
   class, so on the datasets where class analyses matter most the
   rendering work collapses from O(rows) to O(distinct cells). Equal
   pointers are structurally equal, so the cached pair is exactly what
   the dictionaries would have produced. *)
module Ptr_cache = Hashtbl.Make (struct
  type t = Value.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let ckeys t c =
  let col = t.cols.(c) in
  match col.ckeys with
  | Some k -> k
  | None ->
    let cdict = Interner.create () in
    let ckey = Array.make t.nrows 0 in
    (if col.all_numeric then
       (* Raw numeric columns hold one fresh box per cell, so a pointer
          cache can never hit — render unconditionally. *)
       for r = 0 to t.nrows - 1 do
         ckey.(r) <-
           Interner.intern cdict
             (Value.to_string (Dataset.get t.ds ~row:r ~col:c))
       done
     else begin
       let cache = Ptr_cache.create 256 in
       for r = 0 to t.nrows - 1 do
         let v = Dataset.get t.ds ~row:r ~col:c in
         ckey.(r) <-
           (match Ptr_cache.find_opt cache v with
           | Some ck -> ck
           | None ->
             let ck = Interner.intern cdict (Value.to_string v) in
             (* Unbounded-cardinality columns would fill the cache with
                single-use pointers; past this size the hit rate cannot
                pay for the inserts. *)
             if Ptr_cache.length cache < 65_536 then Ptr_cache.add cache v ck;
             ck)
       done
     end);
    let k = { cdict; ckey; csize = Interner.size cdict } in
    col.ckeys <- Some k;
    k

let ekeys t c =
  let col = t.cols.(c) in
  match col.ekeys with
  | Some k -> k
  | None ->
    let edict = Interner.create () in
    let ekey = Array.make t.nrows 0 in
    let suppressed = ref (-1) in
    (if col.all_numeric then
       (* As in [ckeys]; a numeric cell is never [Suppressed]. *)
       for r = 0 to t.nrows - 1 do
         ekey.(r) <-
           Interner.intern edict (equal_key (Dataset.get t.ds ~row:r ~col:c))
       done
     else begin
       let cache = Ptr_cache.create 256 in
       for r = 0 to t.nrows - 1 do
         let v = Dataset.get t.ds ~row:r ~col:c in
         ekey.(r) <-
           (match Ptr_cache.find_opt cache v with
           | Some e -> e
           | None ->
             let fresh = Interner.size edict in
             let e = Interner.intern edict (equal_key v) in
             if e = fresh && v = Value.Suppressed then suppressed := e;
             if Ptr_cache.length cache < 65_536 then Ptr_cache.add cache v e;
             e)
       done
     end);
    let k =
      { edict; ekey; esize = Interner.size edict; suppressed_code = !suppressed }
    in
    col.ekeys <- Some k;
    k

(* ------------------------------------------------------------------ *)
(* Hashed equivalence classes *)

(* Dense class code per row: fold the per-column ckeys through an int-
   pair interner, one hash probe per (row, column). The final pass
   assigns fresh codes in row-scan order, so class codes come out in
   first-appearance order — the same order the naive string-keyed
   group-by produces. *)
let class_codes t ~by =
  match by with
  | [] -> (Array.make t.nrows 0, if t.nrows = 0 then 0 else 1)
  | c0 :: rest ->
    let k0 = ckeys t c0 in
    List.fold_left
      (fun (acc, _) c ->
        let ck = (ckeys t c).ckey in
        let pair = Intcode.create ~size:(2 * t.nrows) () in
        let out = Array.make t.nrows 0 in
        for r = 0 to t.nrows - 1 do
          out.(r) <- Intcode.code pair acc.(r) ck.(r)
        done;
        (out, Intcode.size pair))
      (k0.ckey, k0.csize) rest

let buckets_of_codes codes nclasses =
  let buckets = Array.make nclasses [] in
  for r = Array.length codes - 1 downto 0 do
    let c = codes.(r) in
    buckets.(c) <- r :: buckets.(c)
  done;
  Array.to_list buckets

let equivalence_classes t ~by =
  if t.nrows = 0 then []
  else
    let code, nclasses = class_codes t ~by in
    buckets_of_codes code nclasses

let classes t =
  match t.quasi_classes with
  | Some cs -> cs
  | None ->
    let cs = equivalence_classes t ~by:t.quasi in
    t.quasi_classes <- Some cs;
    cs

let min_class_size t =
  match classes t with
  | [] -> 0
  | cs -> List.fold_left (fun m c -> min m (List.length c)) max_int cs

let is_k_anonymous ~k t = t.nrows = 0 || min_class_size t >= k

let violating_rows ~k t =
  List.concat (List.filter (fun c -> List.length c < k) (classes t))

let distinct_count t col = (ckeys t col).csize

(* ------------------------------------------------------------------ *)
(* Mondrian: in-place index-range partitioning *)

(* k-th smallest (by Float.compare, the order the naive sort uses) of
   a[lo, hi) — iterative three-way quickselect with median-of-three
   pivots, O(range) expected, scratch-destructive. *)
let select a lo hi rank =
  let swap i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  let median3 x y z =
    if Float.compare x y <= 0 then
      if Float.compare y z <= 0 then y
      else if Float.compare x z <= 0 then z
      else x
    else if Float.compare x z <= 0 then x
    else if Float.compare y z <= 0 then z
    else y
  in
  let lo = ref lo and hi = ref hi and rank = ref rank in
  let result = ref a.(!lo) in
  let continue = ref true in
  while !continue do
    if !hi - !lo <= 1 then begin
      result := a.(!lo);
      continue := false
    end
    else begin
      let mid = !lo + ((!hi - !lo) / 2) in
      let p = median3 a.(!lo) a.(mid) a.(!hi - 1) in
      let lt = ref !lo and i = ref !lo and gt = ref (!hi - 1) in
      while !i <= !gt do
        let c = Float.compare a.(!i) p in
        if c < 0 then begin
          swap !lt !i;
          incr lt;
          incr i
        end
        else if c > 0 then begin
          swap !i !gt;
          decr gt
        end
        else incr i
      done;
      let nlt = !lt - !lo in
      let neq = !gt - !lt + 1 in
      if !rank < nlt then hi := !lt
      else if !rank < nlt + neq then begin
        result := p;
        continue := false
      end
      else begin
        rank := !rank - nlt - neq;
        lo := !gt + 1
      end
    end
  done;
  !result

type partitioner = {
  plan : t;
  idx : int array;  (* row permutation; leaves are contiguous ranges *)
  qcols : int array;  (* quasi columns, in Dataset.quasi_indices order *)
  vals : float array array;
      (* vals.(q).(i) = quasi value of row idx.(i): kept permuted in step
         with idx, so every range scan, median selection and split test
         reads memory sequentially instead of through idx (the scattered
         arr.(idx.(i)) gathers dominated the first cut of this engine). *)
  mask : Bytes.t;  (* scratch: which side of the median position i takes *)
  iscratch : int array;
  fscratch : float array;
  k : int;
}

let make_partitioner t ~k =
  let qcols = Array.of_list t.quasi in
  {
    plan = t;
    idx = Array.init t.nrows Fun.id;
    qcols;
    vals = Array.map (fun c -> Array.copy t.cols.(c).nums) qcols;
    mask = Bytes.make t.nrows '\000';
    iscratch = Array.make t.nrows 0;
    fscratch = Array.make t.nrows 0.0;
    k;
  }

(* One Mondrian step on idx[lo, hi): [Some mid] leaves idx (and the
   aligned vals columns) stably partitioned around the chosen median,
   [None] marks a final leaf. Mirrors the naive step exactly: widest
   range first (stable on ties), strictly-less-than-median goes left
   preserving row order, both sides must keep k rows. The split side of
   every position is decided (and counted) into [mask] first; idx and
   vals are only permuted once the split is known k-valid, so a failed
   column attempt leaves the order later columns see unchanged, like
   the naive List.partition-and-discard. *)
let step p lo hi =
  let len = hi - lo in
  if len < 2 * p.k then None
  else begin
    let ranked =
      List.sort
        (fun (_, w1) (_, w2) -> Float.compare w2 w1)
        (List.init (Array.length p.qcols) (fun q ->
             let a = p.vals.(q) in
             let lo_v = ref Float.infinity and hi_v = ref Float.neg_infinity in
             for i = lo to hi - 1 do
               let x = a.(i) in
               lo_v := Float.min !lo_v x;
               hi_v := Float.max !hi_v x
             done;
             (q, !hi_v -. !lo_v)))
    in
    let rec try_cols = function
      | [] -> None
      | (q, width) :: rest ->
        if width <= 0.0 then None
        else begin
          let a = p.vals.(q) in
          Array.blit a lo p.fscratch lo len;
          let median = select p.fscratch lo hi (len / 2) in
          let nleft = ref 0 in
          for i = lo to hi - 1 do
            if a.(i) < median then begin
              Bytes.set p.mask i '\001';
              incr nleft
            end
            else Bytes.set p.mask i '\000'
          done;
          let mid = lo + !nleft in
          if mid - lo >= p.k && hi - mid >= p.k then begin
            let wl = ref lo and wr = ref mid in
            for i = lo to hi - 1 do
              if Bytes.get p.mask i = '\001' then begin
                p.iscratch.(!wl) <- p.idx.(i);
                incr wl
              end
              else begin
                p.iscratch.(!wr) <- p.idx.(i);
                incr wr
              end
            done;
            Array.blit p.iscratch lo p.idx lo len;
            for j = 0 to Array.length p.qcols - 1 do
              let v = p.vals.(j) in
              let wl = ref lo and wr = ref mid in
              for i = lo to hi - 1 do
                if Bytes.get p.mask i = '\001' then begin
                  p.fscratch.(!wl) <- v.(i);
                  incr wl
                end
                else begin
                  p.fscratch.(!wr) <- v.(i);
                  incr wr
                end
              done;
              Array.blit p.fscratch lo v lo len
            done;
            Some mid
          end
          else try_cols rest
        end
    in
    try_cols ranked
  end

(* Sequential recursion; leaves accumulate reversed (rightmost first).
   [depth] is the number of splits above this range — observed per leaf
   so the metrics histogram shows how deep the Mondrian tree goes. *)
let rec explore p depth lo hi acc =
  match step p lo hi with
  | None ->
    Mdp_obs.Metrics.observe "mondrian/leaf_depth" depth;
    (lo, hi) :: acc
  | Some mid ->
    explore p (depth + 1) mid hi (explore p (depth + 1) lo mid acc)

(* Fan the recursion out over a Domain pool: split top-down on the
   calling domain until there are enough independent subranges, then
   work contiguous runs of them in parallel. Each subrange owns a
   disjoint slice of idx and the scratch arrays, so domains never touch
   the same words. Split decisions are the sequential ones, so the
   leaf list is identical for any [jobs]. *)
let partition_ranges ?(jobs = 1) ?(par_threshold = 16384) t ~k =
  Mdp_obs.Metrics.span "mondrian/partition" @@ fun () ->
  Mdp_obs.Metrics.add "columnar/rows" t.nrows;
  let p = make_partitioner t ~k in
  let n = t.nrows in
  let p, ranges =
    if jobs <= 1 || n < par_threshold then (p, List.rev (explore p 0 0 n []))
    else begin
      let target = 4 * jobs in
      (* pieces in left-to-right order, each carrying the split depth
         that produced it; [`Open] may still split. *)
      let rec phase1 pieces count =
        if count >= target then pieces
        else begin
          let widest =
            List.fold_left
              (fun acc (lo, hi, _, state) ->
                match (state, acc) with
                | `Done, _ -> acc
                | `Open, Some (blo, bhi) when bhi - blo >= hi - lo -> acc
                | `Open, _ -> Some (lo, hi))
              None pieces
          in
          match widest with
          | None -> pieces
          | Some (lo, hi) when hi - lo < par_threshold -> pieces
          | Some (lo, hi) -> (
            match step p lo hi with
            | None ->
              phase1
                (List.map
                   (fun (l, h, d, s) ->
                     if l = lo && h = hi then (l, h, d, `Done) else (l, h, d, s))
                   pieces)
                count
            | Some mid ->
              phase1
                (List.concat_map
                   (fun (l, h, d, s) ->
                     if l = lo && h = hi then
                       [ (l, mid, d + 1, `Open); (mid, h, d + 1, `Open) ]
                     else [ (l, h, d, s) ])
                   pieces)
                (count + 1))
        end
      in
      let pieces = phase1 [ (0, n, 0, `Open) ] 1 in
      let pending = Array.of_list pieces in
      let leaf_lists =
        Parallel.map_chunks ~jobs (Array.length pending) (fun a b ->
            let acc = ref [] in
            for i = a to b - 1 do
              let lo, hi, depth, state = pending.(i) in
              match state with
              | `Done ->
                Mdp_obs.Metrics.observe "mondrian/leaf_depth" depth;
                acc := (lo, hi) :: !acc
              | `Open -> acc := explore p depth lo hi !acc
            done;
            List.rev !acc)
      in
      (p, List.concat leaf_lists)
    end
  in
  Mdp_obs.Metrics.add "mondrian/partitions" (List.length ranges);
  (p, ranges)

let validate_for_mondrian ~k t =
  if t.nrows < k then Error "mondrian: fewer rows than k"
  else begin
    (* First non-numeric quasi cell in row-major order, to report the
       same failure as the naive row-by-row scan. *)
    let bad = ref None in
    List.iter
      (fun c ->
        let first = t.cols.(c).first_non_numeric in
        match !bad with
        | Some (r, _) when first >= r -> ()
        | _ -> if first < max_int then bad := Some (first, c))
      t.quasi;
    match !bad with
    | Some (r, c) ->
      Error
        (Printf.sprintf "mondrian: non-numeric quasi value at row %d col %d" r c)
    | None -> Ok ()
  end

let ranges_to_partitions p ranges =
  List.map
    (fun (lo, hi) -> List.init (hi - lo) (fun i -> p.idx.(lo + i)))
    ranges

let mondrian_partitions ?jobs ?par_threshold ~k t =
  match validate_for_mondrian ~k t with
  | Error e -> Error e
  | Ok () ->
    let p, ranges = partition_ranges ?jobs ?par_threshold t ~k in
    Ok (ranges_to_partitions p ranges)

let mondrian_materialise t p ranges =
  let ncols = Array.length t.attrs in
  let nq = Array.length p.qcols in
  let qpos = Array.make ncols (-1) in
  Array.iteri (fun q c -> qpos.(c) <- q) p.qcols;
  (* One generalised value per (leaf, quasi column), shared by every
     row of the leaf; rows map to leaves through one int per row
     rather than one boxed value per quasi cell. *)
  let part_of = Array.make t.nrows 0 in
  let part_vals = Array.make (List.length ranges) [||] in
  List.iteri
    (fun pid (lo, hi) ->
      let vs = Array.make (max nq 1) Value.Suppressed in
      for q = 0 to nq - 1 do
        let a = p.vals.(q) in
        let lo_v = ref Float.infinity and hi_v = ref Float.neg_infinity in
        for i = lo to hi - 1 do
          let x = a.(i) in
          lo_v := Float.min !lo_v x;
          hi_v := Float.max !hi_v x
        done;
        vs.(q) <-
          (if Float.equal !lo_v !hi_v then
             Dataset.get t.ds ~row:p.idx.(lo) ~col:p.qcols.(q)
           else Value.interval !lo_v (!hi_v +. 1.0))
          (* +1: intervals are [lo, hi) and must cover hi itself. *)
      done;
      part_vals.(pid) <- vs;
      for i = lo to hi - 1 do
        part_of.(p.idx.(i)) <- pid
      done)
    ranges;
  let ds' =
    Dataset.init ~attrs:(Dataset.attrs t.ds) ~nrows:t.nrows
      ~f:(fun ~row ~col ->
        let q = qpos.(col) in
        if q >= 0 then part_vals.(part_of.(row)).(q)
        else Dataset.get t.ds ~row ~col)
  in
  (ds', qpos, part_of, part_vals)

let mondrian_anonymise ?jobs ?par_threshold ~k t =
  match validate_for_mondrian ~k t with
  | Error e -> Error e
  | Ok () ->
    let p, ranges = partition_ranges ?jobs ?par_threshold t ~k in
    let ds', _, _, _ = mondrian_materialise t p ranges in
    Ok ds'

(* Anonymise and keep the compiled form. The release plan's per-quasi-
   column class-key dictionaries are seeded from the partition
   structure: every row of a leaf shares one generalised value per
   column, so seeding renders one string per (leaf, column) where the
   lazy builder would probe a cache per row. Interning happens at each
   leaf's first row in row-scan order, so code assignment (dense,
   first-appearance order, leaves with equal renderings share a code)
   is exactly what the lazy builder produces — class semantics,
   including any merging of equal renderings, are unchanged. The
   [ekeys] side stays lazy: class analyses and the release gate never
   touch it. *)
let mondrian_release ?jobs ?par_threshold ~k t =
  match validate_for_mondrian ~k t with
  | Error e -> Error e
  | Ok () ->
    let p, ranges = partition_ranges ?jobs ?par_threshold t ~k in
    let ds', qpos, part_of, part_vals = mondrian_materialise t p ranges in
    let plan = compile ds' in
    let nparts = Array.length part_vals in
    let qcols = Array.of_list plan.quasi in
    let nq = Array.length qcols in
    if nq > 0 && plan.nrows > 0 then begin
      let cdicts = Array.init nq (fun _ -> Interner.create ()) in
      let ckeyarrs = Array.init nq (fun _ -> Array.make plan.nrows 0) in
      let pc = Array.init nq (fun _ -> Array.make nparts (-1)) in
      for r = 0 to plan.nrows - 1 do
        let pid = part_of.(r) in
        if pc.(0).(pid) < 0 then
          for j = 0 to nq - 1 do
            let v = part_vals.(pid).(qpos.(qcols.(j))) in
            pc.(j).(pid) <- Interner.intern cdicts.(j) (Value.to_string v)
          done;
        for j = 0 to nq - 1 do
          ckeyarrs.(j).(r) <- pc.(j).(pid)
        done
      done;
      Array.iteri
        (fun j c ->
          plan.cols.(c).ckeys <-
            Some
              {
                cdict = cdicts.(j);
                ckey = ckeyarrs.(j);
                csize = Interner.size cdicts.(j);
              })
        qcols
    end;
    Ok plan

(* ------------------------------------------------------------------ *)
(* §III-B value risk *)

(* Count of sorted a[s, e) within [closeness] of x, using the exact
   per-pair predicate |x -. y| <= closeness the naive scan evaluates:
   x -. y is monotone in y, so {y : x -. y >= -c} is a prefix and
   {y : x -. y <= c} a suffix of the sorted slice, and two binary
   searches bound the window without changing any float comparison. *)
let close_count a s e ~x ~closeness =
  let first_not_ge =
    let lo = ref s and hi = ref e in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x -. a.(mid) >= -.closeness then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let first_le =
    let lo = ref s and hi = ref e in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x -. a.(mid) <= closeness then hi := mid else lo := mid + 1
    done;
    !lo
  in
  max 0 (first_not_ge - first_le)

let value_risk_assess t ~fields_read (policy : Value_risk.policy) =
  let read_cols = List.map (col_index t) fields_read in
  let sens_col = col_index t policy.sensitive in
  let class_code, nclasses = class_codes t ~by:read_cols in
  let scol = t.cols.(sens_col) in
  let k = ekeys t sens_col in
  let counts = Array.make (max 1 k.esize) 0 in
  let stamp = Array.make (max 1 k.esize) (-1) in
  let scores =
    Array.make t.nrows
      { Value_risk.record = 0; risk = Frac.make 0 1; violation = false }
  in
  let members = buckets_of_codes class_code nclasses in
  List.iteri
    (fun cid cls ->
      let size = List.length cls in
      (* Sorted numeric member values; NaNs sort first and are excluded
         from the searchable window (they are close to nothing). *)
      let nums =
        Array.of_list
          (List.filter_map
             (fun r ->
               if Bytes.get scol.is_num r = '\001' then Some scol.nums.(r)
               else None)
             cls)
      in
      Array.sort Float.compare nums;
      let m = Array.length nums in
      let s = ref 0 in
      while !s < m && Float.is_nan nums.(!s) do
        incr s
      done;
      let nan_start = !s in
      List.iter
        (fun r ->
          let e = k.ekey.(r) in
          if stamp.(e) <> cid then begin
            stamp.(e) <- cid;
            counts.(e) <- 0
          end;
          counts.(e) <- counts.(e) + 1)
        cls;
      List.iter
        (fun r ->
          let frequency =
            if Bytes.get scol.is_num r = '\001' then begin
              let x = scol.nums.(r) in
              if Float.is_nan x then 0
              else close_count nums nan_start m ~x ~closeness:policy.closeness
            end
            else if k.ekey.(r) = k.suppressed_code then 0
            else counts.(k.ekey.(r))
          in
          let risk = Frac.make frequency size in
          scores.(r) <-
            {
              Value_risk.record = r;
              risk;
              violation = Frac.ge risk policy.confidence;
            })
        cls)
    members;
  let scores = Array.to_list scores in
  {
    Value_risk.fields_read;
    policy;
    scores;
    violations = Listx.count (fun (s : Value_risk.score) -> s.violation) scores;
  }

let value_risk_sweep t (policy : Value_risk.policy) =
  let quasi =
    Array.to_list t.attrs
    |> List.filter Attribute.is_quasi
    |> List.map (fun (a : Attribute.t) -> a.name)
  in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let tails = subsets rest in
      List.map (fun t -> x :: t) tails @ tails
  in
  let nonempty = List.filter (( <> ) []) (subsets quasi) in
  let ordered =
    List.sort (fun a b -> Int.compare (List.length a) (List.length b)) nonempty
  in
  List.map (fun fields_read -> value_risk_assess t ~fields_read policy) ordered

(* ------------------------------------------------------------------ *)
(* l-diversity *)

let ldiv_distinct t ~sensitive =
  let col = col_index t sensitive in
  match classes t with
  | [] -> 0
  | cs ->
    let k = ckeys t col in
    let stamp = Array.make (max 1 k.csize) (-1) in
    let _, best =
      List.fold_left
        (fun (cid, acc) cls ->
          let distinct = ref 0 in
          List.iter
            (fun r ->
              let c = k.ckey.(r) in
              if stamp.(c) <> cid then begin
                stamp.(c) <- cid;
                incr distinct
              end)
            cls;
          (cid + 1, min acc !distinct))
        (0, max_int) cs
    in
    best

let is_distinct_diverse ~l t ~sensitive = ldiv_distinct t ~sensitive >= l

let ldiv_entropy t ~sensitive =
  let col = col_index t sensitive in
  match classes t with
  | [] -> 0.0
  | cs ->
    let k = ckeys t col in
    let counts = Array.make (max 1 k.csize) 0 in
    let stamp = Array.make (max 1 k.csize) (-1) in
    let _, min_entropy =
      List.fold_left
        (fun (cid, acc) cls ->
          let n = float_of_int (List.length cls) in
          let order = ref [] in
          List.iter
            (fun r ->
              let c = k.ckey.(r) in
              if stamp.(c) <> cid then begin
                stamp.(c) <- cid;
                counts.(c) <- 0;
                order := c :: !order
              end;
              counts.(c) <- counts.(c) + 1)
            cls;
          (* Same fold, in the same first-appearance order, as the
             naive group-by — identical floats out. *)
          let ent =
            -.List.fold_left
                (fun acc c ->
                  let p = float_of_int counts.(c) /. n in
                  acc +. (p *. log p))
                0.0 (List.rev !order)
          in
          (cid + 1, Float.min acc ent))
        (0, Float.infinity) cs
    in
    exp min_entropy

let is_entropy_diverse ~l t ~sensitive = l <= 1.0 || ldiv_entropy t ~sensitive >= l

(* ------------------------------------------------------------------ *)
(* t-closeness *)

let tclose_numeric_emd t ~sensitive =
  if t.nrows = 0 then None
  else begin
    let col = col_index t sensitive in
    let c = t.cols.(col) in
    if not c.all_numeric then None
    else begin
      let sorted = Array.copy c.nums in
      Array.sort Float.compare sorted;
      let support = Array.make t.nrows 0.0 in
      let m = ref 0 in
      Array.iter
        (fun x ->
          if !m = 0 || Float.compare support.(!m - 1) x <> 0 then begin
            support.(!m) <- x;
            incr m
          end)
        sorted;
      let m = !m in
      if m <= 1 then Some 0.0
      else begin
        (* Rank of each row's value in the sorted support; NaN rows get
           no rank — the naive assoc lookup on a NaN key always misses,
           so they contribute probability 0 on both sides. *)
        let rank_of x =
          if Float.is_nan x then -1
          else begin
            let lo = ref 0 and hi = ref (m - 1) in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if Float.compare support.(mid) x < 0 then lo := mid + 1
              else hi := mid
            done;
            !lo
          end
        in
        let ranks = Array.map rank_of c.nums in
        let global = Array.make m 0 in
        Array.iter (fun rk -> if rk >= 0 then global.(rk) <- global.(rk) + 1) ranks;
        let n_all = float_of_int t.nrows in
        let cls_counts = Array.make m 0 in
        let stamp = Array.make m (-1) in
        let _, worst =
          List.fold_left
            (fun (cid, acc) cls ->
              let n_cls = float_of_int (List.length cls) in
              List.iter
                (fun r ->
                  let rk = ranks.(r) in
                  if rk >= 0 then begin
                    if stamp.(rk) <> cid then begin
                      stamp.(rk) <- cid;
                      cls_counts.(rk) <- 0
                    end;
                    cls_counts.(rk) <- cls_counts.(rk) + 1
                  end)
                cls;
              let cumulative = ref 0.0 and total = ref 0.0 in
              for rk = 0 to m - 1 do
                let p_cls =
                  if stamp.(rk) = cid then float_of_int cls_counts.(rk) /. n_cls
                  else 0.0
                in
                let p_glob = float_of_int global.(rk) /. n_all in
                cumulative := !cumulative +. p_cls -. p_glob;
                total := !total +. Float.abs !cumulative
              done;
              (cid + 1, Float.max acc (!total /. float_of_int (m - 1))))
            (0, 0.0) (classes t)
        in
        Some worst
      end
    end
  end

let tclose_categorical t ~sensitive =
  if t.nrows = 0 then None
  else begin
    let col = col_index t sensitive in
    let k = ckeys t col in
    let global = Array.make (max 1 k.csize) 0 in
    Array.iter (fun c -> global.(c) <- global.(c) + 1) k.ckey;
    let n_all = float_of_int t.nrows in
    let cls_counts = Array.make (max 1 k.csize) 0 in
    let stamp = Array.make (max 1 k.csize) (-1) in
    let _, worst =
      List.fold_left
        (fun (cid, acc) cls ->
          let n_cls = float_of_int (List.length cls) in
          List.iter
            (fun r ->
              let c = k.ckey.(r) in
              if stamp.(c) <> cid then begin
                stamp.(c) <- cid;
                cls_counts.(c) <- 0
              end;
              cls_counts.(c) <- cls_counts.(c) + 1)
            cls;
          (* Support iterates in ckey code order = first-appearance
             order of the global distribution, like the naive path. *)
          let tv = ref 0.0 in
          for c = 0 to k.csize - 1 do
            let p_cls =
              if stamp.(c) = cid then float_of_int cls_counts.(c) /. n_cls
              else 0.0
            in
            tv := !tv +. Float.abs (p_cls -. (float_of_int global.(c) /. n_all))
          done;
          (cid + 1, Float.max acc (0.5 *. !tv)))
        (0, 0.0) (classes t)
    in
    Some worst
  end

let is_t_close ~t:threshold plan ~sensitive =
  if plan.nrows = 0 then true
  else
    match tclose_numeric_emd plan ~sensitive with
    | Some d -> d <= threshold
    | None -> (
      match tclose_categorical plan ~sensitive with
      | Some d -> d <= threshold
      | None -> true)

(* ------------------------------------------------------------------ *)
(* Re-identification attacker models *)

let reident_prosecutor t =
  match min_class_size t with 0 -> 0.0 | m -> 1.0 /. float_of_int m

let reident_marketer t =
  match t.nrows with
  | 0 -> 0.0
  | n -> float_of_int (List.length (classes t)) /. float_of_int n

(* Per-column covering test against one generalised cell, precompiled
   so a population scan is array reads instead of Value.covers calls. *)
type cover_test =
  | All
  | Range of col * float * float
  | Code of int array * int  (* population ekey column, required code *)
  | Codes of int array * int list  (* any of these ekey codes *)

let cover_test population ~pop_col gen =
  let pcol = population.cols.(pop_col) in
  let k = ekeys population pop_col in
  let find_code v =
    match Interner.find k.edict (equal_key v) with Some c -> c | None -> -1
  in
  match gen with
  | Value.Suppressed -> All
  | Value.Interval (lo, hi) -> Range (pcol, lo, hi)
  | Value.Str_set members as v ->
    Codes
      (k.ekey,
       find_code v :: List.map (fun s -> find_code (Value.Str s)) members)
  | v -> Code (k.ekey, find_code v)

let run_test row = function
  | All -> true
  | Range (pcol, lo, hi) ->
    Bytes.get pcol.is_num row = '\001'
    && lo <= pcol.nums.(row)
    && pcol.nums.(row) < hi
  | Code (ekey, c) -> c >= 0 && ekey.(row) = c
  | Codes (ekey, cs) -> List.mem ekey.(row) cs

let reident_journalist ~release ~population =
  let rel_quasi = release.quasi in
  let pop_cols =
    List.map
      (fun c -> col_index population release.attrs.(c).Attribute.name)
      rel_quasi
  in
  let match_count repr =
    let tests =
      List.map2
        (fun c pc ->
          cover_test population ~pop_col:pc
            (Dataset.get release.ds ~row:repr ~col:c))
        rel_quasi pop_cols
    in
    let count = ref 0 in
    for prow = 0 to population.nrows - 1 do
      if List.for_all (run_test prow) tests then incr count
    done;
    !count
  in
  let rec worst acc = function
    | [] -> Some acc
    | cls :: rest -> (
      match cls with
      | [] -> worst acc rest
      | repr :: _ -> (
        match match_count repr with
        | 0 -> None
        | n -> worst (Float.max acc (1.0 /. float_of_int n)) rest))
  in
  worst 0.0 (classes release)

(* ------------------------------------------------------------------ *)
(* Release acceptance gate *)

(* Release_gate.evaluate with every class-based criterion routed
   through the columnar analyses. Same checks, same failure strings,
   same order — the verdict is identical to the naive gate's; only the
   class computations underneath are hashed instead of group-by. *)
let evaluate_gate ~original ~release (criteria : Release_gate.criteria) =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if not (is_k_anonymous ~k:criteria.k release) then
    fail "not %d-anonymous (min class size %d)" criteria.k
      (min_class_size release);
  let sensitive =
    List.filter_map
      (fun (a : Attribute.t) ->
        if Attribute.is_sensitive a then Some a.name else None)
      (Array.to_list release.attrs)
  in
  Option.iter
    (fun l ->
      List.iter
        (fun attr ->
          let actual = ldiv_distinct release ~sensitive:attr in
          if actual < l then
            fail "%s: distinct l-diversity %d below %d" attr actual l)
        sensitive)
    criteria.l;
  Option.iter
    (fun t ->
      List.iter
        (fun attr ->
          if not (is_t_close ~t release ~sensitive:attr) then
            fail "%s: not %.2f-close" attr t)
        sensitive)
    criteria.t;
  (match (criteria.max_violation_ratio, criteria.value_policy) with
  | Some ratio, Some policy ->
    let n = release.nrows in
    if n > 0 then
      List.iter
        (fun (report : Value_risk.report) ->
          let r = float_of_int report.violations /. float_of_int n in
          if r > ratio then
            fail
              "value risk: %d/%d violations (%.0f%%) when {%s} is read \
               exceeds %.0f%%"
              report.violations n (100.0 *. r)
              (String.concat ", " report.fields_read)
              (100.0 *. ratio))
        (value_risk_sweep release policy)
  | Some _, None ->
    fail "criteria list a violation ratio but no value policy"
  | None, _ -> ());
  Option.iter
    (fun max_drift ->
      List.iter
        (fun attr ->
          match Utility.mean_drift ~original ~release:release.ds attr with
          | Some d when d > max_drift ->
            fail "%s: mean drift %.2f exceeds %.2f" attr d max_drift
          | Some _ | None -> ())
        sensitive)
    criteria.max_mean_drift;
  let failures = List.rev !failures in
  { Release_gate.accepted = failures = []; failures }
