open Mdp_prelude

type t = { attrs : Attribute.t list; cells : Value.t array array }

let check_attrs ~who attrs =
  match Listx.find_duplicate (fun (a : Attribute.t) -> a.name) attrs with
  | Some n -> invalid_arg (Printf.sprintf "Dataset.%s: duplicate attribute %s" who n)
  | None -> ()

let init ~attrs ~nrows ~f =
  check_attrs ~who:"init" attrs;
  if nrows < 0 then invalid_arg "Dataset.init: negative row count";
  let width = List.length attrs in
  let cells = Array.make nrows [||] in
  for row = 0 to nrows - 1 do
    let r = Array.make width Value.Suppressed in
    for col = 0 to width - 1 do
      r.(col) <- f ~row ~col
    done;
    cells.(row) <- r
  done;
  { attrs; cells }

let make ~attrs ~rows =
  check_attrs ~who:"make" attrs;
  let width = List.length attrs in
  List.iteri
    (fun i r ->
      if List.length r <> width then
        invalid_arg (Printf.sprintf "Dataset.make: row %d has width %d, expected %d"
                       i (List.length r) width))
    rows;
  { attrs; cells = Array.of_list (List.map Array.of_list rows) }

let attrs t = t.attrs
let nrows t = Array.length t.cells
let ncols t = List.length t.attrs
let get t ~row ~col = t.cells.(row).(col)
let row t i = Array.to_list t.cells.(i)
let rows t = Array.to_list (Array.map Array.to_list t.cells)

let col_index t name =
  match Listx.index_of (fun (a : Attribute.t) -> a.name = name) t.attrs with
  | Some i -> i
  | None -> raise Not_found

let column t name =
  let c = col_index t name in
  Array.to_list (Array.map (fun r -> r.(c)) t.cells)

let indices_where p t =
  List.concat (List.mapi (fun i a -> if p a then [ i ] else []) t.attrs)

let quasi_indices t = indices_where Attribute.is_quasi t
let sensitive_indices t = indices_where Attribute.is_sensitive t

let map_column t name f =
  let c = col_index t name in
  let cells =
    Array.map
      (fun r ->
        let r' = Array.copy r in
        r'.(c) <- f r.(c);
        r')
      t.cells
  in
  { t with cells }

let drop_identifiers t =
  let keep =
    List.concat
      (List.mapi
         (fun i (a : Attribute.t) ->
           if a.kind = Attribute.Identifier then [] else [ i ])
         t.attrs)
  in
  {
    attrs = List.map (List.nth t.attrs) keep;
    cells = Array.map (fun r -> Array.of_list (List.map (Array.get r) keep)) t.cells;
  }

let group_rows t ~key =
  let pairs = List.init (nrows t) (fun i -> (key i, i)) in
  Listx.group_by ~key:fst pairs
  |> List.map (fun (k, l) -> (k, List.map snd l))

let equivalence_classes t ~by =
  let key i =
    String.concat "\x00"
      (List.map (fun c -> Value.to_string t.cells.(i).(c)) by)
  in
  List.map snd (group_rows t ~key)

let pp ppf t =
  let table =
    Texttable.create ~header:(List.map (fun (a : Attribute.t) -> a.name) t.attrs)
  in
  Array.iter
    (fun r -> Texttable.add_row table (Array.to_list (Array.map Value.to_string r)))
    t.cells;
  Texttable.pp ppf table
