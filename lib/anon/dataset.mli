(** In-memory microdata tables.

    A dataset couples an attribute list with rows of {!Value.t} cells.
    Row and column order are significant (row index = record identity,
    so an anonymised dataset lines up with its original). *)

type t

val make : attrs:Attribute.t list -> rows:Value.t list list -> t
(** @raise Invalid_argument on duplicate attribute names or a row whose
    width differs from the attribute count. *)

val init : attrs:Attribute.t list -> nrows:int -> f:(row:int -> col:int -> Value.t) -> t
(** Array-direct construction without intermediate row lists — the path
    large synthetic datasets take. [f] is called in row-major order
    (row 0 col 0, row 0 col 1, ...), so a seeded generator may draw from
    its PRNG inside [f] and stay deterministic.
    @raise Invalid_argument on duplicate attribute names or a negative
    row count. *)

val attrs : t -> Attribute.t list
val nrows : t -> int
val ncols : t -> int
val get : t -> row:int -> col:int -> Value.t
val row : t -> int -> Value.t list
val rows : t -> Value.t list list
val col_index : t -> string -> int
(** @raise Not_found on an unknown attribute name. *)

val column : t -> string -> Value.t list
val quasi_indices : t -> int list
val sensitive_indices : t -> int list
val map_column : t -> string -> (Value.t -> Value.t) -> t
val drop_identifiers : t -> t
(** Remove [Identifier] columns (the mandatory first step of any
    release). *)

val group_rows : t -> key:(int -> string) -> (string * int list) list
(** Group row indices by a key of the row index; groups in first-seen
    order. *)

val equivalence_classes : t -> by:int list -> int list list
(** Partition row indices into classes agreeing (by {!Value.equal}) on all
    columns in [by]. *)

val pp : Format.formatter -> t -> unit
(** Text-table rendering. *)
