(** k-anonymity (Sweeney 2002, paper ref [5]).

    A release is k-anonymous when every combination of quasi-identifier
    values it contains is shared by at least [k] records. Two
    full-domain anonymisers are provided: the greedy Datafly heuristic
    and an exhaustive minimal-lattice search (the baseline the heuristic
    is judged against). *)

type scheme = (string * Hierarchy.t) list
(** One generalisation hierarchy per quasi attribute. *)

type levels = (string * int) list
(** A chosen generalisation level per quasi attribute — one node of the
    full-domain lattice. *)

val apply : Dataset.t -> scheme -> levels -> Dataset.t
(** Generalise each listed column at its level. Attributes of the scheme
    missing from [levels] stay at level 0. *)

val classes : Dataset.t -> int list list
(** Equivalence classes on the quasi columns. *)

val min_class_size : Dataset.t -> int
(** 0 on an empty dataset. *)

val is_k_anonymous : k:int -> Dataset.t -> bool

val violating_rows : k:int -> Dataset.t -> int list
(** Rows in classes smaller than [k] (the rows Datafly suppresses),
    in class order. *)

val distinct_count : Dataset.t -> int -> int
(** Distinct rendered values in a column (Datafly's attribute-choice
    statistic). *)

val datafly :
  k:int -> ?max_suppression:float -> Dataset.t -> scheme ->
  (Dataset.t * levels * int, string) result
(** Greedy full-domain anonymisation: repeatedly raise the level of the
    quasi attribute with the most distinct values until the rows violating
    k-anonymity could be suppressed within [max_suppression] (fraction of
    rows, default 0); then suppress them. Returns the anonymised dataset
    (violating rows removed), the chosen levels, and the number of
    suppressed rows. [Error] when even full generalisation cannot reach
    [k]. *)

val optimal :
  k:int -> Dataset.t -> scheme -> (Dataset.t * levels) option
(** Exhaustive lattice search for a level vector with minimal total level
    (ties broken towards earlier scheme attributes staying lower) that is
    k-anonymous with no suppression. Exponential in the number of quasi
    attributes — intended for small schemes and as a quality baseline. *)
