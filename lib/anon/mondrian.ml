let numeric_cell ds ~row ~col =
  match Value.numeric (Dataset.get ds ~row ~col) with
  | Some x -> Ok x
  | None ->
    Error
      (Printf.sprintf "mondrian: non-numeric quasi value at row %d col %d" row
         col)

let check_numeric ds =
  let quasi = Dataset.quasi_indices ds in
  let rec go rows =
    match rows with
    | [] -> Ok quasi
    | r :: rest ->
      let rec cols = function
        | [] -> go rest
        | c :: cs -> (
          match numeric_cell ds ~row:r ~col:c with
          | Ok _ -> cols cs
          | Error e -> Error e)
      in
      cols quasi
  in
  go (List.init (Dataset.nrows ds) Fun.id)

(* Numeric content of every quasi cell, parsed once: [col -> row -> x].
   Only quasi slots are populated; callers index with quasi columns
   only. Hoisting this out of the recursion means each cell is decoded
   once per anonymisation instead of once per partition step per
   sort/partition pass. *)
let quasi_values ds quasi =
  let vals = Array.make (Dataset.ncols ds) [||] in
  List.iter
    (fun c ->
      vals.(c) <-
        Array.init (Dataset.nrows ds) (fun r ->
            Result.get_ok (numeric_cell ds ~row:r ~col:c)))
    quasi;
  vals

let range vals rows col =
  let arr = vals.(col) in
  List.fold_left
    (fun (lo, hi) r -> (Float.min lo arr.(r), Float.max hi arr.(r)))
    (Float.infinity, Float.neg_infinity)
    rows

(* Split at the median of the chosen attribute; strictly-less goes left so
   ties never produce an empty side. *)
let split vals rows col =
  let arr = vals.(col) in
  let values = Array.of_list (List.map (fun r -> arr.(r)) rows) in
  Array.sort Float.compare values;
  let median = values.(Array.length values / 2) in
  List.partition (fun r -> arr.(r) < median) rows

let partitions_rows ~k vals quasi nrows =
  let rec go rows =
    if List.length rows < 2 * k then [ rows ]
    else
      (* Widest normalised range first (classic Mondrian choice). *)
      let ranked =
        List.sort
          (fun (_, w1) (_, w2) -> Float.compare w2 w1)
          (List.map
             (fun c ->
               let lo, hi = range vals rows c in
               (c, hi -. lo))
             quasi)
      in
      let rec try_cols = function
        | [] -> [ rows ]
        | (c, width) :: rest ->
          if width <= 0.0 then [ rows ]
          else
            let left, right = split vals rows c in
            if List.length left >= k && List.length right >= k then
              go left @ go right
            else try_cols rest
      in
      try_cols ranked
  in
  go (List.init nrows Fun.id)

let partitions ~k ds =
  Mdp_obs.Metrics.span "mondrian/naive_partition" @@ fun () ->
  if Dataset.nrows ds < k then Error "mondrian: fewer rows than k"
  else
    match check_numeric ds with
    | Error e -> Error e
    | Ok quasi ->
      Ok (partitions_rows ~k (quasi_values ds quasi) quasi (Dataset.nrows ds))

let anonymise ~k ds =
  match partitions ~k ds with
  | Error e -> Error e
  | Ok parts ->
    let quasi = Dataset.quasi_indices ds in
    let vals = quasi_values ds quasi in
    let replacement = Hashtbl.create 16 in
    List.iter
      (fun rows ->
        List.iter
          (fun c ->
            let lo, hi = range vals rows c in
            let v =
              if Float.equal lo hi then Dataset.get ds ~row:(List.hd rows) ~col:c
              else Value.interval lo (hi +. 1.0)
              (* +1: intervals are [lo, hi) and must cover hi itself. *)
            in
            List.iter (fun r -> Hashtbl.replace replacement (r, c) v) rows)
          quasi)
      parts;
    let rows =
      List.init (Dataset.nrows ds) (fun r ->
          List.mapi
            (fun c v ->
              match Hashtbl.find_opt replacement (r, c) with
              | Some v' -> v'
              | None -> v)
            (Dataset.row ds r))
    in
    Ok (Dataset.make ~attrs:(Dataset.attrs ds) ~rows)
