(** Observable runtime events of a deployed data service: one data action
    on one subject's personal data. Traces of these are what the paper's
    "analysis of running systems with real users" consumes. *)

open Mdp_dataflow

type t = {
  time : int;  (** Logical timestamp, strictly increasing within a trace. *)
  kind : Mdp_core.Action.kind;
  actor : string;  (** Performing actor (the receiver for [Collect]). *)
  fields : Field.t list;
  store : string option;  (** For [Create]/[Anon]/[Read]/[Delete]. *)
  service : string option;  (** Service context, [None] for ad-hoc access. *)
  counterparty : string option;  (** Receiving actor of a [Disclose]. *)
}

val make :
  time:int ->
  kind:Mdp_core.Action.kind ->
  actor:string ->
  fields:Field.t list ->
  ?store:string ->
  ?service:string ->
  ?counterparty:string ->
  unit ->
  t

val fields_equal : Field.t list -> Field.t list -> bool
(** Set equality. *)

val equal : t -> t -> bool
(** Structural, with {!fields_equal} on the field lists. *)

val kind_to_string : Mdp_core.Action.kind -> string
val kind_of_string : string -> Mdp_core.Action.kind option

val pp : Format.formatter -> t -> unit

val to_line : t -> string
(** One-line serialisation, e.g.
    [17 read Administrator Name,Diagnosis store=EHR service=-]. *)

val of_line : string -> (t, string) result
(** Inverse of [to_line]. *)
