type t = Event.t list

let to_lines trace = String.concat "\n" (List.map Event.to_line trace)

let of_lines ?(strict = true) text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest when String.trim line = "" -> go acc (lineno + 1) rest
    | line :: rest -> (
      match Event.of_line line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok event -> (
        match acc with
        | prev :: _ when strict && event.Event.time <= prev.Event.time ->
          Error
            (Printf.sprintf "line %d: timestamp %d not increasing" lineno
               event.Event.time)
        | _ -> go (event :: acc) (lineno + 1) rest))
  in
  go [] 1 lines

let interleave traces =
  List.concat_map
    (fun (subject, events) -> List.map (fun e -> (subject, e)) events)
    traces
  |> List.stable_sort (fun (_, a) (_, b) ->
         compare a.Event.time b.Event.time)

type stats = {
  events : int;
  span : int;
  by_kind : (Mdp_core.Action.kind * int) list;
  by_actor : (string * int) list;
  ad_hoc : int;
}

let stats trace =
  let count_by key =
    Mdp_prelude.Listx.group_by ~key trace
    |> List.map (fun (k, es) -> (k, List.length es))
  in
  let span =
    match trace with
    | [] | [ _ ] -> 0
    | first :: _ ->
      let last = List.nth trace (List.length trace - 1) in
      last.Event.time - first.Event.time
  in
  {
    events = List.length trace;
    span;
    by_kind = count_by (fun e -> e.Event.kind);
    by_actor = count_by (fun e -> e.Event.actor);
    ad_hoc = Mdp_prelude.Listx.count (fun e -> e.Event.service = None) trace;
  }

let pp_stats ppf s =
  Format.fprintf ppf "%d events over %d ticks (%d ad-hoc); by kind: %s; by actor: %s"
    s.events s.span s.ad_hoc
    (String.concat ", "
       (List.map
          (fun (k, c) ->
            Printf.sprintf "%s %d" (Format.asprintf "%a" Mdp_core.Action.pp_kind k) c)
          s.by_kind))
    (String.concat ", "
       (List.map (fun (a, c) -> Printf.sprintf "%s %d" a c) s.by_actor))
