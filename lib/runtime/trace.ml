type t = Event.t list

let to_lines trace = String.concat "\n" (List.map Event.to_line trace)

let of_lines ?(strict = true) text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest when String.trim line = "" -> go acc (lineno + 1) rest
    | line :: rest -> (
      match Event.of_line line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok event -> (
        match acc with
        | prev :: _ when strict && event.Event.time <= prev.Event.time ->
          Error
            (Printf.sprintf "line %d: timestamp %d not increasing" lineno
               event.Event.time)
        | _ -> go (event :: acc) (lineno + 1) rest))
  in
  go [] 1 lines

let interleave traces =
  List.concat_map
    (fun (subject, events) -> List.map (fun e -> (subject, e)) events)
    traces
  |> List.stable_sort (fun (_, a) (_, b) ->
         compare a.Event.time b.Event.time)

type stats = {
  events : int;
  span : int;
  by_kind : (Mdp_core.Action.kind * int) list;
  by_actor : (string * int) list;
  ad_hoc : int;
}

(* One pass over the trace: the old version walked it five times
   (two group_bys, a count, a length and an O(n) List.nth for the last
   event).  Group orders match [Listx.group_by]: first appearance. *)
let stats trace =
  let kind_tbl = Hashtbl.create 8 in
  let actor_tbl = Hashtbl.create 8 in
  let kind_order = ref [] and actor_order = ref [] in
  let bump : 'k. ('k, int ref) Hashtbl.t -> 'k list ref -> 'k -> unit =
   fun tbl order key ->
    match Hashtbl.find_opt tbl key with
    | Some r -> incr r
    | None ->
      Hashtbl.add tbl key (ref 1);
      order := key :: !order
  in
  let events = ref 0 and ad_hoc = ref 0 in
  let first = ref 0 and last = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      if !events = 0 then first := e.time;
      last := e.time;
      incr events;
      if e.service = None then incr ad_hoc;
      bump kind_tbl kind_order e.kind;
      bump actor_tbl actor_order e.actor)
    trace;
  let collect tbl order =
    List.rev_map (fun k -> (k, !(Hashtbl.find tbl k))) !order
  in
  {
    events = !events;
    span = (if !events <= 1 then 0 else !last - !first);
    by_kind = collect kind_tbl kind_order;
    by_actor = collect actor_tbl actor_order;
    ad_hoc = !ad_hoc;
  }

(* Feed a trace's stats into the metrics subsystem, so runtime event
   streams surface through the same exporters as the analysis engines. *)
let publish_metrics ?(prefix = "trace") trace =
  if Mdp_obs.Metrics.enabled () then begin
    let s = stats trace in
    Mdp_obs.Metrics.add (prefix ^ "/events") s.events;
    Mdp_obs.Metrics.add (prefix ^ "/ad_hoc") s.ad_hoc;
    Mdp_obs.Metrics.observe (prefix ^ "/span_ticks") s.span;
    List.iter
      (fun (k, c) ->
        Mdp_obs.Metrics.add
          (Format.asprintf "%s/kind/%a" prefix Mdp_core.Action.pp_kind k)
          c)
      s.by_kind
  end

let pp_stats ppf s =
  Format.fprintf ppf "%d events over %d ticks (%d ad-hoc); by kind: %s; by actor: %s"
    s.events s.span s.ad_hoc
    (String.concat ", "
       (List.map
          (fun (k, c) ->
            Printf.sprintf "%s %d" (Format.asprintf "%a" Mdp_core.Action.pp_kind k) c)
          s.by_kind))
    (String.concat ", "
       (List.map (fun (a, c) -> Printf.sprintf "%s %d" a c) s.by_actor))
