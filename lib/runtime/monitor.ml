open Mdp_dataflow
module Core = Mdp_core
module Json = Mdp_prelude.Json

type alert =
  | Denied of Event.t * string
  | Risky of Event.t * Core.Action.risk
  | Off_model of Event.t
  | Resynced of Event.t * int

(* A transition the monitor skipped while resynchronising: just enough of
   the label to recognise the event if it turns up late. *)
type pending = {
  p_kind : Core.Action.kind;
  p_actor : string;
  p_store : string option;
  p_fields : Field.t list;
}

type stats = {
  observed : int;
  placed : int;
  duplicates : int;
  late : int;
  resyncs : int;
  skipped : int;
  dead : int;
  dead_dropped : int;
  consecutive_dead : int;
}

let default_dead_letter_cap = 256

type t = {
  universe : Core.Universe.t;
  lts : Core.Plts.t;
  min_level : Core.Level.t;
  resync_depth : int;
  dead_cap : int;
  mutable state : Core.Plts.state_id;
  mutable last_time : int;
  seen : (string, unit) Hashtbl.t;
  mutable pending : pending list;
  dead_q : Event.t Queue.t;  (* oldest first; bounded by [dead_cap] *)
  mutable dead_dropped : int;
  mutable observed : int;
  mutable placed : int;
  mutable duplicates : int;
  mutable late : int;
  mutable resyncs : int;
  mutable skipped : int;
  mutable consecutive_dead : int;
}

let create ?(min_level = Core.Level.Low) ?(resync_depth = 0)
    ?(dead_letter_cap = default_dead_letter_cap) universe lts =
  {
    universe;
    lts;
    min_level;
    resync_depth;
    dead_cap = max 0 dead_letter_cap;
    state = Core.Plts.initial lts;
    last_time = min_int;
    seen = Hashtbl.create 64;
    pending = [];
    dead_q = Queue.create ();
    dead_dropped = 0;
    observed = 0;
    placed = 0;
    duplicates = 0;
    late = 0;
    resyncs = 0;
    skipped = 0;
    consecutive_dead = 0;
  }

let current_state t = t.state
let dead_letters t = List.of_seq (Queue.to_seq t.dead_q)

let stats t =
  {
    observed = t.observed;
    placed = t.placed;
    duplicates = t.duplicates;
    late = t.late;
    resyncs = t.resyncs;
    skipped = t.skipped;
    dead = Queue.length t.dead_q;
    dead_dropped = t.dead_dropped;
    consecutive_dead = t.consecutive_dead;
  }

let matches (event : Event.t) (label : Core.Action.t) =
  label.Core.Action.kind = event.Event.kind
  && label.Core.Action.actor = event.Event.actor
  && label.Core.Action.store = event.Event.store
  && Event.fields_equal label.Core.Action.fields event.Event.fields

(* An in-service event should consume that service's flow transition and
   an ad-hoc access a [Potential] one — otherwise a snoop could swallow a
   pending flow transition and make the real flow look off-model. *)
let provenance_consistent (event : Event.t) (label : Core.Action.t) =
  match (event.Event.service, label.Core.Action.provenance) with
  | Some svc, Core.Action.From_flow { service; _ } -> svc = service
  | None, (Core.Action.Potential | Core.Action.Inferred) -> true
  | Some _, (Core.Action.Potential | Core.Action.Inferred)
  | None, Core.Action.From_flow _ ->
    false

let best_match t state event =
  let candidates = Core.Plts.successors t.lts state in
  let matching =
    List.filter (fun (label, _) -> matches event label) candidates
  in
  match
    List.find_opt (fun (label, _) -> provenance_consistent event label) matching
  with
  | Some _ as exact -> exact
  | None -> ( match matching with m :: _ -> Some m | [] -> None)

let risk_alert t (label : Core.Action.t) =
  match label.Core.Action.risk with
  | Some (Core.Action.Disclosure_risk { level; _ } as risk)
    when Core.Level.compare level t.min_level >= 0 ->
    Some risk
  | Some (Core.Action.Value_risk { violations; _ } as risk) when violations > 0
    ->
    Some risk
  | Some (Core.Action.Disclosure_risk _ | Core.Action.Value_risk _) | None ->
    None

(* ------------------------------------------------------------------ *)
(* Resilience *)

let pending_of_label (label : Core.Action.t) =
  {
    p_kind = label.Core.Action.kind;
    p_actor = label.Core.Action.actor;
    p_store = label.Core.Action.store;
    p_fields = label.Core.Action.fields;
  }

let pending_matches (event : Event.t) p =
  p.p_kind = event.Event.kind
  && p.p_actor = event.Event.actor
  && p.p_store = event.Event.store
  && Event.fields_equal p.p_fields event.Event.fields

(* Consume the first pending entry the event accounts for, if any. *)
let absorb_pending t event =
  let rec go acc = function
    | [] -> false
    | p :: rest when pending_matches event p ->
      t.pending <- List.rev_append acc rest;
      true
    | p :: rest -> go (p :: acc) rest
  in
  go [] t.pending

(* Breadth-first forward search, bounded by [resync_depth]: the nearest
   state (fewest skipped transitions) with an outgoing transition matching
   the event. Forward-only on purpose — an unmatched on-model event means
   the system moved ahead of us (dropped events), never backwards. *)
let resync t event =
  let visited = Hashtbl.create 32 in
  let q = Queue.create () in
  Queue.add (t.state, []) q;
  Hashtbl.add visited t.state ();
  let result = ref None in
  (try
     while not (Queue.is_empty q) do
       let state, rev_path = Queue.pop q in
       let depth = List.length rev_path in
       (match if depth = 0 then None else best_match t state event with
       | Some (label, next) ->
         result := Some (List.rev rev_path, label, next, depth);
         raise Exit
       | None -> ());
       if depth < t.resync_depth then
         List.iter
           (fun (label, next) ->
             if not (Hashtbl.mem visited next) then begin
               Hashtbl.add visited next ();
               Queue.add (next, label :: rev_path) q
             end)
           (Core.Plts.successors t.lts state)
     done
   with Exit -> ());
  !result

let advance t (event : Event.t) next =
  t.state <- next;
  t.placed <- t.placed + 1;
  t.consecutive_dead <- 0;
  if event.Event.time > t.last_time then t.last_time <- event.Event.time

(* Bounded drop-oldest: a monitor that has lost track in a long-lived
   run keeps the newest evidence (the events an operator would replay)
   and a count of what it shed, instead of growing without limit. *)
let dead_letter t event =
  if t.dead_cap > 0 then begin
    if Queue.length t.dead_q >= t.dead_cap then begin
      ignore (Queue.pop t.dead_q : Event.t);
      t.dead_dropped <- t.dead_dropped + 1;
      Mdp_obs.Metrics.incr "monitor/dead_letters_dropped"
    end;
    Queue.add event t.dead_q
  end
  else begin
    t.dead_dropped <- t.dead_dropped + 1;
    Mdp_obs.Metrics.incr "monitor/dead_letters_dropped"
  end;
  t.consecutive_dead <- t.consecutive_dead + 1;
  [ Off_model event ]

let place t orig event =
  match best_match t t.state event with
  | Some (label, next) ->
    advance t event next;
    (match risk_alert t label with
    | Some risk -> [ Risky (orig, risk) ]
    | None -> [])
  | None when t.resync_depth > 0 -> (
    match resync t event with
    | Some (skipped_labels, label, next, depth) ->
      t.pending <- t.pending @ List.map pending_of_label skipped_labels;
      t.resyncs <- t.resyncs + 1;
      t.skipped <- t.skipped + depth;
      advance t event next;
      Resynced (orig, depth)
      :: (match risk_alert t label with
         | Some risk -> [ Risky (orig, risk) ]
         | None -> [])
    | None -> dead_letter t orig)
  | None -> dead_letter t orig

(* Alerts are tallied into the metrics subsystem per constructor, so a
   long-running monitor surfaces its alert mix through the same
   exporters as the offline engines. *)
let record_alerts alerts =
  if Mdp_obs.Metrics.enabled () then
    List.iter
      (fun a ->
        Mdp_obs.Metrics.incr
          (match a with
          | Denied _ -> "monitor/alerts/denied"
          | Risky _ -> "monitor/alerts/risky"
          | Off_model _ -> "monitor/alerts/off_model"
          | Resynced _ -> "monitor/alerts/resynced"))
      alerts

let observe t event =
  Mdp_obs.Metrics.incr "monitor/events";
  t.observed <- t.observed + 1;
  let line = Event.to_line event in
  let alerts =
    if Hashtbl.mem t.seen line then begin
      t.duplicates <- t.duplicates + 1;
      []
    end
    else begin
      Hashtbl.add t.seen line ();
      match Enforce.decide t.universe event with
      | Enforce.Denied reason ->
        (* The action was blocked, so the state must not advance; but an
           attempt the model never predicted is still the strongest
           signal, so report both facets. *)
        let modelled =
          List.exists
            (fun (label, _) -> matches event label)
            (Core.Plts.successors t.lts t.state)
        in
        Denied (event, reason) :: (if modelled then [] else [ Off_model event ])
      | Enforce.Allowed narrowed ->
        (* A stale timestamp accounted for by a transition we skipped while
           resynchronising is a late arrival, not a new action: absorb it.
           Matching uses the narrowed event — pending entries carry the
           LTS label's (already narrowed) field set. *)
        if event.Event.time <= t.last_time && absorb_pending t narrowed then begin
          t.late <- t.late + 1;
          t.consecutive_dead <- 0;
          []
        end
        else place t event narrowed
    end
  in
  record_alerts alerts;
  alerts

let run_trace t events = List.concat_map (observe t) events

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

let pending_to_json p =
  Json.Obj
    [
      ("kind", Json.Str (Event.kind_to_string p.p_kind));
      ("actor", Json.Str p.p_actor);
      ( "store",
        match p.p_store with None -> Json.Null | Some s -> Json.Str s );
      ("fields", Json.List (List.map (fun f -> Json.Str (Field.name f)) p.p_fields));
    ]

let to_json t =
  let event_lines events =
    Json.List (List.map (fun e -> Json.Str (Event.to_line e)) events)
  in
  let seen_lines =
    Hashtbl.fold (fun line () acc -> Json.Str line :: acc) t.seen []
  in
  Json.Obj
    [
      ("version", Json.int 1);
      ("state", Json.int t.state);
      ("last_time", Json.int t.last_time);
      ("min_level", Json.Str (Core.Level.to_string t.min_level));
      ("resync_depth", Json.int t.resync_depth);
      ("dead_letter_cap", Json.int t.dead_cap);
      ("dead_dropped", Json.int t.dead_dropped);
      ("seen", Json.List seen_lines);
      ("pending", Json.List (List.map pending_to_json t.pending));
      ("dead", event_lines (dead_letters t));
      ("observed", Json.int t.observed);
      ("placed", Json.int t.placed);
      ("duplicates", Json.int t.duplicates);
      ("late", Json.int t.late);
      ("resyncs", Json.int t.resyncs);
      ("skipped", Json.int t.skipped);
      ("consecutive_dead", Json.int t.consecutive_dead);
    ]

let ( let* ) = Result.bind

let field_of name json ~f =
  match Json.member name json with
  | Some v -> f v
  | None -> Error (Printf.sprintf "checkpoint: missing field %S" name)

let as_int name = function
  | Json.Num n -> Ok (int_of_float n)
  | _ -> Error (Printf.sprintf "checkpoint: %s is not a number" name)

let as_str name = function
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "checkpoint: %s is not a string" name)

let as_list name = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "checkpoint: %s is not a list" name)

let int_field name json = field_of name json ~f:(as_int name)
let str_field name json = field_of name json ~f:(as_str name)
let list_field name json = field_of name json ~f:(as_list name)

let collect f items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* v = f item in
      Ok (v :: acc))
    (Ok []) items
  |> Result.map List.rev

let pending_of_json json =
  let* kind_s = str_field "kind" json in
  let* actor = str_field "actor" json in
  let* fields = list_field "fields" json in
  let* p_fields = collect (as_str "field") fields in
  let* p_kind =
    match Event.kind_of_string kind_s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "checkpoint: bad action kind %S" kind_s)
  in
  let p_store =
    match Json.member "store" json with
    | Some (Json.Str s) -> Some s
    | Some _ | None -> None
  in
  Ok
    {
      p_kind;
      p_actor = actor;
      p_store;
      p_fields = List.map Field.of_name p_fields;
    }

let of_json universe lts json =
  let* state = int_field "state" json in
  let* last_time = int_field "last_time" json in
  let* level_s = str_field "min_level" json in
  let* resync_depth = int_field "resync_depth" json in
  (* Absent in pre-cap checkpoints: default to the unbounded-era
     behaviour's nearest equivalent (the standard cap, nothing shed). *)
  let dead_cap =
    match Json.member "dead_letter_cap" json with
    | Some (Json.Num n) -> int_of_float n
    | Some _ | None -> default_dead_letter_cap
  in
  let dead_dropped =
    match Json.member "dead_dropped" json with
    | Some (Json.Num n) -> int_of_float n
    | Some _ | None -> 0
  in
  let* seen_l = list_field "seen" json in
  let* seen_lines = collect (as_str "seen entry") seen_l in
  let* pending_l = list_field "pending" json in
  let* pending = collect pending_of_json pending_l in
  let* dead_l = list_field "dead" json in
  let* dead_lines = collect (as_str "dead letter") dead_l in
  let* dead = collect Event.of_line dead_lines in
  let* observed = int_field "observed" json in
  let* placed = int_field "placed" json in
  let* duplicates = int_field "duplicates" json in
  let* late = int_field "late" json in
  let* resyncs = int_field "resyncs" json in
  let* skipped = int_field "skipped" json in
  let* consecutive_dead = int_field "consecutive_dead" json in
  let* min_level =
    match Core.Level.of_string level_s with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "checkpoint: bad level %S" level_s)
  in
  if state < 0 || state >= Core.Plts.num_states lts then
    Error
      (Printf.sprintf "checkpoint: state %d outside the LTS (%d states)" state
         (Core.Plts.num_states lts))
  else begin
    let t =
      create ~min_level ~resync_depth ~dead_letter_cap:dead_cap universe lts
    in
    t.state <- state;
    t.last_time <- last_time;
    List.iter (fun line -> Hashtbl.replace t.seen line ()) seen_lines;
    t.pending <- pending;
    List.iter (fun e -> Queue.add e t.dead_q) dead;
    t.dead_dropped <- dead_dropped;
    t.observed <- observed;
    t.placed <- placed;
    t.duplicates <- duplicates;
    t.late <- late;
    t.resyncs <- resyncs;
    t.skipped <- skipped;
    t.consecutive_dead <- consecutive_dead;
    Ok t
  end

let pp_alert ppf = function
  | Denied (e, reason) -> Format.fprintf ppf "DENIED %a: %s" Event.pp e reason
  | Risky (e, risk) ->
    Format.fprintf ppf "RISK %a: %a" Event.pp e Core.Action.pp_risk risk
  | Off_model e -> Format.fprintf ppf "OFF-MODEL %a" Event.pp e
  | Resynced (e, skipped) ->
    Format.fprintf ppf "RESYNCED (+%d skipped) %a" skipped Event.pp e
