(** Trace recording: serialise event streams for offline analysis
    (the paper's "analysis of running systems with real users" consumes
    recorded behaviour) and summarise them. *)

type t = Event.t list

val to_lines : t -> string
(** One {!Event.to_line} per line; empty string for the empty trace. *)

val of_lines : ?strict:bool -> string -> (t, string) result
(** Skips blank lines; fails on the first malformed one (with its line
    number). With [strict] (the default) timestamps must strictly
    increase; pass [~strict:false] to re-read a trace recorded from a
    faulty stream, where duplicates and reorderings are expected. *)

val interleave : (string * t) list -> (string * Event.t) list
(** Merge per-subject traces into one stream ordered by timestamp
    (stable: ties keep the input's subject order) — the shape a deployed
    multi-subject service actually emits, ready for
    {!Fleet.observe}. *)

type stats = {
  events : int;
  span : int;  (** Last timestamp minus first; 0 for traces under 2 events. *)
  by_kind : (Mdp_core.Action.kind * int) list;
  by_actor : (string * int) list;  (** First-appearance order. *)
  ad_hoc : int;  (** Events outside any service context. *)
}

val stats : t -> stats
(** Single pass over the trace. *)

val publish_metrics : ?prefix:string -> t -> unit
(** Record the trace's stats as metrics counters/histograms under
    [prefix] (default ["trace"]): [<prefix>/events], [<prefix>/ad_hoc],
    [<prefix>/span_ticks] and one [<prefix>/kind/<kind>] counter per
    event kind seen.  No-op while metrics are disabled. *)

val pp_stats : Format.formatter -> stats -> unit
