(** Discrete-event simulation of one data subject's passage through the
    deployed services: the substitute for the paper's real running system
    (DESIGN.md §5). Reproducible from a seed.

    The simulator walks each requested service's flows in order,
    interleaving concurrent services at random, and emits one event per
    flow. After every step, each configured snooper may — with the given
    probability — opportunistically read whatever permitted fields
    currently sit in its target store that it has not seen yet (the
    §III-A "accidental access" scenario made concrete). The emitted trace
    is raw requests: enforcement happens downstream in {!Enforce} /
    {!Monitor}. *)

type snooper = { actor : string; store : string; probability : float }

type config = {
  seed : int;
  services : string list;  (** Executed once each, randomly interleaved. *)
  snoopers : snooper list;
}

val run : Mdp_core.Universe.t -> config -> (Event.t list, string) result
(** [Error] names the service ids absent from the universe's diagram —
    one bad config entry should degrade, not abort, a fleet run. *)

val run_exn : Mdp_core.Universe.t -> config -> Event.t list
(** Convenience for callers with statically-known service ids.
    @raise Invalid_argument on an unknown service id. *)
