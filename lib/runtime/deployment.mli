(** Distributed deployment of the modelled service.

    The paper's subject is *distributed* data services: actors and
    datastores live on different nodes, and a data flow between two nodes
    is a network transfer of personal data. A deployment assigns every
    actor and datastore to a named node in a region; the analysis lists
    the transfers the model can perform and flags those that cross a
    region boundary carrying sensitive data — the
    cross-jurisdiction-transfer concern of data-protection regimes. *)

type node = { id : string; region : string }

type t

val create :
  nodes:node list ->
  actors:(string * string) list ->
  stores:(string * string) list ->
  Mdp_core.Universe.t ->
  (t, string list) result
(** [actors]/[stores] map ids to node ids. Every actor and datastore of
    the universe's diagram must be placed, on a declared node; the
    subject ("User") is implicitly external to all regions. *)

val node_of_actor : t -> string -> node
val node_of_store : t -> string -> node

val actor_placements : t -> (string * node) list
(** Every actor with its node, in diagram order. *)

val store_placements : t -> (string * node) list

val node_ids : t -> string list
(** Distinct ids of the nodes that actually host something, in
    first-placement order. *)

type transfer = {
  action : Mdp_core.Action.t;
  from_node : node option;  (** [None]: the data subject's device. *)
  to_node : node;
  cross_region : bool;
}

val transfers : t -> Mdp_core.Plts.t -> transfer list
(** One entry per distinct LTS transition label that moves data between
    nodes (collect: subject->actor; disclose: actor->actor; create/anon:
    actor->store; read: store->actor). Same-node actions are omitted;
    collects always appear (device -> service). *)

val risky_transfers :
  t -> Mdp_core.Plts.t -> Mdp_core.User_profile.t -> transfer list
(** Cross-region transfers whose fields include one the profile rates
    sensitive (σ > 0) — the transfers a data-protection review should
    look at first. *)

val pp_transfer : Format.formatter -> transfer -> unit
