(** Fault injection for the runtime layer.

    A deployed distributed data service does not deliver the clean,
    lossless, strictly-ordered event stream {!Sim} produces: observation
    points drop events, network retries duplicate them, concurrent nodes
    reorder and delay them, and whole nodes crash or lose connectivity to
    other regions. This module perturbs a trace (and the availability
    state of a {!Deployment}) in all of those ways, reproducibly from a
    PRNG seed, so the resilience of the monitoring pipeline
    (Sim -> Faults -> Enforce -> {!Monitor}/{!Fleet}) can be exercised
    and measured. *)

(** {1 Trace perturbation} *)

type profile = {
  drop : float;  (** Per-event probability the event is lost. *)
  duplicate : float;  (** Per-event probability a copy arrives later. *)
  reorder : float;  (** Per-event probability of swapping with its successor. *)
  delay : float;  (** Per-event probability of late delivery. *)
  max_delay : int;  (** Upper bound on late delivery, in stream positions. *)
}

val no_faults : profile

val uniform : ?max_delay:int -> float -> profile
(** All four probabilities set to the given rate; [max_delay] defaults
    to 3. *)

type 'a generic_fault =
  | Dropped of 'a
  | Duplicated of 'a
  | Reordered of 'a  (** Swapped with the next surviving element. *)
  | Delayed of 'a * int  (** Displaced this many positions later. *)

type fault = Event.t generic_fault

type 'a generic_injection = {
  delivered : 'a list;  (** The perturbed stream, in arrival order. *)
  faults : 'a generic_fault list;
      (** Ground truth of what was injected, in decision order — for
          statistics and test oracles. *)
}

type injection = Event.t generic_injection

val inject : seed:int -> profile -> Event.t list -> injection
(** Deterministic for a given [seed], [profile] and input trace.
    Timestamps are left untouched: a delayed or reordered event arrives
    out of order carrying its original (now stale) timestamp, exactly as
    a real collector would see it. *)

val inject_any : seed:int -> profile -> 'a list -> 'a generic_injection
(** {!inject} for arbitrary element types — the serve soak harness
    perturbs raw request lines with the same machinery (and the same
    seed discipline) the monitoring pipeline applies to event
    traces. *)

val pp_fault : Format.formatter -> fault -> unit

type fault_stats = {
  dropped : int;
  duplicated : int;
  reordered : int;
  delayed : int;
}

val stats : fault list -> fault_stats
val pp_stats : Format.formatter -> fault_stats -> unit

(** {1 Deployment chaos}

    Mutable availability state layered over a {!Deployment}: nodes crash
    and recover, region pairs partition and heal, and logical time
    advances tick by tick. Crashes and partitions installed with a
    duration expire on their own as the clock advances — that is what the
    {!with_backoff} retry loop waits for. *)

type chaos

val chaos : ?seed:int -> Deployment.t -> chaos
(** The seed drives {!auto_step} only. *)

val clock : chaos -> int
val tick : chaos -> unit
(** Advance the clock one tick; crashes and partitions whose duration
    has expired are lifted. *)

val crash_node : ?for_ticks:int -> chaos -> string -> unit
(** Mark a node down. Without [for_ticks] the node stays down until
    {!recover_node}. *)

val recover_node : chaos -> string -> unit
val node_up : chaos -> string -> bool
(** Unknown node ids are reported up: chaos only tracks declared
    outages. *)

val partition : ?for_ticks:int -> chaos -> string -> string -> unit
(** Sever the link between two regions (symmetric). *)

val heal : chaos -> string -> string -> unit
val regions_connected : chaos -> string -> string -> bool

val store_available : chaos -> string -> bool
(** The node hosting the datastore is up. Unknown stores are available. *)

val actor_available : chaos -> string -> bool

val transfer_possible : chaos -> Deployment.transfer -> bool
(** Both endpoints up and, for a cross-region transfer, the two regions
    connected. *)

val sync_stores : chaos -> Store_sim.t -> unit
(** Mirror node state into a {!Store_sim}: every placed datastore is
    marked available iff its hosting node is up. Call after
    {!crash_node}/{!recover_node}/{!tick} so simulated writes fail
    retriably while the node is down. *)

val auto_step : chaos -> crash_probability:float -> mean_downtime:int -> unit
(** One step of background chaos: ticks the clock, then with the given
    probability crashes one random healthy node for a downtime drawn
    around [mean_downtime]. *)

(** {1 Bounded exponential backoff} *)

type backoff = {
  base_wait : int;  (** Ticks waited after the first failure. *)
  max_wait : int;  (** Cap on a single wait. *)
  max_attempts : int;
  jitter : bool;
      (** Full jitter: each wait is drawn uniformly from [[1, ceiling]]
          (ceiling = the capped exponential wait) out of the chaos
          PRNG, so synchronized retries don't stampede a recovering
          store — deterministic for a fixed chaos seed. Off, waits are
          exactly the capped exponential schedule and the PRNG is not
          consumed. *)
}

val default_backoff : backoff
(** base 1, cap 8, 6 attempts, no jitter. *)

val jittered_backoff : backoff
(** {!default_backoff} with full jitter on. *)

type retry_outcome = {
  attempts : int;
  waited : int;  (** Total ticks spent waiting between attempts. *)
}

val with_backoff :
  ?policy:backoff ->
  chaos ->
  (unit -> ('a, string) result) ->
  ('a, string) result * retry_outcome
(** Run the operation; on a retriable error (see {!Store_sim.is_retriable})
    wait [base_wait * 2^(attempt-1)] ticks — advancing the chaos clock, so
    timed outages heal — and try again, up to [max_attempts]. A
    non-retriable error is returned immediately. *)
