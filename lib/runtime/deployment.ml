open Mdp_dataflow
module Core = Mdp_core

type node = { id : string; region : string }

type t = {
  universe : Core.Universe.t;
  actor_nodes : (string * node) list;
  store_nodes : (string * node) list;
}

let create ~nodes ~actors ~stores universe =
  let ctx = Mdp_prelude.Validate.create () in
  (match Mdp_prelude.Listx.find_duplicate (fun n -> n.id) nodes with
  | Some id -> Mdp_prelude.Validate.errorf ctx "duplicate node %s" id
  | None -> ());
  let find_node id = List.find_opt (fun n -> n.id = id) nodes in
  let diagram = Core.Universe.diagram universe in
  let place what declared placed =
    List.filter_map
      (fun id ->
        match List.assoc_opt id placed with
        | None ->
          Mdp_prelude.Validate.errorf ctx "%s %s is not placed on any node"
            what id;
          None
        | Some node_id -> (
          match find_node node_id with
          | None ->
            Mdp_prelude.Validate.errorf ctx "%s %s placed on unknown node %s"
              what id node_id;
            None
          | Some node -> Some (id, node)))
      declared
  in
  let actor_nodes =
    place "actor"
      (List.map (fun (a : Actor.t) -> a.id) diagram.Diagram.actors)
      actors
  in
  let store_nodes =
    place "datastore"
      (List.map (fun (d : Datastore.t) -> d.id) diagram.Diagram.datastores)
      stores
  in
  Mdp_prelude.Validate.result ctx { universe; actor_nodes; store_nodes }

let node_of_actor t id = List.assoc id t.actor_nodes
let node_of_store t id = List.assoc id t.store_nodes
let actor_placements t = t.actor_nodes
let store_placements t = t.store_nodes

let node_ids t =
  Mdp_prelude.Listx.dedup
    (List.map (fun (_, n) -> n.id) (t.actor_nodes @ t.store_nodes))

type transfer = {
  action : Core.Action.t;
  from_node : node option;
  to_node : node;
  cross_region : bool;
}

let endpoints t (label : Core.Action.t) =
  (* (from, to) nodes of the data movement this action denotes. *)
  match label.Core.Action.kind with
  | Core.Action.Collect -> Some (None, node_of_actor t label.actor)
  | Core.Action.Disclose -> (
    (* actor field is the discloser; the receiver is not in the label, so
       disclose transfers are derived from flow provenance when possible
       and otherwise skipped. *)
    match label.Core.Action.provenance with
    | Core.Action.From_flow { service; order } -> (
      let diagram = Core.Universe.diagram t.universe in
      match Diagram.find_service diagram service with
      | None -> None
      | Some svc -> (
        match Service.flow_with_order svc order with
        | Some { Flow.dst = Flow.Actor receiver; _ } ->
          Some
            ( Some (node_of_actor t label.actor),
              node_of_actor t receiver )
        | Some _ | None -> None))
    | Core.Action.Potential | Core.Action.Inferred -> None)
  | Core.Action.Create | Core.Action.Anon ->
    Option.map
      (fun store -> (Some (node_of_actor t label.actor), node_of_store t store))
      label.Core.Action.store
  | Core.Action.Read | Core.Action.Delete ->
    Option.map
      (fun store -> (Some (node_of_store t store), node_of_actor t label.actor))
      label.Core.Action.store

let transfers t lts =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  Core.Plts.iter_transitions lts (fun tr ->
      let label = tr.Core.Plts.label in
      let key = Format.asprintf "%a" Core.Action.pp label in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        match endpoints t label with
        | None -> ()
        | Some (from_node, to_node) ->
          let moves =
            match from_node with
            | None -> true (* device -> service is always a transfer *)
            | Some f -> f.id <> to_node.id
          in
          if moves then
            acc :=
              {
                action = label;
                from_node;
                to_node;
                cross_region =
                  (match from_node with
                  | None -> false
                  | Some f -> f.region <> to_node.region);
              }
              :: !acc
      end);
  List.rev !acc

let risky_transfers t lts profile =
  List.filter
    (fun tr ->
      tr.cross_region
      && List.exists
           (fun f -> Core.User_profile.sensitivity profile f > 0.0)
           tr.action.Core.Action.fields
      && (* transfers within the subject's agreed services are consented;
            the concern is everything else *)
      match tr.action.Core.Action.provenance with
      | Core.Action.From_flow { service; _ } ->
        not (Core.User_profile.agrees_to profile service)
      | Core.Action.Potential | Core.Action.Inferred -> true)
    (transfers t lts)


let pp_transfer ppf tr =
  Format.fprintf ppf "%s%s/%s: %a"
    (match tr.from_node with
    | None -> "subject-device -> "
    | Some f -> Printf.sprintf "%s/%s -> " f.id f.region)
    tr.to_node.id tr.to_node.region Core.Action.pp tr.action;
  if tr.cross_region then Format.fprintf ppf "  [CROSS-REGION]"
