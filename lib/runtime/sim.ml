open Mdp_dataflow
module Core = Mdp_core
module Prng = Mdp_prelude.Prng

type snooper = { actor : string; store : string; probability : float }

type config = { seed : int; services : string list; snoopers : snooper list }

type sim_state = {
  rng : Prng.t;
  mutable clock : int;
  store_contents : (string, Field.t list ref) Hashtbl.t;
  actor_has : (string, Field.t list ref) Hashtbl.t;
  mutable rev_events : Event.t list;
}

let contents tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add tbl key r;
    r

let learn set fields =
  set := Mdp_prelude.Listx.dedup (!set @ fields)

let tick st =
  st.clock <- st.clock + 1;
  st.clock

let emit st event = st.rev_events <- event :: st.rev_events

let flow_event u st (svc : Service.t) (flow : Flow.t) =
  ignore u;
  let time = tick st in
  let event =
    match (flow.src, flow.dst) with
    | Flow.User, Flow.Actor a ->
      learn (contents st.actor_has a) flow.fields;
      Event.make ~time ~kind:Core.Action.Collect ~actor:a ~fields:flow.fields
        ~service:svc.id ()
    | Flow.Actor a, Flow.Actor b ->
      learn (contents st.actor_has b) flow.fields;
      Event.make ~time ~kind:Core.Action.Disclose ~actor:a ~fields:flow.fields
        ~service:svc.id ~counterparty:b ()
    | Flow.Actor a, Flow.Store s ->
      let diagram_store =
        Option.get (Diagram.find_store (Core.Universe.diagram u) s)
      in
      let kind, stored =
        match diagram_store.Datastore.kind with
        | Datastore.Plain -> (Core.Action.Create, flow.fields)
        | Datastore.Anonymised ->
          (Core.Action.Anon, List.map Field.anon_of flow.fields)
      in
      learn (contents st.actor_has a) flow.fields;
      learn (contents st.store_contents s) stored;
      Event.make ~time ~kind ~actor:a ~fields:flow.fields ~store:s
        ~service:svc.id ()
    | Flow.Store s, Flow.Actor a ->
      (* The actor learns only what the store actually delivered. *)
      let present = !(contents st.store_contents s) in
      learn (contents st.actor_has a)
        (List.filter (fun f -> List.exists (Field.equal f) present) flow.fields);
      Event.make ~time ~kind:Core.Action.Read ~actor:a ~fields:flow.fields
        ~store:s ~service:svc.id ()
    | (Flow.User | Flow.Actor _ | Flow.Store _), _ ->
      (* Validated diagrams admit no other endpoint pattern. *)
      assert false
  in
  emit st event

let snoop_step u st (snooper : snooper) =
  if Prng.float st.rng 1.0 < snooper.probability then begin
    let store_i = Core.Universe.store_index u snooper.store in
    let actor_i = Core.Universe.actor_index u snooper.actor in
    let present = !(contents st.store_contents snooper.store) in
    let seen = !(contents st.actor_has snooper.actor) in
    let fresh =
      List.filter
        (fun f ->
          List.mem (Core.Universe.field_index u f)
            (Core.Universe.readable_by u ~actor:actor_i ~store:store_i)
          && not (List.exists (Field.equal f) seen))
        present
    in
    if fresh <> [] then begin
      learn (contents st.actor_has snooper.actor) fresh;
      emit st
        (Event.make ~time:(tick st) ~kind:Core.Action.Read
           ~actor:snooper.actor ~fields:fresh ~store:snooper.store ())
    end
  end

let run u config =
  Mdp_obs.Metrics.span "sim/run" @@ fun () ->
  let diagram = Core.Universe.diagram u in
  let st =
    {
      rng = Prng.create ~seed:config.seed;
      clock = 0;
      store_contents = Hashtbl.create 8;
      actor_has = Hashtbl.create 8;
      rev_events = [];
    }
  in
  (* One bad entry in a fleet-wide run config must not abort the whole
     run: unknown service ids are reported, not raised. *)
  let unknown =
    List.filter
      (fun id -> Diagram.find_service diagram id = None)
      config.services
  in
  if unknown <> [] then
    Error
      (Printf.sprintf "unknown service%s %s"
         (if List.length unknown > 1 then "s" else "")
         (String.concat ", " unknown))
  else begin
  (* Pending flow queues, one per requested service, consumed in order;
     the next service to step is drawn at random among the non-empty. *)
  let queues =
    List.map
      (fun id ->
        match Diagram.find_service diagram id with
        | Some svc -> (svc, ref svc.Service.flows)
        | None -> assert false)
      config.services
  in
  (* A queue is ready when its head flow's data is available: store-source
     flows need the store populated, actor-source disclosures need the
     actor to hold the fields. If nothing is ready the simulation steps an
     unready queue anyway — a real system would attempt and fail, and the
     monitor should see that attempt. *)
  let head_ready (_, q) =
    match !q with
    | [] -> false
    | (flow : Flow.t) :: _ -> (
      match flow.src with
      | Flow.User -> true
      | Flow.Actor a -> (
        let holds_all =
          let held = !(contents st.actor_has a) in
          List.for_all (fun f -> List.exists (Field.equal f) held) flow.fields
        in
        (* Mirror the generator: creating a plain record is authorship and
           needs no prior possession; anonymising and disclosing transform
           data the actor must already hold. *)
        match flow.dst with
        | Flow.Store s ->
          (match Diagram.store_kind diagram s with
          | Datastore.Plain -> true
          | Datastore.Anonymised -> holds_all)
        | Flow.User | Flow.Actor _ -> holds_all)
      | Flow.Store s ->
        let present = !(contents st.store_contents s) in
        List.for_all (fun f -> List.exists (Field.equal f) present) flow.fields)
  in
  let rec loop () =
    let pending = List.filter (fun (_, q) -> !q <> []) queues in
    match pending with
    | [] -> ()
    | _ ->
      let ready = List.filter head_ready pending in
      let svc, q =
        Prng.choose st.rng (if ready <> [] then ready else pending)
      in
      (match !q with
      | flow :: rest ->
        q := rest;
        flow_event u st svc flow
      | [] -> assert false);
      List.iter (snoop_step u st) config.snoopers;
      loop ()
  in
  loop ();
  let trace = List.rev st.rev_events in
  Trace.publish_metrics ~prefix:"sim" trace;
  Ok trace
  end

let run_exn u config =
  match run u config with
  | Ok trace -> trace
  | Error msg -> invalid_arg ("Sim.run_exn: " ^ msg)
