module Json = Mdp_prelude.Json

type entry = { monitor : Monitor.t; mutable rev_alerts : Monitor.alert list }

type t = {
  universe : Mdp_core.Universe.t;
  lts : Mdp_core.Plts.t;
  min_level : Mdp_core.Level.t;
  resync_depth : int;
  monitors : (string, entry) Hashtbl.t;
  mutable rev_subjects : string list;
  mutable alerts : int;
}

let create ?(min_level = Mdp_core.Level.Low) ?(resync_depth = 0) universe lts =
  {
    universe;
    lts;
    min_level;
    resync_depth;
    monitors = Hashtbl.create 16;
    rev_subjects = [];
    alerts = 0;
  }

let add_entry t subject entry =
  Hashtbl.add t.monitors subject entry;
  t.rev_subjects <- subject :: t.rev_subjects

let entry_for t subject =
  match Hashtbl.find_opt t.monitors subject with
  | Some e -> e
  | None ->
    let e =
      {
        monitor =
          Monitor.create ~min_level:t.min_level ~resync_depth:t.resync_depth
            t.universe t.lts;
        rev_alerts = [];
      }
    in
    add_entry t subject e;
    e

let observe t ~subject event =
  let e = entry_for t subject in
  let alerts = Monitor.observe e.monitor event in
  e.rev_alerts <- List.rev_append alerts e.rev_alerts;
  t.alerts <- t.alerts + List.length alerts;
  alerts

let subjects t = List.rev t.rev_subjects

let state_of t ~subject =
  Option.map
    (fun e -> Monitor.current_state e.monitor)
    (Hashtbl.find_opt t.monitors subject)

let monitor_stats t ~subject =
  Option.map (fun e -> Monitor.stats e.monitor) (Hashtbl.find_opt t.monitors subject)

let alert_count t = t.alerts

let alerts_for t ~subject =
  match Hashtbl.find_opt t.monitors subject with
  | Some e -> List.rev e.rev_alerts
  | None -> []

(* ------------------------------------------------------------------ *)
(* Health *)

type health = Healthy | Degraded of string | Lost

let lost_threshold = 3

let health_of_stats (s : Monitor.stats) =
  if s.Monitor.consecutive_dead >= lost_threshold then Lost
  else begin
    let reasons = ref [] in
    let note n what = if n > 0 then reasons := Printf.sprintf "%d %s" n what :: !reasons in
    note s.Monitor.dead "dead-lettered";
    note s.Monitor.resyncs "resyncs";
    note s.Monitor.late "late arrivals";
    note s.Monitor.duplicates "duplicates";
    match List.rev !reasons with
    | [] -> Healthy
    | reasons -> Degraded (String.concat ", " reasons)
  end

let health t ~subject =
  Option.map
    (fun e -> health_of_stats (Monitor.stats e.monitor))
    (Hashtbl.find_opt t.monitors subject)

let health_summary t =
  List.map
    (fun subject ->
      match health t ~subject with
      | Some h -> (subject, h)
      | None -> assert false)
    (subjects t)

let pp_health ppf = function
  | Healthy -> Format.pp_print_string ppf "healthy"
  | Degraded reason -> Format.fprintf ppf "degraded (%s)" reason
  | Lost -> Format.pp_print_string ppf "LOST"

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

let checkpoint t =
  Json.Obj
    [
      ("version", Json.int 1);
      ("min_level", Json.Str (Mdp_core.Level.to_string t.min_level));
      ("resync_depth", Json.int t.resync_depth);
      ( "subjects",
        Json.List
          (List.map
             (fun subject ->
               let e = Hashtbl.find t.monitors subject in
               Json.Obj
                 [
                   ("subject", Json.Str subject);
                   ("monitor", Monitor.to_json e.monitor);
                 ])
             (subjects t)) );
    ]

let ( let* ) = Result.bind

let restore universe lts json =
  let field name conv err =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error err
  in
  let* level_s =
    field "min_level" Json.to_str_opt "checkpoint: missing fleet min_level"
  in
  let* min_level =
    match Mdp_core.Level.of_string level_s with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "checkpoint: bad level %S" level_s)
  in
  let* resync_depth =
    field "resync_depth" Json.to_int_opt
      "checkpoint: missing fleet resync_depth"
  in
  let* subject_objs =
    field "subjects" Json.to_list_opt "checkpoint: missing subject list"
  in
  let t = create ~min_level ~resync_depth universe lts in
  let* () =
    List.fold_left
      (fun acc obj ->
        let* () = acc in
        let* subject =
          match Option.bind (Json.member "subject" obj) Json.to_str_opt with
          | Some s -> Ok s
          | None -> Error "checkpoint: subject entry without a name"
        in
        let* monitor_json =
          match Json.member "monitor" obj with
          | Some j -> Ok j
          | None -> Error (Printf.sprintf "checkpoint: %s has no monitor" subject)
        in
        let* monitor = Monitor.of_json universe lts monitor_json in
        add_entry t subject { monitor; rev_alerts = [] };
        Ok ())
      (Ok ()) subject_objs
  in
  Ok t
