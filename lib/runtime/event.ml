open Mdp_dataflow

type t = {
  time : int;
  kind : Mdp_core.Action.kind;
  actor : string;
  fields : Field.t list;
  store : string option;
  service : string option;
  counterparty : string option;
}

let make ~time ~kind ~actor ~fields ?store ?service ?counterparty () =
  if fields = [] then invalid_arg "Event.make: no fields";
  { time; kind; actor; fields; store; service; counterparty }

let fields_equal a b =
  let norm l = List.sort_uniq Field.compare l in
  let na = norm a and nb = norm b in
  List.length na = List.length nb && List.for_all2 Field.equal na nb

let equal a b =
  a.time = b.time && a.kind = b.kind && a.actor = b.actor
  && a.store = b.store && a.service = b.service
  && a.counterparty = b.counterparty
  && fields_equal a.fields b.fields

let kind_to_string k = Format.asprintf "%a" Mdp_core.Action.pp_kind k

let kind_of_string = function
  | "collect" -> Some Mdp_core.Action.Collect
  | "create" -> Some Mdp_core.Action.Create
  | "read" -> Some Mdp_core.Action.Read
  | "disclose" -> Some Mdp_core.Action.Disclose
  | "anon" -> Some Mdp_core.Action.Anon
  | "delete" -> Some Mdp_core.Action.Delete
  | _ -> None

let opt = function Some s -> s | None -> "-"

let pp ppf t =
  Format.fprintf ppf "t=%d %s by %s [%s]%s%s%s" t.time (kind_to_string t.kind)
    t.actor
    (String.concat ", " (List.map Field.name t.fields))
    (match t.store with Some s -> " store " ^ s | None -> "")
    (match t.service with Some s -> " in " ^ s | None -> "")
    (match t.counterparty with Some s -> " to " ^ s | None -> "")

let to_line t =
  Printf.sprintf "%d %s %s %s %s %s %s" t.time (kind_to_string t.kind) t.actor
    (String.concat "," (List.map Field.name t.fields))
    (opt t.store) (opt t.service) (opt t.counterparty)

let of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ time; kind; actor; fields; store; service; counterparty ] -> (
    match (int_of_string_opt time, kind_of_string kind) with
    | Some time, Some kind ->
      let parse_opt = function "-" -> None | s -> Some s in
      let fields =
        List.map Field.of_name (String.split_on_char ',' fields)
      in
      if fields = [] then Error "event line has no fields"
      else
        Ok
          {
            time;
            kind;
            actor;
            fields;
            store = parse_opt store;
            service = parse_opt service;
            counterparty = parse_opt counterparty;
          }
    | None, _ -> Error ("bad timestamp: " ^ time)
    | _, None -> Error ("bad action kind: " ^ kind))
  | _ -> Error ("malformed event line: " ^ line)
