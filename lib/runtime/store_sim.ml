open Mdp_dataflow
module Core = Mdp_core
module A = Mdp_anon
module Permission = Mdp_policy.Permission

type subject = string

type table = {
  datastore : Datastore.t;
  records : (subject, (string * A.Value.t) list ref) Hashtbl.t;
      (* field name -> value; name keyed so anon variants coexist *)
  mutable rev_subjects : subject list;
}

type t = {
  universe : Core.Universe.t;
  tables : (string, table) Hashtbl.t;
  outages : (string, unit) Hashtbl.t;
  rng : Mdp_prelude.Prng.t;
}

let create ?(seed = 1) universe =
  let tables = Hashtbl.create 8 in
  List.iter
    (fun (d : Datastore.t) ->
      Hashtbl.replace tables d.id
        { datastore = d; records = Hashtbl.create 16; rev_subjects = [] })
    (Core.Universe.diagram universe).Diagram.datastores;
  {
    universe;
    tables;
    outages = Hashtbl.create 4;
    rng = Mdp_prelude.Prng.create ~seed;
  }

let retriable_prefix = "unavailable:"

let is_retriable msg =
  String.length msg >= String.length retriable_prefix
  && String.sub msg 0 (String.length retriable_prefix) = retriable_prefix

let set_available t ~store up =
  if up then Hashtbl.remove t.outages store
  else Hashtbl.replace t.outages store ()

let available t ~store = not (Hashtbl.mem t.outages store)

let table t store =
  match Hashtbl.find_opt t.tables store with
  | Some _ when not (available t ~store) ->
    Error
      (Printf.sprintf "%s datastore %s is on a crashed node" retriable_prefix
         store)
  | Some tbl -> Ok tbl
  | None -> Error (Printf.sprintf "unknown datastore %s" store)

let allows t ~actor perm ~store field =
  Mdp_policy.Policy.allows (Core.Universe.policy t.universe)
    ~diagram:(Core.Universe.diagram t.universe)
    ~actor perm ~store field

let record_of tbl subject =
  match Hashtbl.find_opt tbl.records subject with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add tbl.records subject r;
    tbl.rev_subjects <- subject :: tbl.rev_subjects;
    r

let set_field record field value =
  let name = Field.name field in
  record := (name, value) :: List.remove_assoc name !record

let ( let* ) = Result.bind

let write t ~actor ~store ~subject fields =
  let* tbl = table t store in
  let* () =
    List.fold_left
      (fun acc (f, _) ->
        let* () = acc in
        if Field.is_anon f then
          Error
            (Printf.sprintf "%s: write anon variants via pseudonymise"
               (Field.name f))
        else if not (Datastore.mem tbl.datastore f) then
          Error (Printf.sprintf "%s not in the schemas of %s" (Field.name f) store)
        else if not (allows t ~actor Permission.Write ~store f) then
          Error
            (Printf.sprintf "%s may not write %s in %s" actor (Field.name f) store)
        else Ok ())
      (Ok ()) fields
  in
  let record = record_of tbl subject in
  List.iter (fun (f, v) -> set_field record f v) fields;
  Ok ()

let read t ~actor ~store ~subject fields =
  let* tbl = table t store in
  match Hashtbl.find_opt tbl.records subject with
  | None -> Error (Printf.sprintf "no record for %s in %s" subject store)
  | Some record ->
    let delivered =
      List.filter_map
        (fun f ->
          if not (allows t ~actor Permission.Read ~store f) then None
          else
            Option.map (fun v -> (f, v)) (List.assoc_opt (Field.name f) !record))
        fields
    in
    if delivered = [] then
      Error (Printf.sprintf "%s may not read any requested field of %s" actor store)
    else Ok delivered

let delete t ~actor ~store ~subject =
  let* tbl = table t store in
  let may_delete =
    List.exists
      (fun f -> allows t ~actor Permission.Delete ~store f)
      (Datastore.fields tbl.datastore)
  in
  if not may_delete then
    Error (Printf.sprintf "%s may not delete in %s" actor store)
  else if not (Hashtbl.mem tbl.records subject) then
    Error (Printf.sprintf "no record for %s in %s" subject store)
  else begin
    Hashtbl.remove tbl.records subject;
    tbl.rev_subjects <- List.filter (( <> ) subject) tbl.rev_subjects;
    Ok ()
  end

let subjects t ~store =
  match table t store with
  | Ok tbl -> List.rev tbl.rev_subjects
  | Error _ -> []

let pseudonymise t ~actor ~from_store ~to_store ~generalise =
  let* src = table t from_store in
  let* dst = table t to_store in
  if dst.datastore.Datastore.kind <> Datastore.Anonymised then
    Error (Printf.sprintf "%s is not an anonymised store" to_store)
  else begin
    (* The release covers the anon variants the target schema declares
       whose base fields exist in the source record. *)
    let target_fields =
      List.filter Field.is_anon (Datastore.fields dst.datastore)
    in
    let* () =
      List.fold_left
        (fun acc anon_f ->
          let* () = acc in
          let base = Field.base_of anon_f in
          if not (allows t ~actor Permission.Read ~store:from_store base) then
            Error
              (Printf.sprintf "%s may not read %s from %s" actor
                 (Field.name base) from_store)
          else if not (allows t ~actor Permission.Write ~store:to_store anon_f)
          then
            Error
              (Printf.sprintf "%s may not write %s to %s" actor
                 (Field.name anon_f) to_store)
          else Ok ())
        (Ok ()) target_fields
    in
    (* Replace the previous release. *)
    Hashtbl.reset dst.records;
    dst.rev_subjects <- [];
    let count = ref 0 in
    List.iter
      (fun subject ->
        match Hashtbl.find_opt src.records subject with
        | None -> ()
        | Some record ->
          let pseudonym =
            Printf.sprintf "p-%08Lx"
              (Int64.of_int (Mdp_prelude.Prng.int t.rng 0x3FFFFFFF))
          in
          let out = record_of dst pseudonym in
          incr count;
          List.iter
            (fun anon_f ->
              let base = Field.base_of anon_f in
              match List.assoc_opt (Field.name base) !record with
              | None -> ()
              | Some v ->
                let v' =
                  match
                    List.find_opt (fun (f, _) -> Field.equal f base) generalise
                  with
                  | Some (_, g) -> g v
                  | None -> v
                in
                set_field out anon_f v')
            target_fields)
      (List.rev src.rev_subjects);
    Ok !count
  end

let dataset t ~store ~kinds =
  let* tbl = table t store in
  let fields = Datastore.fields tbl.datastore in
  let attrs =
    List.map
      (fun f ->
        let kind =
          match List.find_opt (fun (g, _) -> Field.equal g f) kinds with
          | Some (_, k) -> k
          | None -> A.Attribute.Insensitive
        in
        A.Attribute.make ~name:(Field.name (Field.base_of f)) ~kind)
      fields
  in
  (* [rev_subjects] is newest-first; [rev_map] restores insertion order. *)
  let rows =
    List.rev_map
      (fun subject ->
        let record = !(Hashtbl.find tbl.records subject) in
        List.map
          (fun f ->
            Option.value
              (List.assoc_opt (Field.name f) record)
              ~default:A.Value.Suppressed)
          fields)
      tbl.rev_subjects
  in
  match A.Dataset.make ~attrs ~rows with
  | ds -> Ok ds
  | exception Invalid_argument msg -> Error msg
