(** Data-level datastore simulation.

    {!Sim} generates event traces; this module holds the *records
    themselves*: one in-memory table per datastore of the model, keyed by
    data subject, with ACL-enforced field access and a pseudonymisation
    operation producing releases in the model's anonymised stores.
    It exists for the paper's run-time path (§III-B "Using Risk Scores":
    "the model can be applied to the running system to get a more
    accurate picture of risk") — {!dataset} extracts a live
    {!Mdp_anon.Dataset} from an anonymised store so value risk can be
    recomputed from the data actually there. *)

open Mdp_dataflow

type t

val create : ?seed:int -> Mdp_core.Universe.t -> t
(** The seed drives pseudonym generation only. *)

(** {1 Availability}

    A store whose node has crashed (see {!Faults.chaos}) is marked
    unavailable: every operation on it fails with a {e retriable} error
    until it is marked available again. {!Faults.with_backoff} consumes
    exactly these errors. *)

val set_available : t -> store:string -> bool -> unit
val available : t -> store:string -> bool
(** Defaults to [true]; unknown stores are reported available (their
    operations fail with the non-retriable unknown-datastore error). *)

val is_retriable : string -> bool
(** Recognises the errors produced by an unavailable store, i.e. the
    failures a caller should retry with backoff rather than surface. *)

type subject = string

val write :
  t ->
  actor:string ->
  store:string ->
  subject:subject ->
  (Field.t * Mdp_anon.Value.t) list ->
  (unit, string) result
(** Upsert fields of the subject's record. Enforced: fields the actor may
    not [Write] are rejected (all-or-nothing, unlike reads, because a
    partial write would corrupt the record). Fails on fields outside the
    store's schemas or on anon-variant fields (use {!pseudonymise}). *)

val read :
  t ->
  actor:string ->
  store:string ->
  subject:subject ->
  Field.t list ->
  ((Field.t * Mdp_anon.Value.t) list, string) result
(** Enforced at field granularity like the generator and the PEP: the
    permitted subset of the requested, present fields is returned; an
    empty result is a denial. *)

val delete :
  t -> actor:string -> store:string -> subject:subject -> (unit, string) result
(** Remove the subject's record. Requires the Delete permission on at
    least one schema field. *)

val subjects : t -> store:string -> subject list
(** In insertion order. Pseudonymised stores list opaque pseudonyms. *)

val pseudonymise :
  t ->
  actor:string ->
  from_store:string ->
  to_store:string ->
  generalise:(Field.t * (Mdp_anon.Value.t -> Mdp_anon.Value.t)) list ->
  (int, string) result
(** Re-derive the anonymised store's contents: every record of
    [from_store] is copied under a fresh opaque pseudonym, each listed
    field passed through its generaliser, unlisted fields copied raw;
    every copied field is stored as its anon variant. Requires the
    actor's Read on the copied source fields and Write on the anon
    variants. Replaces the previous release. Returns the record count. *)

val dataset :
  t ->
  store:string ->
  kinds:(Field.t * Mdp_anon.Attribute.kind) list ->
  (Mdp_anon.Dataset.t, string) result
(** Extract the store's contents as a dataset for offline analysis.
    Attribute names are field names (anon markers stripped); [kinds]
    assigns the taxonomy, unlisted fields are [Insensitive]; missing
    cells are [Suppressed]. Row order = subject insertion order. *)
