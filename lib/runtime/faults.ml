module Prng = Mdp_prelude.Prng

(* ------------------------------------------------------------------ *)
(* Trace perturbation *)

type profile = {
  drop : float;
  duplicate : float;
  reorder : float;
  delay : float;
  max_delay : int;
}

let no_faults =
  { drop = 0.0; duplicate = 0.0; reorder = 0.0; delay = 0.0; max_delay = 0 }

let uniform ?(max_delay = 3) rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Faults.uniform: rate not in [0,1]";
  { drop = rate; duplicate = rate; reorder = rate; delay = rate; max_delay }

type 'a generic_fault =
  | Dropped of 'a
  | Duplicated of 'a
  | Reordered of 'a
  | Delayed of 'a * int

type fault = Event.t generic_fault

type 'a generic_injection = {
  delivered : 'a list;
  faults : 'a generic_fault list;
}

type injection = Event.t generic_injection

let fires rng p = p > 0.0 && Prng.float rng 1.0 < p

(* Each surviving event carries a float arrival key, initially its input
   index. Delay pushes the key d(+0.5) positions later; a duplicate is a
   second entry k(+0.25) positions later; reorder swaps the keys of two
   adjacent survivors. A final stable sort by key yields the arrival
   order. The PRNG is consumed in one deterministic left-to-right pass.

   Polymorphic in the element type: the monitoring pipeline perturbs
   [Event.t] traces, the serve soak harness perturbs raw request
   lines — same faults, same seed discipline. *)
let inject_any ~seed profile events =
  let rng = Prng.create ~seed in
  let rev_faults = ref [] in
  let note f = rev_faults := f :: !rev_faults in
  let survivors =
    List.filteri
      (fun _ event ->
        if fires rng profile.drop then begin
          note (Dropped event);
          false
        end
        else true)
      events
  in
  let keyed = ref [] in
  List.iteri
    (fun i event ->
      let key = ref (float_of_int i) in
      if fires rng profile.duplicate then begin
        let gap = 1 + Prng.int rng (max 1 profile.max_delay) in
        note (Duplicated event);
        keyed := (ref (float_of_int (i + gap) +. 0.25), event) :: !keyed
      end;
      if fires rng profile.delay then begin
        let d = 1 + Prng.int rng (max 1 profile.max_delay) in
        note (Delayed (event, d));
        key := !key +. float_of_int d +. 0.5
      end;
      keyed := (key, event) :: !keyed)
    survivors;
  let keyed = List.rev !keyed in
  (* Adjacent transpositions on the original (un-delayed) neighbours. *)
  let arr = Array.of_list keyed in
  Array.iteri
    (fun i (key, event) ->
      if i + 1 < Array.length arr && fires rng profile.reorder then begin
        let key', _ = arr.(i + 1) in
        let tmp = !key in
        key := !key';
        key' := tmp;
        note (Reordered event)
      end)
    arr;
  let delivered =
    Array.to_list arr
    |> List.stable_sort (fun (a, _) (b, _) -> Float.compare !a !b)
    |> List.map snd
  in
  { delivered; faults = List.rev !rev_faults }

let inject ~seed profile events : injection = inject_any ~seed profile events

let pp_fault ppf = function
  | Dropped e -> Format.fprintf ppf "drop %a" Event.pp e
  | Duplicated e -> Format.fprintf ppf "duplicate %a" Event.pp e
  | Reordered e -> Format.fprintf ppf "reorder %a" Event.pp e
  | Delayed (e, d) -> Format.fprintf ppf "delay+%d %a" d Event.pp e

type fault_stats = {
  dropped : int;
  duplicated : int;
  reordered : int;
  delayed : int;
}

let stats faults =
  List.fold_left
    (fun acc -> function
      | Dropped _ -> { acc with dropped = acc.dropped + 1 }
      | Duplicated _ -> { acc with duplicated = acc.duplicated + 1 }
      | Reordered _ -> { acc with reordered = acc.reordered + 1 }
      | Delayed _ -> { acc with delayed = acc.delayed + 1 })
    { dropped = 0; duplicated = 0; reordered = 0; delayed = 0 }
    faults

let pp_stats ppf s =
  Format.fprintf ppf "%d dropped, %d duplicated, %d reordered, %d delayed"
    s.dropped s.duplicated s.reordered s.delayed

(* ------------------------------------------------------------------ *)
(* Deployment chaos *)

(* [down]/[cut] map a node / region pair to the tick at which the outage
   lifts; [max_int] marks a manual outage that only an explicit
   recover/heal removes. *)
type chaos = {
  deployment : Deployment.t;
  rng : Prng.t;
  mutable now : int;
  down : (string, int) Hashtbl.t;
  cut : (string * string, int) Hashtbl.t;
}

let chaos ?(seed = 1) deployment =
  {
    deployment;
    rng = Prng.create ~seed;
    now = 0;
    down = Hashtbl.create 8;
    cut = Hashtbl.create 8;
  }

let clock t = t.now

let expire tbl now =
  let gone =
    Hashtbl.fold (fun k until acc -> if until <= now then k :: acc else acc) tbl []
  in
  List.iter (Hashtbl.remove tbl) gone

let tick t =
  t.now <- t.now + 1;
  expire t.down t.now;
  expire t.cut t.now

let crash_node ?for_ticks t node =
  let until = match for_ticks with None -> max_int | Some d -> t.now + max 1 d in
  Hashtbl.replace t.down node until

let recover_node t node = Hashtbl.remove t.down node
let node_up t node = not (Hashtbl.mem t.down node)

let pair a b = if String.compare a b <= 0 then (a, b) else (b, a)

let partition ?for_ticks t ra rb =
  let until = match for_ticks with None -> max_int | Some d -> t.now + max 1 d in
  Hashtbl.replace t.cut (pair ra rb) until

let heal t ra rb = Hashtbl.remove t.cut (pair ra rb)
let regions_connected t ra rb = ra = rb || not (Hashtbl.mem t.cut (pair ra rb))

let store_available t store =
  match Deployment.node_of_store t.deployment store with
  | node -> node_up t node.Deployment.id
  | exception Not_found -> true

let actor_available t actor =
  match Deployment.node_of_actor t.deployment actor with
  | node -> node_up t node.Deployment.id
  | exception Not_found -> true

let transfer_possible t (tr : Deployment.transfer) =
  node_up t tr.to_node.Deployment.id
  && match tr.from_node with
     | None -> true
     | Some f ->
       node_up t f.Deployment.id
       && regions_connected t f.Deployment.region tr.to_node.Deployment.region

let sync_stores t sim =
  List.iter
    (fun (store, (node : Deployment.node)) ->
      Store_sim.set_available sim ~store (node_up t node.id))
    (Deployment.store_placements t.deployment)

let auto_step t ~crash_probability ~mean_downtime =
  tick t;
  if fires t.rng crash_probability then begin
    let healthy =
      List.filter (node_up t)
        (Deployment.node_ids t.deployment)
    in
    if healthy <> [] then
      let node = Prng.choose t.rng healthy in
      let downtime = max 1 (Prng.range t.rng 1 (2 * max 1 mean_downtime)) in
      crash_node ~for_ticks:downtime t node
  end

(* ------------------------------------------------------------------ *)
(* Bounded exponential backoff *)

type backoff = {
  base_wait : int;
  max_wait : int;
  max_attempts : int;
  jitter : bool;
}

let default_backoff =
  { base_wait = 1; max_wait = 8; max_attempts = 6; jitter = false }

let jittered_backoff = { default_backoff with jitter = true }

type retry_outcome = { attempts : int; waited : int }

let with_backoff ?(policy = default_backoff) t op =
  let rec go attempt waited =
    match op () with
    | Ok _ as ok -> (ok, { attempts = attempt; waited })
    | Error msg when Store_sim.is_retriable msg && attempt < policy.max_attempts
      ->
      let ceiling =
        min policy.max_wait (policy.base_wait * (1 lsl (attempt - 1)))
      in
      (* Full jitter (AWS-style): wait uniform in [1, ceiling] rather
         than exactly the exponential ceiling, so a crowd of clients
         knocked back by the same outage spreads its retries instead
         of stampeding the store the moment it heals. Drawn from the
         chaos PRNG, so runs stay reproducible per seed; with jitter
         off the PRNG is not consumed and the schedule is exactly the
         historical deterministic one. *)
      let wait =
        if policy.jitter && ceiling > 1 then 1 + Prng.int t.rng ceiling
        else ceiling
      in
      for _ = 1 to wait do
        tick t
      done;
      go (attempt + 1) (waited + wait)
    | Error _ as err -> (err, { attempts = attempt; waited })
  in
  go 1 0
