(** Runtime privacy monitor (paper §I: the models also "monitor the
    privacy risks during the lifetime of the service").

    One monitor tracks one data subject's journey through the generated
    (and risk-annotated) LTS. Each observed event is first put through the
    {!Enforce} PEP, then matched against the outgoing transitions of the
    current LTS state:

    - a matching risk-annotated transition raises a {!Risky} alert (and
      the state advances);
    - a matching unannotated transition advances silently;
    - a denied event raises {!Denied} (plus {!Off_model} when the attempt
      was not even predicted by the model) and does not advance;
    - an event matching no transition is handled by the resilience layer
      below.

    {2 Resilience}

    A real distributed service delivers an imperfect stream: events are
    dropped, duplicated, reordered and delayed (see {!Faults}). With
    [resync_depth > 0] the monitor degrades gracefully instead of wedging
    on the first gap:

    - an unmatched event triggers a bounded forward search of the LTS for
      the nearest state from which it {e does} match; on success the
      monitor re-aligns and raises {!Resynced} with the number of
      transitions it had to skip — the bridged gap;
    - the skipped transitions are remembered, so a skipped event that
      later arrives out of order (a delay or reorder rather than a drop)
      is absorbed silently;
    - an exact duplicate of an already-observed event is absorbed
      silently;
    - an event that cannot be placed at all goes to the dead-letter queue
      and raises {!Off_model}.

    {!stats} exposes the counters; {!to_json}/{!of_json} checkpoint the
    whole monitor state so a crashed monitoring node can resume without
    replaying the full trace. *)

type alert =
  | Denied of Event.t * string
  | Risky of Event.t * Mdp_core.Action.risk
  | Off_model of Event.t
  | Resynced of Event.t * int
      (** Re-aligned after a gap, skipping this many transitions. *)

type t

val create :
  ?min_level:Mdp_core.Level.t ->
  ?resync_depth:int ->
  ?dead_letter_cap:int ->
  Mdp_core.Universe.t ->
  Mdp_core.Plts.t ->
  t
(** [min_level] (default [Low]) is the smallest disclosure-risk level that
    raises [Risky]; value-risk annotations always raise when they carry at
    least one violation. [resync_depth] (default 0: off) bounds how many
    transitions a resynchronisation may skip. [dead_letter_cap]
    (default 256) bounds the dead-letter queue: when full, the oldest
    letter is shed (counted in [stats.dead_dropped]) to admit the new
    one, so a monitor that has lost track in a long-lived run holds the
    newest evidence at constant memory instead of growing without
    limit; 0 keeps no letters at all (every dead event only counts).
    The LTS should already be annotated (run
    {!Mdp_core.Disclosure_risk.analyse} /
    {!Mdp_core.Pseudonym_risk.analyse} first). *)

val current_state : t -> Mdp_core.Plts.state_id

val observe : t -> Event.t -> alert list
(** All alerts the event raises, in severity order — e.g. a denied event
    that is also off-model reports both. Absorbed duplicates and late
    arrivals raise none. *)

val run_trace : t -> Event.t list -> alert list
(** Observe a whole trace; alerts in event order. *)

val dead_letters : t -> Event.t list
(** Events the monitor could not place anywhere, in arrival order —
    the newest [dead_letter_cap] of them; older ones are shed
    (see {!create}). *)

type stats = {
  observed : int;  (** Events fed to {!observe}. *)
  placed : int;  (** Events that advanced the LTS state. *)
  duplicates : int;  (** Exact duplicates absorbed. *)
  late : int;  (** Out-of-order arrivals absorbed against skipped
                   transitions. *)
  resyncs : int;  (** Gaps bridged. *)
  skipped : int;  (** Transitions skipped across all resyncs. *)
  dead : int;  (** Dead letters currently held (bounded by the cap). *)
  dead_dropped : int;  (** Dead letters shed to stay within the cap. *)
  consecutive_dead : int;  (** Current run of dead letters with nothing
                               placed in between — a high value means the
                               monitor has lost track entirely. *)
}

val stats : t -> stats

(** {1 Checkpointing} *)

val to_json : t -> Mdp_prelude.Json.t
(** The complete resumable state: LTS position, dedup memory, pending
    skipped transitions, dead letters, counters, configuration. State ids
    are stable because LTS generation is deterministic; restore against
    an LTS generated from the same model with the same options. *)

val of_json :
  Mdp_core.Universe.t -> Mdp_core.Plts.t -> Mdp_prelude.Json.t ->
  (t, string) result

val pp_alert : Format.formatter -> alert -> unit
