(** Multi-subject monitoring.

    The privacy LTS is per data subject (paper §III: "there is an
    instance for each user"); a deployed service interleaves many
    subjects' events. A fleet lazily maintains one {!Monitor} per
    subject, routing each event by subject identifier, and aggregates the
    alerts raised across the population.

    For runs over faulty streams (see {!Faults}) the fleet also offers a
    per-subject health summary and whole-fleet checkpoint/restore, so a
    crashed monitoring node resumes from its last checkpoint instead of
    replaying the full trace. *)

type t

val create :
  ?min_level:Mdp_core.Level.t ->
  ?resync_depth:int ->
  Mdp_core.Universe.t ->
  Mdp_core.Plts.t ->
  t
(** All subjects share the (annotated) LTS; monitor state is
    per-subject. [min_level] and [resync_depth] are passed to every
    monitor the fleet creates (see {!Monitor.create}). *)

val observe : t -> subject:string -> Event.t -> Monitor.alert list
val subjects : t -> string list
(** In first-seen order. *)

val state_of : t -> subject:string -> Mdp_core.Plts.state_id option
(** [None] for a subject never observed. *)

val monitor_stats : t -> subject:string -> Monitor.stats option

val alert_count : t -> int
(** Total alerts raised so far across all subjects. *)

val alerts_for : t -> subject:string -> Monitor.alert list
(** In observation order. *)

(** {1 Health} *)

type health =
  | Healthy  (** Every event placed first try; nothing absorbed. *)
  | Degraded of string
      (** Tracking, but the stream needed repair (resyncs, duplicates,
          late arrivals or isolated dead letters); the payload says
          why. *)
  | Lost
      (** The last several events could not be placed at all — the
          monitor no longer knows where the subject is. *)

val health : t -> subject:string -> health option
val health_summary : t -> (string * health) list
(** Every subject with its health, in first-seen order. *)

val pp_health : Format.formatter -> health -> unit

(** {1 Checkpointing} *)

val checkpoint : t -> Mdp_prelude.Json.t
(** Serialises every subject's monitor (see {!Monitor.to_json}) plus the
    fleet configuration. Alerts already reported are not replayed: a
    restored fleet's {!alert_count} counts post-restore alerts only. *)

val restore :
  Mdp_core.Universe.t -> Mdp_core.Plts.t -> Mdp_prelude.Json.t ->
  (t, string) result
(** Rebuild a fleet from {!checkpoint} output against an LTS generated
    from the same model with the same options. *)
